//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The workspace builds without registry access, so this crate provides the
//! subset of proptest the test suite actually uses:
//!
//! * the [`proptest!`] macro with an optional `#![proptest_config(..)]`
//!   header and both argument forms (`x: Type` and `x in strategy`),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`],
//! * range strategies (`0u16..=1000`), a small regex-class string strategy
//!   (`".{0,200}"`), [`collection::vec`] and [`sample::select`].
//!
//! Differences from upstream, all intentional: cases are generated from a
//! seed derived deterministically from the test's module path (reproducible
//! across runs; override the count with `PROPTEST_CASES`), and failing
//! inputs are reported but **not shrunk**.

pub mod test_runner {
    use std::fmt;

    /// Per-test configuration. Only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases: env_cases().unwrap_or(cases),
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: env_cases().unwrap_or(256),
            }
        }
    }

    fn env_cases() -> Option<u32> {
        std::env::var("PROPTEST_CASES").ok()?.parse().ok()
    }

    /// A failed property, raised by the `prop_assert*` macros.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError(message.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic per-test random source (xoshiro256++ seeded from a
    /// FNV-1a hash of the fully qualified test name).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        pub fn for_test(qualified_name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in qualified_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let mut sm = h;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform in `0..bound` (`bound > 0`).
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values. Upstream strategies also know how to
    /// shrink; this stand-in only generates.
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = self.end.wrapping_sub(self.start) as u64;
                    assert!(span > 0, "cannot sample an empty range");
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    let span = end.wrapping_sub(start) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    start.wrapping_add(rng.below(span + 1) as $t)
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Characters the string strategy draws from: ASCII weighted toward the
    /// language's own tokens, plus a few multi-byte code points so parsers
    /// see non-ASCII input too.
    const STRING_ALPHABET: &[char] = &[
        'a', 'b', 'c', 'x', 'y', 'z', 'f', 'n', '0', '1', '2', '9', ' ', ' ', '\t', '\n', '(', ')',
        '[', ']', '{', '}', ':', '=', '.', ',', ';', '+', '-', '*', '/', '<', '>', '"', '\\', '\'',
        '_', '#', '!', '?', 'λ', 'é', '→', '∀', '𝛒',
    ];

    /// A regex-ish string pattern. Supports exactly the `.{lo,hi}` shape the
    /// test suite uses; any other pattern is rejected loudly rather than
    /// silently generating the wrong distribution.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (lo, hi) = parse_dot_repeat(self).unwrap_or_else(|| {
                panic!("unsupported string pattern {self:?}: this proptest stand-in only knows `.{{lo,hi}}`")
            });
            let len = lo + rng.below((hi - lo + 1) as u64) as usize;
            (0..len)
                .map(|_| STRING_ALPHABET[rng.below(STRING_ALPHABET.len() as u64) as usize])
                .collect()
        }
    }

    fn parse_dot_repeat(pattern: &str) -> Option<(usize, usize)> {
        let body = pattern.strip_prefix(".{")?.strip_suffix('}')?;
        let (lo, hi) = body.split_once(',')?;
        let (lo, hi) = (lo.trim().parse().ok()?, hi.trim().parse().ok()?);
        (lo <= hi).then_some((lo, hi))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn ranges_stay_in_bounds() {
            let mut rng = TestRng::for_test("ranges");
            for _ in 0..500 {
                let x = (0u16..=1000).generate(&mut rng);
                assert!(x <= 1000);
                let y = (50u16..400).generate(&mut rng);
                assert!((50..400).contains(&y));
            }
        }

        #[test]
        fn string_pattern_respects_length_bounds() {
            let mut rng = TestRng::for_test("strings");
            for _ in 0..200 {
                let s = ".{0,200}".generate(&mut rng);
                assert!(s.chars().count() <= 200);
            }
        }
    }
}

pub mod arbitrary {
    use crate::test_runner::TestRng;

    /// Default generation for plain-typed `proptest!` arguments (`x: u64`).
    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// `vec(element, 0..40)`: a vector whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// `select(choices)`: one of the given values, uniformly.
    pub fn select<T: Clone>(choices: Vec<T>) -> Select<T> {
        assert!(!choices.is_empty(), "select requires at least one choice");
        Select { choices }
    }

    pub struct Select<T> {
        choices: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.choices[rng.below(self.choices.len() as u64) as usize].clone()
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::Arbitrary;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// The test-definition macro. Accepts an optional configuration header and
/// any number of test functions whose arguments are either `name: Type`
/// (generated via [`arbitrary::Arbitrary`]) or `name in strategy`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($args:tt)*) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::for_test(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..__cfg.cases {
                    $crate::__proptest_bind!(__rng, $($args)*);
                    let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(__e) = __outcome {
                        panic!(
                            "property `{}` failed at case {}/{}: {}",
                            stringify!($name),
                            __case + 1,
                            __cfg.cases,
                            __e
                        );
                    }
                }
            }
        )*
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $name:ident : $ty:ty) => {
        let $name = <$ty as $crate::arbitrary::Arbitrary>::arbitrary(&mut $rng);
    };
    ($rng:ident, $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name = <$ty as $crate::arbitrary::Arbitrary>::arbitrary(&mut $rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
    ($rng:ident, $name:ident in $strategy:expr) => {
        let $name = $crate::strategy::Strategy::generate(&$strategy, &mut $rng);
    };
    ($rng:ident, $name:ident in $strategy:expr, $($rest:tt)*) => {
        let $name = $crate::strategy::Strategy::generate(&$strategy, &mut $rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", args…)`: fail the
/// current case (with `return Err(..)`) instead of panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
            stringify!($left), stringify!($right), __l, __r, format!($($fmt)*)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            __l
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Mixed argument forms bind and generate.
        #[test]
        fn mixed_args_bind(seed: u64, density in 0u16..=1000) {
            let _ = seed;
            prop_assert!(density <= 1000);
        }

        #[test]
        fn vec_and_select_compose(
            words in crate::collection::vec(
                crate::sample::select(vec!["a", "b", "c"]),
                0..40,
            )
        ) {
            prop_assert!(words.len() < 40);
            prop_assert!(words.iter().all(|w| ["a", "b", "c"].contains(w)));
        }
    }

    proptest! {
        /// The no-config form defaults to 256 cases (or PROPTEST_CASES).
        #[test]
        fn default_config_form(s in ".{0,20}") {
            prop_assert!(s.chars().count() <= 20);
        }
    }

    #[test]
    #[should_panic(expected = "property `failing` failed at case 1/")]
    fn failures_report_case_number() {
        // No `#[test]` attribute here: a nested test item would be
        // unnameable to the harness and trips `unnameable_test_items`.
        proptest! {
            fn failing(x: u64) {
                prop_assert_eq!(x, x.wrapping_add(1));
            }
        }
        failing();
    }

    #[test]
    fn runs_are_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let mut a = TestRng::for_test("t");
        let mut b = TestRng::for_test("t");
        for _ in 0..50 {
            assert_eq!((0u64..1000).generate(&mut a), (0u64..1000).generate(&mut b));
        }
    }
}
