//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The workspace builds without registry access, so the `[[bench]]` targets
//! link against this small wall-clock harness instead. It reproduces the
//! criterion API the benches use — [`Criterion::benchmark_group`],
//! `sample_size`, `bench_function`, `bench_with_input`, [`BenchmarkId`],
//! [`criterion_group!`] / [`criterion_main!`] — and reports median ±
//! interquartile-range nanoseconds per iteration on stdout.
//!
//! Statistical differences from upstream: fixed warm-up (~60 ms), per-sample
//! auto-calibrated iteration counts, no outlier analysis, no HTML reports.
//! A positional CLI argument filters benchmarks by substring, like upstream.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A benchmark identifier: either a plain name, or a function name plus a
/// parameter rendered as `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            id: name.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { id: name }
    }
}

/// The top-level harness state.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <substring>` filters benchmarks, like upstream.
        // Flag-style arguments (e.g. `--bench`, injected by cargo) are not
        // name filters and are ignored.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, group_name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: group_name.into(),
            sample_size: 100,
            measurement_time: Duration::from_millis(500),
        }
    }
}

/// A named collection of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, dur: Duration) -> &mut Self {
        self.measurement_time = dur;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into(), |b| f(b));
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id, |b| f(b, input));
        self
    }

    pub fn finish(self) {}

    fn run(&mut self, id: BenchmarkId, mut f: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id.id);
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            samples_ns: Vec::new(),
        };
        f(&mut bencher);
        report(&full, &mut bencher.samples_ns);
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] performs the actual
/// warm-up, calibration and sampling.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    samples_ns: Vec<f64>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and calibration: run for ~60ms to estimate cost per iter.
        let warmup = Duration::from_millis(60);
        let start = Instant::now();
        let mut warm_iters: u32 = 0;
        while start.elapsed() < warmup {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = start.elapsed().as_nanos() as f64 / warm_iters as f64;
        // Aim each sample at measurement_time / sample_size, at least 1 iter.
        let budget_ns = self.measurement_time.as_nanos() as f64 / self.sample_size as f64;
        let iters = (budget_ns / per_iter.max(1.0)).ceil().max(1.0) as u64;

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples_ns
                .push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
    }
}

fn report(name: &str, samples_ns: &mut [f64]) {
    if samples_ns.is_empty() {
        println!("{name:<55} (no samples: Bencher::iter never called)");
        return;
    }
    samples_ns.sort_by(|a, b| a.total_cmp(b));
    let q = |p: f64| samples_ns[((samples_ns.len() - 1) as f64 * p).round() as usize];
    println!(
        "{name:<55} time: [{} {} {}]",
        format_ns(q(0.25)),
        format_ns(q(0.5)),
        format_ns(q(0.75)),
    );
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.4} ns")
    }
}

/// Collects benchmark functions into a single runner function, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("interp", 128).id, "interp/128");
        assert_eq!(BenchmarkId::from_parameter("fac").id, "fac");
    }

    #[test]
    fn groups_measure_and_filter() {
        let mut c = Criterion {
            filter: Some("match-me".into()),
        };
        let mut group = c.benchmark_group("g");
        group
            .sample_size(2)
            .measurement_time(Duration::from_millis(2));
        let mut ran = false;
        group.bench_function("match-me", |b| {
            ran = true;
            b.iter(|| black_box(1 + 1))
        });
        let mut skipped = false;
        group.bench_function("other", |_| skipped = true);
        group.finish();
        assert!(ran && !skipped);
    }
}
