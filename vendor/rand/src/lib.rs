//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! This workspace builds in environments with no access to a crates.io
//! registry, so the handful of `rand 0.8` APIs the repo uses are
//! re-implemented here behind the same module paths: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], the [`Rng`] extension methods
//! (`gen_range`, `gen_bool`, `gen`) and [`seq::SliceRandom::choose`].
//!
//! The generator is xoshiro256++ seeded via splitmix64 — not bit-compatible
//! with upstream `StdRng` (which is ChaCha12), but every consumer in this
//! repo only relies on *determinism per seed*, never on a specific stream.

/// A source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators. Only `seed_from_u64` is used in this workspace.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types producible by [`Rng::gen`] (upstream: `Standard: Distribution<T>`).
pub trait Fill {
    fn fill_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_fill_int {
    ($($t:ty),*) => {$(
        impl Fill for $t {
            fn fill_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_fill_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Fill for bool {
    fn fill_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Fill for f64 {
    fn fill_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

fn unit_f64(word: u64) -> f64 {
    // 53 high bits → uniform in [0, 1).
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Integer types usable as [`Rng::gen_range`] endpoints.
pub trait SampleUniform: Copy {
    fn from_offset(low: Self, offset: u64) -> Self;
    fn span(low: Self, high: Self) -> u64;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn from_offset(low: Self, offset: u64) -> Self {
                low.wrapping_add(offset as $t)
            }
            fn span(low: Self, high: Self) -> u64 {
                high.wrapping_sub(low) as u64
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let span = T::span(self.start, self.end);
        assert!(span > 0, "cannot sample an empty range");
        T::from_offset(self.start, rng.next_u64() % span)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        let span = T::span(start, end);
        if span == u64::MAX {
            return T::from_offset(start, rng.next_u64());
        }
        T::from_offset(start, rng.next_u64() % (span + 1))
    }
}

/// The user-facing extension trait, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p));
        unit_f64(self.next_u64()) < p
    }

    fn gen<T: Fill>(&mut self) -> T
    where
        Self: Sized,
    {
        T::fill_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stands in for upstream's
    /// ChaCha12-based `StdRng`; consumers only require per-seed determinism).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // splitmix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice helpers; only `choose` is used in this workspace.
    pub trait SliceRandom {
        type Item;
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: i64 = rng.gen_range(-9..10);
            assert!((-9..10).contains(&x));
            let y: u16 = rng.gen_range(0u16..=1000);
            assert!(y <= 1000);
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(3);
        let items = [1, 2, 3];
        let empty: [i32; 0] = [];
        assert_eq!(empty.choose(&mut rng), None);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*items.choose(&mut rng).unwrap() as usize - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
