//! Contracts written in the object language: register `L_λ` predicates,
//! annotate program points with `{contract/name}:`, and get a violation
//! report — the program's answer untouched (Theorem 7.7).
//!
//! ```text
//! cargo run --example contracts
//! ```

use monitoring_semantics::monitor::machine::eval_monitored;
use monitoring_semantics::monitor::Monitor;
use monitoring_semantics::monitors::contract::ContractMonitor;
use monitoring_semantics::syntax::parse_expr;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The contracts, stated in L_λ itself.
    let monitor = ContractMonitor::new()
        .contract(
            "sorted",
            "letrec go = lambda l. \
            if null? l then true else if null? (tl l) then true \
            else if (hd l) <= (hd (tl l)) then go (tl l) else false in go",
        )?
        .contract("nonempty", "lambda l. not (null? l)")?
        .contract("positive", "lambda v. v > 0")?;

    // A merge sort whose intermediate runs promise to be sorted, and a
    // deliberately questionable subtraction.
    let program = parse_expr(
        "letrec merge = lambda a. lambda b. \
            if null? a then b else if null? b then a \
            else if (hd a) <= (hd b) \
                 then (hd a) : (merge (tl a) b) \
                 else (hd b) : (merge a (tl b)) in \
         letrec evens = lambda l. if null? l then [] else if null? (tl l) then l \
            else (hd l) : (evens (tl (tl l))) in \
         letrec odds = lambda l. if null? l then [] else if null? (tl l) then [] \
            else (hd (tl l)) : (odds (tl (tl l))) in \
         letrec sort = lambda l. \
            {contract/sorted}:(if null? l then [] else if null? (tl l) then l \
            else merge (sort (evens l)) (sort (odds l))) in \
         length ({contract/nonempty}:(sort [5, 2, 9, 1])) \
           + {contract/positive}:(1 - 3)",
    )?;

    let (answer, report) = eval_monitored(&program, &monitor)?;
    println!("answer = {answer}");
    println!("contract report:");
    for line in monitor.render_state(&report).lines() {
        println!("  {line}");
    }
    // `sorted` and `nonempty` held; `positive` was violated by -2 —
    // reported, never raised.
    assert!(!report.all_held());
    Ok(())
}
