//! Level 3 of the §9.1 trajectory: the temporal spec disappears into the
//! program. [`instrument_spec`] compiles a spec's minimized DFA directly
//! into the source text — the residual is a plain `L_λ` program that
//! threads the automaton state as an integer and needs **no monitor at
//! run time**. The standard interpreter runs it; [`spec_verdict`] decodes
//! the final state.
//!
//! ```text
//! cargo run --example self_monitoring
//! ```

use monitoring_semantics::core::machine::eval;
use monitoring_semantics::core::Value;
use monitoring_semantics::pe::{instrument_spec, spec_verdict};
use monitoring_semantics::syntax::parse_expr;
use monitoring_semantics::tspec::SpecMonitor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A countdown whose every `tick` result must stay non-negative.
    let program = parse_expr(
        "letrec count = lambda x. {tick}:(if x = 0 then 0 else count (x - 1)) in count 5",
    )?;
    let spec = SpecMonitor::new("non-negative", "always(post(tick) => value >= 0)")?;

    // The residual program: spec inlined, monitor gone. It computes
    // `answer : final-DFA-state`.
    let residual = instrument_spec(&program, &spec);
    println!("residual program (spec compiled into the source):\n");
    println!("{residual}\n");

    // Run it on the *standard* interpreter — no monitor object exists.
    let (answer, state) = split_pair(eval(&residual)?);
    println!("answer = {answer}, final DFA state = {state}");
    spec_verdict(spec.automaton(), state).expect("the countdown satisfies the spec");
    println!("verdict: accepted\n");

    // A buggy variant drives the DFA into a dead state; dead states are
    // absorbing, so the verdict survives to the end of the run.
    let buggy = parse_expr(
        "letrec count = lambda x. {tick}:(if x = 0 then 0 - 1 else count (x - 1)) in count 5",
    )?;
    let residual = instrument_spec(&buggy, &spec);
    let (answer, state) = split_pair(eval(&residual)?);
    println!("buggy answer = {answer} (unchanged, Theorem 7.7)");
    match spec_verdict(spec.automaton(), state) {
        Err(reason) => println!("verdict: {reason}"),
        Ok(()) => panic!("the buggy countdown must violate the spec"),
    }

    Ok(())
}

fn split_pair(v: Value) -> (Value, u32) {
    match v {
        Value::Pair(answer, state) => {
            let Value::Int(s) = *state else {
                panic!("DFA state must be an integer, got {state}");
            };
            ((*answer).clone(), u32::try_from(s).expect("state fits u32"))
        }
        other => panic!("self-monitoring programs return a pair, got {other}"),
    }
}
