//! Quickstart: parse an annotated `L_λ` program, run it under the
//! standard semantics, then under two of the paper's monitors — and
//! observe that the answer never changes (Theorem 7.7).
//!
//! ```text
//! cargo run --example quickstart
//! ```

use monitoring_semantics::core::machine::eval;
use monitoring_semantics::monitor::machine::eval_monitored;
use monitoring_semantics::monitor::Monitor;
use monitoring_semantics::monitors::{AbProfiler, Profiler};
use monitoring_semantics::syntax::parse_expr;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The §5 example: branches of the conditional labelled {A} and {B}.
    let fac5 = parse_expr(
        "letrec fac = lambda x. if (x = 0) then {A}:1 else {B}:(x * (fac (x - 1))) \
         in fac 5",
    )?;

    // 1. Standard semantics: annotations are invisible.
    let answer = eval(&fac5)?;
    println!("standard answer:        {answer}");

    // 2. Monitoring semantics with the §5 profiler: same answer, plus the
    //    monitor state σ = ⟨1, 5⟩.
    let (monitored_answer, counts) = eval_monitored(&fac5, &AbProfiler)?;
    assert_eq!(answer, monitored_answer); // soundness, checked live
    println!("monitored answer:       {monitored_answer}");
    println!(
        "A/B profile:            σ = {}",
        AbProfiler.render_state(&counts)
    );

    // 3. The §8 profiler: function bodies labelled with their names.
    let fac_mul = parse_expr(
        "letrec mul = lambda x. lambda y. {mul}:(x*y) in \
         letrec fac = lambda x. {fac}:if (x=0) then 1 else mul x (fac (x-1)) \
         in fac 3",
    )?;
    let profiler = Profiler::new();
    let (answer, profile) = eval_monitored(&fac_mul, &profiler)?;
    println!("fac 3 via mul:          {answer}");
    println!(
        "call counts:            {}",
        profiler.render_state(&profile)
    );

    Ok(())
}
