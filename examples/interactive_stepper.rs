//! A single-stepping front end on the resumable [`Execution`] API — the
//! interactive-monitor substrate of §8/[Kis91] as a pull-based event
//! stream. Here the "user" is a deterministic driver that inspects the
//! monitor state between events; swap the loop body for a read-eval-print
//! prompt and you have a live stepper.
//!
//! ```text
//! cargo run --example interactive_stepper
//! ```

use monitoring_semantics::core::machine::EvalOptions;
use monitoring_semantics::core::Env;
use monitoring_semantics::monitor::machine::{Event, Execution};
use monitoring_semantics::monitor::Monitor;
use monitoring_semantics::monitors::profiler::Profiler;
use monitoring_semantics::syntax::parse_expr;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program =
        parse_expr("letrec fac = lambda x. {fac}:if x = 0 then 1 else x * (fac (x - 1)) in fac 4")?;

    let profiler = Profiler::new();
    let mut exec = Execution::new(
        &program,
        &Env::empty(),
        &profiler,
        Monitor::initial_state(&profiler),
        &EvalOptions::default(),
    );

    let mut depth = 0usize;
    while let Some(event) = exec.next_event()? {
        match event {
            Event::Pre { ann, env, .. } => {
                println!(
                    "{:indent$}⇒ enter {{{}}} with x = {}",
                    "",
                    ann.name(),
                    monitoring_semantics::monitor::Scope::pure(&env)
                        .render(&monitoring_semantics::syntax::Ident::new("x")),
                    indent = depth * 2
                );
                depth += 1;
                // Between events the driver can inspect σ at will:
                if let Some(sigma) = exec.monitor_state() {
                    println!(
                        "{:indent$}  (σ so far: {})",
                        "",
                        profiler.render_state(sigma),
                        indent = depth * 2
                    );
                }
            }
            Event::Post { ann, value, .. } => {
                depth -= 1;
                println!(
                    "{:indent$}⇐ leave {{{}}} = {value}",
                    "",
                    ann.name(),
                    indent = depth * 2
                );
            }
            Event::Done { answer } => println!("\nanswer = {answer}"),
        }
    }

    Ok(())
}
