//! Temporal specifications as monitors: a safety property and a
//! bounded-response property, each compiled to a deterministic automaton
//! and run over a program's event stream.
//!
//! ```text
//! cargo run --example temporal_spec
//! ```

use monitoring_semantics::core::EvalError;
use monitoring_semantics::monitor::machine::eval_monitored;
use monitoring_semantics::monitor::Monitor;
use monitoring_semantics::syntax::parse_expr;
use monitoring_semantics::tspec::SpecMonitor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // -----------------------------------------------------------------
    // A safety spec: every result at a `fac` point is positive.
    // -----------------------------------------------------------------
    let fac = parse_expr(
        "letrec fac = lambda x. {fac}:(if x = 0 then 1 else x * (fac (x - 1))) in fac 5",
    )?;
    let positive = SpecMonitor::new("fac-positive", "always(post(fac) => value >= 1)")?;
    let aut = positive.automaton();
    println!(
        "spec `{}` compiled to {} states over {} abstract letters",
        positive.name(),
        aut.num_states(),
        aut.alphabet().width()
    );

    let (answer, state) = eval_monitored(&fac, &positive)?;
    println!("fac 5 = {answer}   [{}]", positive.render_state(&state));
    let end = positive
        .finish(&state)
        .expect("the completed trace satisfies the spec");
    println!("trace accepted after {} events\n", end.events);

    // -----------------------------------------------------------------
    // The same spec violated: observing records, enforcing aborts.
    // -----------------------------------------------------------------
    let buggy = parse_expr("letrec f = lambda x. {fac}:(x - 10) in f 3")?;
    let (answer, state) = eval_monitored(&buggy, &positive)?;
    println!("observing run still answers {answer} (Theorem 7.7)");
    println!("  {}", positive.render_state(&state));

    let enforcing =
        SpecMonitor::new("fac-positive", "always(post(fac) => value >= 1)")?.enforcing();
    match eval_monitored(&buggy, &enforcing) {
        Err(EvalError::MonitorAbort { monitor, reason }) => {
            println!("enforcing run aborted by `{monitor}`:");
            println!("  {reason}\n");
        }
        other => panic!("expected an abort, got {other:?}"),
    }

    // -----------------------------------------------------------------
    // Bounded response: every `req` is answered by an `ack` within
    // three events. The `done` marker counts against the window, so a
    // trailing unanswered request is a violation too.
    // -----------------------------------------------------------------
    let responsive = parse_expr("{req}:1; {ack}:2; {req}:3; {ack}:4")?;
    let respond = SpecMonitor::new("req-ack", "respond(pre(req), post(ack), 3)")?;
    let (_, state) = eval_monitored(&responsive, &respond)?;
    match respond.finish(&state) {
        Ok(end) => println!("responsive program: accepted after {} events", end.events),
        Err(e) => panic!("unexpected violation: {e}"),
    }

    // Here the second request goes unanswered while other work proceeds,
    // so the three-event window closes without an `ack`.
    let unresponsive = parse_expr("{req}:1; {ack}:2; {req}:3; {work}:4; {work}:5")?;
    let (_, state) = eval_monitored(&unresponsive, &respond)?;
    match respond.finish(&state) {
        Err(reason) => println!("unanswered request: {reason}"),
        Ok(_) => panic!("the dangling request must violate the spec"),
    }

    Ok(())
}
