//! Fork-join parallel evaluation: run the shards of a `par(…)` form on a
//! scoped thread pool, with each worker threading its own *split* of the
//! profiler state, then merge the shard states back in deterministic
//! left-to-right order (DESIGN.md §6½).
//!
//! The punchline is that the parallel run is indistinguishable from the
//! sequential monitored run — same answer, same final monitor state,
//! bit for bit — because the profiler's split/merge obey the monoid
//! laws (`merge` associative, `split` an identity).
//!
//! ```text
//! cargo run --release --example parallel_profile
//! ```

use monitoring_semantics::core::machine::EvalOptions;
use monitoring_semantics::core::Env;
use monitoring_semantics::monitor::machine::eval_monitored;
use monitoring_semantics::monitor::{eval_parallel, eval_parallel_with, Monitor, ParOptions};
use monitoring_semantics::monitors::Profiler;
use monitoring_semantics::syntax::parse_expr;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Four independent profiled computations under one `par`: each shard
    // counts its own {fib} activations while it runs.
    let program = parse_expr(
        "letrec fib = lambda n. {fib}:(if n < 2 then n else (fib (n - 1)) + (fib (n - 2))) \
         in par(fib 18, fib 17, fib 16, fib 15)",
    )?;
    let profiler = Profiler::new();

    // Sequential monitored machine — the §5 reference semantics.
    let (seq_answer, seq_counts) = eval_monitored(&program, &profiler)?;
    println!("sequential answer:  {seq_answer}");
    println!("sequential profile: {}", profiler.render_state(&seq_counts));

    // Fork-join machine, default thread count (host parallelism).
    let (par_answer, par_counts) = eval_parallel(&program, &profiler)?;
    assert_eq!(seq_answer, par_answer);
    assert_eq!(seq_counts, par_counts); // states agree bit-for-bit
    println!("parallel profile:   {}", profiler.render_state(&par_counts));

    // An explicit thread count — useful for speedup sweeps; the states
    // still agree because the merge order is element order, not
    // completion order.
    for threads in [1, 2, 4] {
        let opts = ParOptions {
            threads,
            eval: EvalOptions::default(),
        };
        let (answer, counts) = eval_parallel_with(
            &program,
            &Env::empty(),
            &profiler,
            profiler.initial_state(),
            &opts,
        )?;
        assert_eq!(answer, seq_answer);
        assert_eq!(counts, seq_counts);
        println!("{threads} thread(s):        identical answer and state");
    }

    println!("fork-join evaluation is observationally sequential ∎");
    Ok(())
}
