//! A scripted dbx-style debugger session (§8/§9.2): breakpoints are
//! `{label}:` annotations; commands arrive on an input stream, responses
//! land on the transcript — the whole session is a pure function of the
//! program and the script, hence reproducible.
//!
//! ```text
//! cargo run --example debugger_session
//! ```

use monitoring_semantics::monitor::machine::eval_monitored;
use monitoring_semantics::monitors::debugger::{Command, Debugger};
use monitoring_semantics::syntax::{parse_expr, Ident};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = parse_expr(
        "letrec fib = lambda n. {fib}:if n < 2 then n else (fib (n-1)) + (fib (n-2)) \
         in fib 4",
    )?;

    // The input stream: stop twice, inspect, watch one return, then
    // switch breakpoints off.
    let script = vec![
        Command::Where,
        Command::Print(Ident::new("n")),
        Command::Finish,
        Command::Continue,
        Command::Print(Ident::new("n")),
        Command::Continue,
        Command::Disable,
    ];

    let debugger = Debugger::with_script(script);
    let (answer, session) = eval_monitored(&program, &debugger)?;

    println!("session transcript:");
    for line in &session.transcript {
        println!("  {line}");
    }
    println!("\nanswer = {answer}");
    Ok(())
}
