//! The §8 fancy tracer, end to end: annotate functions the way the
//! paper's "programming environment" would (`trace_functions`), run the
//! monitored evaluator, print the indented transcript.
//!
//! ```text
//! cargo run --example tracer_session
//! ```

use monitoring_semantics::monitor::machine::eval_monitored;
use monitoring_semantics::monitor::Monitor;
use monitoring_semantics::monitors::Tracer;
use monitoring_semantics::syntax::points::trace_functions;
use monitoring_semantics::syntax::{parse_expr, Ident, Namespace};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The user writes a *plain* program…
    let plain = parse_expr(
        "letrec mul = lambda x. lambda y. x*y in \
         letrec fac = lambda x. if (x=0) then 1 else mul x (fac (x-1)) \
         in fac 3",
    )?;

    // …and asks the environment to trace `fac` and `mul`. The system adds
    // the {f(x…)}: headers (§4.1: annotations "would be supplied by a
    // suitably engineered programming environment").
    let traced = trace_functions(
        &plain,
        &[Ident::new("fac"), Ident::new("mul")],
        &Namespace::anonymous(),
    )?;
    println!("annotated program:\n  {traced}\n");

    let tracer = Tracer::new();
    let (answer, state) = eval_monitored(&traced, &tracer)?;
    println!("trace:\n{}", tracer.render_state(&state));
    println!("\nanswer = {answer}");

    Ok(())
}
