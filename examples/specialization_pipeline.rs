//! The Figure 10 pipeline, level by level (§9.1):
//!
//! 0. the parameterized monitored interpreter;
//! 1. × monitor spec  → the concrete monitored interpreter;
//! 2. × program       → the **instrumented program** (shown as source!);
//! 3. × partial input → the specialized program.
//!
//! ```text
//! cargo run --example specialization_pipeline
//! ```

use monitoring_semantics::core::machine::eval;
use monitoring_semantics::core::Value;
use monitoring_semantics::pe::bta;
use monitoring_semantics::pe::instrument::{instrument, step_counter};
use monitoring_semantics::pe::simplify::simplify;
use monitoring_semantics::pe::specialize::{specialize_with, SpecializeOptions};
use monitoring_semantics::syntax::{parse_expr, Ident};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A pow-like annotated program with a dynamic base and static exponent.
    let program = parse_expr(
        "letrec pow = lambda b. lambda e. \
            {step}:if e = 0 then 1 else b * (pow b (e - 1)) \
         in pow base 5",
    )?;
    println!("source program (dynamic input: base):\n  {program}\n");

    // Level 2: specialize the monitoring semantics w.r.t. the program —
    // a plain L_λ program with the monitoring code embedded.
    let monitor = step_counter();
    let instrumented = instrument(&program, &monitor);
    println!(
        "level 2 — instrumented program ({} AST nodes); it is ordinary source:",
        instrumented.size()
    );
    let shown = instrumented.to_string();
    println!("  {}…\n", &shown[..shown.len().min(200)]);

    // Binding-time analysis predicts what level 3 can remove.
    let division = bta::analyze(&instrumented, &[]);
    let (stat, dynamic) = division.counts();
    println!("BTA: {stat} static program points, {dynamic} dynamic\n");

    // Level 3: specialize w.r.t. the static exponent. The recursion, the
    // interpreter dispatch *and the monitor's static work* all vanish.
    let (residual, stats) = specialize_with(&instrumented, &[], &SpecializeOptions::default());
    println!(
        "level 3 — specialized ({} nodes after {} unfolds, {} folds):",
        residual.size(),
        stats.unfolds,
        stats.folds
    );
    let residual = simplify(&residual);
    println!("  …after residual cleanup ({} nodes):", residual.size());
    println!("  {residual}\n");

    // The residual still computes answer *and* monitor state for any base:
    for base in [2i64, 3, 10] {
        let run = monitoring_semantics::syntax::Expr::let_(
            Ident::new("base"),
            monitoring_semantics::syntax::Expr::int(base),
            residual.clone(),
        );
        let v = eval(&run)?;
        let Value::Pair(answer, events) = &v else {
            panic!("instrumented programs return (answer : monitor-state)")
        };
        println!("base = {base:>2}: answer = {answer}, monitor counted {events} events");
    }

    Ok(())
}
