//! Stream SLOs: sliding-window aggregates, derived streams, triggers,
//! and timed deadlines over a program's event stream — with the memory
//! bound of the whole pipeline known at compile time.
//!
//! ```text
//! cargo run --example stream_slo
//! ```

use monitoring_semantics::core::EvalError;
use monitoring_semantics::monitor::machine::eval_monitored;
use monitoring_semantics::monitor::tape::{TapeEvent, TapePhase};
use monitoring_semantics::monitor::{record_monitored, MemorySink, Monitor, SharedSink};
use monitoring_semantics::stream::StreamMonitor;
use monitoring_semantics::syntax::parse_expr;

/// An SLO over a request-handling loop: windowed latency statistics,
/// a derived headroom stream, and triggers on the service levels.
const SLO: &str = "stream mean_lat = avg(post(lat)) over window(10)\n\
                   stream worst = max(post(lat)) over window(10)\n\
                   stream requests = count(post(req))\n\
                   stream headroom = 100 - worst\n\
                   trigger slo_burn = mean_lat > 50\n\
                   trigger spike = worst > 90";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // -----------------------------------------------------------------
    // Compile the spec. Every stream's evaluator state is bounded at
    // compile time — rings, monotonic deques, and time panes are all
    // allocated up front; the steady state never touches the heap.
    // -----------------------------------------------------------------
    let slo = StreamMonitor::new("latency-slo", SLO)?;
    println!("static memory bound:");
    println!("{}", slo.spec().memory());

    // A service loop: each request `{req}:n` is followed by a latency
    // sample `{lat}:...`; request 7 is pathologically slow.
    let service = parse_expr(
        "letrec svc = lambda n. \
           if n = 0 then 0 \
           else ({req}:n ; {lat}:(if n = 7 then 95 else 20 + n) ; svc (n - 1)) \
         in svc 12",
    )?;

    // -----------------------------------------------------------------
    // Observing run: the answer is unchanged (Theorem 7.7); trigger
    // firings are recorded in the monitor state, not enforced.
    // -----------------------------------------------------------------
    let (answer, state) = eval_monitored(&service, &slo)?;
    println!("service answered {answer}");
    println!("σ = {}", slo.render_state(&state));
    for f in &state.firings {
        println!("  {}", f.reason);
    }

    // -----------------------------------------------------------------
    // Enforcing run: the same spec vetoes the computation at the first
    // trigger firing.
    // -----------------------------------------------------------------
    let enforcing = StreamMonitor::new("latency-slo", SLO)?.enforcing();
    match eval_monitored(&service, &enforcing) {
        Err(EvalError::MonitorAbort { monitor, reason }) => {
            println!("\nenforcing run aborted by `{monitor}`:");
            println!("  {reason}");
        }
        other => panic!("expected an abort, got {other:?}"),
    }

    // -----------------------------------------------------------------
    // Offline: record the run to an event tape, then check the tape.
    // The offline verdict agrees with the live run on every firing.
    // -----------------------------------------------------------------
    let mem = MemorySink::new();
    let sink = SharedSink::new(mem.clone());
    record_monitored(&service, slo.clone(), &sink)?;
    let tape = mem.take();
    let check = slo.check_tape(&tape);
    println!("\noffline check over {} tape events:", tape.len());
    println!("σ = {}", slo.render_state(&check.state));
    assert_eq!(check.fired_total, state.fired_total, "offline ≡ live");

    // -----------------------------------------------------------------
    // Timed tapes: a deadline spec over heartbeat events. The second
    // gap (250 → 1000 ms) exceeds the 500 ms period, so the offline
    // check reports exactly one miss.
    // -----------------------------------------------------------------
    let hb = StreamMonitor::new("heartbeat", "deadline post(hb) every 500 ms")?;
    let beat = |step: u64, time: u64| TapeEvent {
        phase: TapePhase::Post,
        namespace: String::new(),
        name: "hb".to_string(),
        value: None,
        step,
        time: Some(time),
    };
    let timed = vec![beat(0, 0), beat(1, 250), beat(2, 1000), beat(3, 1200)];
    let check = hb.check_tape(&timed);
    println!("\nheartbeat tape: {} deadline miss(es)", check.missed);
    if let Some(reason) = &check.state.first_miss {
        println!("  first: {reason}");
    }
    assert_eq!(check.missed, 1);

    Ok(())
}
