//! Performance diagnosis with composed monitors: profile, build the call
//! graph, and measure memoization opportunity for naive `fib` — three
//! observations from one monitored run each, no interference (§6).
//!
//! ```text
//! cargo run --example diagnosis
//! ```

use monitoring_semantics::monitor::machine::eval_monitored;
use monitoring_semantics::monitor::Monitor;
use monitoring_semantics::monitors::callgraph::CallGraph;
use monitoring_semantics::monitors::memo::MemoScout;
use monitoring_semantics::monitors::profiler::Profiler;
use monitoring_semantics::syntax::points::{profile_functions, trace_functions};
use monitoring_semantics::syntax::{parse_expr, Ident, Namespace};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let plain = parse_expr(
        "letrec fib = lambda n. if n < 2 then n else (fib (n-1)) + (fib (n-2)) in fib 14",
    )?;

    // Ask the environment to arm the tools (§4.1's "virtual" annotations).
    let labelled = profile_functions(&plain, &[Ident::new("fib")], &Namespace::anonymous())?;
    let traced = trace_functions(&plain, &[Ident::new("fib")], &Namespace::anonymous())?;

    let profiler = Profiler::new();
    let (answer, profile) = eval_monitored(&labelled, &profiler)?;
    println!("fib 14 = {answer}");
    println!("calls:      {}", profiler.render_state(&profile));

    let graph = CallGraph::new();
    let (_, edges) = eval_monitored(&traced, &graph)?;
    println!("call graph:");
    for line in graph.render_state(&edges).lines() {
        println!("  {line}");
    }

    let scout = MemoScout::new();
    let (_, counts) = eval_monitored(&traced, &scout)?;
    println!("diagnosis:");
    let mut repeats: Vec<_> = counts.repeated().collect();
    repeats.sort_by_key(|(_, _, n)| std::cmp::Reverse(*n));
    for (f, args, n) in repeats.into_iter().take(5) {
        println!("  {f}({args}) recomputed {n}×");
    }
    println!(
        "  a memo table would avoid {} of {} calls",
        counts.redundant_calls(),
        edges.total_calls()
    );

    Ok(())
}
