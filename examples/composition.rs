//! Monitor composition (§6) and the §9.2 session environment:
//! `evaluate (profile & trace & collect) prog`, across language modules.
//!
//! ```text
//! cargo run --example composition
//! ```

use monitoring_semantics::monitor::session::{LanguageModule, Session};
use monitoring_semantics::monitors::toolbox;
use monitoring_semantics::syntax::parse_expr;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One program, three monitors' annotation syntaxes — disjoint, so
    // they compose without interference:
    //   {fac}/{mul}      bare labels        → profiler
    //   {fac(x)}/{mul(x,y)} function headers → tracer
    //   {collect/v}      namespaced labels  → collecting monitor
    let program = parse_expr(
        "letrec mul = lambda x. lambda y. {mul(x, y)}:({mul}:(x*y)) in \
         letrec fac = lambda x. {fac(x)}:({fac}:if (x=0) then 1 \
            else {collect/v}:(mul x (fac (x-1)))) \
         in fac 4",
    )?;

    let report = Session::new()
        .language(LanguageModule::Strict)
        .tools(toolbox::profile() & toolbox::trace() & toolbox::collect())
        .run_expr(&program)?;

    println!("{report}");

    // The same monitored program under the lazy module: identical answer
    // (Theorem 7.7 is per-module), demand-driven event order.
    let lazy = Session::new()
        .language(LanguageModule::Lazy)
        .tools(toolbox::profile() & toolbox::trace() & toolbox::collect())
        .run_expr(&program)?;
    assert_eq!(report.answer, lazy.answer);
    println!("lazy module agrees: answer = {}", lazy.answer);

    // And an imperative program with a watchpoint on a mutable variable.
    let imperative = parse_expr(
        "let acc = 1 in let n = 5 in \
         (while n > 0 do {watch/w}:(acc := acc * n); n := n - 1 end); acc",
    )?;
    let report = Session::new()
        .language(LanguageModule::Imperative)
        .monitor(toolbox::watch("acc"))
        .run_expr(&imperative)?;
    println!("\nimperative factorial via watchpoint:");
    println!("{report}");

    Ok(())
}
