//! Random well-formed `L_λ` programs (feature `gen`).
//!
//! The soundness theorem (§7) quantifies over *all* programs `s` and all
//! annotation placements `s̄`. The property tests approximate that
//! quantification with this generator:
//!
//! * [`gen_program`] produces a closed, type-correct, terminating program
//!   (a handful of known-terminating recursive templates — factorial,
//!   Fibonacci, list fold — wrapped around a random total expression);
//! * [`sprinkle_annotations`] decorates a random subset of program points
//!   with labels, the way the paper's "programming environment" would.
//!
//! Generated programs never divide by zero nor take `hd`/`tl` of `[]`, so a
//! fuel-bounded evaluator either produces a value or runs out of fuel; both
//! outcomes must agree between the standard and monitored semantics.

use crate::ast::{Annotation, Expr, Ident, Namespace};
use crate::points::{annotate_at, visit, ExprPath};
use rand::prelude::*;
use rand::rngs::StdRng;

/// The types the generator tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ty {
    Int,
    Bool,
    List,
}

/// Tunables for [`gen_program`].
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Maximum expression depth of the random body.
    pub max_depth: u32,
    /// How many recursive template functions to bind (0–4 useful).
    pub templates: u32,
    /// Probability that a list-typed node becomes a `par(…)` tuple.
    /// Defaults to `0.0`: `par` is only evaluated by the strict machines,
    /// so tests that feed generated programs to the lazy/imperative/CPS
    /// engines must stay par-free; parallel-equivalence tests opt in.
    pub par_chance: f64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_depth: 5,
            templates: 2,
            par_chance: 0.0,
        }
    }
}

struct Gen<'a> {
    rng: &'a mut StdRng,
    /// In-scope variables with their types.
    scope: Vec<(Ident, Ty)>,
    /// Bound template functions callable as `f <small int>` returning `Int`.
    int_funs: Vec<Ident>,
    fresh: u32,
    /// See [`GenConfig::par_chance`].
    par_chance: f64,
}

impl Gen<'_> {
    fn fresh_ident(&mut self, prefix: &str) -> Ident {
        self.fresh += 1;
        Ident::new(format!("{prefix}{}", self.fresh))
    }

    fn var_of(&mut self, ty: Ty) -> Option<Expr> {
        let candidates: Vec<&Ident> = self
            .scope
            .iter()
            .filter(|(_, t)| *t == ty)
            .map(|(i, _)| i)
            .collect();
        candidates
            .choose(self.rng)
            .map(|i| Expr::var((*i).as_str()))
    }

    fn gen(&mut self, ty: Ty, depth: u32) -> Expr {
        if depth == 0 {
            return self.leaf(ty);
        }
        match ty {
            Ty::Int => match self.rng.gen_range(0..10) {
                0 | 1 => self.leaf(Ty::Int),
                2 => Expr::binop(
                    "+",
                    self.gen(Ty::Int, depth - 1),
                    self.gen(Ty::Int, depth - 1),
                ),
                3 => Expr::binop(
                    "-",
                    self.gen(Ty::Int, depth - 1),
                    self.gen(Ty::Int, depth - 1),
                ),
                4 => Expr::binop(
                    "*",
                    self.gen(Ty::Int, depth - 1),
                    self.gen(Ty::Int, depth - 1),
                ),
                5 => Expr::if_(
                    self.gen(Ty::Bool, depth - 1),
                    self.gen(Ty::Int, depth - 1),
                    self.gen(Ty::Int, depth - 1),
                ),
                6 => {
                    // (lambda x. body) arg — exercises closures.
                    let x = self.fresh_ident("x");
                    self.scope.push((x.clone(), Ty::Int));
                    let body = self.gen(Ty::Int, depth - 1);
                    self.scope.pop();
                    Expr::app(Expr::lam(x, body), self.gen(Ty::Int, depth - 1))
                }
                7 => {
                    // let x = e in body — exercises Let.
                    let x = self.fresh_ident("v");
                    let value = self.gen(Ty::Int, depth - 1);
                    self.scope.push((x.clone(), Ty::Int));
                    let body = self.gen(Ty::Int, depth - 1);
                    self.scope.pop();
                    Expr::let_(x, value, body)
                }
                8 if !self.int_funs.is_empty() => {
                    let f = self.int_funs.choose(self.rng).expect("nonempty").clone();
                    let arg = self.rng.gen_range(0..6);
                    Expr::app(Expr::var(f.as_str()), Expr::int(arg))
                }
                _ => {
                    // length of a generated list — exercises list prims.
                    Expr::app(Expr::var("length"), self.gen(Ty::List, depth - 1))
                }
            },
            Ty::Bool => match self.rng.gen_range(0..6) {
                0 => self.leaf(Ty::Bool),
                1 => Expr::binop(
                    "=",
                    self.gen(Ty::Int, depth - 1),
                    self.gen(Ty::Int, depth - 1),
                ),
                2 => Expr::binop(
                    "<",
                    self.gen(Ty::Int, depth - 1),
                    self.gen(Ty::Int, depth - 1),
                ),
                3 => Expr::app(Expr::var("not"), self.gen(Ty::Bool, depth - 1)),
                4 => Expr::app(Expr::var("null?"), self.gen(Ty::List, depth - 1)),
                _ => Expr::if_(
                    self.gen(Ty::Bool, depth - 1),
                    self.gen(Ty::Bool, depth - 1),
                    self.gen(Ty::Bool, depth - 1),
                ),
            },
            Ty::List => match self.rng.gen_range(0..4) {
                // A `par(…)` tuple of ints *is* a list of ints; only
                // parallel-equivalence tests opt into generating it.
                _ if self.par_chance > 0.0 && self.rng.gen_bool(self.par_chance) => {
                    let n = self.rng.gen_range(1..4);
                    Expr::par((0..n).map(|_| self.gen(Ty::Int, depth - 1)))
                }
                0 => self.leaf(Ty::List),
                1 => Expr::binop(
                    "cons",
                    self.gen(Ty::Int, depth - 1),
                    self.gen(Ty::List, depth - 1),
                ),
                2 => {
                    // `tl (x : xs)` is always safe.
                    let xs = self.gen(Ty::List, depth - 1);
                    let x = self.gen(Ty::Int, depth - 1);
                    Expr::app(Expr::var("tl"), Expr::binop("cons", x, xs))
                }
                _ => Expr::if_(
                    self.gen(Ty::Bool, depth - 1),
                    self.gen(Ty::List, depth - 1),
                    self.gen(Ty::List, depth - 1),
                ),
            },
        }
    }

    fn leaf(&mut self, ty: Ty) -> Expr {
        if self.rng.gen_bool(0.5) {
            if let Some(v) = self.var_of(ty) {
                return v;
            }
        }
        match ty {
            Ty::Int => Expr::int(self.rng.gen_range(-9..10)),
            Ty::Bool => Expr::bool(self.rng.gen()),
            Ty::List => {
                let n = self.rng.gen_range(0..3);
                Expr::list((0..n).map(|_| Expr::int(self.rng.gen_range(0..10))))
            }
        }
    }
}

/// The known-terminating recursive templates.
fn template(i: u32, name: &Ident) -> Expr {
    let n = Expr::var("n");
    match i % 4 {
        0 => {
            // factorial, clamped to small arguments by the caller
            Expr::lam(
                "n",
                Expr::if_(
                    Expr::binop("<", n.clone(), Expr::int(1)),
                    Expr::int(1),
                    Expr::binop(
                        "*",
                        n.clone(),
                        Expr::app(Expr::var(name.as_str()), Expr::binop("-", n, Expr::int(1))),
                    ),
                ),
            )
        }
        1 => {
            // fibonacci
            Expr::lam(
                "n",
                Expr::if_(
                    Expr::binop("<", n.clone(), Expr::int(2)),
                    n.clone(),
                    Expr::binop(
                        "+",
                        Expr::app(
                            Expr::var(name.as_str()),
                            Expr::binop("-", n.clone(), Expr::int(1)),
                        ),
                        Expr::app(Expr::var(name.as_str()), Expr::binop("-", n, Expr::int(2))),
                    ),
                ),
            )
        }
        2 => {
            // triangular numbers
            Expr::lam(
                "n",
                Expr::if_(
                    Expr::binop("<", n.clone(), Expr::int(1)),
                    Expr::int(0),
                    Expr::binop(
                        "+",
                        n.clone(),
                        Expr::app(Expr::var(name.as_str()), Expr::binop("-", n, Expr::int(1))),
                    ),
                ),
            )
        }
        _ => {
            // 2^n by doubling
            Expr::lam(
                "n",
                Expr::if_(
                    Expr::binop("<", n.clone(), Expr::int(1)),
                    Expr::int(1),
                    Expr::binop(
                        "*",
                        Expr::int(2),
                        Expr::app(Expr::var(name.as_str()), Expr::binop("-", n, Expr::int(1))),
                    ),
                ),
            )
        }
    }
}

/// Generates a closed, terminating program computing an integer.
pub fn gen_program(rng: &mut StdRng, config: &GenConfig) -> Expr {
    let mut g = Gen {
        rng,
        scope: Vec::new(),
        int_funs: Vec::new(),
        fresh: 0,
        par_chance: config.par_chance,
    };
    let mut funs = Vec::new();
    for i in 0..config.templates {
        let name = Ident::new(format!("t{i}"));
        funs.push((name.clone(), template(g.rng.gen(), &name)));
        g.int_funs.push(name);
    }
    let body = g.gen(Ty::Int, config.max_depth);
    funs.into_iter()
        .rev()
        .fold(body, |acc, (name, lam)| Expr::letrec(name, lam, acc))
}

/// Generates a closed, terminating *imperative* program computing an
/// integer: a pure core wrapped in mutable accumulator loops.
pub fn gen_imperative_program(rng: &mut StdRng, config: &GenConfig) -> Expr {
    let pure_core = gen_program(rng, config);
    let iterations = rng.gen_range(1..8);
    let step = rng.gen_range(1..5);
    // let seed = <pure core> in let acc = 0 in let i = 0 in
    // (while i < N do acc := acc + seed + STEP; i := i + 1 end); acc
    Expr::let_(
        "seed",
        pure_core,
        Expr::let_(
            "acc",
            Expr::int(0),
            Expr::let_(
                "i",
                Expr::int(0),
                Expr::Seq(
                    std::sync::Arc::new(Expr::While(
                        std::sync::Arc::new(Expr::binop(
                            "<",
                            Expr::var("i"),
                            Expr::int(iterations),
                        )),
                        std::sync::Arc::new(Expr::Seq(
                            std::sync::Arc::new(Expr::Assign(
                                Ident::new("acc"),
                                std::sync::Arc::new(Expr::binop(
                                    "+",
                                    Expr::var("acc"),
                                    Expr::binop("+", Expr::var("seed"), Expr::int(step)),
                                )),
                            )),
                            std::sync::Arc::new(Expr::Assign(
                                Ident::new("i"),
                                std::sync::Arc::new(Expr::binop("+", Expr::var("i"), Expr::int(1))),
                            )),
                        )),
                    )),
                    std::sync::Arc::new(Expr::var("acc")),
                ),
            ),
        ),
    )
}

/// Annotates each program point independently with probability `density`,
/// using fresh labels `L0, L1, …` in `namespace`.
pub fn sprinkle_annotations(
    rng: &mut StdRng,
    e: &Expr,
    namespace: &Namespace,
    density: f64,
) -> Expr {
    let mut paths: Vec<ExprPath> = Vec::new();
    visit(e, |path, _| paths.push(path.clone()));
    // Annotate bottom-up (longest paths first) so earlier injections don't
    // invalidate later paths.
    paths.sort_by_key(|p| std::cmp::Reverse(p.0.len()));
    let mut out = e.clone();
    let mut label = 0;
    for path in paths {
        if rng.gen_bool(density) {
            let ann = Annotation::label(format!("L{label}")).in_namespace(namespace.clone());
            label += 1;
            out = annotate_at(&out, &path, ann).expect("path stays valid bottom-up");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn generated_programs_are_closed_modulo_primitives() {
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        for _ in 0..50 {
            let e = gen_program(&mut rng, &GenConfig::default());
            for v in e.free_vars() {
                assert!(
                    matches!(
                        v.as_str(),
                        "+" | "-" | "*" | "=" | "<" | "not" | "null?" | "length" | "tl" | "cons"
                    ),
                    "unexpected free variable {v} in {e}"
                );
            }
        }
    }

    #[test]
    fn generated_programs_round_trip_through_the_parser() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..50 {
            let e = gen_program(&mut rng, &GenConfig::default());
            let printed = e.to_string();
            let parsed = crate::parser::parse_expr(&printed)
                .unwrap_or_else(|err| panic!("{printed}: {err}"));
            assert_eq!(parsed, e);
        }
    }

    #[test]
    fn sprinkled_annotations_erase_back_to_the_original() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let e = gen_program(&mut rng, &GenConfig::default());
            let annotated = sprinkle_annotations(&mut rng, &e, &Namespace::anonymous(), 0.3);
            assert_eq!(annotated.erase_annotations(), e);
        }
    }

    #[test]
    fn imperative_programs_parse_and_round_trip() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let e = gen_imperative_program(&mut rng, &GenConfig::default());
            let printed = e.to_string();
            assert_eq!(crate::parser::parse_expr(&printed).unwrap(), e);
        }
    }

    #[test]
    fn density_one_annotates_every_point() {
        let mut rng = StdRng::seed_from_u64(1);
        let e = gen_program(
            &mut rng,
            &GenConfig {
                max_depth: 3,
                templates: 0,
                par_chance: 0.0,
            },
        );
        let annotated = sprinkle_annotations(&mut rng, &e, &Namespace::anonymous(), 1.0);
        assert_eq!(annotated.annotations().len(), e.size());
    }
}
