//! Greedy counterexample shrinking for generated programs.
//!
//! The property-test harness is seed-based ([`crate::gen`] drives a
//! `StdRng`), so a framework's integrated shrinking never sees the
//! structure of the failing *program* — a failing seed reproduces a
//! whole generated term. [`shrink`] recovers minimal counterexamples
//! anyway: given a failing expression and the predicate that makes it
//! interesting (e.g. "the monitored run aborts naming monitor X"), it
//! greedily applies structure-reducing rewrites while the predicate
//! keeps holding, to a fixpoint. The result is **1-minimal** with
//! respect to the rewrite set: no single further step preserves the
//! predicate.
//!
//! The rewrites at each node are, in the order tried:
//!
//! * replace the node by one of its subterms (the workhorse — deletes
//!   conditionals, applications, `let`s, annotations, sequencing);
//! * drop one `letrec` binding or one `par` element;
//! * replace the node by the constant `0`, or shrink a non-zero integer
//!   constant to `0` (severs data dependencies that hoisting cannot).
//!
//! Candidates that would *widen* the free-variable set of the original
//! expression are discarded: shrinking a closed program can only produce
//! closed programs (an unbound variable would turn any predicate about
//! run-time behavior into one about scope errors).

use crate::ast::{Binding, Expr, Ident, Lambda};
use std::collections::BTreeSet;
use std::sync::Arc;

/// The free variables of `e` (identifiers not bound by an enclosing
/// `lambda`, `let`, or `letrec`). Primitive references count as free —
/// callers compare sets, they do not interpret them.
pub fn free_vars(e: &Expr) -> BTreeSet<Ident> {
    fn go(e: &Expr, bound: &mut Vec<Ident>, out: &mut BTreeSet<Ident>) {
        match e {
            Expr::Con(_) => {}
            Expr::Var(x) | Expr::VarAt(x, _) => {
                if !bound.contains(x) {
                    out.insert(x.clone());
                }
            }
            Expr::Lambda(l) => {
                bound.push(l.param.clone());
                go(&l.body, bound, out);
                bound.pop();
            }
            Expr::If(c, t, f) => {
                go(c, bound, out);
                go(t, bound, out);
                go(f, bound, out);
            }
            Expr::App(f, a) => {
                go(f, bound, out);
                go(a, bound, out);
            }
            Expr::Letrec(bs, body) => {
                for b in bs {
                    bound.push(b.name.clone());
                }
                for b in bs {
                    go(&b.value, bound, out);
                }
                go(body, bound, out);
                for _ in bs {
                    bound.pop();
                }
            }
            Expr::Let(x, v, b) => {
                go(v, bound, out);
                bound.push(x.clone());
                go(b, bound, out);
                bound.pop();
            }
            Expr::Ann(_, inner) => go(inner, bound, out),
            Expr::Seq(a, b) => {
                go(a, bound, out);
                go(b, bound, out);
            }
            Expr::Assign(x, v) => {
                if !bound.contains(x) {
                    out.insert(x.clone());
                }
                go(v, bound, out);
            }
            Expr::While(c, b) => {
                go(c, bound, out);
                go(b, bound, out);
            }
            Expr::Par(items) => {
                for i in items {
                    go(i, bound, out);
                }
            }
        }
    }
    let mut out = BTreeSet::new();
    go(e, &mut Vec::new(), &mut out);
    out
}

/// All expressions one rewrite step smaller than `e`, untried against
/// any predicate. Public so tests can assert 1-minimality: a shrunk
/// counterexample has no step that still satisfies the predicate.
pub fn shrink_steps(e: &Expr) -> Vec<Expr> {
    let mut out: Vec<Expr> = Vec::new();

    // 1. Hoist a subterm over the root.
    match e {
        Expr::Con(_) | Expr::Var(_) | Expr::VarAt(..) => {}
        Expr::Lambda(l) => out.push((*l.body).clone()),
        Expr::If(c, t, f) => out.extend([(**t).clone(), (**f).clone(), (**c).clone()]),
        Expr::App(f, a) => out.extend([(**f).clone(), (**a).clone()]),
        Expr::Letrec(bs, body) => {
            out.push((**body).clone());
            for drop in 0..bs.len() {
                let rest: Vec<Binding> = bs
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != drop)
                    .map(|(_, b)| b.clone())
                    .collect();
                if rest.is_empty() {
                    continue; // body hoist above already covers it
                }
                out.push(Expr::Letrec(rest, body.clone()));
            }
        }
        Expr::Let(_, v, b) => out.extend([(**b).clone(), (**v).clone()]),
        Expr::Ann(_, inner) => out.push((**inner).clone()),
        Expr::Seq(a, b) => out.extend([(**b).clone(), (**a).clone()]),
        Expr::Assign(_, v) => out.push((**v).clone()),
        Expr::While(c, b) => out.extend([(**b).clone(), (**c).clone()]),
        Expr::Par(items) => {
            for i in items {
                out.push((**i).clone());
            }
            if items.len() > 1 {
                for drop in 0..items.len() {
                    let rest: Vec<Arc<Expr>> = items
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| *i != drop)
                        .map(|(_, x)| x.clone())
                        .collect();
                    out.push(Expr::Par(rest));
                }
            }
        }
    }

    // 2. Rebuild the root with one child shrunk (recursion).
    match e {
        Expr::Con(_) | Expr::Var(_) | Expr::VarAt(..) => {}
        Expr::Lambda(l) => {
            for b in shrink_steps(&l.body) {
                out.push(Expr::Lambda(Lambda {
                    param: l.param.clone(),
                    body: Arc::new(b),
                }));
            }
        }
        Expr::If(c, t, f) => {
            for c2 in shrink_steps(c) {
                out.push(Expr::If(Arc::new(c2), t.clone(), f.clone()));
            }
            for t2 in shrink_steps(t) {
                out.push(Expr::If(c.clone(), Arc::new(t2), f.clone()));
            }
            for f2 in shrink_steps(f) {
                out.push(Expr::If(c.clone(), t.clone(), Arc::new(f2)));
            }
        }
        Expr::App(f, a) => {
            for f2 in shrink_steps(f) {
                out.push(Expr::App(Arc::new(f2), a.clone()));
            }
            for a2 in shrink_steps(a) {
                out.push(Expr::App(f.clone(), Arc::new(a2)));
            }
        }
        Expr::Letrec(bs, body) => {
            for (i, b) in bs.iter().enumerate() {
                for v2 in shrink_steps(&b.value) {
                    let mut bs2 = bs.clone();
                    bs2[i] = Binding::new(b.name.clone(), v2);
                    out.push(Expr::Letrec(bs2, body.clone()));
                }
            }
            for b2 in shrink_steps(body) {
                out.push(Expr::Letrec(bs.clone(), Arc::new(b2)));
            }
        }
        Expr::Let(x, v, b) => {
            for v2 in shrink_steps(v) {
                out.push(Expr::Let(x.clone(), Arc::new(v2), b.clone()));
            }
            for b2 in shrink_steps(b) {
                out.push(Expr::Let(x.clone(), v.clone(), Arc::new(b2)));
            }
        }
        Expr::Ann(ann, inner) => {
            for i2 in shrink_steps(inner) {
                out.push(Expr::Ann(ann.clone(), Arc::new(i2)));
            }
        }
        Expr::Seq(a, b) => {
            for a2 in shrink_steps(a) {
                out.push(Expr::Seq(Arc::new(a2), b.clone()));
            }
            for b2 in shrink_steps(b) {
                out.push(Expr::Seq(a.clone(), Arc::new(b2)));
            }
        }
        Expr::Assign(x, v) => {
            for v2 in shrink_steps(v) {
                out.push(Expr::Assign(x.clone(), Arc::new(v2)));
            }
        }
        Expr::While(c, b) => {
            for c2 in shrink_steps(c) {
                out.push(Expr::While(Arc::new(c2), b.clone()));
            }
            for b2 in shrink_steps(b) {
                out.push(Expr::While(c.clone(), Arc::new(b2)));
            }
        }
        Expr::Par(items) => {
            for (i, item) in items.iter().enumerate() {
                for i2 in shrink_steps(item) {
                    let mut items2 = items.clone();
                    items2[i] = Arc::new(i2);
                    out.push(Expr::Par(items2));
                }
            }
        }
    }

    // 3. Constant severing, last: it keeps the node count but strictly
    // shrinks (size, Σ|constants|) lexicographically, so the greedy loop
    // still terminates.
    match e {
        Expr::Con(crate::ast::Con::Int(n)) if *n != 0 => out.push(Expr::int(0)),
        Expr::Con(_) | Expr::Var(_) | Expr::VarAt(..) => {}
        _ => out.push(Expr::int(0)),
    }

    out
}

/// Greedily shrinks `e` while `keep` holds, to a fixpoint.
///
/// `keep(e)` must be true of the input (otherwise `e` is returned
/// unchanged); the result also satisfies `keep`, and no single
/// [`shrink_steps`] rewrite of it does — it is 1-minimal for the rewrite
/// set. Candidates introducing free variables absent from the original
/// are never offered to `keep`.
pub fn shrink(e: &Expr, mut keep: impl FnMut(&Expr) -> bool) -> Expr {
    if !keep(e) {
        return e.clone();
    }
    let allowed = free_vars(e);
    let mut cur = e.clone();
    loop {
        let mut advanced = false;
        for cand in shrink_steps(&cur) {
            if free_vars(&cand).is_subset(&allowed) && keep(&cand) {
                cur = cand;
                advanced = true;
                break;
            }
        }
        if !advanced {
            return cur;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_expr;

    #[test]
    fn free_vars_respect_binders() {
        let e = parse_expr("lambda x. x + (let y = 1 in y * z)").unwrap();
        let fv = free_vars(&e);
        assert!(fv.contains(&Ident::new("+")));
        assert!(fv.contains(&Ident::new("z")));
        assert!(!fv.contains(&Ident::new("x")));
        assert!(!fv.contains(&Ident::new("y")));
    }

    #[test]
    fn shrinking_preserves_the_predicate_and_reaches_a_fixpoint() {
        // Predicate: the expression still contains an {A} annotation.
        let e = parse_expr("let u = 5 in (if true then {A}:(u + 2) else 0) * 3").unwrap();
        let has_a = |e: &Expr| e.annotations().iter().any(|a| a.name().as_str() == "A");
        let small = shrink(&e, has_a);
        assert!(has_a(&small));
        // 1-minimal: the annotation around a leaf body (greedy hoisting
        // lands on the function position, the `+` primitive reference).
        assert_eq!(small.size(), 2, "minimal is the annotation + a leaf");
        for step in shrink_steps(&small) {
            assert!(!has_a(&step), "further step {step} keeps the predicate");
        }
    }

    #[test]
    fn shrinking_never_unbinds_variables() {
        let e = parse_expr("let x = 2 in x + x").unwrap();
        // Any candidate the predicate sees is closed under the original's
        // free variables (the primitives).
        let allowed = free_vars(&e);
        let out = shrink(&e, |cand| {
            assert!(free_vars(cand).is_subset(&allowed), "leaked vars in {cand}");
            true
        });
        // `keep` accepts everything, so the fixpoint is the constant 0.
        assert_eq!(out, Expr::int(0));
    }

    #[test]
    fn failing_input_is_returned_unchanged() {
        let e = parse_expr("1 + 1").unwrap();
        assert_eq!(shrink(&e, |_| false), e);
    }
}
