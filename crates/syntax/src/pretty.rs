//! Precedence-aware pretty-printer whose output re-parses to the same tree.
//!
//! The printer and [`crate::parser`] share one precedence table; every
//! construct is printed with the minimal parenthesization that preserves the
//! parse. `Expr`'s [`std::fmt::Display`] delegates here.

use crate::ast::{Con, Expr};

/// Precedence levels, mirroring the parser's grammar (higher binds tighter).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Level {
    Seq = 0,
    Assign = 1,
    Keyword = 2,
    Cmp = 3,
    Cons = 4,
    Add = 5,
    Mul = 6,
    Unary = 7,
    App = 8,
    Operand = 9,
}

const INFIX_OPS: &[&str] = &["+", "-", "*", "/", "=", "<", ">", "<=", ">=", "++"];

/// If `e` is a fully-applied infix primitive `((op a) b)`, returns
/// `(op, a, b)`.
fn as_infix(e: &Expr) -> Option<(&str, &Expr, &Expr)> {
    if let Expr::App(f, b) = e {
        if let Expr::App(g, a) = &**f {
            if let Expr::Var(op) | Expr::VarAt(op, _) = &**g {
                let name = op.as_str();
                if INFIX_OPS.contains(&name) || name == "cons" {
                    return Some((name, a, b));
                }
            }
        }
    }
    None
}

fn op_level(op: &str) -> (Level, Level, Level) {
    // (own level, left operand min level, right operand min level)
    match op {
        "=" | "<" | ">" | "<=" | ">=" => (Level::Cmp, Level::Cons, Level::Cons),
        "cons" => (Level::Cons, Level::Add, Level::Cons),
        "+" | "-" | "++" => (Level::Add, Level::Add, Level::Mul),
        "*" | "/" => (Level::Mul, Level::Mul, Level::Unary),
        other => unreachable!("not an infix op: {other}"),
    }
}

/// The level at which `e` prints without surrounding parentheses.
fn level_of(e: &Expr) -> Level {
    match e {
        Expr::Seq(..) => Level::Seq,
        Expr::Assign(..) => Level::Assign,
        Expr::Letrec(..) | Expr::Let(..) | Expr::Lambda(_) | Expr::If(..) | Expr::While(..) => {
            Level::Keyword
        }
        Expr::Ann(_, inner) => {
            // `{μ}:` may prefix a keyword form (then it extends as far as the
            // keyword form does) or a single application operand.
            if level_of(inner.as_ref()) == Level::Keyword {
                Level::Keyword
            } else {
                Level::Operand
            }
        }
        Expr::App(..) => match as_infix(e) {
            Some((op, _, _)) => op_level(op).0,
            None => Level::App,
        },
        Expr::Con(Con::Int(n)) if *n < 0 => Level::Unary,
        Expr::Con(_) | Expr::Var(_) | Expr::VarAt(..) => Level::Operand,
        // `par(…)` is self-delimiting, like a list literal.
        Expr::Par(_) => Level::Operand,
    }
}

fn escape_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            other => out.push(other),
        }
    }
    out.push('"');
}

fn print_at(e: &Expr, min: Level, out: &mut String) {
    let own = level_of(e);
    if own < min {
        out.push('(');
        print_bare(e, out);
        out.push(')');
    } else {
        print_bare(e, out);
    }
}

fn print_bare(e: &Expr, out: &mut String) {
    match e {
        Expr::Con(Con::Int(n)) => out.push_str(&n.to_string()),
        Expr::Con(Con::Bool(b)) => out.push_str(if *b { "true" } else { "false" }),
        Expr::Con(Con::Str(s)) => escape_str(s, out),
        Expr::Con(Con::Nil) => out.push_str("[]"),
        Expr::Con(Con::Unit) => out.push_str("()"),
        Expr::Var(x) | Expr::VarAt(x, _) => {
            let name = x.as_str();
            if INFIX_OPS.contains(&name) {
                out.push('(');
                out.push_str(name);
                out.push(')');
            } else if name == "cons" {
                // `cons` is a plain identifier; it parses as itself.
                out.push_str(name);
            } else {
                out.push_str(name);
            }
        }
        Expr::Lambda(l) => {
            out.push_str("lambda ");
            out.push_str(l.param.as_str());
            out.push_str(". ");
            print_at(&l.body, Level::Keyword, out);
        }
        Expr::If(c, t, f) => {
            out.push_str("if ");
            print_at(c, Level::Keyword, out);
            out.push_str(" then ");
            print_at(t, Level::Keyword, out);
            out.push_str(" else ");
            print_at(f, Level::Keyword, out);
        }
        Expr::Letrec(bindings, body) => {
            out.push_str("letrec ");
            for (i, b) in bindings.iter().enumerate() {
                if i > 0 {
                    out.push_str(" and ");
                }
                out.push_str(b.name.as_str());
                out.push_str(" = ");
                print_at(&b.value, Level::Keyword, out);
            }
            out.push_str(" in ");
            print_at(body, Level::Seq, out);
        }
        Expr::Let(x, v, body) => {
            out.push_str("let ");
            out.push_str(x.as_str());
            out.push_str(" = ");
            print_at(v, Level::Keyword, out);
            out.push_str(" in ");
            print_at(body, Level::Seq, out);
        }
        Expr::Ann(a, inner) => {
            out.push_str(&a.to_string());
            out.push(':');
            // The parser accepts a keyword form directly after `{μ}:`;
            // anything else must fit in a single application operand.
            if level_of(inner) == Level::Keyword {
                print_bare(inner, out);
            } else {
                print_at(inner, Level::Operand, out);
            }
        }
        Expr::App(..) => {
            if let Some((op, a, b)) = as_infix(e) {
                let (_, la, lb) = op_level(op);
                print_at(a, la, out);
                out.push(' ');
                out.push_str(if op == "cons" { ":" } else { op });
                out.push(' ');
                print_at(b, lb, out);
            } else if let Expr::App(f, x) = e {
                print_at(f, Level::App, out);
                out.push(' ');
                print_at(x, Level::Operand, out);
            }
        }
        Expr::Seq(a, b) => {
            print_at(a, Level::Seq, out);
            out.push_str("; ");
            print_at(b, Level::Assign, out);
        }
        Expr::Assign(x, v) => {
            out.push_str(x.as_str());
            out.push_str(" := ");
            print_at(v, Level::Assign, out);
        }
        Expr::While(c, b) => {
            out.push_str("while ");
            print_at(c, Level::Seq, out);
            out.push_str(" do ");
            print_at(b, Level::Seq, out);
            out.push_str(" end");
        }
        Expr::Par(items) => {
            out.push_str("par(");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                print_at(item, Level::Keyword, out);
            }
            out.push(')');
        }
    }
}

/// Pretty-prints an expression so that it re-parses to the same tree.
///
/// ```
/// use monsem_syntax::{parse_expr, pretty::pretty};
/// let e = parse_expr("1 + 2 * 3")?;
/// assert_eq!(pretty(&e), "1 + 2 * 3");
/// # Ok::<(), monsem_syntax::ParseError>(())
/// ```
pub fn pretty(e: &Expr) -> String {
    let mut out = String::new();
    print_bare(e, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expr;

    fn round_trip(src: &str) {
        let e = parse_expr(src).unwrap_or_else(|err| panic!("{src}: {err}"));
        let printed = pretty(&e);
        let e2 = parse_expr(&printed)
            .unwrap_or_else(|err| panic!("printed `{printed}` of `{src}`: {err}"));
        assert_eq!(e, e2, "round-trip of `{src}` via `{printed}`");
    }

    #[test]
    fn round_trips_paper_programs() {
        round_trip(
            "letrec fac = lambda x. if (x = 0) then {A}:1 else {B}:(x * (fac (x - 1))) in fac 5",
        );
        round_trip(
            "letrec mul = lambda x. lambda y. {mul(x, y)}:(x*y) in \
             letrec fac = lambda x. {fac(x)}:if (x=0) then 1 else mul x (fac (x-1)) in fac 3",
        );
        round_trip(
            "letrec inclist = lambda l. lambda acc. if (l=[]) then acc \
             else inclist (tl l) (((hd l)+1):acc) in \
             letrec l1 = {l1}:(inclist [1,10,100] []) in \
             letrec l2 = {l2}:(inclist l1 []) in \
             letrec l3 = {l3}:(inclist l2 []) in l3",
        );
        round_trip(
            "letrec fac = lambda n. if {test}:(n=0) then 1 else {n}:n * (fac (n-1)) in fac 3",
        );
    }

    #[test]
    fn round_trips_tricky_shapes() {
        round_trip("f (g x) (h y)");
        round_trip("(lambda x. x) 1");
        round_trip("{f}:g x");
        round_trip("1 + 2 * 3 : [4]");
        round_trip("(+) 1");
        round_trip("(:) 1 []");
        round_trip("x := 1; while x < 10 do x := x + 1 end; x");
        round_trip("if a = b then lambda x. x else lambda y. y");
        round_trip(
            "letrec e = lambda n. if n = 0 then true else o (n - 1) \
                    and o = lambda n. if n = 0 then false else e (n - 1) in e 4",
        );
        round_trip("\"a\\nb\" ++ \"c\"");
        round_trip("f (-1)");
        round_trip("{ns/lbl}:(a + b)");
    }

    #[test]
    fn round_trips_par_forms() {
        round_trip("par(1 + 2, f x, if a then 1 else 2)");
        round_trip("par()");
        round_trip("par(par(1, 2), 3)");
        round_trip("f par(1, 2)");
        round_trip("par({A}:1, g par(x))");
        round_trip("hd par(1, 2) + 3");
        // `par` is a keyword, but `par_map` is an ordinary identifier.
        round_trip("par_map f [1, 2, 3]");
    }

    #[test]
    fn negative_literal_argument_is_parenthesized() {
        let e = Expr::app(Expr::var("f"), Expr::int(-1));
        assert_eq!(pretty(&e), "f (-1)");
    }

    #[test]
    fn keyword_under_operator_is_parenthesized() {
        let e = Expr::binop(
            "+",
            Expr::if_(Expr::bool(true), Expr::int(1), Expr::int(2)),
            Expr::int(3),
        );
        let printed = pretty(&e);
        assert_eq!(printed, "(if true then 1 else 2) + 3");
        assert_eq!(parse_expr(&printed).unwrap(), e);
    }

    #[test]
    fn partial_infix_application_round_trips() {
        let e = Expr::app(Expr::var("+"), Expr::int(1));
        let printed = pretty(&e);
        assert_eq!(printed, "(+) 1");
        assert_eq!(parse_expr(&printed).unwrap(), e);
    }
}

// ---------------------------------------------------------------------
// Multi-line layout
// ---------------------------------------------------------------------

/// Pretty-prints with line breaks and indentation once a construct
/// exceeds `width` columns. Output still re-parses to the same tree
/// (only whitespace is added relative to [`pretty`]).
///
/// ```
/// use monsem_syntax::{parse_expr, pretty::pretty_block};
/// let e = parse_expr("letrec f = lambda x. if x = 0 then 1 else x * (f (x - 1)) in f 3")?;
/// let shown = pretty_block(&e, 30);
/// assert!(shown.lines().count() > 1);
/// assert_eq!(parse_expr(&shown)?, e);
/// # Ok::<(), monsem_syntax::ParseError>(())
/// ```
pub fn pretty_block(e: &Expr, width: usize) -> String {
    block(e, Level::Seq, width)
}

fn indent_lines(s: &str, by: usize) -> String {
    let pad = " ".repeat(by);
    s.lines()
        .enumerate()
        .map(|(i, l)| {
            if i == 0 {
                l.to_string()
            } else {
                format!("{pad}{l}")
            }
        })
        .collect::<Vec<_>>()
        .join("\n")
}

fn block(e: &Expr, min: Level, width: usize) -> String {
    let flat = {
        let mut out = String::new();
        print_at(e, min, &mut out);
        out
    };
    if flat.len() <= width || !flat.contains(' ') {
        return flat;
    }
    let own = level_of(e);
    let body = block_bare(e, width);
    if own < min {
        format!("({})", indent_lines(&body, 1))
    } else {
        body
    }
}

fn block_bare(e: &Expr, width: usize) -> String {
    match e {
        Expr::Letrec(bindings, body) => {
            let mut out = String::new();
            for (i, b) in bindings.iter().enumerate() {
                out.push_str(if i == 0 { "letrec " } else { "\nand " });
                let head_len = if i == 0 { 7 } else { 4 };
                out.push_str(b.name.as_str());
                out.push_str(" = ");
                let inner = block(&b.value, Level::Keyword, width.saturating_sub(head_len));
                out.push_str(&indent_lines(&inner, head_len + b.name.as_str().len() + 3));
            }
            out.push_str("\nin ");
            out.push_str(&indent_lines(&block(body, Level::Seq, width), 3));
            out
        }
        Expr::Let(x, v, body) => {
            let mut out = format!("let {x} = ");
            let inner = block(v, Level::Keyword, width.saturating_sub(4));
            out.push_str(&indent_lines(&inner, 4 + x.as_str().len() + 3));
            out.push_str("\nin ");
            out.push_str(&indent_lines(&block(body, Level::Seq, width), 3));
            out
        }
        Expr::If(c, t, f) => {
            let c = indent_lines(&block(c, Level::Keyword, width.saturating_sub(3)), 3);
            let t = indent_lines(&block(t, Level::Assign, width.saturating_sub(5)), 5);
            let f = indent_lines(&block(f, Level::Assign, width.saturating_sub(5)), 5);
            format!("if {c}\nthen {t}\nelse {f}")
        }
        Expr::Lambda(l) => {
            let body = block(&l.body, Level::Assign, width.saturating_sub(2));
            format!("lambda {}.\n  {}", l.param, indent_lines(&body, 2))
        }
        Expr::Ann(a, inner) => {
            let prefix = format!("{a}:");
            let rendered = if level_of(inner) == Level::Keyword {
                block(inner, Level::Keyword, width.saturating_sub(prefix.len()))
            } else {
                block(inner, Level::Operand, width.saturating_sub(prefix.len()))
            };
            format!("{prefix}{}", indent_lines(&rendered, prefix.len()))
        }
        Expr::Seq(a, b) => {
            format!(
                "{};\n{}",
                block(a, Level::Seq, width),
                block(b, Level::Assign, width)
            )
        }
        Expr::While(c, b) => {
            let c = indent_lines(&block(c, Level::Seq, width.saturating_sub(6)), 6);
            let b = indent_lines(&block(b, Level::Seq, width.saturating_sub(2)), 2);
            format!("while {c}\ndo {b}\nend")
        }
        Expr::App(..) => {
            if let Some((op, a, b)) = as_infix(e) {
                let (_, la, lb) = op_level(op);
                let left = block(a, la, width);
                let right = indent_lines(&block(b, lb, width.saturating_sub(2)), 2);
                let symbol = if op == "cons" { ":" } else { op };
                return format!("{left}\n{symbol} {right}");
            }
            // Application spine: function then each argument, indented.
            let mut spine = Vec::new();
            let mut cur = e;
            while let Expr::App(f, a) = cur {
                spine.push(a.as_ref());
                cur = f;
            }
            spine.reverse();
            let mut out = block(cur, Level::App, width);
            for arg in spine {
                out.push_str("\n  ");
                out.push_str(&indent_lines(
                    &block(arg, Level::Operand, width.saturating_sub(2)),
                    2,
                ));
            }
            out
        }
        Expr::Assign(x, v) => {
            let inner = block(v, Level::Assign, width.saturating_sub(2));
            format!("{x} :=\n  {}", indent_lines(&inner, 2))
        }
        Expr::Par(items) => {
            let mut out = String::from("par(");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n    ");
                }
                out.push_str(&indent_lines(
                    &block(item, Level::Keyword, width.saturating_sub(4)),
                    4,
                ));
            }
            out.push(')');
            out
        }
        // Leaves never exceed the width check meaningfully.
        Expr::Con(_) | Expr::Var(_) | Expr::VarAt(..) => pretty(e),
    }
}

#[cfg(test)]
mod block_tests {
    use super::*;
    use crate::parser::parse_expr;

    fn round_trip_block(src: &str, width: usize) {
        let e = parse_expr(src).unwrap();
        let shown = pretty_block(&e, width);
        let reparsed = parse_expr(&shown).unwrap_or_else(|err| panic!("{err}\nlayout:\n{shown}"));
        assert_eq!(reparsed, e, "layout:\n{shown}");
    }

    #[test]
    fn narrow_layouts_reparse() {
        let programs = [
            "letrec fac = lambda x. if (x = 0) then {A}:1 else {B}:(x * (fac (x - 1))) in fac 5",
            "letrec mul = lambda x. lambda y. {mul(x, y)}:(x*y) in \
             letrec fac = lambda x. {fac(x)}:if (x=0) then 1 else mul x (fac (x-1)) in fac 3",
            "let x = 1 in x := 2; while x < 10 do x := x + 1 end; x",
            "letrec e = lambda n. if n = 0 then true else o (n - 1) \
             and o = lambda n. if n = 0 then false else e (n - 1) in e 4",
            "f (g (h 1 2 3)) (i 4 5) [1, 2, 3]",
        ];
        for src in programs {
            for width in [10, 20, 40, 100] {
                round_trip_block(src, width);
            }
        }
    }

    #[test]
    fn wide_enough_input_stays_one_line() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        assert_eq!(pretty_block(&e, 80), "1 + 2 * 3");
    }

    #[test]
    fn long_programs_actually_break() {
        let e =
            parse_expr("letrec fac = lambda x. if x = 0 then 1 else x * (fac (x - 1)) in fac 5")
                .unwrap();
        let shown = pretty_block(&e, 30);
        assert!(shown.lines().count() >= 4, "{shown}");
    }

    #[cfg(feature = "gen")]
    #[test]
    fn generated_programs_round_trip_at_every_width() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        for _ in 0..30 {
            let e = crate::gen::gen_program(&mut rng, &crate::gen::GenConfig::default());
            for width in [12, 30, 72] {
                let shown = pretty_block(&e, width);
                assert_eq!(parse_expr(&shown).unwrap(), e, "layout:\n{shown}");
            }
        }
    }
}
