//! Program points and annotation injection.
//!
//! Section 4.1 notes that "every program point may be uniquely identified by
//! tracing its location from the root of the program's syntax tree", and that
//! in practice annotations "would not be added explicitly by the user, but
//! rather would be supplied by a suitably engineered programming
//! environment" — e.g. *trace calls to the function `f`* virtually adds a
//! `{f(x…)}:` annotation to `f`'s body. This module is that environment:
//!
//! * [`ExprPath`] — a root-to-node path identifying a program point;
//! * [`annotate_at`] — inject one annotation at a path;
//! * [`trace_functions`] — add `{f(x₁,…,xₙ)}:` headers to named functions
//!   (the tracer's workflow in §8);
//! * [`profile_functions`] — add `{f}:` labels to named function bodies
//!   (the profiler's workflow in §8);
//! * [`annotate_where`] — predicate-driven injection (demons, collecting).

use crate::ast::{AnnKind, Annotation, Binding, Expr, Ident, Lambda, Namespace};
use std::fmt;
use std::sync::Arc;

/// One step from a node to a child in the syntax tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PathStep {
    /// The body of a lambda.
    LambdaBody,
    /// Condition of an `if` / `while`.
    Cond,
    /// Then-branch of an `if`.
    Then,
    /// Else-branch of an `if`.
    Else,
    /// Function position of an application.
    Fun,
    /// Argument position of an application.
    Arg,
    /// The `i`-th binding's right-hand side of a `letrec` (or the bound
    /// value of a `let` with `i = 0`).
    BindingValue(usize),
    /// Body of a `letrec` / `let`.
    Body,
    /// Underneath an annotation.
    Annotated,
    /// Left of `;`.
    SeqFirst,
    /// Right of `;`.
    SeqSecond,
    /// Right-hand side of `:=`.
    AssignValue,
    /// Body of a `while`.
    LoopBody,
    /// The `i`-th element of a `par(…)`.
    ParElem(usize),
}

/// A root-to-node path — the paper's "location from the root of the
/// program's syntax tree" (§4.1).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct ExprPath(pub Vec<PathStep>);

impl ExprPath {
    /// The root path.
    pub fn root() -> Self {
        ExprPath::default()
    }

    /// Extends the path with one more step.
    pub fn child(&self, step: PathStep) -> Self {
        let mut steps = self.0.clone();
        steps.push(step);
        ExprPath(steps)
    }
}

impl fmt::Display for ExprPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return f.write_str("<root>");
        }
        for (i, s) in self.0.iter().enumerate() {
            if i > 0 {
                f.write_str(".")?;
            }
            write!(f, "{s:?}")?;
        }
        Ok(())
    }
}

/// Errors from annotation injection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PointError {
    /// The path walked off the tree.
    NoSuchPoint(ExprPath),
    /// A requested function name was not bound by any `letrec`/`let`.
    UnknownFunction(Ident),
}

impl fmt::Display for PointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PointError::NoSuchPoint(p) => write!(f, "no program point at path {p}"),
            PointError::UnknownFunction(name) => {
                write!(f, "no function named `{name}` is bound in the program")
            }
        }
    }
}

impl std::error::Error for PointError {}

fn with_child<F>(e: &Expr, step: PathStep, rest: &[PathStep], f: &F) -> Result<Expr, PointError>
where
    F: Fn(&Expr) -> Expr,
{
    fn rec<F: Fn(&Expr) -> Expr>(e: &Expr, path: &[PathStep], f: &F) -> Result<Expr, PointError> {
        at_path(e, path, f)
    }
    match (e, step) {
        (Expr::Lambda(l), PathStep::LambdaBody) => Ok(Expr::Lambda(Lambda {
            param: l.param.clone(),
            body: Arc::new(rec(&l.body, rest, f)?),
        })),
        (Expr::If(c, t, x), PathStep::Cond) => {
            Ok(Expr::If(Arc::new(rec(c, rest, f)?), t.clone(), x.clone()))
        }
        (Expr::If(c, t, x), PathStep::Then) => {
            Ok(Expr::If(c.clone(), Arc::new(rec(t, rest, f)?), x.clone()))
        }
        (Expr::If(c, t, x), PathStep::Else) => {
            Ok(Expr::If(c.clone(), t.clone(), Arc::new(rec(x, rest, f)?)))
        }
        (Expr::App(g, a), PathStep::Fun) => Ok(Expr::App(Arc::new(rec(g, rest, f)?), a.clone())),
        (Expr::App(g, a), PathStep::Arg) => Ok(Expr::App(g.clone(), Arc::new(rec(a, rest, f)?))),
        (Expr::Letrec(bs, body), PathStep::BindingValue(i)) => {
            let mut bs = bs.clone();
            let b = bs
                .get(i)
                .cloned()
                .ok_or_else(|| PointError::NoSuchPoint(ExprPath(vec![step])))?;
            bs[i] = Binding {
                name: b.name,
                value: Arc::new(rec(&b.value, rest, f)?),
            };
            Ok(Expr::Letrec(bs, body.clone()))
        }
        (Expr::Letrec(bs, body), PathStep::Body) => {
            Ok(Expr::Letrec(bs.clone(), Arc::new(rec(body, rest, f)?)))
        }
        (Expr::Let(x, v, body), PathStep::BindingValue(0)) => Ok(Expr::Let(
            x.clone(),
            Arc::new(rec(v, rest, f)?),
            body.clone(),
        )),
        (Expr::Let(x, v, body), PathStep::Body) => Ok(Expr::Let(
            x.clone(),
            v.clone(),
            Arc::new(rec(body, rest, f)?),
        )),
        (Expr::Ann(a, inner), PathStep::Annotated) => {
            Ok(Expr::Ann(a.clone(), Arc::new(rec(inner, rest, f)?)))
        }
        (Expr::Seq(a, b), PathStep::SeqFirst) => {
            Ok(Expr::Seq(Arc::new(rec(a, rest, f)?), b.clone()))
        }
        (Expr::Seq(a, b), PathStep::SeqSecond) => {
            Ok(Expr::Seq(a.clone(), Arc::new(rec(b, rest, f)?)))
        }
        (Expr::Assign(x, v), PathStep::AssignValue) => {
            Ok(Expr::Assign(x.clone(), Arc::new(rec(v, rest, f)?)))
        }
        (Expr::While(c, b), PathStep::Cond) => {
            Ok(Expr::While(Arc::new(rec(c, rest, f)?), b.clone()))
        }
        (Expr::While(c, b), PathStep::LoopBody) => {
            Ok(Expr::While(c.clone(), Arc::new(rec(b, rest, f)?)))
        }
        (Expr::Par(items), PathStep::ParElem(i)) => {
            let mut items = items.clone();
            let item = items
                .get(i)
                .cloned()
                .ok_or_else(|| PointError::NoSuchPoint(ExprPath(vec![step])))?;
            items[i] = Arc::new(rec(&item, rest, f)?);
            Ok(Expr::Par(items))
        }
        _ => Err(PointError::NoSuchPoint(ExprPath(vec![step]))),
    }
}

fn at_path<F>(e: &Expr, path: &[PathStep], f: &F) -> Result<Expr, PointError>
where
    F: Fn(&Expr) -> Expr,
{
    match path.split_first() {
        None => Ok(f(e)),
        Some((&step, rest)) => with_child(e, step, rest, f),
    }
}

/// Rewrites the node at `path` with `f` (identity elsewhere).
///
/// # Errors
///
/// [`PointError::NoSuchPoint`] if the path does not denote a node of `e`.
pub fn rewrite_at<F>(e: &Expr, path: &ExprPath, f: F) -> Result<Expr, PointError>
where
    F: Fn(&Expr) -> Expr,
{
    at_path(e, &path.0, &f).map_err(|err| match err {
        PointError::NoSuchPoint(_) => PointError::NoSuchPoint(path.clone()),
        other => other,
    })
}

/// Injects `{ann}:` at the program point `path`.
///
/// # Errors
///
/// [`PointError::NoSuchPoint`] if the path does not denote a node of `e`.
pub fn annotate_at(e: &Expr, path: &ExprPath, ann: Annotation) -> Result<Expr, PointError> {
    rewrite_at(e, path, move |node| Expr::ann(ann.clone(), node.clone()))
}

/// Visits every node with its path, outermost first.
pub fn visit<F: FnMut(&ExprPath, &Expr)>(e: &Expr, mut f: F) {
    fn go<F: FnMut(&ExprPath, &Expr)>(e: &Expr, path: &ExprPath, f: &mut F) {
        f(path, e);
        match e {
            Expr::Con(_) | Expr::Var(_) | Expr::VarAt(..) => {}
            Expr::Lambda(l) => go(&l.body, &path.child(PathStep::LambdaBody), f),
            Expr::If(c, t, x) => {
                go(c, &path.child(PathStep::Cond), f);
                go(t, &path.child(PathStep::Then), f);
                go(x, &path.child(PathStep::Else), f);
            }
            Expr::App(g, a) => {
                go(g, &path.child(PathStep::Fun), f);
                go(a, &path.child(PathStep::Arg), f);
            }
            Expr::Letrec(bs, body) => {
                for (i, b) in bs.iter().enumerate() {
                    go(&b.value, &path.child(PathStep::BindingValue(i)), f);
                }
                go(body, &path.child(PathStep::Body), f);
            }
            Expr::Let(_, v, body) => {
                go(v, &path.child(PathStep::BindingValue(0)), f);
                go(body, &path.child(PathStep::Body), f);
            }
            Expr::Ann(_, inner) => go(inner, &path.child(PathStep::Annotated), f),
            Expr::Seq(a, b) => {
                go(a, &path.child(PathStep::SeqFirst), f);
                go(b, &path.child(PathStep::SeqSecond), f);
            }
            Expr::Assign(_, v) => go(v, &path.child(PathStep::AssignValue), f),
            Expr::Par(items) => {
                for (i, item) in items.iter().enumerate() {
                    go(item, &path.child(PathStep::ParElem(i)), f);
                }
            }
            Expr::While(c, b) => {
                go(c, &path.child(PathStep::Cond), f);
                go(b, &path.child(PathStep::LoopBody), f);
            }
        }
    }
    go(e, &ExprPath::root(), &mut f);
}

/// Annotates every node satisfying `pred` (applied to the *unannotated*
/// node) with the annotation produced by `make`, in the given namespace.
pub fn annotate_where<P, M>(e: &Expr, pred: &P, make: &M) -> Expr
where
    P: Fn(&Expr) -> bool,
    M: Fn(&Expr) -> Annotation,
{
    fn map<P: Fn(&Expr) -> bool, M: Fn(&Expr) -> Annotation>(e: &Expr, pred: &P, make: &M) -> Expr {
        let mapped = match e {
            Expr::Con(_) | Expr::Var(_) | Expr::VarAt(..) => e.clone(),
            Expr::Lambda(l) => Expr::Lambda(Lambda {
                param: l.param.clone(),
                body: Arc::new(map(&l.body, pred, make)),
            }),
            Expr::If(c, t, x) => {
                Expr::if_(map(c, pred, make), map(t, pred, make), map(x, pred, make))
            }
            Expr::App(g, a) => Expr::app(map(g, pred, make), map(a, pred, make)),
            Expr::Letrec(bs, body) => Expr::Letrec(
                bs.iter()
                    .map(|b| Binding {
                        name: b.name.clone(),
                        value: Arc::new(map(&b.value, pred, make)),
                    })
                    .collect(),
                Arc::new(map(body, pred, make)),
            ),
            Expr::Let(x, v, b) => Expr::let_(x.clone(), map(v, pred, make), map(b, pred, make)),
            Expr::Ann(a, inner) => Expr::Ann(a.clone(), Arc::new(map(inner, pred, make))),
            Expr::Seq(a, b) => {
                Expr::Seq(Arc::new(map(a, pred, make)), Arc::new(map(b, pred, make)))
            }
            Expr::Assign(x, v) => Expr::Assign(x.clone(), Arc::new(map(v, pred, make))),
            Expr::Par(items) => Expr::Par(
                items
                    .iter()
                    .map(|item| Arc::new(map(item, pred, make)))
                    .collect(),
            ),
            Expr::While(c, b) => {
                Expr::While(Arc::new(map(c, pred, make)), Arc::new(map(b, pred, make)))
            }
        };
        if !matches!(e, Expr::Ann(..)) && pred(e) {
            Expr::ann(make(e), mapped)
        } else {
            mapped
        }
    }
    map(e, pred, make)
}

/// Collects the curried parameter list and innermost body of a lambda
/// (seeing through annotations).
fn uncurry(e: &Expr) -> (Vec<Ident>, &Expr) {
    let mut params = Vec::new();
    let mut cur = e.strip_annotations();
    while let Expr::Lambda(l) = cur {
        params.push(l.param.clone());
        cur = l.body.strip_annotations();
    }
    (params, cur)
}

fn annotate_named_bindings<F>(
    e: &Expr,
    names: &[Ident],
    namespace: &Namespace,
    make: &F,
    found: &mut Vec<Ident>,
) -> Expr
where
    F: Fn(&Ident, &[Ident]) -> AnnKind,
{
    fn map<F: Fn(&Ident, &[Ident]) -> AnnKind>(
        e: &Expr,
        names: &[Ident],
        ns: &Namespace,
        make: &F,
        found: &mut Vec<Ident>,
    ) -> Expr {
        match e {
            Expr::Con(_) | Expr::Var(_) | Expr::VarAt(..) => e.clone(),
            Expr::Lambda(l) => Expr::Lambda(Lambda {
                param: l.param.clone(),
                body: Arc::new(map(&l.body, names, ns, make, found)),
            }),
            Expr::If(c, t, x) => Expr::if_(
                map(c, names, ns, make, found),
                map(t, names, ns, make, found),
                map(x, names, ns, make, found),
            ),
            Expr::App(g, a) => Expr::app(
                map(g, names, ns, make, found),
                map(a, names, ns, make, found),
            ),
            Expr::Letrec(bs, body) => {
                let bs = bs
                    .iter()
                    .map(|b| {
                        let value = map(&b.value, names, ns, make, found);
                        let value = if names.contains(&b.name) && value.is_lambda_like() {
                            found.push(b.name.clone());
                            annotate_lambda_body(&value, &b.name, ns, make)
                        } else {
                            value
                        };
                        Binding {
                            name: b.name.clone(),
                            value: Arc::new(value),
                        }
                    })
                    .collect();
                Expr::Letrec(bs, Arc::new(map(body, names, ns, make, found)))
            }
            Expr::Let(x, v, b) => {
                let value = map(v, names, ns, make, found);
                let value = if names.contains(x) && value.is_lambda_like() {
                    found.push(x.clone());
                    annotate_lambda_body(&value, x, ns, make)
                } else {
                    value
                };
                Expr::Let(
                    x.clone(),
                    Arc::new(value),
                    Arc::new(map(b, names, ns, make, found)),
                )
            }
            Expr::Ann(a, inner) => {
                Expr::Ann(a.clone(), Arc::new(map(inner, names, ns, make, found)))
            }
            Expr::Seq(a, b) => Expr::Seq(
                Arc::new(map(a, names, ns, make, found)),
                Arc::new(map(b, names, ns, make, found)),
            ),
            Expr::Assign(x, v) => Expr::Assign(x.clone(), Arc::new(map(v, names, ns, make, found))),
            Expr::While(c, b) => Expr::While(
                Arc::new(map(c, names, ns, make, found)),
                Arc::new(map(b, names, ns, make, found)),
            ),
            Expr::Par(items) => Expr::Par(
                items
                    .iter()
                    .map(|item| Arc::new(map(item, names, ns, make, found)))
                    .collect(),
            ),
        }
    }

    /// Wraps the *innermost* body of the (possibly curried, possibly
    /// annotated) lambda `value` with `{make(name, params)}:` — exactly where
    /// the paper places profiler/tracer annotations in §8.
    fn annotate_lambda_body<F: Fn(&Ident, &[Ident]) -> AnnKind>(
        value: &Expr,
        name: &Ident,
        ns: &Namespace,
        make: &F,
    ) -> Expr {
        let (params, _) = uncurry(value);
        let ann = Annotation {
            namespace: ns.clone(),
            kind: make(name, &params),
        };
        fn wrap(e: &Expr, depth: usize, ann: &Annotation) -> Expr {
            match e {
                Expr::Ann(a, inner) => Expr::Ann(a.clone(), Arc::new(wrap(inner, depth, ann))),
                Expr::Lambda(l) if depth > 0 => Expr::Lambda(Lambda {
                    param: l.param.clone(),
                    body: Arc::new(wrap(&l.body, depth - 1, ann)),
                }),
                other => Expr::ann(ann.clone(), other.clone()),
            }
        }
        wrap(value, params.len(), &ann)
    }

    map(e, names, namespace, make, found)
}

/// Adds `{f(x₁,…,xₙ)}:` tracer headers to the bodies of the named functions
/// (the §8 tracer workflow). Curried functions are annotated at the
/// innermost body so the header sees all parameters, matching the paper's
/// `{mul(x, y)}:(x*y)`.
///
/// # Errors
///
/// [`PointError::UnknownFunction`] if a requested name is not bound to a
/// lambda anywhere in `e`.
pub fn trace_functions(
    e: &Expr,
    names: &[Ident],
    namespace: &Namespace,
) -> Result<Expr, PointError> {
    let mut found = Vec::new();
    let out = annotate_named_bindings(
        e,
        names,
        namespace,
        &|name, params| AnnKind::FunHeader {
            name: name.clone(),
            params: params.to_vec(),
        },
        &mut found,
    );
    for n in names {
        if !found.contains(n) {
            return Err(PointError::UnknownFunction(n.clone()));
        }
    }
    Ok(out)
}

/// Adds `{f}:` profiler labels to the bodies of the named functions (the §8
/// profiler workflow).
///
/// # Errors
///
/// [`PointError::UnknownFunction`] if a requested name is not bound to a
/// lambda anywhere in `e`.
pub fn profile_functions(
    e: &Expr,
    names: &[Ident],
    namespace: &Namespace,
) -> Result<Expr, PointError> {
    let mut found = Vec::new();
    let out = annotate_named_bindings(
        e,
        names,
        namespace,
        &|name, _| AnnKind::Label(name.clone()),
        &mut found,
    );
    for n in names {
        if !found.contains(n) {
            return Err(PointError::UnknownFunction(n.clone()));
        }
    }
    Ok(out)
}

/// Every `letrec`/`let`-bound function name in the program (lambda-valued
/// bindings only), in binding order.
pub fn bound_function_names(e: &Expr) -> Vec<Ident> {
    let mut names = Vec::new();
    visit(e, |_, node| match node {
        Expr::Letrec(bs, _) => {
            for b in bs {
                if b.value.is_lambda_like() && !names.contains(&b.name) {
                    names.push(b.name.clone());
                }
            }
        }
        Expr::Let(x, v, _) if v.is_lambda_like() && !names.contains(x) => {
            names.push(x.clone());
        }
        _ => {}
    });
    names
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expr;

    const FAC_MUL: &str = "letrec mul = lambda x. lambda y. x*y in \
         letrec fac = lambda x. if (x=0) then 1 else mul x (fac (x-1)) in fac 3";

    #[test]
    fn trace_functions_reproduces_paper_annotations() {
        let plain = parse_expr(FAC_MUL).unwrap();
        let traced = trace_functions(
            &plain,
            &[Ident::new("mul"), Ident::new("fac")],
            &Namespace::anonymous(),
        )
        .unwrap();
        let expected = parse_expr(
            "letrec mul = lambda x. lambda y. {mul(x, y)}:(x*y) in \
             letrec fac = lambda x. {fac(x)}:if (x=0) then 1 else mul x (fac (x-1)) in fac 3",
        )
        .unwrap();
        assert_eq!(traced, expected);
    }

    #[test]
    fn profile_functions_labels_bodies() {
        let plain = parse_expr(FAC_MUL).unwrap();
        let labelled =
            profile_functions(&plain, &[Ident::new("fac")], &Namespace::anonymous()).unwrap();
        let anns = labelled.annotations();
        assert_eq!(anns.len(), 1);
        assert_eq!(anns[0].name().as_str(), "fac");
    }

    #[test]
    fn unknown_function_is_reported() {
        let plain = parse_expr(FAC_MUL).unwrap();
        let err =
            trace_functions(&plain, &[Ident::new("nope")], &Namespace::anonymous()).unwrap_err();
        assert_eq!(err, PointError::UnknownFunction(Ident::new("nope")));
    }

    #[test]
    fn annotate_at_injects_and_bad_paths_error() {
        let e = parse_expr("if true then 1 else 2").unwrap();
        let path = ExprPath(vec![PathStep::Then]);
        let annotated = annotate_at(&e, &path, Annotation::label("A")).unwrap();
        assert_eq!(annotated.annotations().len(), 1);
        let bad = ExprPath(vec![PathStep::LambdaBody]);
        assert!(matches!(
            annotate_at(&e, &bad, Annotation::label("A")),
            Err(PointError::NoSuchPoint(_))
        ));
    }

    #[test]
    fn erase_inverts_injection() {
        let plain = parse_expr(FAC_MUL).unwrap();
        let traced = trace_functions(
            &plain,
            &[Ident::new("mul"), Ident::new("fac")],
            &Namespace::anonymous(),
        )
        .unwrap();
        assert_eq!(traced.erase_annotations(), plain);
    }

    #[test]
    fn visit_enumerates_every_node() {
        let e = parse_expr("f (g 1)").unwrap();
        let mut count = 0;
        visit(&e, |_, _| count += 1);
        assert_eq!(count, e.size());
    }

    #[test]
    fn annotate_where_labels_conditionals() {
        let e = parse_expr("if a then 1 else if b then 2 else 3").unwrap();
        let mut n = 0;
        let labelled = annotate_where(&e, &|node| matches!(node, Expr::If(..)), &|_| {
            Annotation::label("cond")
        });
        visit(&labelled, |_, node| {
            if matches!(node, Expr::Ann(..)) {
                n += 1;
            }
        });
        assert_eq!(n, 2);
    }

    #[test]
    fn bound_function_names_in_order() {
        let e = parse_expr(FAC_MUL).unwrap();
        let bound = bound_function_names(&e);
        let names: Vec<&str> = bound.iter().map(|i| i.as_str()).collect();
        assert_eq!(names, vec!["mul", "fac"]);
    }
}
