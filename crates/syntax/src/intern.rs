//! Thread-local string interning for identifiers and namespaces.
//!
//! Every [`crate::Ident`] (and [`crate::Namespace`]) carries a `u32` symbol
//! assigned by this interner, so equality and hashing are single integer
//! operations instead of string comparisons — the variable-lookup fast path
//! the evaluators rely on (see `monsem-core::env`). The interned text is
//! kept alongside the symbol (`Rc<str>`), so `Display`, pretty-printing and
//! ordering still see the characters without consulting the interner.
//!
//! The interner is **thread-local**, which is sound precisely because the
//! interned handles hold `Rc<str>` and are therefore `!Send`: two symbols
//! can only ever meet in a comparison on the thread that interned both, and
//! per thread the map `text → symbol` is injective.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// An interned symbol: equal symbols ⇔ equal text (within a thread).
pub type Symbol = u32;

#[derive(Default)]
struct Interner {
    by_text: HashMap<Rc<str>, Symbol>,
    texts: Vec<Rc<str>>,
}

thread_local! {
    static INTERNER: RefCell<Interner> = RefCell::new(Interner::default());
}

/// Interns `text`, returning its symbol and the shared text allocation.
pub(crate) fn intern(text: &str) -> (Symbol, Rc<str>) {
    INTERNER.with(|cell| {
        let mut interner = cell.borrow_mut();
        if let Some(&sym) = interner.by_text.get(text) {
            return (sym, interner.texts[sym as usize].clone());
        }
        let shared: Rc<str> = Rc::from(text);
        let sym = Symbol::try_from(interner.texts.len()).expect("interner overflow");
        interner.texts.push(shared.clone());
        interner.by_text.insert(shared.clone(), sym);
        (sym, shared)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_injective_per_thread() {
        let (a1, t1) = intern("fac");
        let (a2, t2) = intern("fac");
        let (b, _) = intern("fib");
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
        assert!(Rc::ptr_eq(&t1, &t2), "repeated interning shares the text");
    }

    #[test]
    fn distinct_threads_get_independent_tables() {
        let (here, _) = intern("only-on-main");
        let there = std::thread::spawn(|| intern("something-else").0)
            .join()
            .unwrap();
        // Fresh thread, fresh table: first symbol handed out again.
        assert_eq!(there, 0);
        let _ = here;
    }
}
