//! Global, lock-sharded string interning for identifiers and namespaces.
//!
//! Every [`crate::Ident`] (and [`crate::Namespace`]) carries a `u32` symbol
//! assigned by this interner, so equality and hashing are single integer
//! operations instead of string comparisons — the variable-lookup fast path
//! the evaluators rely on (see `monsem-core::env`). The interned text is
//! kept alongside the symbol (`Arc<str>`), so `Display`, pretty-printing
//! and ordering still see the characters without consulting the interner.
//!
//! The interner is **global and `Send`/`Sync`**: the same text interns to
//! the same symbol on every thread, which is what lets expressions, idents
//! and monitor states cross a `std::thread::scope` boundary in the
//! fork-join evaluator (`monsem-monitor::parallel`). Contention is kept off
//! the hot path two ways: the table is split into `SHARDS` (16) independent
//! `RwLock`ed shards selected by a hash of the text (so unrelated interns
//! rarely touch the same lock, and repeat interns take only a read lock),
//! and symbols only have to be *resolved* during parsing and diagnostics —
//! evaluation compares the `u32` or follows a lexical address and never
//! locks anything.
//!
//! A symbol encodes its shard in the low `SHARD_BITS` bits and its index
//! within the shard above them, so resolution needs no global coordination
//! either.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, OnceLock, RwLock};

/// An interned symbol: equal symbols ⇔ equal text (process-wide).
pub type Symbol = u32;

/// log₂ of the shard count.
const SHARD_BITS: u32 = 4;

/// Number of independent interner shards.
const SHARDS: usize = 1 << SHARD_BITS;

#[derive(Default)]
struct Shard {
    by_text: HashMap<Arc<str>, Symbol>,
    texts: Vec<Arc<str>>,
}

static INTERNER: OnceLock<[RwLock<Shard>; SHARDS]> = OnceLock::new();

fn shards() -> &'static [RwLock<Shard>; SHARDS] {
    INTERNER.get_or_init(|| std::array::from_fn(|_| RwLock::new(Shard::default())))
}

fn shard_of(text: &str) -> usize {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    text.hash(&mut h);
    (h.finish() as usize) & (SHARDS - 1)
}

/// Interns `text`, returning its symbol and the shared text allocation.
pub(crate) fn intern(text: &str) -> (Symbol, Arc<str>) {
    let shard_id = shard_of(text);
    let shard = &shards()[shard_id];
    // Fast path: already interned — a read lock and a hash lookup.
    {
        let guard = shard.read().expect("interner shard poisoned");
        if let Some(&sym) = guard.by_text.get(text) {
            let idx = (sym >> SHARD_BITS) as usize;
            return (sym, guard.texts[idx].clone());
        }
    }
    let mut guard = shard.write().expect("interner shard poisoned");
    // Double-check: another thread may have interned between the locks.
    if let Some(&sym) = guard.by_text.get(text) {
        let idx = (sym >> SHARD_BITS) as usize;
        return (sym, guard.texts[idx].clone());
    }
    let shared: Arc<str> = Arc::from(text);
    let idx = u32::try_from(guard.texts.len()).expect("interner shard overflow");
    let sym = idx
        .checked_shl(SHARD_BITS)
        .filter(|s| (s >> SHARD_BITS) == idx)
        .expect("interner symbol space exhausted")
        | shard_id as u32;
    guard.texts.push(shared.clone());
    guard.by_text.insert(shared.clone(), sym);
    (sym, shared)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_injective() {
        let (a1, t1) = intern("fac");
        let (a2, t2) = intern("fac");
        let (b, _) = intern("fib");
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
        assert!(Arc::ptr_eq(&t1, &t2), "repeated interning shares the text");
    }

    /// The new contract of the global interner: every thread sees the same
    /// text → symbol mapping, so symbols (and the idents built from them)
    /// may cross thread boundaries and still compare correctly.
    #[test]
    fn distinct_threads_agree_on_symbols() {
        let (here, _) = intern("shared-across-threads");
        let (there, elsewhere) = std::thread::spawn(|| {
            let (sym, text) = intern("shared-across-threads");
            let (other, _) = intern("only-on-the-other-thread");
            (sym, (text, other))
        })
        .join()
        .unwrap();
        assert_eq!(here, there, "same text, same symbol, any thread");
        assert_eq!(&*elsewhere.0, "shared-across-threads");
        assert_ne!(here, elsewhere.1, "distinct texts stay distinct");
    }

    /// Many threads interning overlapping names concurrently must agree.
    #[test]
    fn concurrent_interning_is_consistent() {
        let names: Vec<String> = (0..64).map(|i| format!("ident-{i}")).collect();
        let baseline: Vec<Symbol> = names.iter().map(|n| intern(n).0).collect();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let names = &names;
                let baseline = &baseline;
                scope.spawn(move || {
                    for (n, &expect) in names.iter().zip(baseline) {
                        assert_eq!(intern(n).0, expect);
                    }
                });
            }
        });
    }
}
