//! Lexer for the concrete syntax of `L_λ`.
//!
//! The concrete syntax follows the paper's examples:
//!
//! ```text
//! letrec fac = lambda x. if (x = 0) then {A}:1 else {B}:(x * (fac (x - 1)))
//! in fac 5
//! ```
//!
//! Tokens carry byte offsets so parse errors can point into the source.

use std::fmt;
use std::sync::Arc;

/// The kind of a lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Integer literal.
    Int(i64),
    /// String literal (already unescaped).
    Str(Arc<str>),
    /// Identifier or keyword candidate.
    Ident(Arc<str>),
    /// `lambda`
    Lambda,
    /// `if`
    If,
    /// `then`
    Then,
    /// `else`
    Else,
    /// `letrec`
    Letrec,
    /// `let`
    Let,
    /// `and` (multi-binding letrec separator)
    And,
    /// `in`
    In,
    /// `true`
    True,
    /// `false`
    False,
    /// `while`
    While,
    /// `do`
    Do,
    /// `end`
    End,
    /// `par` (fork-join tuple)
    Par,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `.`
    Dot,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:` (annotation separator after `}`; infix cons elsewhere)
    Colon,
    /// `:=`
    Assign,
    /// `/` inside an annotation namespace or division operator
    Slash,
    /// An operator identifier: `+ - * = < > <= >= ++`
    Op(Arc<str>),
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Int(n) => write!(f, "{n}"),
            TokenKind::Str(s) => write!(f, "{s:?}"),
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::Lambda => f.write_str("lambda"),
            TokenKind::If => f.write_str("if"),
            TokenKind::Then => f.write_str("then"),
            TokenKind::Else => f.write_str("else"),
            TokenKind::Letrec => f.write_str("letrec"),
            TokenKind::Let => f.write_str("let"),
            TokenKind::And => f.write_str("and"),
            TokenKind::In => f.write_str("in"),
            TokenKind::True => f.write_str("true"),
            TokenKind::False => f.write_str("false"),
            TokenKind::While => f.write_str("while"),
            TokenKind::Do => f.write_str("do"),
            TokenKind::End => f.write_str("end"),
            TokenKind::Par => f.write_str("par"),
            TokenKind::LParen => f.write_str("("),
            TokenKind::RParen => f.write_str(")"),
            TokenKind::LBracket => f.write_str("["),
            TokenKind::RBracket => f.write_str("]"),
            TokenKind::LBrace => f.write_str("{"),
            TokenKind::RBrace => f.write_str("}"),
            TokenKind::Dot => f.write_str("."),
            TokenKind::Comma => f.write_str(","),
            TokenKind::Semi => f.write_str(";"),
            TokenKind::Colon => f.write_str(":"),
            TokenKind::Assign => f.write_str(":="),
            TokenKind::Slash => f.write_str("/"),
            TokenKind::Op(s) => write!(f, "{s}"),
            TokenKind::Eof => f.write_str("<eof>"),
        }
    }
}

/// A token with its byte offset in the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// Byte offset of the first character.
    pub offset: usize,
}

/// An error produced while lexing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset where the error occurred.
    pub offset: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for LexError {}

/// Converts a byte offset into a 1-based (line, column) pair, for
/// human-readable diagnostics.
pub fn line_col(src: &str, offset: usize) -> (usize, usize) {
    let clamped = offset.min(src.len());
    let before = &src[..clamped];
    let line = before.bytes().filter(|b| *b == b'\n').count() + 1;
    let col = before
        .rfind('\n')
        .map(|i| clamped - i)
        .unwrap_or(clamped + 1);
    (line, col)
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_' || c == '\'' || c == '?' || c == '!'
}

/// Lexes an entire source string into tokens (ending with [`TokenKind::Eof`]).
///
/// # Errors
///
/// Returns a [`LexError`] on unterminated strings, malformed integers or
/// unexpected characters. Comments run from `--` to end of line.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let mut tokens = Vec::new();
    let bytes = src.as_bytes();
    let mut chars = src.char_indices().peekable();

    while let Some(&(offset, c)) = chars.peek() {
        match c {
            _ if c.is_whitespace() => {
                chars.next();
            }
            '-' if bytes.get(offset + 1) == Some(&b'-') => {
                // Comment to end of line.
                for (_, c2) in chars.by_ref() {
                    if c2 == '\n' {
                        break;
                    }
                }
            }
            '0'..='9' => {
                let mut end = offset;
                while let Some(&(i, d)) = chars.peek() {
                    if d.is_ascii_digit() {
                        end = i + d.len_utf8();
                        chars.next();
                    } else {
                        break;
                    }
                }
                let text = &src[offset..end];
                let value: i64 = text.parse().map_err(|_| LexError {
                    message: format!("integer literal `{text}` out of range"),
                    offset,
                })?;
                tokens.push(Token {
                    kind: TokenKind::Int(value),
                    offset,
                });
            }
            '"' => {
                chars.next();
                let mut value = String::new();
                let mut closed = false;
                while let Some((_, c2)) = chars.next() {
                    match c2 {
                        '"' => {
                            closed = true;
                            break;
                        }
                        '\\' => match chars.next() {
                            Some((_, 'n')) => value.push('\n'),
                            Some((_, 't')) => value.push('\t'),
                            Some((_, '\\')) => value.push('\\'),
                            Some((_, '"')) => value.push('"'),
                            Some((i, other)) => {
                                return Err(LexError {
                                    message: format!("unknown escape `\\{other}`"),
                                    offset: i,
                                })
                            }
                            None => {
                                return Err(LexError {
                                    message: "unterminated escape".into(),
                                    offset,
                                })
                            }
                        },
                        other => value.push(other),
                    }
                }
                if !closed {
                    return Err(LexError {
                        message: "unterminated string literal".into(),
                        offset,
                    });
                }
                tokens.push(Token {
                    kind: TokenKind::Str(Arc::from(value.as_str())),
                    offset,
                });
            }
            _ if is_ident_start(c) => {
                let mut end = offset;
                while let Some(&(i, d)) = chars.peek() {
                    if is_ident_continue(d) {
                        end = i + d.len_utf8();
                        chars.next();
                    } else {
                        break;
                    }
                }
                let text = &src[offset..end];
                let kind = match text {
                    "lambda" => TokenKind::Lambda,
                    "if" => TokenKind::If,
                    "then" => TokenKind::Then,
                    "else" => TokenKind::Else,
                    "letrec" => TokenKind::Letrec,
                    "let" => TokenKind::Let,
                    "and" => TokenKind::And,
                    "in" => TokenKind::In,
                    "true" => TokenKind::True,
                    "false" => TokenKind::False,
                    "while" => TokenKind::While,
                    "do" => TokenKind::Do,
                    "end" => TokenKind::End,
                    "par" => TokenKind::Par,
                    _ => TokenKind::Ident(Arc::from(text)),
                };
                tokens.push(Token { kind, offset });
            }
            '(' => {
                chars.next();
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    offset,
                });
            }
            ')' => {
                chars.next();
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    offset,
                });
            }
            '[' => {
                chars.next();
                tokens.push(Token {
                    kind: TokenKind::LBracket,
                    offset,
                });
            }
            ']' => {
                chars.next();
                tokens.push(Token {
                    kind: TokenKind::RBracket,
                    offset,
                });
            }
            '{' => {
                chars.next();
                tokens.push(Token {
                    kind: TokenKind::LBrace,
                    offset,
                });
            }
            '}' => {
                chars.next();
                tokens.push(Token {
                    kind: TokenKind::RBrace,
                    offset,
                });
            }
            '.' => {
                chars.next();
                tokens.push(Token {
                    kind: TokenKind::Dot,
                    offset,
                });
            }
            ',' => {
                chars.next();
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    offset,
                });
            }
            ';' => {
                chars.next();
                tokens.push(Token {
                    kind: TokenKind::Semi,
                    offset,
                });
            }
            ':' => {
                chars.next();
                if let Some(&(_, '=')) = chars.peek() {
                    chars.next();
                    tokens.push(Token {
                        kind: TokenKind::Assign,
                        offset,
                    });
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Colon,
                        offset,
                    });
                }
            }
            '/' => {
                chars.next();
                tokens.push(Token {
                    kind: TokenKind::Slash,
                    offset,
                });
            }
            '+' => {
                chars.next();
                if let Some(&(_, '+')) = chars.peek() {
                    chars.next();
                    tokens.push(Token {
                        kind: TokenKind::Op(Arc::from("++")),
                        offset,
                    });
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Op(Arc::from("+")),
                        offset,
                    });
                }
            }
            '-' => {
                chars.next();
                tokens.push(Token {
                    kind: TokenKind::Op(Arc::from("-")),
                    offset,
                });
            }
            '*' => {
                chars.next();
                tokens.push(Token {
                    kind: TokenKind::Op(Arc::from("*")),
                    offset,
                });
            }
            '=' => {
                chars.next();
                tokens.push(Token {
                    kind: TokenKind::Op(Arc::from("=")),
                    offset,
                });
            }
            '<' => {
                chars.next();
                if let Some(&(_, '=')) = chars.peek() {
                    chars.next();
                    tokens.push(Token {
                        kind: TokenKind::Op(Arc::from("<=")),
                        offset,
                    });
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Op(Arc::from("<")),
                        offset,
                    });
                }
            }
            '>' => {
                chars.next();
                if let Some(&(_, '=')) = chars.peek() {
                    chars.next();
                    tokens.push(Token {
                        kind: TokenKind::Op(Arc::from(">=")),
                        offset,
                    });
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Op(Arc::from(">")),
                        offset,
                    });
                }
            }
            other => {
                return Err(LexError {
                    message: format!("unexpected character `{other}`"),
                    offset,
                })
            }
        }
    }

    tokens.push(Token {
        kind: TokenKind::Eof,
        offset: src.len(),
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_paper_factorial() {
        let toks = kinds(
            "letrec fac = lambda x. if (x = 0) then {A}:1 else {B}:(x * (fac (x - 1))) in fac 5",
        );
        assert_eq!(toks.first(), Some(&TokenKind::Letrec));
        assert!(toks.contains(&TokenKind::LBrace));
        assert!(toks.contains(&TokenKind::Colon));
        assert_eq!(toks.last(), Some(&TokenKind::Eof));
    }

    #[test]
    fn distinguishes_assign_from_colon() {
        assert_eq!(
            kinds("x := 1"),
            vec![
                TokenKind::Ident(Arc::from("x")),
                TokenKind::Assign,
                TokenKind::Int(1),
                TokenKind::Eof
            ]
        );
        assert_eq!(kinds("a : b")[1], TokenKind::Colon);
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("1 -- a comment\n2"),
            vec![TokenKind::Int(1), TokenKind::Int(2), TokenKind::Eof]
        );
    }

    #[test]
    fn comment_requires_two_dashes() {
        assert_eq!(
            kinds("1 - 2"),
            vec![
                TokenKind::Int(1),
                TokenKind::Op(Arc::from("-")),
                TokenKind::Int(2),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn string_escapes() {
        assert_eq!(
            kinds(r#""a\nb""#),
            vec![TokenKind::Str(Arc::from("a\nb")), TokenKind::Eof]
        );
    }

    #[test]
    fn unterminated_string_is_an_error() {
        let err = lex("\"oops").unwrap_err();
        assert!(err.message.contains("unterminated"));
        assert_eq!(err.offset, 0);
    }

    #[test]
    fn primed_identifiers_and_predicates() {
        assert_eq!(
            kinds("x' null? set!"),
            vec![
                TokenKind::Ident(Arc::from("x'")),
                TokenKind::Ident(Arc::from("null?")),
                TokenKind::Ident(Arc::from("set!")),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn two_char_operators() {
        assert_eq!(
            kinds("a <= b ++ c"),
            vec![
                TokenKind::Ident(Arc::from("a")),
                TokenKind::Op(Arc::from("<=")),
                TokenKind::Ident(Arc::from("b")),
                TokenKind::Op(Arc::from("++")),
                TokenKind::Ident(Arc::from("c")),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn line_col_is_one_based() {
        let src = "ab\ncd\nef";
        assert_eq!(line_col(src, 0), (1, 1));
        assert_eq!(line_col(src, 1), (1, 2));
        assert_eq!(line_col(src, 3), (2, 1));
        assert_eq!(line_col(src, 7), (3, 2));
        assert_eq!(line_col(src, 999), (3, 3), "clamped to the end");
    }

    #[test]
    fn offsets_point_at_token_starts() {
        let toks = lex("ab cd").unwrap();
        assert_eq!(toks[0].offset, 0);
        assert_eq!(toks[1].offset, 3);
    }
}
