//! The annotated abstract syntax of `L_λ`.
//!
//! Mirrors Figure 2 of the paper plus the §4.1 annotation clause
//! `ē ::= … | {μ}:ē`, and the §9.2 imperative extension (sequencing,
//! assignment, `while`) handled only by the imperative language module.
//!
//! Two departures from the literal grammar, both invisible to the
//! semantics: identifiers are *interned* ([`Ident`] compares and hashes a
//! `u32` symbol instead of text), and a variable occurrence may carry a
//! resolver-computed lexical address ([`Expr::VarAt`] with a [`VarAddr`]).
//! `VarAt` never comes out of the parser — `monsem-core`'s `resolve` pass
//! produces it — and equality treats `Var` and `VarAt` with the same
//! identifier as the same expression, so resolution is transparent to
//! tests and monitors that compare syntax.

use crate::intern::Symbol;
use std::fmt;
use std::sync::Arc;

/// An interned identifier (cheap to clone, compared in O(1)).
///
/// Identifiers name bound variables, function names and primitives
/// (`+`, `*`, `hd`, …, which live in the initial environment). Equality and
/// hashing compare the interned [`Symbol`] — a single integer operation —
/// while ordering and display go through the retained text, so sorted
/// output (e.g. [`Expr::free_vars`]) stays alphabetical.
#[derive(Clone)]
pub struct Ident {
    sym: Symbol,
    text: Arc<str>,
}

impl Ident {
    /// Creates (and interns) an identifier from anything string-like.
    pub fn new(name: impl AsRef<str>) -> Self {
        let (sym, text) = crate::intern::intern(name.as_ref());
        Ident { sym, text }
    }

    /// The identifier's text.
    pub fn as_str(&self) -> &str {
        &self.text
    }

    /// The interned symbol: equal symbols ⇔ equal text (within a thread).
    pub fn sym(&self) -> Symbol {
        self.sym
    }
}

impl PartialEq for Ident {
    fn eq(&self, other: &Self) -> bool {
        self.sym == other.sym
    }
}

impl Eq for Ident {}

impl std::hash::Hash for Ident {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.sym.hash(state);
    }
}

impl PartialOrd for Ident {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ident {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Textual order (with a symbol fast path for the equal case), so
        // sorted collections of identifiers read alphabetically.
        if self.sym == other.sym {
            std::cmp::Ordering::Equal
        } else {
            self.text.cmp(&other.text)
        }
    }
}

impl fmt::Debug for Ident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ident({:?})", &*self.text)
    }
}

impl fmt::Display for Ident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

impl From<&str> for Ident {
    fn from(s: &str) -> Self {
        Ident::new(s)
    }
}

impl From<String> for Ident {
    fn from(s: String) -> Self {
        Ident::new(s)
    }
}

impl AsRef<str> for Ident {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

/// Constants `k ∈ Con` (the paper's `Bas = Int + Bool + …` at the syntax
/// level, plus the empty list and unit used by the extended examples).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Con {
    /// Integer literal.
    Int(i64),
    /// Boolean literal.
    Bool(bool),
    /// String literal (used by the `Ans_str` answer algebra of §3.1).
    Str(Arc<str>),
    /// The empty list `[]`.
    Nil,
    /// The unit value (result of assignments in the imperative module).
    Unit,
}

impl fmt::Display for Con {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Con::Int(n) => write!(f, "{n}"),
            Con::Bool(b) => write!(f, "{b}"),
            Con::Str(s) => write!(f, "{s:?}"),
            Con::Nil => f.write_str("[]"),
            Con::Unit => f.write_str("()"),
        }
    }
}

/// A monitor-annotation namespace.
///
/// Section 6 requires cascaded monitors to have *disjoint annotation
/// syntaxes*; namespaces make that disjointness checkable. The concrete
/// syntax is `{ns/label}:e`; the empty namespace prints as `{label}:e`.
#[derive(Debug, Clone)]
pub struct Namespace(Ident);

impl Default for Namespace {
    fn default() -> Self {
        Namespace(Ident::new(""))
    }
}

impl Namespace {
    /// The anonymous namespace used when a program carries only one
    /// monitor's annotations (as in all of the paper's examples).
    pub fn anonymous() -> Self {
        Namespace::default()
    }

    /// Creates a named (and interned) namespace.
    pub fn new(name: impl AsRef<str>) -> Self {
        Namespace(Ident::new(name))
    }

    /// The namespace's text (empty for the anonymous namespace).
    pub fn as_str(&self) -> &str {
        self.0.as_str()
    }

    /// Whether this is the anonymous namespace.
    pub fn is_anonymous(&self) -> bool {
        self.as_str().is_empty()
    }
}

impl PartialEq for Namespace {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}

impl Eq for Namespace {}

impl std::hash::Hash for Namespace {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.hash(state);
    }
}

impl PartialOrd for Namespace {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Namespace {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.cmp(&other.0)
    }
}

/// The body of an annotation `μ` — the paper's *monitor syntax* (MSyn).
///
/// The examples of §5 and §8 use two shapes: bare labels (`{A}`, `{fac}`,
/// `{l1}`, `{test}`) and function headers carrying the formal parameters
/// (`{fac(x)}`, `{mul(x, y)}`, used by the fancy tracer of Figure 7).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AnnKind {
    /// A bare label, e.g. `{A}` or `{fac}`.
    Label(Ident),
    /// A function header `f(x₁, …, xₙ)` as required by the tracer's
    /// `Fh` monitor syntax (Figure 7).
    FunHeader {
        /// The function name.
        name: Ident,
        /// The formal parameters whose run-time values the monitor may read
        /// from the environment.
        params: Vec<Ident>,
    },
}

impl AnnKind {
    /// The label or function name carried by the annotation.
    pub fn name(&self) -> &Ident {
        match self {
            AnnKind::Label(l) => l,
            AnnKind::FunHeader { name, .. } => name,
        }
    }
}

/// A monitoring annotation `μ` together with its namespace.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Annotation {
    /// Which monitor's annotation syntax this belongs to (§6 disjointness).
    pub namespace: Namespace,
    /// The annotation body.
    pub kind: AnnKind,
}

impl Annotation {
    /// A bare label in the anonymous namespace, e.g. `{A}`.
    pub fn label(name: impl Into<Ident>) -> Self {
        Annotation {
            namespace: Namespace::anonymous(),
            kind: AnnKind::Label(name.into()),
        }
    }

    /// A function header in the anonymous namespace, e.g. `{fac(x)}`.
    pub fn fun_header(name: impl Into<Ident>, params: Vec<Ident>) -> Self {
        Annotation {
            namespace: Namespace::anonymous(),
            kind: AnnKind::FunHeader {
                name: name.into(),
                params,
            },
        }
    }

    /// Moves this annotation into `namespace`.
    pub fn in_namespace(mut self, namespace: Namespace) -> Self {
        self.namespace = namespace;
        self
    }

    /// The label or function name carried by the annotation.
    pub fn name(&self) -> &Ident {
        self.kind.name()
    }
}

impl fmt::Display for Annotation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("{")?;
        if !self.namespace.is_anonymous() {
            write!(f, "{}/", self.namespace.as_str())?;
        }
        match &self.kind {
            AnnKind::Label(l) => write!(f, "{l}")?,
            AnnKind::FunHeader { name, params } => {
                write!(f, "{name}(")?;
                for (i, p) in params.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{p}")?;
                }
                f.write_str(")")?;
            }
        }
        f.write_str("}")
    }
}

/// A lambda abstraction `lambda x. e`.
#[derive(Debug, Clone, PartialEq)]
pub struct Lambda {
    /// The bound variable.
    pub param: Ident,
    /// The body.
    pub body: Arc<Expr>,
}

impl Lambda {
    /// Creates `lambda param. body`.
    pub fn new(param: impl Into<Ident>, body: Expr) -> Self {
        Lambda {
            param: param.into(),
            body: Arc::new(body),
        }
    }
}

/// One binding of a `letrec` (the paper writes
/// `letrec f = lambda x. e₁ in e₂`; §8 also binds non-lambda right-hand
/// sides, e.g. `letrec l1 = {l1}:(inclist … )`, which behaves as a
/// sequential `let`).
#[derive(Debug, Clone, PartialEq)]
pub struct Binding {
    /// The bound name.
    pub name: Ident,
    /// The right-hand side. Recursion is only meaningful when this is a
    /// lambda (possibly under annotations); see
    /// [`Expr::strip_annotations`].
    pub value: Arc<Expr>,
}

impl Binding {
    /// Creates a binding `name = value`.
    pub fn new(name: impl Into<Ident>, value: Expr) -> Self {
        Binding {
            name: name.into(),
            value: Arc::new(value),
        }
    }
}

/// A lexical address computed by the static resolver
/// (`monsem-core::resolve`): where a variable's binding lives relative to
/// the environment in force when the occurrence is evaluated.
///
/// `depth` counts environment *nodes* (frames **and** rec-frames each count
/// one) from the top of the environment at the occurrence. A `Frame` node
/// binds exactly one name, so it needs no slot; a `Rec` node binds all the
/// lambda-like `letrec` bindings at once, so `slot` picks the binding (the
/// first occurrence of the name, matching name lookup's left-to-right
/// scan).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VarAddr {
    /// `depth` nodes up, a single-binding frame (lambda parameter, `let`,
    /// or a sequential `letrec` binding).
    Frame {
        /// Environment nodes to skip.
        depth: u32,
    },
    /// `depth` nodes up, slot `slot` of a recursive `letrec` frame.
    Rec {
        /// Environment nodes to skip.
        depth: u32,
        /// Index into the rec-frame's binding list.
        slot: u32,
    },
    /// Below every frame, slot `slot` of the *base* environment's table —
    /// the initial environment the evaluator starts from. The resolver
    /// only emits this when it has proved no frame can bind the name (the
    /// occurrence is statically free, outside every barrier, and
    /// evaluation starts from the base environment itself), so lookup
    /// skips the chain walk entirely.
    Base {
        /// Index into the base environment's table.
        slot: u32,
    },
}

/// Annotated expressions `ē ∈ Exp̄` (Figure 2 + the §4.1 annotation clause
/// + the §9.2 imperative extension).
///
/// `Expr` compares **modulo resolution**: a [`Expr::VarAt`] produced by the
/// static resolver is equal to the [`Expr::Var`] it was resolved from, so
/// parse/pretty round-trips and annotation-erasure laws are unaffected by
/// whether a tree has been resolved.
#[derive(Debug, Clone)]
pub enum Expr {
    /// Constant `k`.
    Con(Con),
    /// Identifier `x` (bound variable, `letrec` name or primitive).
    Var(Ident),
    /// A resolved identifier: `x` plus the lexical address of its binding.
    /// Produced only by `monsem-core::resolve`; evaluators treat it as
    /// `Var(x)` with an O(1) environment access.
    VarAt(Ident, VarAddr),
    /// Abstraction `lambda x. e`.
    Lambda(Lambda),
    /// Conditional `if e₁ then e₂ else e₃`.
    If(Arc<Expr>, Arc<Expr>, Arc<Expr>),
    /// Application `e₁ e₂`.
    App(Arc<Expr>, Arc<Expr>),
    /// Recursive bindings `letrec f₁ = e₁ and … in e` (mutual recursion is
    /// an extension; the paper's single-binding form is the common case).
    Letrec(Vec<Binding>, Arc<Expr>),
    /// Non-recursive `let x = e₁ in e₂` (sugar kept in the tree so the
    /// pretty-printer round-trips; semantically `(lambda x. e₂) e₁`).
    Let(Ident, Arc<Expr>, Arc<Expr>),
    /// Annotated expression `{μ}:e` (§4.1).
    Ann(Annotation, Arc<Expr>),
    /// Sequencing `e₁ ; e₂` (imperative module, §9.2).
    Seq(Arc<Expr>, Arc<Expr>),
    /// Assignment `x := e` (imperative module, §9.2).
    Assign(Ident, Arc<Expr>),
    /// Loop `while e₁ do e₂ end` (imperative module, §9.2).
    While(Arc<Expr>, Arc<Expr>),
    /// Fork-join `par(e₁, …, eₙ)`: evaluates every element and yields the
    /// list `[v₁, …, vₙ]`. Sequentially the elements run left-to-right
    /// (exactly `[e₁, …, eₙ]` under the strict machine, monitor events
    /// included); the parallel machine may run them on separate threads
    /// and merge the monitor-state deltas in the same left-to-right order,
    /// which is why the two agree (see `monsem-monitor::parallel`).
    Par(Vec<Arc<Expr>>),
}

impl PartialEq for Expr {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Expr::Con(a), Expr::Con(b)) => a == b,
            // Resolution is an annotation, not a program change: `VarAt`
            // compares equal to the `Var` it was resolved from.
            (Expr::Var(a) | Expr::VarAt(a, _), Expr::Var(b) | Expr::VarAt(b, _)) => a == b,
            (Expr::Lambda(a), Expr::Lambda(b)) => a == b,
            (Expr::If(c1, t1, e1), Expr::If(c2, t2, e2)) => c1 == c2 && t1 == t2 && e1 == e2,
            (Expr::App(f1, x1), Expr::App(f2, x2)) => f1 == f2 && x1 == x2,
            (Expr::Letrec(bs1, b1), Expr::Letrec(bs2, b2)) => bs1 == bs2 && b1 == b2,
            (Expr::Let(x1, v1, b1), Expr::Let(x2, v2, b2)) => x1 == x2 && v1 == v2 && b1 == b2,
            (Expr::Ann(a1, e1), Expr::Ann(a2, e2)) => a1 == a2 && e1 == e2,
            (Expr::Seq(a1, b1), Expr::Seq(a2, b2)) => a1 == a2 && b1 == b2,
            (Expr::Assign(x1, e1), Expr::Assign(x2, e2)) => x1 == x2 && e1 == e2,
            (Expr::While(c1, b1), Expr::While(c2, b2)) => c1 == c2 && b1 == b2,
            (Expr::Par(a), Expr::Par(b)) => a == b,
            _ => false,
        }
    }
}

impl Expr {
    /// Integer constant.
    pub fn int(n: i64) -> Expr {
        Expr::Con(Con::Int(n))
    }

    /// Boolean constant.
    pub fn bool(b: bool) -> Expr {
        Expr::Con(Con::Bool(b))
    }

    /// String constant.
    pub fn str(s: impl AsRef<str>) -> Expr {
        Expr::Con(Con::Str(Arc::from(s.as_ref())))
    }

    /// The empty list `[]`.
    pub fn nil() -> Expr {
        Expr::Con(Con::Nil)
    }

    /// Variable reference.
    pub fn var(name: impl Into<Ident>) -> Expr {
        Expr::Var(name.into())
    }

    /// `lambda param. body`.
    pub fn lam(param: impl Into<Ident>, body: Expr) -> Expr {
        Expr::Lambda(Lambda::new(param, body))
    }

    /// Curried multi-parameter lambda.
    pub fn lam_n<I: Into<Ident>>(params: impl IntoIterator<Item = I>, body: Expr) -> Expr {
        let params: Vec<Ident> = params.into_iter().map(Into::into).collect();
        params.into_iter().rev().fold(body, |b, p| Expr::lam(p, b))
    }

    /// Application `f x`.
    pub fn app(f: Expr, x: Expr) -> Expr {
        Expr::App(Arc::new(f), Arc::new(x))
    }

    /// Curried application `f x₁ … xₙ`.
    pub fn app_n(f: Expr, args: impl IntoIterator<Item = Expr>) -> Expr {
        args.into_iter().fold(f, Expr::app)
    }

    /// Conditional.
    pub fn if_(c: Expr, t: Expr, e: Expr) -> Expr {
        Expr::If(Arc::new(c), Arc::new(t), Arc::new(e))
    }

    /// Single-binding `letrec`.
    pub fn letrec(name: impl Into<Ident>, value: Expr, body: Expr) -> Expr {
        Expr::Letrec(vec![Binding::new(name, value)], Arc::new(body))
    }

    /// Non-recursive `let`.
    pub fn let_(name: impl Into<Ident>, value: Expr, body: Expr) -> Expr {
        Expr::Let(name.into(), Arc::new(value), Arc::new(body))
    }

    /// Annotated expression `{μ}:e`.
    pub fn ann(ann: Annotation, e: Expr) -> Expr {
        Expr::Ann(ann, Arc::new(e))
    }

    /// Fork-join `par(e₁, …, eₙ)`.
    pub fn par(items: impl IntoIterator<Item = Expr>) -> Expr {
        Expr::Par(items.into_iter().map(Arc::new).collect())
    }

    /// Binary primitive application: `binop("+", a, b)` is `(+ a) b`.
    pub fn binop(op: &str, a: Expr, b: Expr) -> Expr {
        Expr::app(Expr::app(Expr::var(op), a), b)
    }

    /// List literal `[e₁, …, eₙ]` as a cons chain.
    pub fn list(items: impl IntoIterator<Item = Expr>) -> Expr {
        let items: Vec<Expr> = items.into_iter().collect();
        items
            .into_iter()
            .rev()
            .fold(Expr::nil(), |tail, head| Expr::binop("cons", head, tail))
    }

    /// Strips any number of leading annotations, returning the bare
    /// expression underneath (used when deciding whether a `letrec`
    /// right-hand side is a lambda, and by the §7 obliviousness
    /// construction `G_obl`).
    pub fn strip_annotations(&self) -> &Expr {
        let mut e = self;
        while let Expr::Ann(_, inner) = e {
            e = inner;
        }
        e
    }

    /// Whether this expression (modulo annotations) is a lambda.
    pub fn is_lambda_like(&self) -> bool {
        matches!(self.strip_annotations(), Expr::Lambda(_))
    }

    /// Removes **all** annotations, everywhere — the erasure `ē ↦ e` used
    /// throughout §7 ("`s̄` is `s` augmented with monitor annotations").
    pub fn erase_annotations(&self) -> Expr {
        match self {
            Expr::Con(c) => Expr::Con(c.clone()),
            // Erasing annotations changes `letrec` frame shapes, so any
            // lexical address is stale afterwards: drop back to `Var`.
            Expr::Var(x) | Expr::VarAt(x, _) => Expr::Var(x.clone()),
            Expr::Lambda(l) => Expr::Lambda(Lambda {
                param: l.param.clone(),
                body: Arc::new(l.body.erase_annotations()),
            }),
            Expr::If(c, t, e) => Expr::if_(
                c.erase_annotations(),
                t.erase_annotations(),
                e.erase_annotations(),
            ),
            Expr::App(f, x) => Expr::app(f.erase_annotations(), x.erase_annotations()),
            Expr::Letrec(bs, body) => Expr::Letrec(
                bs.iter()
                    .map(|b| Binding {
                        name: b.name.clone(),
                        value: Arc::new(b.value.erase_annotations()),
                    })
                    .collect(),
                Arc::new(body.erase_annotations()),
            ),
            Expr::Let(x, v, b) => {
                Expr::let_(x.clone(), v.erase_annotations(), b.erase_annotations())
            }
            Expr::Ann(_, e) => e.erase_annotations(),
            Expr::Seq(a, b) => Expr::Seq(
                Arc::new(a.erase_annotations()),
                Arc::new(b.erase_annotations()),
            ),
            Expr::Assign(x, e) => Expr::Assign(x.clone(), Arc::new(e.erase_annotations())),
            Expr::While(c, b) => Expr::While(
                Arc::new(c.erase_annotations()),
                Arc::new(b.erase_annotations()),
            ),
            Expr::Par(items) => Expr::Par(
                items
                    .iter()
                    .map(|e| Arc::new(e.erase_annotations()))
                    .collect(),
            ),
        }
    }

    /// Counts the AST nodes (annotations included); handy for generators
    /// and benchmarks.
    pub fn size(&self) -> usize {
        1 + match self {
            Expr::Con(_) | Expr::Var(_) | Expr::VarAt(..) => 0,
            Expr::Lambda(l) => l.body.size(),
            Expr::If(a, b, c) => a.size() + b.size() + c.size(),
            Expr::App(a, b) | Expr::Seq(a, b) | Expr::While(a, b) => a.size() + b.size(),
            Expr::Letrec(bs, body) => {
                bs.iter().map(|b| b.value.size()).sum::<usize>() + body.size()
            }
            Expr::Let(_, v, b) => v.size() + b.size(),
            Expr::Ann(_, e) => e.size(),
            Expr::Assign(_, e) => e.size(),
            Expr::Par(items) => items.iter().map(|e| e.size()).sum(),
        }
    }

    /// Collects every annotation in the tree, outermost-first per node.
    pub fn annotations(&self) -> Vec<&Annotation> {
        fn go<'a>(e: &'a Expr, acc: &mut Vec<&'a Annotation>) {
            match e {
                Expr::Con(_) | Expr::Var(_) | Expr::VarAt(..) => {}
                Expr::Lambda(l) => go(&l.body, acc),
                Expr::If(a, b, c) => {
                    go(a, acc);
                    go(b, acc);
                    go(c, acc);
                }
                Expr::App(a, b) | Expr::Seq(a, b) | Expr::While(a, b) => {
                    go(a, acc);
                    go(b, acc);
                }
                Expr::Letrec(bs, body) => {
                    for b in bs {
                        go(&b.value, acc);
                    }
                    go(body, acc);
                }
                Expr::Let(_, v, b) => {
                    go(v, acc);
                    go(b, acc);
                }
                Expr::Ann(a, inner) => {
                    acc.push(a);
                    go(inner, acc);
                }
                Expr::Assign(_, e) => go(e, acc),
                Expr::Par(items) => {
                    for e in items {
                        go(e, acc);
                    }
                }
            }
        }
        let mut acc = Vec::new();
        go(self, &mut acc);
        acc
    }

    /// The free variables of the expression (primitives count as free;
    /// they are resolved by the initial environment).
    pub fn free_vars(&self) -> std::collections::BTreeSet<Ident> {
        use std::collections::BTreeSet;
        fn go(e: &Expr, bound: &mut Vec<Ident>, free: &mut BTreeSet<Ident>) {
            match e {
                Expr::Con(_) => {}
                Expr::Var(x) | Expr::VarAt(x, _) => {
                    if !bound.contains(x) {
                        free.insert(x.clone());
                    }
                }
                Expr::Lambda(l) => {
                    bound.push(l.param.clone());
                    go(&l.body, bound, free);
                    bound.pop();
                }
                Expr::If(a, b, c) => {
                    go(a, bound, free);
                    go(b, bound, free);
                    go(c, bound, free);
                }
                Expr::App(a, b) | Expr::Seq(a, b) | Expr::While(a, b) => {
                    go(a, bound, free);
                    go(b, bound, free);
                }
                Expr::Letrec(bs, body) => {
                    for b in bs {
                        bound.push(b.name.clone());
                    }
                    for b in bs {
                        go(&b.value, bound, free);
                    }
                    go(body, bound, free);
                    for _ in bs {
                        bound.pop();
                    }
                }
                Expr::Let(x, v, b) => {
                    go(v, bound, free);
                    bound.push(x.clone());
                    go(b, bound, free);
                    bound.pop();
                }
                Expr::Ann(_, inner) => go(inner, bound, free),
                Expr::Assign(x, e) => {
                    if !bound.contains(x) {
                        free.insert(x.clone());
                    }
                    go(e, bound, free);
                }
                Expr::Par(items) => {
                    for e in items {
                        go(e, bound, free);
                    }
                }
            }
        }
        let mut free = BTreeSet::new();
        go(self, &mut Vec::new(), &mut free);
        free
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::pretty::pretty(self))
    }
}

impl std::str::FromStr for Expr {
    type Err = crate::parser::ParseError;

    /// Parses concrete syntax; inverse of `Display`.
    ///
    /// ```
    /// use monsem_syntax::Expr;
    /// let e: Expr = "1 + 2 * 3".parse()?;
    /// assert_eq!(e.to_string(), "1 + 2 * 3");
    /// # Ok::<(), monsem_syntax::ParseError>(())
    /// ```
    fn from_str(s: &str) -> Result<Expr, Self::Err> {
        crate::parser::parse_expr(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_produce_expected_shapes() {
        let e = Expr::app_n(Expr::var("f"), [Expr::int(1), Expr::int(2)]);
        match &e {
            Expr::App(inner, two) => {
                assert_eq!(**two, Expr::int(2));
                match &**inner {
                    Expr::App(f, one) => {
                        assert_eq!(**f, Expr::var("f"));
                        assert_eq!(**one, Expr::int(1));
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn lam_n_curries_left_to_right() {
        let e = Expr::lam_n(["x", "y"], Expr::var("x"));
        match e {
            Expr::Lambda(l) => {
                assert_eq!(l.param.as_str(), "x");
                assert!(matches!(&*l.body, Expr::Lambda(inner) if inner.param.as_str() == "y"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn erase_annotations_is_idempotent_and_total() {
        let e = Expr::ann(
            Annotation::label("A"),
            Expr::if_(
                Expr::ann(Annotation::label("B"), Expr::bool(true)),
                Expr::int(1),
                Expr::int(2),
            ),
        );
        let erased = e.erase_annotations();
        assert!(erased.annotations().is_empty());
        assert_eq!(erased.erase_annotations(), erased);
    }

    #[test]
    fn strip_annotations_sees_through_stacked_labels() {
        let lam = Expr::lam("x", Expr::var("x"));
        let e = Expr::ann(
            Annotation::label("outer"),
            Expr::ann(Annotation::label("inner"), lam.clone()),
        );
        assert_eq!(e.strip_annotations(), &lam);
        assert!(e.is_lambda_like());
    }

    #[test]
    fn free_vars_respects_binders() {
        let e = Expr::letrec(
            "f",
            Expr::lam("x", Expr::binop("+", Expr::var("x"), Expr::var("y"))),
            Expr::app(Expr::var("f"), Expr::var("z")),
        );
        let fv = e.free_vars();
        let names: Vec<&str> = fv.iter().map(|i| i.as_str()).collect();
        assert_eq!(names, vec!["+", "y", "z"]);
    }

    #[test]
    fn list_builds_cons_chain() {
        let e = Expr::list([Expr::int(1), Expr::int(2)]);
        assert_eq!(format!("{e}"), "1 : 2 : []");
    }

    #[test]
    fn size_counts_annotations_transparently() {
        let plain = Expr::if_(Expr::bool(true), Expr::int(1), Expr::int(2));
        let annotated = Expr::ann(Annotation::label("A"), plain.clone());
        assert_eq!(annotated.size(), plain.size() + 1);
    }

    #[test]
    fn annotation_display_includes_namespace() {
        let a = Annotation::fun_header("fac", vec![Ident::new("x")])
            .in_namespace(Namespace::new("trace"));
        assert_eq!(a.to_string(), "{trace/fac(x)}");
        assert_eq!(Annotation::label("A").to_string(), "{A}");
    }
}
