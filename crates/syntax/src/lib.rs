//! Abstract syntax for `L_λ`, the higher-order functional language of
//! *Monitoring Semantics* (Kishon, Hudak, Consel — PLDI 1991).
//!
//! The paper's language (its Figure 2) has constants, identifiers, lambda
//! abstractions, conditionals, applications and `letrec`. Section 4.1 extends
//! every syntactic category with *monitoring annotations* `{μ}:e`; this crate
//! provides the annotated syntax directly, together with:
//!
//! * [`ast`] — the expression tree, annotations and identifiers;
//! * [`lexer`] / [`parser`] — a concrete syntax close to the paper's
//!   (`letrec fac = lambda x. if (x = 0) then {A}:1 else {B}:(x * fac(x - 1)) in fac 5`);
//! * [`pretty`] — a pretty-printer whose output re-parses to the same tree;
//! * [`points`] — program points (paths from the root) and the annotation
//!   injection helpers the paper attributes to a "suitably engineered
//!   programming environment" (§4.1): trace a function, label call sites, …;
//! * [`grammar`] — the *syntactic functionals* of §4.1 (`H`, `H̄`, `H̿`):
//!   a machine-checkable model of how annotation layers extend the grammar;
//! * [`gen`] *(feature `gen`)* — random well-formed program generation used
//!   by the soundness property tests (Theorem 7.7);
//! * [`shrink`] — greedy 1-minimal counterexample shrinking for those
//!   generated programs (the harness is seed-based, so framework
//!   shrinking never sees the term structure).
//!
//! # Example
//!
//! ```
//! use monsem_syntax::parse_expr;
//!
//! let e = parse_expr(
//!     "letrec fac = lambda x. if (x = 0) then {A}:1 else {B}:(x * (fac (x - 1))) \
//!      in fac 5",
//! )?;
//! assert_eq!(e.to_string().contains("{A}:1"), true);
//! # Ok::<(), monsem_syntax::ParseError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod grammar;
pub mod intern;
pub mod lexer;
pub mod parser;
pub mod points;
pub mod pretty;
pub mod shrink;

#[cfg(feature = "gen")]
pub mod gen;

pub use ast::{AnnKind, Annotation, Binding, Con, Expr, Ident, Lambda, Namespace, VarAddr};
pub use lexer::{line_col, LexError, Token, TokenKind};
pub use parser::{parse_expr, parse_program, ParseError};
pub use points::{ExprPath, PathStep};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_doc_example_parses() {
        let src =
            "letrec fac = lambda x. if (x = 0) then {A}:1 else {B}:(x * (fac (x - 1))) in fac 5";
        let e = parse_expr(src).expect("parses");
        let printed = e.to_string();
        let e2 = parse_expr(&printed).expect("round-trips");
        assert_eq!(e, e2);
    }
}
