//! Recursive-descent parser for the concrete syntax of `L_λ`.
//!
//! Operator precedence, loosest to tightest:
//!
//! 1. `;` (sequencing, imperative module) — left associative
//! 2. `x := e` (assignment, imperative module)
//! 3. keyword forms: `letrec … in`, `let … in`, `lambda x. e`,
//!    `if … then … else`, `while … do … end`
//! 4. comparisons `= < > <= >=` — non-associative
//! 5. `:` (cons) — right associative
//! 6. `+ - ++` — left associative
//! 7. `* /` — left associative
//! 8. unary minus
//! 9. application (juxtaposition) — left associative
//! 10. annotation prefix `{μ}:` and atoms
//!
//! An annotation `{μ}:` may prefix a keyword form (so `{fac}:if … then … else …`
//! parses as in the paper) or a single application operand; annotate a larger
//! expression by parenthesizing it, exactly as the paper writes
//! `{B}:(x * fac(x - 1))`.
//!
//! Binary operators desugar to curried applications of primitive
//! identifiers: `a + b` is `((+ a) b)`. With the paper's argument-first
//! application order (Figure 2) this evaluates `b`, then `a`, then applies.

use crate::ast::{AnnKind, Annotation, Binding, Con, Expr, Ident, Namespace};
use crate::lexer::{lex, LexError, Token, TokenKind};
use std::fmt;

/// An error produced while parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset of the offending token.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

impl ParseError {
    /// Renders the error with a 1-based line:column position computed
    /// against the original source.
    pub fn display_in(&self, src: &str) -> String {
        let (line, col) = crate::lexer::line_col(src, self.offset);
        format!("parse error at {line}:{col}: {}", self.message)
    }
}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            offset: e.offset,
        }
    }
}

/// Parses a complete expression, requiring the whole input to be consumed.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first offending token.
pub fn parse_expr(src: &str) -> Result<Expr, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let e = p.expr()?;
    p.expect_eof()?;
    Ok(e)
}

/// Parses a program. `L_λ` programs are single expressions, so this is an
/// alias of [`parse_expr`] kept for symmetry with the paper's `Prog` domain.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first offending token.
pub fn parse_program(src: &str) -> Result<Expr, ParseError> {
    parse_expr(src)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &TokenKind {
        let i = (self.pos + 1).min(self.tokens.len() - 1);
        &self.tokens[i].kind
    }

    fn offset(&self) -> usize {
        self.tokens[self.pos].offset
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            message: message.into(),
            offset: self.offset(),
        })
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<(), ParseError> {
        if self.peek() == kind {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected `{kind}`, found `{}`", self.peek()))
        }
    }

    fn expect_eof(&self) -> Result<(), ParseError> {
        if matches!(self.peek(), TokenKind::Eof) {
            Ok(())
        } else {
            self.err(format!("expected end of input, found `{}`", self.peek()))
        }
    }

    fn ident(&mut self) -> Result<Ident, ParseError> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.bump();
                Ok(Ident::new(&*name))
            }
            other => self.err(format!("expected identifier, found `{other}`")),
        }
    }

    // expr := seq
    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.seq()
    }

    fn seq(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.assign()?;
        while matches!(self.peek(), TokenKind::Semi) {
            self.bump();
            let rhs = self.assign()?;
            e = Expr::Seq(e.into(), rhs.into());
        }
        Ok(e)
    }

    fn assign(&mut self) -> Result<Expr, ParseError> {
        if let (TokenKind::Ident(_), TokenKind::Assign) = (self.peek(), self.peek2()) {
            let name = self.ident()?;
            self.bump(); // :=
            let value = self.assign()?;
            return Ok(Expr::Assign(name, value.into()));
        }
        self.keyword_or_binary()
    }

    fn keyword_or_binary(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            TokenKind::Letrec
            | TokenKind::Let
            | TokenKind::Lambda
            | TokenKind::If
            | TokenKind::While => self.keyword(),
            _ => self.cmp(),
        }
    }

    fn keyword(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            TokenKind::Letrec => {
                self.bump();
                let mut bindings = Vec::new();
                loop {
                    let name = self.ident()?;
                    self.expect(&TokenKind::Op("=".into()))?;
                    let value = self.assign()?;
                    bindings.push(Binding::new(name, value));
                    if matches!(self.peek(), TokenKind::And) {
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.expect(&TokenKind::In)?;
                let body = self.expr()?;
                Ok(Expr::Letrec(bindings, body.into()))
            }
            TokenKind::Let => {
                self.bump();
                let name = self.ident()?;
                self.expect(&TokenKind::Op("=".into()))?;
                let value = self.assign()?;
                self.expect(&TokenKind::In)?;
                let body = self.expr()?;
                Ok(Expr::let_(name, value, body))
            }
            TokenKind::Lambda => {
                self.bump();
                let mut params = vec![self.ident()?];
                while let TokenKind::Ident(_) = self.peek() {
                    params.push(self.ident()?);
                }
                self.expect(&TokenKind::Dot)?;
                let body = self.assign()?;
                Ok(Expr::lam_n(params, body))
            }
            TokenKind::If => {
                self.bump();
                let c = self.keyword_or_binary()?;
                self.expect(&TokenKind::Then)?;
                let t = self.assign()?;
                self.expect(&TokenKind::Else)?;
                let e = self.assign()?;
                Ok(Expr::if_(c, t, e))
            }
            TokenKind::While => {
                self.bump();
                let c = self.expr()?;
                self.expect(&TokenKind::Do)?;
                let b = self.expr()?;
                self.expect(&TokenKind::End)?;
                Ok(Expr::While(c.into(), b.into()))
            }
            other => self.err(format!("expected a keyword form, found `{other}`")),
        }
    }

    fn cmp(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.cons()?;
        if let TokenKind::Op(op) = self.peek().clone() {
            if matches!(&*op, "=" | "<" | ">" | "<=" | ">=") {
                self.bump();
                let rhs = self.cons()?;
                return Ok(Expr::binop(&op, lhs, rhs));
            }
        }
        Ok(lhs)
    }

    fn cons(&mut self) -> Result<Expr, ParseError> {
        let head = self.additive()?;
        if matches!(self.peek(), TokenKind::Colon) {
            self.bump();
            let tail = self.cons()?;
            return Ok(Expr::binop("cons", head, tail));
        }
        Ok(head)
    }

    fn additive(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.multiplicative()?;
        while let TokenKind::Op(op) = self.peek().clone() {
            if matches!(&*op, "+" | "-" | "++") {
                self.bump();
                let rhs = self.multiplicative()?;
                e = Expr::binop(&op, e, rhs);
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.unary()?;
        loop {
            match self.peek().clone() {
                TokenKind::Op(op) if &*op == "*" => {
                    self.bump();
                    let rhs = self.unary()?;
                    e = Expr::binop("*", e, rhs);
                }
                TokenKind::Slash => {
                    self.bump();
                    let rhs = self.unary()?;
                    e = Expr::binop("/", e, rhs);
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        if let TokenKind::Op(op) = self.peek() {
            if &**op == "-" {
                self.bump();
                let operand = self.unary()?;
                // `-e` is sugar for the `neg` primitive; `-5` folds to a literal.
                if let Expr::Con(Con::Int(n)) = operand {
                    return Ok(Expr::int(-n));
                }
                return Ok(Expr::app(Expr::var("neg"), operand));
            }
        }
        self.application()
    }

    fn application(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.prefix()?;
        while self.starts_operand() {
            let arg = self.prefix()?;
            e = Expr::app(e, arg);
        }
        Ok(e)
    }

    /// Whether the next token can begin an application operand.
    fn starts_operand(&self) -> bool {
        matches!(
            self.peek(),
            TokenKind::Int(_)
                | TokenKind::Str(_)
                | TokenKind::Ident(_)
                | TokenKind::True
                | TokenKind::False
                | TokenKind::LParen
                | TokenKind::LBracket
                | TokenKind::LBrace
                | TokenKind::Par
        )
    }

    fn prefix(&mut self) -> Result<Expr, ParseError> {
        if matches!(self.peek(), TokenKind::LBrace) {
            let ann = self.annotation()?;
            self.expect(&TokenKind::Colon)?;
            let operand = match self.peek() {
                TokenKind::Letrec
                | TokenKind::Let
                | TokenKind::Lambda
                | TokenKind::If
                | TokenKind::While => self.keyword()?,
                _ => self.prefix()?,
            };
            return Ok(Expr::ann(ann, operand));
        }
        self.atom()
    }

    fn annotation(&mut self) -> Result<Annotation, ParseError> {
        self.expect(&TokenKind::LBrace)?;
        let first = self.ident()?;
        let (namespace, name) = if matches!(self.peek(), TokenKind::Slash) {
            self.bump();
            let name = self.ident()?;
            (Namespace::new(first.as_str()), name)
        } else {
            (Namespace::anonymous(), first)
        };
        let kind = if matches!(self.peek(), TokenKind::LParen) {
            self.bump();
            let mut params = Vec::new();
            if !matches!(self.peek(), TokenKind::RParen) {
                params.push(self.ident()?);
                while matches!(self.peek(), TokenKind::Comma) {
                    self.bump();
                    params.push(self.ident()?);
                }
            }
            self.expect(&TokenKind::RParen)?;
            AnnKind::FunHeader { name, params }
        } else {
            AnnKind::Label(name)
        };
        self.expect(&TokenKind::RBrace)?;
        Ok(Annotation { namespace, kind })
    }

    fn atom(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            TokenKind::Int(n) => {
                self.bump();
                Ok(Expr::int(n))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr::Con(Con::Str(s)))
            }
            TokenKind::True => {
                self.bump();
                Ok(Expr::bool(true))
            }
            TokenKind::False => {
                self.bump();
                Ok(Expr::bool(false))
            }
            TokenKind::Ident(name) => {
                self.bump();
                Ok(Expr::var(&*name))
            }
            TokenKind::LParen => {
                self.bump();
                if matches!(self.peek(), TokenKind::RParen) {
                    self.bump();
                    return Ok(Expr::Con(Con::Unit));
                }
                // Operator sections: `(+)`, `(/)`, `(:)` name the primitive
                // directly, so the pretty-printer can round-trip partial
                // applications such as `(+) 1`.
                match (self.peek().clone(), self.peek2().clone()) {
                    (TokenKind::Op(op), TokenKind::RParen) => {
                        self.bump();
                        self.bump();
                        return Ok(Expr::var(&*op));
                    }
                    (TokenKind::Slash, TokenKind::RParen) => {
                        self.bump();
                        self.bump();
                        return Ok(Expr::var("/"));
                    }
                    (TokenKind::Colon, TokenKind::RParen) => {
                        self.bump();
                        self.bump();
                        return Ok(Expr::var("cons"));
                    }
                    _ => {}
                }
                let e = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::LBracket => {
                self.bump();
                let mut items = Vec::new();
                if !matches!(self.peek(), TokenKind::RBracket) {
                    items.push(self.keyword_or_binary()?);
                    while matches!(self.peek(), TokenKind::Comma) {
                        self.bump();
                        items.push(self.keyword_or_binary()?);
                    }
                }
                self.expect(&TokenKind::RBracket)?;
                Ok(Expr::list(items))
            }
            // `par(e₁, …, eₙ)` is self-delimiting, so it parses as an atom;
            // elements sit at the same level as list-literal elements.
            TokenKind::Par => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let mut items = Vec::new();
                if !matches!(self.peek(), TokenKind::RParen) {
                    items.push(self.keyword_or_binary()?);
                    while matches!(self.peek(), TokenKind::Comma) {
                        self.bump();
                        items.push(self.keyword_or_binary()?);
                    }
                }
                self.expect(&TokenKind::RParen)?;
                Ok(Expr::par(items))
            }
            other => self.err(format!("expected an expression, found `{other}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_section5_profiler_program() {
        let e = parse_expr(
            "letrec fac = lambda x. if (x = 0) then {A}:1 else {B}:(x * (fac (x - 1))) in fac 5",
        )
        .unwrap();
        let anns = e.annotations();
        assert_eq!(anns.len(), 2);
        assert_eq!(anns[0].name().as_str(), "A");
        assert_eq!(anns[1].name().as_str(), "B");
    }

    #[test]
    fn parses_section8_tracer_program() {
        let e = parse_expr(
            "letrec mul = lambda x. lambda y. {mul(x, y)}:(x*y) in \
             letrec fac = lambda x. {fac(x)}:if (x=0) then 1 else mul x (fac (x-1)) \
             in fac 3",
        )
        .unwrap();
        let anns = e.annotations();
        assert_eq!(anns.len(), 2);
        assert!(matches!(&anns[0].kind, AnnKind::FunHeader { name, params }
            if name.as_str() == "mul" && params.len() == 2));
        assert!(matches!(&anns[1].kind, AnnKind::FunHeader { name, params }
            if name.as_str() == "fac" && params.len() == 1));
    }

    #[test]
    fn application_is_left_associative() {
        let e = parse_expr("f x y").unwrap();
        assert_eq!(
            e,
            Expr::app(Expr::app(Expr::var("f"), Expr::var("x")), Expr::var("y"))
        );
    }

    #[test]
    fn annotation_binds_a_single_operand() {
        // `{f}:g x` is `({f}:g) x`, matching `{n}:n * (fac (n-1))` in §8.
        let e = parse_expr("{f}:g x").unwrap();
        assert_eq!(
            e,
            Expr::app(
                Expr::ann(Annotation::label("f"), Expr::var("g")),
                Expr::var("x")
            )
        );
    }

    #[test]
    fn annotation_prefixes_keyword_forms() {
        let e = parse_expr("{fac}:if x then 1 else 2").unwrap();
        assert!(matches!(e, Expr::Ann(_, ref inner) if matches!(**inner, Expr::If(..))));
    }

    #[test]
    fn operator_precedence_mul_over_add() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        assert_eq!(
            e,
            Expr::binop(
                "+",
                Expr::int(1),
                Expr::binop("*", Expr::int(2), Expr::int(3))
            )
        );
    }

    #[test]
    fn cons_is_right_associative_and_looser_than_add() {
        let e = parse_expr("1 + 2 : 3 : []").unwrap();
        assert_eq!(
            e,
            Expr::binop(
                "cons",
                Expr::binop("+", Expr::int(1), Expr::int(2)),
                Expr::binop("cons", Expr::int(3), Expr::nil())
            )
        );
    }

    #[test]
    fn comparison_is_non_associative() {
        assert!(parse_expr("1 < 2 < 3").is_err());
    }

    #[test]
    fn list_literals_desugar_to_cons_chains() {
        let e = parse_expr("[1, 10, 100]").unwrap();
        assert_eq!(e, Expr::list([Expr::int(1), Expr::int(10), Expr::int(100)]));
    }

    #[test]
    fn multi_param_lambda_curries() {
        assert_eq!(
            parse_expr("lambda x y. x").unwrap(),
            parse_expr("lambda x. lambda y. x").unwrap()
        );
    }

    #[test]
    fn letrec_with_and_builds_mutual_bindings() {
        let e = parse_expr(
            "letrec even = lambda n. if n = 0 then true else odd (n - 1) \
             and odd = lambda n. if n = 0 then false else even (n - 1) \
             in even 10",
        )
        .unwrap();
        match e {
            Expr::Letrec(bs, _) => assert_eq!(bs.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unary_minus_folds_literals_and_wraps_vars() {
        assert_eq!(parse_expr("-5").unwrap(), Expr::int(-5));
        assert_eq!(
            parse_expr("-x").unwrap(),
            Expr::app(Expr::var("neg"), Expr::var("x"))
        );
        assert_eq!(
            parse_expr("x - 1").unwrap(),
            Expr::binop("-", Expr::var("x"), Expr::int(1))
        );
    }

    #[test]
    fn namespaced_annotations() {
        let e = parse_expr("{trace/fac(x)}:x").unwrap();
        match e {
            Expr::Ann(a, _) => {
                assert_eq!(a.namespace, Namespace::new("trace"));
                assert!(matches!(a.kind, AnnKind::FunHeader { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn imperative_forms_parse() {
        let e = parse_expr("x := 1; while x < 10 do x := x + 1 end; x").unwrap();
        assert!(matches!(e, Expr::Seq(..)));
    }

    #[test]
    fn unit_literal() {
        assert_eq!(parse_expr("()").unwrap(), Expr::Con(Con::Unit));
    }

    #[test]
    fn trailing_garbage_is_an_error() {
        let err = parse_expr("1 2 )").unwrap_err();
        assert!(err.message.contains("expected end of input"), "{err}");
    }

    #[test]
    fn error_carries_offset() {
        let err = parse_expr("if x then 1").unwrap_err();
        assert_eq!(err.offset, 11);
    }
}
