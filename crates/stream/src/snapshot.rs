//! A compact binary codec for [`StreamState`]: the stream half of tape
//! checkpoints.
//!
//! A checkpoint wants to resume a stream monitor mid-tape without
//! replaying the prefix, so the snapshot must carry *everything* that
//! shapes future evolution and the final verdict: aggregate states
//! (rings, panes, cumulative totals), current values, trigger edges,
//! retained firings, deadline clocks, and the counters. The shard
//! replay tape ([`StreamState::tape`]) is deliberately *not* carried —
//! it only exists inside fork-join evaluation, where checkpoints do not.
//!
//! The encoding reuses the tape format's conventions (LEB128 varints,
//! zigzag for signed) but is deliberately self-contained: this crate
//! sits below `monsem-tape` in the dependency order, so the tape layer
//! treats snapshot bytes as opaque and frames them with a digest.

use crate::eval::{AggState, Contribution, DeadlineState, Pane, Totals};
use crate::monitor::{Firing, StreamMonitor, StreamState};
use std::collections::VecDeque;
use std::fmt;

/// The snapshot encoding version (independent of the tape version).
pub const SNAPSHOT_VERSION: u8 = 1;

const AGG_CUMULATIVE: u8 = 0;
const AGG_RING: u8 = 1;
const AGG_PANES: u8 = 2;
const AGG_DERIVED: u8 = 3;

const C_SKIP: u8 = 0;
const C_HIT: u8 = 1;
const C_VAL: u8 = 2;

/// A malformed or mismatched snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The snapshot's version byte is newer than this reader.
    BadVersion(u8),
    /// The bytes ended mid-field or a count overflowed.
    Malformed,
    /// The snapshot's shape does not match the monitor's spec (wrong
    /// stream/trigger/deadline counts or aggregate kinds) — it was taken
    /// under a different spec.
    SpecMismatch(&'static str),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadVersion(v) => write!(f, "unsupported snapshot version {v}"),
            SnapshotError::Malformed => write!(f, "malformed stream snapshot"),
            SnapshotError::SpecMismatch(what) => {
                write!(f, "snapshot does not fit this stream spec: {what}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

fn put_uvarint(out: &mut Vec<u8>, mut n: u64) {
    loop {
        let byte = (n & 0x7f) as u8;
        n >>= 7;
        if n == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn put_ivarint(out: &mut Vec<u8>, n: i64) {
    put_uvarint(out, ((n << 1) ^ (n >> 63)) as u64);
}

fn put_opt_u64(out: &mut Vec<u8>, n: Option<u64>) {
    match n {
        Some(n) => {
            out.push(1);
            put_uvarint(out, n);
        }
        None => out.push(0),
    }
}

fn put_opt_i64(out: &mut Vec<u8>, n: Option<i64>) {
    match n {
        Some(n) => {
            out.push(1);
            put_ivarint(out, n);
        }
        None => out.push(0),
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_uvarint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn u8(&mut self) -> Result<u8, SnapshotError> {
        let b = *self.buf.get(self.at).ok_or(SnapshotError::Malformed)?;
        self.at += 1;
        Ok(b)
    }

    fn uvarint(&mut self) -> Result<u64, SnapshotError> {
        let mut n: u64 = 0;
        let mut shift = 0u32;
        loop {
            let b = self.u8()?;
            if shift >= 64 || (shift == 63 && b > 1) {
                return Err(SnapshotError::Malformed);
            }
            n |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(n);
            }
            shift += 7;
        }
    }

    fn ivarint(&mut self) -> Result<i64, SnapshotError> {
        let n = self.uvarint()?;
        Ok(((n >> 1) as i64) ^ -((n & 1) as i64))
    }

    fn opt_u64(&mut self) -> Result<Option<u64>, SnapshotError> {
        Ok(match self.u8()? {
            0 => None,
            _ => Some(self.uvarint()?),
        })
    }

    fn opt_i64(&mut self) -> Result<Option<i64>, SnapshotError> {
        Ok(match self.u8()? {
            0 => None,
            _ => Some(self.ivarint()?),
        })
    }

    fn len(&mut self) -> Result<usize, SnapshotError> {
        usize::try_from(self.uvarint()?).map_err(|_| SnapshotError::Malformed)
    }

    fn string(&mut self) -> Result<String, SnapshotError> {
        let len = self.len()?;
        let end = self.at.checked_add(len).ok_or(SnapshotError::Malformed)?;
        let bytes = self.buf.get(self.at..end).ok_or(SnapshotError::Malformed)?;
        self.at = end;
        String::from_utf8(bytes.to_vec()).map_err(|_| SnapshotError::Malformed)
    }
}

fn put_totals(out: &mut Vec<u8>, t: &Totals) {
    put_uvarint(out, t.count);
    put_ivarint(out, t.sum);
    put_uvarint(out, t.vals);
}

fn read_totals(r: &mut Reader<'_>) -> Result<Totals, SnapshotError> {
    Ok(Totals {
        count: r.uvarint()?,
        sum: r.ivarint()?,
        vals: r.uvarint()?,
    })
}

fn put_contribution(out: &mut Vec<u8>, c: Contribution) {
    match c {
        Contribution::Skip => out.push(C_SKIP),
        Contribution::Hit => out.push(C_HIT),
        Contribution::Val(v) => {
            out.push(C_VAL);
            put_ivarint(out, v);
        }
    }
}

fn read_contribution(r: &mut Reader<'_>) -> Result<Contribution, SnapshotError> {
    Ok(match r.u8()? {
        C_SKIP => Contribution::Skip,
        C_HIT => Contribution::Hit,
        C_VAL => Contribution::Val(r.ivarint()?),
        _ => return Err(SnapshotError::Malformed),
    })
}

fn put_agg(out: &mut Vec<u8>, agg: &AggState) {
    match agg {
        AggState::Cumulative { t, min, max } => {
            out.push(AGG_CUMULATIVE);
            put_totals(out, t);
            put_opt_i64(out, *min);
            put_opt_i64(out, *max);
        }
        AggState::Ring {
            buf,
            cap,
            t,
            minq,
            maxq,
            pos,
        } => {
            out.push(AGG_RING);
            put_uvarint(out, *cap as u64);
            put_totals(out, t);
            put_uvarint(out, *pos);
            put_uvarint(out, buf.len() as u64);
            for &c in buf {
                put_contribution(out, c);
            }
            for q in [minq, maxq] {
                put_uvarint(out, q.len() as u64);
                for &(p, v) in q {
                    put_uvarint(out, p);
                    put_ivarint(out, v);
                }
            }
        }
        AggState::Panes { panes, width, cur } => {
            out.push(AGG_PANES);
            put_uvarint(out, *width);
            put_opt_u64(out, *cur);
            put_uvarint(out, panes.len() as u64);
            for p in panes {
                put_totals(out, &p.t);
                put_opt_i64(out, p.min);
                put_opt_i64(out, p.max);
            }
        }
        AggState::Derived => out.push(AGG_DERIVED),
    }
}

fn read_agg(r: &mut Reader<'_>) -> Result<AggState, SnapshotError> {
    Ok(match r.u8()? {
        AGG_CUMULATIVE => AggState::Cumulative {
            t: read_totals(r)?,
            min: r.opt_i64()?,
            max: r.opt_i64()?,
        },
        AGG_RING => {
            let cap = r.len()?;
            let t = read_totals(r)?;
            let pos = r.uvarint()?;
            let n = r.len()?;
            if n > cap {
                return Err(SnapshotError::Malformed);
            }
            // Restore into the same pre-allocated capacities the live
            // evaluator uses, so the steady state stays allocation-free.
            let mut buf = VecDeque::with_capacity(cap + 1);
            for _ in 0..n {
                buf.push_back(read_contribution(r)?);
            }
            let mut queues = Vec::with_capacity(2);
            for _ in 0..2 {
                let n = r.len()?;
                if n > cap {
                    return Err(SnapshotError::Malformed);
                }
                let mut q = VecDeque::with_capacity(if n == 0 { 0 } else { cap + 1 });
                for _ in 0..n {
                    let p = r.uvarint()?;
                    let v = r.ivarint()?;
                    q.push_back((p, v));
                }
                queues.push(q);
            }
            let maxq = queues.pop().expect("two queues");
            let minq = queues.pop().expect("two queues");
            AggState::Ring {
                buf,
                cap,
                t,
                minq,
                maxq,
                pos,
            }
        }
        AGG_PANES => {
            let width = r.uvarint()?.max(1);
            let cur = r.opt_u64()?;
            let n = r.len()?;
            if n > crate::eval::PANES {
                return Err(SnapshotError::Malformed);
            }
            let mut panes = Vec::with_capacity(n);
            for _ in 0..n {
                panes.push(Pane {
                    t: read_totals(r)?,
                    min: r.opt_i64()?,
                    max: r.opt_i64()?,
                });
            }
            AggState::Panes { panes, width, cur }
        }
        AGG_DERIVED => AggState::Derived,
        _ => return Err(SnapshotError::Malformed),
    })
}

/// Serializes a [`StreamState`] (minus its fork-join shard tape, which
/// never coexists with checkpoints) into self-contained bytes.
pub fn snapshot_state(s: &StreamState) -> Vec<u8> {
    let mut out = Vec::new();
    out.push(SNAPSHOT_VERSION);
    put_uvarint(&mut out, s.aggs.len() as u64);
    for a in &s.aggs {
        put_agg(&mut out, a);
    }
    put_uvarint(&mut out, s.values.len() as u64);
    for v in &s.values {
        put_opt_i64(&mut out, *v);
    }
    put_uvarint(&mut out, s.prev.len() as u64);
    for &p in &s.prev {
        out.push(u8::from(p));
    }
    put_uvarint(&mut out, s.firings.len() as u64);
    for f in &s.firings {
        put_str(&mut out, &f.trigger);
        put_uvarint(&mut out, f.at);
        put_opt_u64(&mut out, f.step);
        put_uvarint(&mut out, f.time);
        put_str(&mut out, &f.reason);
    }
    put_uvarint(&mut out, s.fired_total);
    put_uvarint(&mut out, s.deadlines.len() as u64);
    for d in &s.deadlines {
        put_opt_u64(&mut out, d.last);
        out.push(u8::from(d.open_miss));
        put_uvarint(&mut out, d.missed);
    }
    put_uvarint(&mut out, s.missed_total);
    match &s.first_miss {
        Some(m) => {
            out.push(1);
            put_str(&mut out, m);
        }
        None => out.push(0),
    }
    put_uvarint(&mut out, s.events);
    put_uvarint(&mut out, s.last_time);
    out.push(u8::from(s.lossy));
    out
}

/// Rebuilds a [`StreamState`] from [`snapshot_state`] bytes, validated
/// against `monitor`'s compiled spec: the stream, trigger, and deadline
/// counts must match, or the snapshot was taken under a different spec
/// and seeding from it would be silently wrong.
///
/// # Errors
///
/// [`SnapshotError`] on version, shape, or byte-level mismatches.
pub fn restore_state(monitor: &StreamMonitor, bytes: &[u8]) -> Result<StreamState, SnapshotError> {
    let mut r = Reader { buf: bytes, at: 0 };
    let version = r.u8()?;
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::BadVersion(version));
    }
    let spec = monitor.spec();
    let n_aggs = r.len()?;
    if n_aggs != spec.streams().len() {
        return Err(SnapshotError::SpecMismatch("stream count"));
    }
    let mut aggs = Vec::with_capacity(n_aggs);
    for _ in 0..n_aggs {
        aggs.push(read_agg(&mut r)?);
    }
    let n_values = r.len()?;
    if n_values != spec.streams().len() {
        return Err(SnapshotError::SpecMismatch("value count"));
    }
    let mut values = Vec::with_capacity(n_values);
    for _ in 0..n_values {
        values.push(r.opt_i64()?);
    }
    let n_prev = r.len()?;
    if n_prev != spec.triggers().len() {
        return Err(SnapshotError::SpecMismatch("trigger count"));
    }
    let mut prev = Vec::with_capacity(n_prev);
    for _ in 0..n_prev {
        prev.push(r.u8()? != 0);
    }
    let n_firings = r.len()?;
    let mut firings = Vec::with_capacity(n_firings);
    for _ in 0..n_firings {
        firings.push(Firing {
            trigger: r.string()?,
            at: r.uvarint()?,
            step: r.opt_u64()?,
            time: r.uvarint()?,
            reason: r.string()?,
        });
    }
    let fired_total = r.uvarint()?;
    let n_deadlines = r.len()?;
    if n_deadlines != spec.deadlines().len() {
        return Err(SnapshotError::SpecMismatch("deadline count"));
    }
    let mut deadlines = Vec::with_capacity(n_deadlines);
    for _ in 0..n_deadlines {
        deadlines.push(DeadlineState {
            last: r.opt_u64()?,
            open_miss: r.u8()? != 0,
            missed: r.uvarint()?,
        });
    }
    let missed_total = r.uvarint()?;
    let first_miss = match r.u8()? {
        0 => None,
        _ => Some(r.string()?),
    };
    let events = r.uvarint()?;
    let last_time = r.uvarint()?;
    let lossy = r.u8()? != 0;
    if r.at != bytes.len() {
        return Err(SnapshotError::Malformed);
    }
    Ok(StreamState {
        aggs,
        values,
        prev,
        firings,
        fired_total,
        deadlines,
        missed_total,
        first_miss,
        events,
        last_time,
        tape: None,
        lossy,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::StreamCheck;
    use monsem_monitor::tape::TapeEvent;
    use monsem_monitor::Monitor;
    use monsem_syntax::Annotation;

    const SPEC: &str = "stream neg = count(value < 0) over window(5)\n\
                        stream lat = max(post(req)) over window(200 ms)\n\
                        stream ratio = lat / neg\n\
                        trigger hot = neg >= 2\n\
                        deadline post(req) every 50 ms";

    fn events(n: u64) -> Vec<TapeEvent> {
        let req = Annotation::label("req");
        (0..n)
            .map(|i| {
                let v = (i as i64 % 7) - 3;
                TapeEvent::post(&req, &monsem_core::Value::Int(v), i).at(i * 20)
            })
            .collect()
    }

    fn check_equal(a: &StreamCheck, b: &StreamCheck) {
        assert_eq!(a.firings, b.firings);
        assert_eq!(a.fired_total, b.fired_total);
        assert_eq!(a.missed, b.missed);
        assert_eq!(a.state, b.state);
    }

    #[test]
    fn snapshot_roundtrips_mid_trace() {
        let m = StreamMonitor::new("snap", SPEC).unwrap();
        let evs = events(40);
        let mid = m.check_tape(evs.iter().take(17)).state;
        let bytes = snapshot_state(&mid);
        let restored = restore_state(&m, &bytes).unwrap();
        assert_eq!(restored, mid);
        // And the restored state evolves identically from there on.
        let full = m.check_tape(evs.iter());
        let seeded = m.check_tape_seeded(restored, evs.iter().skip(17));
        check_equal(&full, &seeded);
    }

    #[test]
    fn snapshot_rejects_a_different_spec() {
        let m = StreamMonitor::new("snap", SPEC).unwrap();
        let other = StreamMonitor::new("other", "stream s = count(post(_))").unwrap();
        let bytes = snapshot_state(&m.initial_state());
        assert!(matches!(
            restore_state(&other, &bytes),
            Err(SnapshotError::SpecMismatch(_))
        ));
    }

    #[test]
    fn truncated_and_versioned_snapshots_are_rejected() {
        let m = StreamMonitor::new("snap", SPEC).unwrap();
        let bytes = snapshot_state(&m.check_tape(events(9).iter()).state);
        assert!(restore_state(&m, &bytes[..bytes.len() - 1]).is_err());
        let mut bad = bytes.clone();
        bad[0] = 9;
        assert_eq!(restore_state(&m, &bad), Err(SnapshotError::BadVersion(9)));
        // Trailing garbage is not silently ignored either.
        let mut long = bytes;
        long.push(0);
        assert_eq!(restore_state(&m, &long), Err(SnapshotError::Malformed));
    }
}
