//! The constant-memory, constant-time-per-event evaluator core.
//!
//! One [`AggState`] per stream, chosen by the compiler from the window
//! shape:
//!
//! * **Cumulative** (no window) — running totals plus running min/max:
//!   O(1) state, O(1) per event.
//! * **Ring** (`window(k)`) — a ring buffer of the last `k`
//!   [`Contribution`]s. `count`/`sum`/`avg` are *invertible*: the evicted
//!   contribution is subtracted from running totals (wrapping arithmetic,
//!   so insert/evict cancel exactly). `min`/`max` are not invertible and
//!   use the classic monotonic-deque sliding-extremum structure, still
//!   amortized O(1) per event with at most `k` retained entries.
//! * **Panes** (`window(d ms)`) — time windows are quantized into
//!   [`PANES`] fixed panes of width `ceil(d/PANES)` ms each; an event
//!   lands in the pane its timestamp falls in, expired panes are cleared
//!   in place as time advances, and a read folds the live panes. The
//!   effective window is `ceil(d/PANES)·PANES ≥ d` ms — a documented
//!   quantization, in exchange for O(1) memory independent of event
//!   rate.
//!
//! Every structure is pre-allocated by [`AggState::for_stream`]; no
//! steady-state evaluation path allocates (the paper-tables bench pins
//! this with a counting allocator).

use crate::ast::{Agg, WindowSpec};
use crate::compile::{RCond, RExpr, RStreamKind};
use monsem_monitor::tape::TapePhase;
use monsem_tspec::{Atom, NamePat, Pred};
use std::collections::VecDeque;

/// Number of panes a time window is quantized into.
pub const PANES: usize = 32;

/// A minimal view of one event, shared by the live hooks (built from an
/// `Annotation` + `Value`) and tape replay (built from a
/// [`TapeEvent`](monsem_monitor::tape::TapeEvent)) — so both paths
/// evaluate predicates identically.
#[derive(Debug, Clone, Copy)]
pub struct EvView<'a> {
    /// Which hook fired (or `Done` at trace end).
    pub phase: TapePhase,
    /// The annotation name (`""` for `done`).
    pub name: &'a str,
    /// The observed integer value, for `post` events that produced one.
    pub int: Option<i64>,
    /// Whether the observed value is a definitely-unsorted list.
    pub unsorted: bool,
}

impl EvView<'static> {
    /// The synthetic end-of-trace event.
    pub fn done() -> EvView<'static> {
        EvView {
            phase: TapePhase::Done,
            name: "",
            int: None,
            unsorted: false,
        }
    }
}

fn name_matches(pat: &NamePat, name: &str) -> bool {
    match pat {
        NamePat::Any => true,
        NamePat::Name(id) => id.as_str() == name,
    }
}

/// Evaluates one tspec atom against an event view. This is the stream
/// crate's direct (non-automaton) reading of the shared predicate layer;
/// it agrees with the DFA alphabet abstraction on every atom.
pub fn atom_holds(atom: &Atom, ev: &EvView<'_>) -> bool {
    match atom {
        Atom::True => true,
        Atom::False => false,
        Atom::Pre(pat) => ev.phase == TapePhase::Pre && name_matches(pat, ev.name),
        Atom::Post(pat) => ev.phase == TapePhase::Post && name_matches(pat, ev.name),
        Atom::At(pat) => {
            matches!(ev.phase, TapePhase::Pre | TapePhase::Post) && name_matches(pat, ev.name)
        }
        Atom::Done => ev.phase == TapePhase::Done,
        Atom::Value(op, n) => {
            ev.phase == TapePhase::Post && ev.int.is_some_and(|v| op.holds(v, *n))
        }
        Atom::Unsorted => ev.phase == TapePhase::Post && ev.unsorted,
    }
}

/// Evaluates a tspec predicate against an event view.
pub fn pred_holds(pred: &Pred, ev: &EvView<'_>) -> bool {
    match pred {
        Pred::Atom(a) => atom_holds(a, ev),
        Pred::Not(p) => !pred_holds(p, ev),
        Pred::And(p, q) => pred_holds(p, ev) && pred_holds(q, ev),
        Pred::Or(p, q) => pred_holds(p, ev) || pred_holds(q, ev),
    }
}

/// Evaluates a resolved value expression over the current stream values.
/// Undefined operands, overflow, and division by zero all yield `None`.
pub fn eval_expr(e: &RExpr, values: &[Option<i64>]) -> Option<i64> {
    match e {
        RExpr::Const(n) => Some(*n),
        RExpr::Stream(i) => values[*i],
        RExpr::Bin(op, a, b) => {
            let a = eval_expr(a, values)?;
            let b = eval_expr(b, values)?;
            op.apply(a, b)
        }
    }
}

/// Evaluates a resolved trigger condition. Comparisons with an undefined
/// side are false; `not` is classical.
pub fn eval_cond(c: &RCond, values: &[Option<i64>], ev: &EvView<'_>) -> bool {
    match c {
        RCond::Event(p) => pred_holds(p, ev),
        RCond::Cmp(a, op, b) => match (eval_expr(a, values), eval_expr(b, values)) {
            (Some(a), Some(b)) => op.holds(a, b),
            _ => false,
        },
        RCond::Not(c) => !eval_cond(c, values, ev),
        RCond::And(a, b) => eval_cond(a, values, ev) && eval_cond(b, values, ev),
        RCond::Or(a, b) => eval_cond(a, values, ev) || eval_cond(b, values, ev),
    }
}

/// What one observed event contributed to one aggregate stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Contribution {
    /// The event did not match the stream's predicate. Stored so that
    /// event-count windows slide over *observed* events, not matches.
    Skip,
    /// Matched, but carried no integer value (a `pre` event, or a
    /// non-integer result): counts for `count`/`rate` only.
    Hit,
    /// Matched with an integer value: counts for everything.
    Val(i64),
}

/// Invertible running totals over a set of contributions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Totals {
    /// Matching events (`Hit` + `Val`).
    pub count: u64,
    /// Wrapping sum of `Val` contributions. Insert and evict use the same
    /// wrapping arithmetic, so they cancel exactly and the windowed sum
    /// is exact whenever the true sum fits in `i64`.
    pub sum: i64,
    /// Number of `Val` contributions.
    pub vals: u64,
}

impl Totals {
    fn add(&mut self, c: Contribution) {
        match c {
            Contribution::Skip => {}
            Contribution::Hit => self.count += 1,
            Contribution::Val(v) => {
                self.count += 1;
                self.vals += 1;
                self.sum = self.sum.wrapping_add(v);
            }
        }
    }

    fn remove(&mut self, c: Contribution) {
        match c {
            Contribution::Skip => {}
            Contribution::Hit => self.count -= 1,
            Contribution::Val(v) => {
                self.count -= 1;
                self.vals -= 1;
                self.sum = self.sum.wrapping_sub(v);
            }
        }
    }
}

/// One pane of a quantized time window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Pane {
    /// Totals of the contributions that landed in this pane.
    pub t: Totals,
    /// Smallest `Val` in the pane.
    pub min: Option<i64>,
    /// Largest `Val` in the pane.
    pub max: Option<i64>,
}

impl Pane {
    fn clear(&mut self) {
        *self = Pane::default();
    }

    fn add(&mut self, c: Contribution) {
        self.t.add(c);
        if let Contribution::Val(v) = c {
            self.min = Some(self.min.map_or(v, |m| m.min(v)));
            self.max = Some(self.max.map_or(v, |m| m.max(v)));
        }
    }
}

/// Per-stream evaluator state; the variant is fixed at compile time by
/// the stream's window shape.
#[derive(Debug, Clone, PartialEq)]
pub enum AggState {
    /// No window: running totals and extrema over the whole trace.
    Cumulative {
        /// Running totals.
        t: Totals,
        /// Running minimum of `Val` contributions.
        min: Option<i64>,
        /// Running maximum.
        max: Option<i64>,
    },
    /// `window(k)`: a ring of the last `k` contributions.
    Ring {
        /// The retained contributions, oldest first; at most `cap`.
        buf: VecDeque<Contribution>,
        /// The ring's capacity (the declared window width).
        cap: usize,
        /// Running totals over the ring.
        t: Totals,
        /// Monotonic deque of `(position, value)` for the sliding
        /// minimum; empty unless the aggregate is `min`/`max`.
        minq: VecDeque<(u64, i64)>,
        /// Monotonic deque for the sliding maximum.
        maxq: VecDeque<(u64, i64)>,
        /// Observed-event positions pushed so far (the key the deques
        /// expire against).
        pos: u64,
    },
    /// `window(d ms)`: [`PANES`] panes of `width` ms each.
    Panes {
        /// The panes, indexed by `pane_index % PANES`.
        panes: Vec<Pane>,
        /// Pane width in milliseconds.
        width: u64,
        /// The most recent pane index, or `None` before the first event.
        cur: Option<u64>,
    },
    /// Derived streams carry no event state.
    Derived,
}

impl AggState {
    /// Builds (and fully pre-allocates) the state for one resolved
    /// stream.
    pub fn for_stream(kind: &RStreamKind) -> AggState {
        match kind {
            RStreamKind::Aggregate {
                agg,
                window: Some(WindowSpec::Events(k)),
                ..
            } => {
                let track_extrema = matches!(agg, Agg::Min | Agg::Max);
                AggState::Ring {
                    buf: VecDeque::with_capacity(*k + 1),
                    cap: *k,
                    t: Totals::default(),
                    minq: VecDeque::with_capacity(if track_extrema { *k + 1 } else { 0 }),
                    maxq: VecDeque::with_capacity(if track_extrema { *k + 1 } else { 0 }),
                    pos: 0,
                }
            }
            RStreamKind::Aggregate {
                window: Some(WindowSpec::Time(d)),
                ..
            } => AggState::Panes {
                panes: vec![Pane::default(); PANES],
                width: d.div_ceil(PANES as u64).max(1),
                cur: None,
            },
            RStreamKind::Aggregate { window: None, .. } => AggState::Cumulative {
                t: Totals::default(),
                min: None,
                max: None,
            },
            RStreamKind::Derived(_) => AggState::Derived,
        }
    }

    /// Feeds one observed event: `c` is what it contributes (already
    /// computed from the stream's predicate), `time` its resolved
    /// monotone timestamp, `track_extrema` whether the aggregate needs
    /// the min/max deques. O(1) amortized; never allocates.
    pub fn step(&mut self, c: Contribution, time: u64, track_extrema: bool) {
        match self {
            AggState::Cumulative { t, min, max } => {
                t.add(c);
                if let Contribution::Val(v) = c {
                    *min = Some(min.map_or(v, |m| m.min(v)));
                    *max = Some(max.map_or(v, |m| m.max(v)));
                }
            }
            AggState::Ring {
                buf,
                cap,
                t,
                minq,
                maxq,
                pos,
            } => {
                buf.push_back(c);
                t.add(c);
                if buf.len() > *cap {
                    let old = buf.pop_front().expect("ring past cap is non-empty");
                    t.remove(old);
                }
                if track_extrema {
                    let p = *pos;
                    if let Contribution::Val(v) = c {
                        while minq.back().is_some_and(|&(_, b)| b >= v) {
                            minq.pop_back();
                        }
                        minq.push_back((p, v));
                        while maxq.back().is_some_and(|&(_, b)| b <= v) {
                            maxq.pop_back();
                        }
                        maxq.push_back((p, v));
                    }
                    // Expire entries that slid out of the window
                    // [p + 1 - cap, p].
                    let lo = (p + 1).saturating_sub(*cap as u64);
                    while minq.front().is_some_and(|&(q, _)| q < lo) {
                        minq.pop_front();
                    }
                    while maxq.front().is_some_and(|&(q, _)| q < lo) {
                        maxq.pop_front();
                    }
                }
                *pos += 1;
            }
            AggState::Panes { panes, width, cur } => {
                let idx = time / *width;
                match *cur {
                    None => *cur = Some(idx),
                    Some(prev) if idx > prev => {
                        // Clear the panes between prev and idx; a jump of
                        // a full window clears everything.
                        let steps = (idx - prev).min(PANES as u64);
                        for s in 1..=steps {
                            panes[((prev + s) % PANES as u64) as usize].clear();
                        }
                        *cur = Some(idx);
                    }
                    Some(_) => {}
                }
                panes[(idx % PANES as u64) as usize].add(c);
            }
            AggState::Derived => {}
        }
    }

    /// Reads the aggregate's current value for `agg`. `min`/`max`/`avg`
    /// are undefined until a `Val` contribution is in scope; `count` and
    /// `rate` are always defined.
    pub fn value(&self, agg: Agg) -> Option<i64> {
        match self {
            AggState::Cumulative { t, min, max } => scalar(agg, t, *min, *max, None),
            AggState::Ring { t, minq, maxq, .. } => scalar(
                agg,
                t,
                minq.front().map(|&(_, v)| v),
                maxq.front().map(|&(_, v)| v),
                None,
            ),
            AggState::Panes { panes, width, .. } => {
                let mut t = Totals::default();
                let mut min: Option<i64> = None;
                let mut max: Option<i64> = None;
                for p in panes {
                    t.count += p.t.count;
                    t.vals += p.t.vals;
                    t.sum = t.sum.wrapping_add(p.t.sum);
                    if let Some(v) = p.min {
                        min = Some(min.map_or(v, |m| m.min(v)));
                    }
                    if let Some(v) = p.max {
                        max = Some(max.map_or(v, |m| m.max(v)));
                    }
                }
                scalar(agg, &t, min, max, Some(*width * PANES as u64))
            }
            AggState::Derived => None,
        }
    }
}

fn scalar(
    agg: Agg,
    t: &Totals,
    min: Option<i64>,
    max: Option<i64>,
    span_ms: Option<u64>,
) -> Option<i64> {
    match agg {
        Agg::Count => Some(t.count as i64),
        Agg::Sum => Some(t.sum),
        Agg::Avg => {
            if t.vals > 0 {
                Some(t.sum.wrapping_div(t.vals as i64))
            } else {
                None
            }
        }
        Agg::Min => min,
        Agg::Max => max,
        Agg::Rate => {
            let span = span_ms.expect("compile guarantees rate has a time window");
            Some((t.count as i64).saturating_mul(1000) / span as i64)
        }
    }
}

/// Per-deadline evaluator state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeadlineState {
    /// Timestamp of the last matching event (initialized to the first
    /// observed event's time — the trace start is the first deadline's
    /// baseline).
    pub last: Option<u64>,
    /// Whether the current gap has already been reported as missed (one
    /// miss per gap, flagged at the first event past the period).
    pub open_miss: bool,
    /// Misses charged to this deadline.
    pub missed: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::StreamSpec;

    fn ring_for(src: &str) -> AggState {
        let spec = StreamSpec::parse(src).unwrap();
        AggState::for_stream(&spec.streams()[0].kind)
    }

    #[test]
    fn atoms_evaluate_against_both_phases() {
        let pre = EvView {
            phase: TapePhase::Pre,
            name: "f",
            int: None,
            unsorted: false,
        };
        let post = EvView {
            phase: TapePhase::Post,
            name: "f",
            int: Some(-2),
            unsorted: true,
        };
        let ident = monsem_syntax::Ident::new("f");
        assert!(atom_holds(&Atom::Pre(NamePat::Name(ident.clone())), &pre));
        assert!(!atom_holds(&Atom::Pre(NamePat::Name(ident.clone())), &post));
        assert!(atom_holds(&Atom::At(NamePat::Any), &pre));
        assert!(atom_holds(&Atom::Value(monsem_tspec::CmpOp::Lt, 0), &post));
        assert!(!atom_holds(&Atom::Value(monsem_tspec::CmpOp::Lt, 0), &pre));
        assert!(atom_holds(&Atom::Unsorted, &post));
        assert!(atom_holds(&Atom::Done, &EvView::done()));
    }

    #[test]
    fn ring_slides_over_observed_events_and_inverts_totals() {
        let mut s = ring_for("stream s = sum(post(_)) over window(3)");
        for (c, want) in [
            (Contribution::Val(5), 5),
            (Contribution::Skip, 5),
            (Contribution::Val(7), 12),
            (Contribution::Val(1), 8), // the 5 slid out
            (Contribution::Skip, 8),   // the Skip slid out
            (Contribution::Skip, 1),   // the 7 slid out
        ] {
            s.step(c, 0, false);
            assert_eq!(s.value(Agg::Sum), Some(want));
        }
    }

    #[test]
    fn monotonic_deques_track_the_sliding_extrema() {
        let mut s = ring_for("stream s = min(post(_)) over window(3)");
        let feed: &[(i64, Option<i64>, Option<i64>)] = &[
            (5, Some(5), Some(5)),
            (3, Some(3), Some(5)),
            (8, Some(3), Some(8)),
            (6, Some(3), Some(8)), // 5 out
            (1, Some(1), Some(8)), // 3 out
            (2, Some(1), Some(6)), // 8 out
        ];
        for &(v, min, max) in feed {
            s.step(Contribution::Val(v), 0, true);
            assert_eq!(s.value(Agg::Min), min);
            assert_eq!(s.value(Agg::Max), max);
        }
    }

    #[test]
    fn panes_expire_by_time_not_by_count() {
        // window(64 ms) over 32 panes → width 2 ms, span 64 ms.
        let mut s = AggState::for_stream(&RStreamKind::Aggregate {
            agg: Agg::Count,
            pred: Pred::Atom(Atom::True),
            window: Some(WindowSpec::Time(64)),
        });
        s.step(Contribution::Hit, 0, false);
        s.step(Contribution::Hit, 10, false);
        assert_eq!(s.value(Agg::Count), Some(2));
        // 70ms: the pane holding t=0 expired, t=10 still live.
        s.step(Contribution::Hit, 70, false);
        assert_eq!(s.value(Agg::Count), Some(2));
        // A jump past the whole window clears everything else.
        s.step(Contribution::Hit, 10_000, false);
        assert_eq!(s.value(Agg::Count), Some(1));
    }

    #[test]
    fn rate_is_count_scaled_to_events_per_second() {
        // window(320 ms) → width 10, span 320.
        let mut s = AggState::for_stream(&RStreamKind::Aggregate {
            agg: Agg::Rate,
            pred: Pred::Atom(Atom::True),
            window: Some(WindowSpec::Time(320)),
        });
        assert_eq!(s.value(Agg::Rate), Some(0));
        for t in 0..32 {
            s.step(Contribution::Hit, t * 10, false);
        }
        // 32 events in a 320 ms span = 100 events/s.
        assert_eq!(s.value(Agg::Rate), Some(100));
    }

    #[test]
    fn cumulative_aggregates_never_forget() {
        let mut s = AggState::for_stream(&RStreamKind::Aggregate {
            agg: Agg::Avg,
            pred: Pred::Atom(Atom::True),
            window: None,
        });
        assert_eq!(s.value(Agg::Avg), None, "undefined before any value");
        for v in [2, 4, 9] {
            s.step(Contribution::Val(v), 0, false);
        }
        assert_eq!(s.value(Agg::Avg), Some(5));
        assert_eq!(s.value(Agg::Min), Some(2));
        assert_eq!(s.value(Agg::Max), Some(9));
        assert_eq!(s.value(Agg::Count), Some(3));
    }

    #[test]
    fn expressions_propagate_undefinedness() {
        use crate::ast::BinOp;
        let values = [Some(6), None, Some(0)];
        let s = |i| Box::new(RExpr::Stream(i));
        assert_eq!(
            eval_expr(&RExpr::Bin(BinOp::Add, s(0), s(0)), &values),
            Some(12)
        );
        assert_eq!(
            eval_expr(&RExpr::Bin(BinOp::Add, s(0), s(1)), &values),
            None
        );
        assert_eq!(
            eval_expr(&RExpr::Bin(BinOp::Div, s(0), s(2)), &values),
            None
        );
        let big = Box::new(RExpr::Const(i64::MAX));
        assert_eq!(
            eval_expr(&RExpr::Bin(BinOp::Mul, big.clone(), big), &values),
            None
        );
        // Comparisons over undefined sides are false; `not` is classical.
        let undef_gt = RCond::Cmp(RExpr::Stream(1), monsem_tspec::CmpOp::Gt, RExpr::Const(0));
        let ev = EvView::done();
        assert!(!eval_cond(&undef_gt, &values, &ev));
        assert!(eval_cond(&RCond::Not(Box::new(undef_gt)), &values, &ev));
    }

    #[test]
    fn ring_steady_state_does_not_allocate() {
        // Capacity check: after warmup the ring and deques never exceed
        // their pre-allocated capacities, so push_back cannot reallocate.
        let mut s = ring_for("stream s = min(post(_)) over window(16)");
        for i in 0..1000i64 {
            s.step(Contribution::Val(i % 37), 0, true);
            let AggState::Ring {
                buf,
                minq,
                maxq,
                cap,
                ..
            } = &s
            else {
                panic!("expected ring");
            };
            assert!(buf.len() <= *cap);
            assert!(minq.len() <= *cap && maxq.len() <= *cap);
        }
    }
}
