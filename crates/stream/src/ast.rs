//! Abstract syntax for stream specifications.
//!
//! A stream spec is a list of declarations over the monitored event
//! stream:
//!
//! * **aggregate streams** — `stream errs = count(post(err)) over
//!   window(100)` — a windowed aggregate of the events matching a tspec
//!   event predicate;
//! * **derived streams** — `stream load = errs * 100 / total` — integer
//!   arithmetic over other streams, re-evaluated after every observed
//!   event;
//! * **triggers** — `trigger slo = load > 10 and post(req)` — boolean
//!   conditions mixing stream-value comparisons with tspec event atoms,
//!   fired on rising edges;
//! * **deadlines** — `deadline post(beat) every 50 ms` — periodic-rate
//!   declarations: a gap between consecutive matching events longer than
//!   the period is a *miss*.
//!
//! The event-predicate layer ([`Pred`]/[`monsem_tspec::Atom`]) is tspec's own — the
//! two spec languages share one predicate surface, so `pre(f)`,
//! `post(f)`, `value ⋈ n`, and `unsorted` mean the same thing in both.

use monsem_tspec::{CmpOp, Pred};

/// The aggregation functions available to aggregate streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Agg {
    /// Number of matching events in the window.
    Count,
    /// Sum of the integer values of matching `post` events.
    Sum,
    /// Integer mean (truncated toward zero) of the integer values.
    Avg,
    /// Smallest integer value in the window.
    Min,
    /// Largest integer value in the window.
    Max,
    /// Matching events per second; requires a time window.
    Rate,
}

impl Agg {
    /// The surface keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            Agg::Count => "count",
            Agg::Sum => "sum",
            Agg::Avg => "avg",
            Agg::Min => "min",
            Agg::Max => "max",
            Agg::Rate => "rate",
        }
    }

    /// Parses a surface keyword.
    pub fn from_keyword(word: &str) -> Option<Agg> {
        Some(match word {
            "count" => Agg::Count,
            "sum" => Agg::Sum,
            "avg" => Agg::Avg,
            "min" => Agg::Min,
            "max" => Agg::Max,
            "rate" => Agg::Rate,
            _ => return None,
        })
    }
}

/// A sliding window: the scope an aggregate ranges over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowSpec {
    /// `window(k)` — the last `k` observed events.
    Events(usize),
    /// `window(d ms)` — the (pane-quantized) last `d` milliseconds.
    Time(u64),
}

/// The right-hand side of a `stream` declaration.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamDef {
    /// A windowed (or cumulative, when `window` is `None`) aggregate of
    /// the events matching `pred`.
    Aggregate {
        /// The aggregation function.
        agg: Agg,
        /// Which events contribute.
        pred: Pred,
        /// The window; `None` aggregates over the whole trace.
        window: Option<WindowSpec>,
    },
    /// Integer arithmetic over other streams.
    Derived(ValueExpr),
}

/// One `stream` declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamDecl {
    /// The declared stream name.
    pub name: String,
    /// Its definition.
    pub def: StreamDef,
    /// Byte offset of the declaration, for error reporting.
    pub offset: usize,
}

/// Integer arithmetic over stream values and constants. Every stream
/// value is an `Option<i64>` — an aggregate with no contributing events
/// yet (`min`/`max`/`avg`) is *undefined* — and expressions propagate
/// undefinedness: any undefined operand, division by zero, or overflow
/// makes the whole expression undefined.
#[derive(Debug, Clone, PartialEq)]
pub enum ValueExpr {
    /// An integer literal.
    Const(i64),
    /// A reference to another stream's current value.
    Stream(String),
    /// A binary arithmetic operation.
    Bin(BinOp, Box<ValueExpr>, Box<ValueExpr>),
}

/// Arithmetic operators for derived streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (truncating; division by zero is undefined)
    Div,
}

impl BinOp {
    /// Applies the operation with overflow and division-by-zero checks.
    pub fn apply(self, lhs: i64, rhs: i64) -> Option<i64> {
        match self {
            BinOp::Add => lhs.checked_add(rhs),
            BinOp::Sub => lhs.checked_sub(rhs),
            BinOp::Mul => lhs.checked_mul(rhs),
            BinOp::Div => lhs.checked_div(rhs),
        }
    }
}

/// A trigger condition: boolean structure owned by the stream language,
/// with tspec event atoms and stream-value comparisons at the leaves.
///
/// A [`Cond::Cmp`] whose either side is undefined is *false* — a trigger
/// does not fire on streams that have not produced a value yet.
#[derive(Debug, Clone, PartialEq)]
pub enum Cond {
    /// A tspec event predicate on the current event.
    Event(Pred),
    /// A comparison over stream values.
    Cmp(ValueExpr, CmpOp, ValueExpr),
    /// `not c`
    Not(Box<Cond>),
    /// `c and d`
    And(Box<Cond>, Box<Cond>),
    /// `c or d`
    Or(Box<Cond>, Box<Cond>),
}

/// One `trigger` declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct TriggerDecl {
    /// The trigger's name, quoted in firing reasons.
    pub name: String,
    /// The condition; the trigger fires on rising edges.
    pub cond: Cond,
    /// Byte offset of the declaration.
    pub offset: usize,
}

/// One `deadline` declaration: `deadline <pred> every <n> ms`.
#[derive(Debug, Clone, PartialEq)]
pub struct DeadlineDecl {
    /// Which events reset the deadline clock.
    pub pred: Pred,
    /// The period in milliseconds.
    pub period: u64,
    /// The declaration's source text, quoted in miss reasons.
    pub text: String,
    /// Byte offset of the declaration.
    pub offset: usize,
}

/// A parsed (not yet compiled) stream specification.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SpecAst {
    /// The `stream` declarations, in source order.
    pub streams: Vec<StreamDecl>,
    /// The `trigger` declarations, in source order.
    pub triggers: Vec<TriggerDecl>,
    /// The `deadline` declarations, in source order.
    pub deadlines: Vec<DeadlineDecl>,
}
