//! The stream-spec-as-[`Monitor`] adapter.
//!
//! [`StreamMonitor`] runs a compiled [`StreamSpec`] against the event
//! stream of a monitored evaluation. In the paper's factoring: **MSyn**
//! is the stream declaration language (gated per namespace and hook
//! phase), **MAlg** is [`StreamState`] — ring buffers, panes, monotonic
//! deques, trigger edges, deadline clocks — and **MFun** is
//! [`StreamMonitor::step_event`], a constant-time state transformer per
//! observed event.
//!
//! An *observing* monitor records trigger firings and deadline misses in
//! its state and never vetoes — answer-preserving in the sense of
//! Theorem 7.7. [`StreamMonitor::enforcing`] upgrades a trigger firing
//! to an [`Outcome::Abort`]; deadline misses are always observed only
//! (a late heartbeat is evidence about the *past* — aborting cannot
//! un-miss it).
//!
//! # Time
//!
//! Every observed event gets a monotone millisecond timestamp, resolved
//! in priority order: the tape timestamp (format v2), the monitor's wall
//! clock (see [`StreamMonitor::with_wall_clock`]), else *logical time* —
//! the observed-event ordinal. Offline checking of an untimed tape and a
//! live run without a wall clock therefore agree exactly.

use crate::compile::{RStreamKind, StreamSpec};
use crate::eval::{
    eval_cond, eval_expr, pred_holds, AggState, Contribution, DeadlineState, EvView,
};
use monsem_core::Value;
use monsem_monitor::tape::{value_is_unsorted, TapeEvent, TapePhase};
use monsem_monitor::{HookPhase, MergeMonitor, Monitor, Outcome, Scope};
use monsem_syntax::{Annotation, Expr, Namespace};
use monsem_tspec::SpecError;
use std::sync::Arc;
use std::time::Instant;

/// Default bound on the firings retained in a [`StreamState`] (the
/// totals keep counting past it).
pub const DEFAULT_FIRINGS_CAP: usize = 256;

/// Default bound on the per-shard replay tape kept by states born from
/// [`MergeMonitor::split`], mirroring tspec's replay cap.
pub const DEFAULT_REPLAY_CAP: usize = 8192;

/// A compiled stream specification running as a monitor.
#[derive(Debug, Clone)]
pub struct StreamMonitor {
    name: String,
    namespace: Namespace,
    spec: Arc<StreamSpec>,
    enforcing: bool,
    firings_cap: usize,
    replay_cap: usize,
    epoch: Option<Instant>,
}

/// One trigger firing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Firing {
    /// The trigger's declared name.
    pub trigger: String,
    /// Ordinal (1-based) of the observed event that fired it; one past
    /// the last ordinal for end-of-trace (`done`) firings.
    pub at: u64,
    /// The tape step index of the firing event, when replayed from a
    /// tape.
    pub step: Option<u64>,
    /// The event's resolved timestamp (ms).
    pub time: u64,
    /// Rendered reason, including a snapshot of the stream values.
    pub reason: String,
}

/// One event retained in a shard's replay tape: exactly the inputs
/// [`StreamMonitor::step_event`] consumes, with the time already
/// resolved, so the join replays the shard deterministically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardEvent {
    /// The hook phase.
    pub phase: TapePhase,
    /// The annotation name.
    pub name: String,
    /// The observed integer value, if any.
    pub int: Option<i64>,
    /// Whether the observed value was a definitely-unsorted list.
    pub unsorted: bool,
    /// The resolved monotone timestamp.
    pub time: u64,
    /// The tape step index, when the shard itself replayed from a tape.
    pub step: Option<u64>,
}

/// A shard's bounded replay tape (the stream analogue of tspec's
/// [`ShardTape`](monsem_tspec::ShardTape)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamShardTape {
    /// Retained events, oldest first; at most `cap`.
    pub events: Vec<ShardEvent>,
    /// Events observed but not retained (cap overflow). Non-zero tapes
    /// no longer support exact replay.
    pub dropped: u64,
    /// The observed-event count at the split point.
    pub origin_events: u64,
    /// The fired-total at the split point.
    pub origin_fired: u64,
    /// The missed-total at the split point.
    pub origin_missed: u64,
    /// The retention bound.
    pub cap: usize,
}

impl StreamShardTape {
    fn new(origin: &StreamState, cap: usize) -> StreamShardTape {
        StreamShardTape {
            events: Vec::new(),
            dropped: 0,
            origin_events: origin.events,
            origin_fired: origin.fired_total,
            origin_missed: origin.missed_total,
            cap,
        }
    }

    fn push(&mut self, ev: ShardEvent) {
        if self.events.len() < self.cap {
            self.events.push(ev);
        } else {
            self.dropped += 1;
        }
    }
}

/// The monitor state: per-stream aggregate state, current values,
/// trigger edges, deadline clocks, and the recorded verdict trail.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamState {
    /// Per-stream evaluator state, parallel to
    /// [`StreamSpec::streams`].
    pub aggs: Vec<AggState>,
    /// Current value of each stream (undefined aggregates are `None`).
    pub values: Vec<Option<i64>>,
    /// Previous truth of each trigger (for rising-edge detection).
    pub prev: Vec<bool>,
    /// Retained firings, oldest first (bounded by the monitor's
    /// firings cap).
    pub firings: Vec<Firing>,
    /// Total firings, including any past the retention cap.
    pub fired_total: u64,
    /// Per-deadline clocks, parallel to [`StreamSpec::deadlines`].
    pub deadlines: Vec<DeadlineState>,
    /// Total deadline misses.
    pub missed_total: u64,
    /// The first miss's rendered reason.
    pub first_miss: Option<String>,
    /// Observed events (after namespace and phase gating).
    pub events: u64,
    /// The last resolved timestamp (monotone clamp floor).
    pub last_time: u64,
    /// The bounded replay tape since this state was born from
    /// [`MergeMonitor::split`]; `None` outside fork-join evaluation.
    pub tape: Option<StreamShardTape>,
    /// Whether this state passed through a lossy (non-replay) merge: the
    /// aggregate values are then a conservative continuation. Recorded
    /// firings and misses remain authoritative.
    pub lossy: bool,
}

impl StreamMonitor {
    /// Parses and compiles `src` into an *observing* monitor named
    /// `name`, watching the anonymous namespace, using logical time.
    ///
    /// # Errors
    ///
    /// Parse or compile errors, with byte offsets.
    pub fn new(name: impl Into<String>, src: &str) -> Result<Self, SpecError> {
        Ok(Self::from_spec(name, StreamSpec::parse(src)?))
    }

    /// Wraps an already-compiled [`StreamSpec`].
    pub fn from_spec(name: impl Into<String>, spec: StreamSpec) -> Self {
        StreamMonitor {
            name: name.into(),
            namespace: Namespace::anonymous(),
            spec: Arc::new(spec),
            enforcing: false,
            firings_cap: DEFAULT_FIRINGS_CAP,
            replay_cap: DEFAULT_REPLAY_CAP,
            epoch: None,
        }
    }

    /// Upgrades to an enforcing monitor: a trigger firing aborts the
    /// evaluation. Deadline misses stay observational.
    pub fn enforcing(mut self) -> Self {
        self.enforcing = true;
        self
    }

    /// Restricts the monitor to annotations in `namespace`.
    pub fn in_namespace(mut self, namespace: Namespace) -> Self {
        self.namespace = namespace;
        self
    }

    /// Bounds the retained firings (default [`DEFAULT_FIRINGS_CAP`]).
    pub fn firings_cap(mut self, cap: usize) -> Self {
        self.firings_cap = cap;
        self
    }

    /// Bounds the per-shard replay tape (default
    /// [`DEFAULT_REPLAY_CAP`]).
    pub fn replay_cap(mut self, cap: usize) -> Self {
        self.replay_cap = cap;
        self
    }

    /// Attaches a wall clock: live events without a tape timestamp are
    /// stamped with milliseconds since this call. Without it the monitor
    /// uses *logical* time (the observed-event ordinal), which is
    /// deterministic.
    pub fn with_wall_clock(mut self) -> Self {
        self.epoch = Some(Instant::now());
        self
    }

    /// The compiled spec.
    pub fn spec(&self) -> &Arc<StreamSpec> {
        &self.spec
    }

    /// The namespace this monitor watches.
    pub fn namespace(&self) -> &Namespace {
        &self.namespace
    }

    /// Whether trigger firings abort evaluation.
    pub fn is_enforcing(&self) -> bool {
        self.enforcing
    }

    fn ours(&self, ann: &Annotation) -> bool {
        ann.namespace == self.namespace
    }

    fn wall_now(&self) -> Option<u64> {
        self.epoch.map(|e| e.elapsed().as_millis() as u64)
    }

    fn observes_phase(&self, phase: TapePhase) -> bool {
        match phase {
            TapePhase::Pre => self.spec.observes_pre(),
            TapePhase::Post => self.spec.observes_post(),
            TapePhase::Done => false,
        }
    }

    fn render_values(&self, values: &[Option<i64>]) -> String {
        let mut out = String::new();
        for (s, v) in self.spec.streams().iter().zip(values) {
            if !out.is_empty() {
                out.push(' ');
            }
            out.push_str(&s.name);
            out.push('=');
            match v {
                Some(n) => out.push_str(&n.to_string()),
                None => out.push('?'),
            }
        }
        out
    }

    fn describe_event(ev: &EvView<'_>) -> String {
        match (ev.phase, ev.int) {
            (TapePhase::Pre, _) => format!("pre {}", ev.name),
            (TapePhase::Post, Some(v)) => format!("post {} = {v}", ev.name),
            (TapePhase::Post, None) => format!("post {}", ev.name),
            (TapePhase::Done, _) => "done".to_string(),
        }
    }

    /// Advances the state by one observed event. Shared by the live
    /// hooks, tape replay, and shard-merge replay, so all three evolve
    /// states identically.
    ///
    /// `time_hint` is the event's timestamp if one is known (tape v2, or
    /// a shard replay); otherwise the wall clock or logical time fills
    /// in. Events at a phase the spec cannot react to are not observed
    /// at all — the state is returned untouched, which is exactly the
    /// contract [`Monitor::accepts_event`] gating relies on.
    pub fn step_event(
        &self,
        mut s: StreamState,
        ev: &EvView<'_>,
        step: Option<u64>,
        time_hint: Option<u64>,
    ) -> Outcome<StreamState> {
        if !self.observes_phase(ev.phase) {
            return Outcome::Continue(s);
        }
        let raw = time_hint.or_else(|| self.wall_now()).unwrap_or(s.events);
        let t = raw.max(s.last_time);
        s.last_time = t;
        if let Some(tape) = &mut s.tape {
            tape.push(ShardEvent {
                phase: ev.phase,
                name: ev.name.to_string(),
                int: ev.int,
                unsorted: ev.unsorted,
                time: t,
                step,
            });
        }
        s.events += 1;

        // Aggregates, then derived streams in dependency order.
        for (i, stream) in self.spec.streams().iter().enumerate() {
            if let RStreamKind::Aggregate { agg, pred, .. } = &stream.kind {
                let c = if pred_holds(pred, ev) {
                    match ev.int {
                        Some(v) => Contribution::Val(v),
                        None => Contribution::Hit,
                    }
                } else {
                    Contribution::Skip
                };
                let track = matches!(agg, crate::ast::Agg::Min | crate::ast::Agg::Max);
                s.aggs[i].step(c, t, track);
                s.values[i] = s.aggs[i].value(*agg);
            }
        }
        for &i in self.spec.eval_order() {
            if let RStreamKind::Derived(e) = &self.spec.streams()[i].kind {
                let v = eval_expr(e, &s.values);
                s.values[i] = v;
            }
        }

        // Deadline clocks: one miss per gap, flagged at the first event
        // past the period; any matching event resets the clock.
        for (d, ds) in self.spec.deadlines().iter().zip(s.deadlines.iter_mut()) {
            let last = *ds.last.get_or_insert(t);
            if t.saturating_sub(last) > d.period && !ds.open_miss {
                ds.open_miss = true;
                ds.missed += 1;
                s.missed_total += 1;
                if s.first_miss.is_none() {
                    s.first_miss = Some(format!(
                        "`{}` missed at t={t} ms: {} ms since last matching event \
                         (period {} ms)",
                        d.text,
                        t - last,
                        d.period
                    ));
                }
            }
            if pred_holds(&d.pred, ev) {
                ds.last = Some(t);
                ds.open_miss = false;
            }
        }

        // Triggers fire on rising edges.
        let mut abort_reason: Option<String> = None;
        for (i, tr) in self.spec.triggers().iter().enumerate() {
            let now = eval_cond(&tr.cond, &s.values, ev);
            if now && !s.prev[i] {
                s.fired_total += 1;
                let reason = format!(
                    "stream trigger `{}` fired at event #{} ({}; {})",
                    tr.name,
                    s.events,
                    Self::describe_event(ev),
                    self.render_values(&s.values)
                );
                if s.firings.len() < self.firings_cap {
                    s.firings.push(Firing {
                        trigger: tr.name.clone(),
                        at: s.events,
                        step,
                        time: t,
                        reason: reason.clone(),
                    });
                }
                if self.enforcing && abort_reason.is_none() {
                    abort_reason = Some(reason);
                }
            }
            s.prev[i] = now;
        }
        match abort_reason {
            Some(reason) => Outcome::abort(s, self.name.clone(), reason),
            None => Outcome::Continue(s),
        }
    }

    /// Ends the trace: evaluates `done`-phase triggers (rising edges
    /// against the synthetic end event) and charges deadlines whose
    /// final gap exceeds the period. Does not veto — end-of-trace
    /// obligations are about a run that already finished.
    pub fn finish(&self, state: &StreamState, end_time: Option<u64>) -> StreamState {
        let mut s = state.clone();
        let t = end_time
            .or_else(|| self.wall_now())
            .unwrap_or(s.last_time)
            .max(s.last_time);
        s.last_time = t;
        for (d, ds) in self.spec.deadlines().iter().zip(s.deadlines.iter_mut()) {
            if let Some(last) = ds.last {
                if t.saturating_sub(last) > d.period && !ds.open_miss {
                    ds.open_miss = true;
                    ds.missed += 1;
                    s.missed_total += 1;
                    if s.first_miss.is_none() {
                        s.first_miss = Some(format!(
                            "`{}` missed at end of trace (t={t} ms): {} ms since last \
                             matching event (period {} ms)",
                            d.text,
                            t - last,
                            d.period
                        ));
                    }
                }
            }
        }
        let done = EvView::done();
        for (i, tr) in self.spec.triggers().iter().enumerate() {
            let now = eval_cond(&tr.cond, &s.values, &done);
            if now && !s.prev[i] {
                s.fired_total += 1;
                let reason = format!(
                    "stream trigger `{}` fired at end of trace after {} events ({})",
                    tr.name,
                    s.events,
                    self.render_values(&s.values)
                );
                if s.firings.len() < self.firings_cap {
                    s.firings.push(Firing {
                        trigger: tr.name.clone(),
                        at: s.events + 1,
                        step: None,
                        time: t,
                        reason,
                    });
                }
            }
            s.prev[i] = now;
        }
        s
    }

    /// Advances the state by one serialized [`TapeEvent`], exactly as
    /// the live hooks would have. Foreign-namespace events and
    /// [`TapePhase::Done`] (handled by [`StreamMonitor::check_tape`] via
    /// [`StreamMonitor::finish`]) leave the state untouched.
    pub fn advance_tape_event(&self, state: StreamState, ev: &TapeEvent) -> Outcome<StreamState> {
        if ev.namespace != self.namespace.as_str() {
            return Outcome::Continue(state);
        }
        if ev.phase == TapePhase::Done {
            return Outcome::Continue(state);
        }
        let view = EvView {
            phase: ev.phase,
            name: &ev.name,
            int: ev.value.as_ref().and_then(|d| d.int),
            unsorted: ev.value.as_ref().is_some_and(|d| d.unsorted),
        };
        self.step_event(state, &view, Some(ev.step), ev.time)
    }

    /// Checks a recorded tape offline: replays every event and, if the
    /// tape carries a [`TapePhase::Done`] marker, closes the trace with
    /// [`StreamMonitor::finish`] (at the `done` event's timestamp, when
    /// the tape is timed). Replay never stops early — the check reports
    /// *all* firings and misses, agreeing with an observing live run on
    /// every trigger firing.
    pub fn check_tape<'a>(&self, events: impl IntoIterator<Item = &'a TapeEvent>) -> StreamCheck {
        self.check_tape_seeded(self.initial_state(), events)
    }

    /// [`StreamMonitor::check_tape`] starting from `seed` instead of the
    /// initial state — the replay primitive behind checkpoint-seeded
    /// checking: restore a snapshot taken after the first N events, feed
    /// the remaining tape, and the verdict matches a full replay.
    pub fn check_tape_seeded<'a>(
        &self,
        seed: StreamState,
        events: impl IntoIterator<Item = &'a TapeEvent>,
    ) -> StreamCheck {
        let mut state = seed;
        let mut completed = false;
        for ev in events {
            if ev.phase == TapePhase::Done {
                completed = true;
                state = self.finish(&state, ev.time);
                break;
            }
            state = match self.advance_tape_event(state, ev) {
                Outcome::Continue(s) | Outcome::Abort { state: s, .. } => s,
            };
        }
        StreamCheck {
            firings: state.firings.clone(),
            fired_total: state.fired_total,
            missed: state.missed_total,
            completed,
            state,
        }
    }

    fn replay_shard_event(&self, state: StreamState, ev: &ShardEvent) -> Outcome<StreamState> {
        let view = EvView {
            phase: ev.phase,
            name: &ev.name,
            int: ev.int,
            unsorted: ev.unsorted,
        };
        self.step_event(state, &view, ev.step, Some(ev.time))
    }
}

/// The result of checking a tape offline against a stream spec.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamCheck {
    /// The retained firings, oldest first.
    pub firings: Vec<Firing>,
    /// Total firings (including past the retention cap).
    pub fired_total: u64,
    /// Total deadline misses.
    pub missed: u64,
    /// Whether the tape carried a `done` marker.
    pub completed: bool,
    /// The final evaluator state.
    pub state: StreamState,
}

impl Monitor for StreamMonitor {
    type State = StreamState;

    fn name(&self) -> &str {
        &self.name
    }

    fn accepts(&self, ann: &Annotation) -> bool {
        self.ours(ann) && (self.spec.observes_pre() || self.spec.observes_post())
    }

    fn accepts_event(&self, ann: &Annotation, phase: HookPhase) -> bool {
        self.ours(ann)
            && match phase {
                HookPhase::Pre => self.spec.observes_pre(),
                HookPhase::Post => self.spec.observes_post(),
            }
    }

    fn initial_state(&self) -> StreamState {
        let streams = self.spec.streams();
        let mut aggs = Vec::with_capacity(streams.len());
        let mut values = vec![None; streams.len()];
        for (i, s) in streams.iter().enumerate() {
            let st = AggState::for_stream(&s.kind);
            if let RStreamKind::Aggregate { agg, .. } = &s.kind {
                values[i] = st.value(*agg);
            }
            aggs.push(st);
        }
        for &i in self.spec.eval_order() {
            if let RStreamKind::Derived(e) = &streams[i].kind {
                let v = eval_expr(e, &values);
                values[i] = v;
            }
        }
        StreamState {
            aggs,
            values,
            prev: vec![false; self.spec.triggers().len()],
            firings: Vec::new(),
            fired_total: 0,
            deadlines: vec![DeadlineState::default(); self.spec.deadlines().len()],
            missed_total: 0,
            first_miss: None,
            events: 0,
            last_time: 0,
            tape: None,
            lossy: false,
        }
    }

    fn pre(
        &self,
        ann: &Annotation,
        expr: &Expr,
        scope: &Scope<'_>,
        state: StreamState,
    ) -> StreamState {
        match self.try_pre(ann, expr, scope, state) {
            Outcome::Continue(s) | Outcome::Abort { state: s, .. } => s,
        }
    }

    fn post(
        &self,
        ann: &Annotation,
        expr: &Expr,
        scope: &Scope<'_>,
        value: &Value,
        state: StreamState,
    ) -> StreamState {
        match self.try_post(ann, expr, scope, value, state) {
            Outcome::Continue(s) | Outcome::Abort { state: s, .. } => s,
        }
    }

    fn try_pre(
        &self,
        ann: &Annotation,
        _expr: &Expr,
        _scope: &Scope<'_>,
        state: StreamState,
    ) -> Outcome<StreamState> {
        if !self.ours(ann) {
            return Outcome::Continue(state);
        }
        let view = EvView {
            phase: TapePhase::Pre,
            name: ann.name().as_str(),
            int: None,
            unsorted: false,
        };
        self.step_event(state, &view, None, None)
    }

    fn try_post(
        &self,
        ann: &Annotation,
        _expr: &Expr,
        _scope: &Scope<'_>,
        value: &Value,
        state: StreamState,
    ) -> Outcome<StreamState> {
        if !self.ours(ann) {
            return Outcome::Continue(state);
        }
        let view = EvView {
            phase: TapePhase::Post,
            name: ann.name().as_str(),
            int: match value {
                Value::Int(n) => Some(*n),
                _ => None,
            },
            // List structure is only inspected when some predicate can
            // actually ask about it.
            unsorted: self.spec.uses_unsorted() && value_is_unsorted(value),
        };
        self.step_event(state, &view, None, None)
    }

    fn render_state(&self, state: &StreamState) -> String {
        let lossy = if state.lossy { ", lossy merge" } else { "" };
        let miss = match &state.first_miss {
            Some(m) => format!("; first miss: {m}"),
            None => String::new(),
        };
        format!(
            "[{}] {} firing(s), {} missed after {} events{lossy}{miss}",
            self.render_values(&state.values),
            state.fired_total,
            state.missed_total,
            state.events
        )
    }
}

/// Stream monitors merge by *replay*, mirroring
/// [`SpecMonitor`](monsem_tspec::SpecMonitor)'s three-way join:
///
/// 1. **Exact replay** — while the shard's tape dropped nothing, the
///    join replays each retained event through
///    [`StreamMonitor::step_event`] on the accumulated left state. All
///    windows, trigger edges, and deadline clocks are recomputed from
///    the authoritative left state, so the merged state is bit-for-bit
///    the sequential run's (the shard's locally computed fields are
///    provisional and discarded).
/// 2. **Adopt wholesale** — if the tape overflowed but the left state
///    never moved past the fork point, the shard's own fields *are* the
///    sequential continuation and are adopted as-is.
/// 3. **Conservative** — otherwise the left aggregates are kept, the
///    shard's event/firing/miss deltas are accounted, its shard-local
///    firings are appended (bounded), and the result is marked
///    [`StreamState::lossy`].
impl MergeMonitor for StreamMonitor {
    fn split(&self, s: &StreamState) -> StreamState {
        let mut shard = s.clone();
        shard.tape = Some(StreamShardTape::new(s, self.replay_cap));
        shard
    }

    fn merge(&self, left: StreamState, right: StreamState) -> StreamState {
        match self.merge_outcome(left, right) {
            Outcome::Continue(s) | Outcome::Abort { state: s, .. } => s,
        }
    }

    fn merge_outcome(&self, left: StreamState, right: StreamState) -> Outcome<StreamState> {
        let Some(tape) = right.tape else {
            // A tapeless right-hand state was not born from `split`.
            return Outcome::Continue(left);
        };
        if tape.dropped == 0 {
            let mut acc = left;
            for ev in &tape.events {
                match self.replay_shard_event(acc, ev) {
                    Outcome::Continue(s) => acc = s,
                    abort @ Outcome::Abort { .. } => return abort,
                }
            }
            return Outcome::Continue(acc);
        }
        let fresh_firings = right.fired_total.saturating_sub(tape.origin_fired);
        if !left.lossy && !right.lossy && left.events == tape.origin_events {
            // The left state never moved past the fork point: adopt the
            // shard's fields wholesale, folding its retained tape into
            // the left tape (if any) for an enclosing join.
            let mut merged = StreamState {
                tape: left.tape,
                ..right
            };
            merged.tape = merged.tape.map(|mut lt| {
                for ev in tape.events {
                    lt.push(ev);
                }
                lt.dropped += tape.dropped;
                lt
            });
            if self.enforcing && fresh_firings > 0 {
                let reason = merged
                    .firings
                    .last()
                    .map(|f| f.reason.clone())
                    .unwrap_or_else(|| "stream trigger fired".to_string());
                return Outcome::abort(merged, self.name.clone(), reason);
            }
            return Outcome::Continue(merged);
        }
        // Conservative merge: the shard's full event sequence is gone
        // and the left state has moved. Keep the left aggregates, carry
        // the shard's verdict deltas, and mark the result lossy.
        let mut acc = left;
        acc.events += right.events.saturating_sub(tape.origin_events);
        acc.fired_total += fresh_firings;
        acc.missed_total += right.missed_total.saturating_sub(tape.origin_missed);
        for f in right.firings.iter().filter(|f| f.at > tape.origin_events) {
            if acc.firings.len() < self.firings_cap {
                acc.firings.push(f.clone());
            }
        }
        if acc.first_miss.is_none() {
            acc.first_miss = right.first_miss;
        }
        acc.last_time = acc.last_time.max(right.last_time);
        acc.lossy = true;
        if let Some(lt) = &mut acc.tape {
            lt.dropped += tape.events.len() as u64 + tape.dropped;
        }
        if self.enforcing && fresh_firings > 0 {
            let reason = acc
                .firings
                .last()
                .map(|f| f.reason.clone())
                .unwrap_or_else(|| "stream trigger fired".to_string());
            return Outcome::abort(acc, self.name.clone(), reason);
        }
        Outcome::Continue(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monsem_core::error::EvalError;
    use monsem_monitor::machine::eval_monitored;
    use monsem_monitor::{record_monitored, MemorySink, SharedSink};
    use monsem_syntax::parse_expr;

    #[test]
    fn observing_triggers_record_and_preserve_the_answer() {
        let prog = parse_expr("{a}:1 + ({b}:2 + {b}:3)").unwrap();
        let m =
            StreamMonitor::new("slo", "stream bs = count(post(b))\ntrigger two = bs >= 2").unwrap();
        let (v, s) = eval_monitored(&prog, &m).unwrap();
        assert_eq!(v, monsem_core::Value::Int(6));
        assert_eq!(s.fired_total, 1, "rising edge fires once: {s:?}");
        assert!(
            s.firings[0].reason.contains("two"),
            "{}",
            s.firings[0].reason
        );
        assert!(m.render_state(&s).contains("1 firing"));
    }

    #[test]
    fn enforcing_triggers_abort_naming_the_monitor() {
        let prog = parse_expr("{a}:1 + ({b}:2 + {b}:3)").unwrap();
        let m = StreamMonitor::new("slo", "stream bs = count(post(b))\ntrigger two = bs >= 2")
            .unwrap()
            .enforcing();
        match eval_monitored(&prog, &m).unwrap_err() {
            EvalError::MonitorAbort { monitor, reason } => {
                assert_eq!(monitor, "slo");
                assert!(reason.contains("two"), "{reason}");
            }
            other => panic!("expected MonitorAbort, got {other:?}"),
        }
    }

    #[test]
    fn post_only_specs_skip_pre_hooks_consistently() {
        let prog = parse_expr("{a}:({a}:1)").unwrap();
        let m = StreamMonitor::new("c", "stream n = count(post(_))").unwrap();
        let (_, s) = eval_monitored(&prog, &m).unwrap();
        assert_eq!(s.events, 2, "only post events observed");
        let ann = Annotation::label("a");
        assert!(!m.accepts_event(&ann, HookPhase::Pre));
        assert!(m.accepts_event(&ann, HookPhase::Post));
    }

    #[test]
    fn namespaces_partition_events() {
        let prog = parse_expr("{ns/a}:1 + {b}:2").unwrap();
        let scoped = StreamMonitor::new("c", "stream n = count(post(_))")
            .unwrap()
            .in_namespace(Namespace::new("ns"));
        let (_, s) = eval_monitored(&prog, &scoped).unwrap();
        assert_eq!(s.events, 1);
        let anon = StreamMonitor::new("c", "stream n = count(post(_))").unwrap();
        let (_, s) = eval_monitored(&prog, &anon).unwrap();
        assert_eq!(s.events, 1, "the namespaced event is foreign to it");
    }

    #[test]
    fn check_tape_agrees_with_the_live_run_on_firings() {
        let prog = parse_expr("letrec f = lambda x. {p}:(x * x) in f 2 + (f 3 + f 4)").unwrap();
        let m = StreamMonitor::new(
            "slo",
            "stream total = sum(post(p))\ntrigger big = total > 20",
        )
        .unwrap();
        let mem = MemorySink::new();
        let sink = SharedSink::new(mem.clone());
        let (_, live) = record_monitored(&prog, m.clone(), &sink).unwrap();
        let tape = mem.take();
        let check = m.check_tape(tape.iter());
        assert!(check.completed);
        let live_keys: Vec<(String, u64)> = live
            .firings
            .iter()
            .map(|f| (f.trigger.clone(), f.at))
            .collect();
        let tape_keys: Vec<(String, u64)> = check
            .firings
            .iter()
            .map(|f| (f.trigger.clone(), f.at))
            .collect();
        assert_eq!(live_keys, tape_keys);
        assert_eq!(live.values, check.state.values);
    }

    #[test]
    fn deadlines_miss_on_gaps_in_timed_tapes() {
        use monsem_monitor::tape::ValueDesc;
        let post = |name: &str, v: i64, step: u64, t: u64| TapeEvent {
            phase: TapePhase::Post,
            namespace: String::new(),
            name: name.to_string(),
            value: Some(ValueDesc {
                int: Some(v),
                unsorted: false,
                display: v.to_string(),
            }),
            step,
            time: Some(t),
        };
        let m = StreamMonitor::new("hb", "deadline post(beat) every 50 ms").unwrap();
        // Beats at 0, 40, 180 (gap 140 > 50: one miss), then done at 200.
        let tape = [
            post("beat", 1, 0, 0),
            post("beat", 1, 1, 40),
            post("other", 1, 2, 100),
            post("beat", 1, 3, 180),
            TapeEvent::done(4).at(200),
        ];
        let check = m.check_tape(tape.iter());
        assert_eq!(check.missed, 1, "{:?}", check.state.first_miss);
        assert!(check
            .state
            .first_miss
            .as_deref()
            .unwrap()
            .contains("every 50 ms"));
        // The same tape with a stalling tail misses again at finish.
        let tail = [post("beat", 1, 0, 0), TapeEvent::done(1).at(500)];
        assert_eq!(m.check_tape(tail.iter()).missed, 1);
        // A prompt heartbeat never misses.
        let ok = [
            post("beat", 1, 0, 0),
            post("beat", 1, 1, 30),
            TapeEvent::done(2).at(50),
        ];
        assert_eq!(m.check_tape(ok.iter()).missed, 0);
    }

    #[test]
    fn done_triggers_fire_at_finish() {
        let prog = parse_expr("{a}:1").unwrap();
        let m = StreamMonitor::new(
            "end",
            "stream n = count(post(a))\ntrigger short = done and n < 5",
        )
        .unwrap();
        let mem = MemorySink::new();
        let sink = SharedSink::new(mem.clone());
        record_monitored(&prog, m.clone(), &sink).unwrap();
        let check = m.check_tape(mem.take().iter());
        assert_eq!(check.fired_total, 1);
        assert!(check.firings[0].reason.contains("end of trace"));
    }

    #[test]
    fn parallel_run_matches_sequential_bit_for_bit() {
        let prog = parse_expr(
            "letrec f = lambda x. {p}:(x * x) in par(f 2, f 3, f 4, f 5) ++ par(f 6, f 7)",
        )
        .unwrap();
        let m = StreamMonitor::new(
            "win",
            "stream mx = max(post(p)) over window(4)\n\
             stream n = count(post(p))\n\
             trigger big = mx >= 25",
        )
        .unwrap();
        let seq = eval_monitored(&prog, &m).unwrap();
        let par = monsem_monitor::eval_parallel(&prog, &m).unwrap();
        assert_eq!(seq, par, "answer and final stream state agree");
        assert_eq!(par.1.events, 6);
        assert!(par.1.tape.is_none(), "the root state records no tape");
    }

    #[test]
    fn split_and_merge_obey_the_laws() {
        let m = StreamMonitor::new(
            "win",
            "stream s = sum(post(p)) over window(3)\ntrigger neg = s < 0",
        )
        .unwrap();
        // Times are pinned so logical clocks cannot diverge across
        // shards; states then agree bit-for-bit.
        let feed = |mut st: StreamState, vals: &[i64]| {
            for v in vals {
                let view = EvView {
                    phase: TapePhase::Post,
                    name: "p",
                    int: Some(*v),
                    unsorted: false,
                };
                st = match m.step_event(st, &view, None, Some(0)) {
                    Outcome::Continue(s) | Outcome::Abort { state: s, .. } => s,
                };
            }
            st
        };
        let sigma = feed(m.initial_state(), &[4, 7]);
        // split is a right identity for merge.
        assert_eq!(m.merge(sigma.clone(), m.split(&sigma)), sigma);
        // Associativity over shard tapes.
        let shard = |vals: &[i64]| feed(m.split(&sigma), vals);
        let (a, b, c) = (shard(&[1, 2]), shard(&[-30]), shard(&[4]));
        assert_eq!(
            m.merge(m.merge(a.clone(), b.clone()), c.clone()),
            m.merge(a, m.merge(b, c))
        );
        // merge ≡ sequential: the root-state left-fold over the shards
        // (exactly eval_parallel's join) equals replaying the
        // concatenation directly.
        let merged = m.merge(
            m.merge(m.merge(sigma.clone(), shard(&[1, 2])), shard(&[-30])),
            shard(&[4]),
        );
        let direct = feed(sigma.clone(), &[1, 2, -30, 4]);
        assert_eq!(merged, direct);
    }

    #[test]
    fn truncated_shards_degrade_gracefully() {
        let m = StreamMonitor::new("c", "stream n = count(post(_))")
            .unwrap()
            .replay_cap(4);
        let feed = |mut st: StreamState, n: usize| {
            for _ in 0..n {
                let view = EvView {
                    phase: TapePhase::Post,
                    name: "p",
                    int: Some(1),
                    unsorted: false,
                };
                st = match m.step_event(st, &view, None, None) {
                    Outcome::Continue(s) | Outcome::Abort { state: s, .. } => s,
                };
            }
            st
        };
        let sigma = m.initial_state();
        // Unmoved fork point: shard adopted wholesale, not lossy.
        let shard = feed(m.split(&sigma), 10);
        let merged = m.merge(sigma.clone(), shard);
        assert_eq!(merged.events, 10);
        assert!(!merged.lossy);
        // Moved fork point: conservative, lossy, events accounted.
        let left = feed(sigma.clone(), 2);
        let shard = feed(m.split(&sigma), 10);
        let merged = m.merge(left, shard);
        assert_eq!(merged.events, 12);
        assert!(merged.lossy);
        assert!(m.render_state(&merged).contains("lossy"));
    }

    #[test]
    fn shard_tape_memory_is_bounded() {
        let m = StreamMonitor::new("c", "stream n = count(post(_))")
            .unwrap()
            .replay_cap(64);
        let mut s = m.split(&m.initial_state());
        const N: u64 = 100_000;
        for _ in 0..N {
            let view = EvView {
                phase: TapePhase::Post,
                name: "p",
                int: Some(1),
                unsorted: false,
            };
            s = match m.step_event(s, &view, None, None) {
                Outcome::Continue(s) | Outcome::Abort { state: s, .. } => s,
            };
        }
        let tape = s.tape.as_ref().unwrap();
        assert_eq!(tape.events.len(), 64);
        assert_eq!(tape.dropped, N - 64);
        assert_eq!(s.events, N);
    }
}
