//! monsem-stream: stream-algebra monitors with sliding windows, static
//! memory bounds, and timestamped-tape deadline checking.
//!
//! Where tspec answers *"did the event sequence match a temporal
//! pattern?"*, this crate answers *quantitative* questions about the
//! same event stream: error counts over the last hundred calls, latency
//! maxima over the last second, heartbeat rates — and turns them into
//! trigger firings and deadline-miss verdicts.
//!
//! A spec declares named output streams over the monitored event
//! stream:
//!
//! ```text
//! stream errs  = count(post(err)) over window(100)
//! stream total = count(post(_))   over window(100)
//! stream pct   = errs * 100 / total
//! stream slow  = max(value > 0)   over window(250 ms)
//! trigger degraded = pct > 5 or slow > 200
//! deadline post(beat) every 50 ms
//! ```
//!
//! In the paper's (MSyn, MAlg, MFun) factoring:
//!
//! | Layer | Here |
//! |-------|------|
//! | MSyn  | stream/trigger/deadline declarations ([`ast`], [`parser`]) |
//! | MAlg  | ring buffers, time panes, monotonic deques, edge and clock state ([`eval`]) |
//! | MFun  | one constant-time state transformer per observed event ([`StreamMonitor::step_event`]) |
//!
//! # Static memory bounds
//!
//! Compilation is Lola-style: the stream dependency graph is checked
//! for zero-delay cycles, and every stream's steady-state memory is
//! bounded *at compile time* — event windows become pre-allocated ring
//! buffers with O(1) paged aggregation (and monotonic deques for
//! `min`/`max`), time windows become a fixed number of panes. The
//! compiler reports the bound per stream ([`MemoryReport`]); after
//! [`Monitor::initial_state`](monsem_monitor::Monitor::initial_state),
//! evaluation allocates nothing.
//!
//! # As a monitor
//!
//! [`StreamMonitor`] implements
//! [`Monitor`](monsem_monitor::Monitor) (observing by default —
//! answer-preserving per Theorem 7.7 — or aborting on trigger firings
//! via [`StreamMonitor::enforcing`]) and
//! [`MergeMonitor`](monsem_monitor::MergeMonitor) (shard tapes replayed
//! at the fork-join, so a parallel run agrees with the sequential one).
//! [`StreamMonitor::check_tape`] evaluates a recorded tape offline;
//! with format-v2 timestamps, `deadline … every n ms` declarations get
//! periodic-deadline semantics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod compile;
pub mod eval;
pub mod monitor;
pub mod parser;
pub mod snapshot;

pub use ast::{
    Agg, BinOp, Cond, DeadlineDecl, SpecAst, StreamDecl, StreamDef, TriggerDecl, ValueExpr,
    WindowSpec,
};
pub use compile::{MemoryReport, StreamMemory, StreamSpec, MAX_DECLS};
pub use eval::{DeadlineState, EvView, PANES};
pub use monitor::{
    Firing, ShardEvent, StreamCheck, StreamMonitor, StreamShardTape, StreamState,
    DEFAULT_FIRINGS_CAP, DEFAULT_REPLAY_CAP,
};
pub use parser::{parse_stream_src, MAX_EVENT_WINDOW, RESERVED};
pub use snapshot::{restore_state, snapshot_state, SnapshotError, SNAPSHOT_VERSION};
