//! Recursive-descent parser for the stream specification surface.
//!
//! The stream language reuses tspec's lexer and its event-predicate
//! grammar wholesale (via [`parse_pred_tokens`] /
//! [`parse_pred_atom_tokens`]), adding declarations on top:
//!
//! ```text
//! spec     := decl*
//! decl     := 'stream' NAME '=' streamDef
//!           | 'trigger' NAME '=' cond
//!           | 'deadline' pred 'every' INT 'ms'
//! streamDef:= AGG '(' pred ')' ('over' 'window' '(' INT ['ms'] ')')?
//!           | vexpr                      # derived stream
//! AGG      := 'count' | 'sum' | 'avg' | 'min' | 'max' | 'rate'
//! cond     := cand ('or' cand)*
//! cand     := cnot ('and' cnot)*
//! cnot     := 'not' cnot | catom
//! catom    := event-atom                 # pre/post/at/done/value/unsorted/true/false
//!           | vexpr CMP vexpr
//!           | '(' cond ')'
//! vexpr    := vterm (('+'|'-') vterm)*
//! vterm    := vfact (('*'|'/') vfact)*
//! vfact    := INT | '-' INT | NAME | '(' vexpr ')'
//! ```
//!
//! Declarations are keyword-led, so no separator is needed between them.
//! A `(` opening a `catom` is ambiguous between a parenthesized
//! comparison and a parenthesized condition; the parser tries the
//! comparison first and backtracks.

use crate::ast::BinOp;
use crate::ast::{
    Agg, Cond, DeadlineDecl, SpecAst, StreamDecl, StreamDef, TriggerDecl, ValueExpr, WindowSpec,
};
use monsem_tspec::lexer::{lex, Spanned, Tok};
use monsem_tspec::{parse_pred_atom_tokens, parse_pred_tokens, CmpOp, Pred, SpecError};

/// Words that cannot name a stream or trigger: the aggregate functions,
/// the event-atom keywords shared with tspec, and the stream language's
/// own structural keywords.
pub const RESERVED: &[&str] = &[
    "count", "sum", "avg", "min", "max", "rate", // aggregates
    "pre", "post", "at", "done", "value", "unsorted", "true", "false", // event atoms
    "and", "or", "not", // boolean structure
    "over", "window", "every", "ms", "stream", "trigger", "deadline", // declarations
];

/// Event-atom keywords that begin a tspec predicate atom inside a
/// trigger condition.
const ATOM_KEYWORDS: &[&str] = &[
    "pre", "post", "at", "done", "value", "unsorted", "true", "false",
];

/// The widest permitted event-count window. Ring-buffer memory is
/// `O(width)` per stream, so the cap keeps the compile-time memory bound
/// honest (≤ ~1.5 MiB per stream).
pub const MAX_EVENT_WINDOW: usize = 65_536;

/// Parses stream-spec source text into an unresolved AST.
///
/// # Errors
///
/// Returns a [`SpecError`] (tspec's error type — the two languages share
/// one diagnostic surface) on lexical or syntactic failure.
pub fn parse_stream_src(src: &str) -> Result<SpecAst, SpecError> {
    let toks = lex(src)?;
    let mut p = Parser { src, toks, pos: 0 };
    p.spec()
}

struct Parser<'a> {
    src: &'a str,
    toks: Vec<Spanned>,
    pos: usize,
}

fn describe(tok: &Tok) -> String {
    match tok {
        Tok::Ident(s) => format!("`{s}`"),
        Tok::Int(n) => format!("`{n}`"),
        other => format!("`{other:?}`"),
    }
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|s| &s.tok)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.pos + 1).map(|s| &s.tok)
    }

    fn offset(&self) -> usize {
        self.toks
            .get(self.pos)
            .map(|s| s.offset)
            .unwrap_or(self.src.len())
    }

    fn bump(&mut self) -> Option<Spanned> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: Tok, what: &str) -> Result<usize, SpecError> {
        let at = self.offset();
        match self.bump() {
            Some(s) if s.tok == want => Ok(s.offset),
            Some(s) => Err(SpecError::syntax(
                format!("expected {what}, found {}", describe(&s.tok)),
                s.offset,
            )),
            None => Err(SpecError::syntax(format!("expected {what}"), at)),
        }
    }

    fn keyword(&mut self, kw: &str) -> Result<usize, SpecError> {
        let at = self.offset();
        match self.bump() {
            Some(Spanned {
                tok: Tok::Ident(w),
                offset,
            }) if w == kw => Ok(offset),
            Some(s) => Err(SpecError::syntax(
                format!("expected `{kw}`, found {}", describe(&s.tok)),
                s.offset,
            )),
            None => Err(SpecError::syntax(format!("expected `{kw}`"), at)),
        }
    }

    fn decl_name(&mut self) -> Result<String, SpecError> {
        let at = self.offset();
        match self.bump() {
            Some(Spanned {
                tok: Tok::Ident(w),
                offset,
            }) => {
                if RESERVED.contains(&w.as_str()) {
                    Err(SpecError::syntax(
                        format!("`{w}` is a reserved word and cannot be declared"),
                        offset,
                    ))
                } else {
                    Ok(w)
                }
            }
            Some(s) => Err(SpecError::syntax(
                format!("expected a name, found {}", describe(&s.tok)),
                s.offset,
            )),
            None => Err(SpecError::syntax("expected a name", at)),
        }
    }

    fn int(&mut self, what: &str) -> Result<(i64, usize), SpecError> {
        let at = self.offset();
        match self.bump() {
            Some(Spanned {
                tok: Tok::Int(n),
                offset,
            }) => Ok((n, offset)),
            Some(s) => Err(SpecError::syntax(
                format!("expected {what}, found {}", describe(&s.tok)),
                s.offset,
            )),
            None => Err(SpecError::syntax(format!("expected {what}"), at)),
        }
    }

    fn pred(&mut self) -> Result<Pred, SpecError> {
        parse_pred_tokens(&self.toks, &mut self.pos, self.src.len())
    }

    fn spec(&mut self) -> Result<SpecAst, SpecError> {
        let mut ast = SpecAst::default();
        while self.pos < self.toks.len() {
            let at = self.offset();
            match self.peek() {
                Some(Tok::Ident(w)) if w == "stream" => ast.streams.push(self.stream_decl()?),
                Some(Tok::Ident(w)) if w == "trigger" => ast.triggers.push(self.trigger_decl()?),
                Some(Tok::Ident(w)) if w == "deadline" => ast.deadlines.push(self.deadline_decl()?),
                Some(tok) => {
                    return Err(SpecError::syntax(
                        format!(
                            "expected `stream`, `trigger`, or `deadline`, found {}",
                            describe(tok)
                        ),
                        at,
                    ))
                }
                None => break,
            }
        }
        Ok(ast)
    }

    fn stream_decl(&mut self) -> Result<StreamDecl, SpecError> {
        let offset = self.keyword("stream")?;
        let name = self.decl_name()?;
        self.expect(Tok::Eq, "`=`")?;
        let def = match (self.peek(), self.peek2()) {
            (Some(Tok::Ident(w)), Some(Tok::LParen)) if Agg::from_keyword(w).is_some() => {
                let agg = Agg::from_keyword(w).expect("checked by guard");
                self.bump();
                self.expect(Tok::LParen, "`(`")?;
                let pred = self.pred()?;
                self.expect(Tok::RParen, "`)` to close the aggregate")?;
                let window = if matches!(self.peek(), Some(Tok::Ident(w)) if w == "over") {
                    self.bump();
                    Some(self.window()?)
                } else {
                    None
                };
                StreamDef::Aggregate { agg, pred, window }
            }
            _ => StreamDef::Derived(self.vexpr()?),
        };
        Ok(StreamDecl { name, def, offset })
    }

    fn window(&mut self) -> Result<WindowSpec, SpecError> {
        self.keyword("window")?;
        self.expect(Tok::LParen, "`(`")?;
        let (n, at) = self.int("a window width")?;
        if n <= 0 {
            return Err(SpecError::syntax("window width must be positive", at));
        }
        let spec = if matches!(self.peek(), Some(Tok::Ident(w)) if w == "ms") {
            self.bump();
            WindowSpec::Time(n as u64)
        } else {
            if n as usize > MAX_EVENT_WINDOW {
                return Err(SpecError::syntax(
                    format!("event window wider than {MAX_EVENT_WINDOW}"),
                    at,
                ));
            }
            WindowSpec::Events(n as usize)
        };
        self.expect(Tok::RParen, "`)` to close the window")?;
        Ok(spec)
    }

    fn trigger_decl(&mut self) -> Result<TriggerDecl, SpecError> {
        let offset = self.keyword("trigger")?;
        let name = self.decl_name()?;
        self.expect(Tok::Eq, "`=`")?;
        let cond = self.cond()?;
        Ok(TriggerDecl { name, cond, offset })
    }

    fn deadline_decl(&mut self) -> Result<DeadlineDecl, SpecError> {
        let offset = self.keyword("deadline")?;
        let pred = self.pred()?;
        self.keyword("every")?;
        let (n, at) = self.int("a period in milliseconds")?;
        if n <= 0 {
            return Err(SpecError::syntax("deadline period must be positive", at));
        }
        let ms_at = self.keyword("ms")?;
        let text = self.src[offset..ms_at + 2].trim().to_string();
        Ok(DeadlineDecl {
            pred,
            period: n as u64,
            text,
            offset,
        })
    }

    fn cond(&mut self) -> Result<Cond, SpecError> {
        let mut lhs = self.cand()?;
        while matches!(self.peek(), Some(Tok::Ident(w)) if w == "or") {
            self.bump();
            let rhs = self.cand()?;
            lhs = Cond::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn cand(&mut self) -> Result<Cond, SpecError> {
        let mut lhs = self.cnot()?;
        while matches!(self.peek(), Some(Tok::Ident(w)) if w == "and") {
            self.bump();
            let rhs = self.cnot()?;
            lhs = Cond::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn cnot(&mut self) -> Result<Cond, SpecError> {
        if matches!(self.peek(), Some(Tok::Ident(w)) if w == "not") {
            self.bump();
            Ok(Cond::Not(Box::new(self.cnot()?)))
        } else {
            self.catom()
        }
    }

    fn catom(&mut self) -> Result<Cond, SpecError> {
        match self.peek() {
            Some(Tok::Ident(w)) if ATOM_KEYWORDS.contains(&w.as_str()) => {
                let atom = parse_pred_atom_tokens(&self.toks, &mut self.pos, self.src.len())?;
                Ok(Cond::Event(Pred::Atom(atom)))
            }
            Some(Tok::LParen) => {
                // `(` is ambiguous: `(a + b) > c` vs. `(a > b or done)`.
                // Try the comparison, backtrack to the grouped condition.
                let save = self.pos;
                match self.cmp() {
                    Ok(c) => Ok(c),
                    Err(_) => {
                        self.pos = save;
                        self.expect(Tok::LParen, "`(`")?;
                        let c = self.cond()?;
                        self.expect(Tok::RParen, "`)` to close the condition")?;
                        Ok(c)
                    }
                }
            }
            _ => self.cmp(),
        }
    }

    fn cmp(&mut self) -> Result<Cond, SpecError> {
        let lhs = self.vexpr()?;
        let at = self.offset();
        let op = match self.bump() {
            Some(s) => match s.tok {
                Tok::Eq => CmpOp::Eq,
                Tok::Ne => CmpOp::Ne,
                Tok::Lt => CmpOp::Lt,
                Tok::Le => CmpOp::Le,
                Tok::Gt => CmpOp::Gt,
                Tok::Ge => CmpOp::Ge,
                other => {
                    return Err(SpecError::syntax(
                        format!("expected a comparison operator, found {}", describe(&other)),
                        s.offset,
                    ))
                }
            },
            None => return Err(SpecError::syntax("expected a comparison operator", at)),
        };
        let rhs = self.vexpr()?;
        Ok(Cond::Cmp(lhs, op, rhs))
    }

    fn vexpr(&mut self) -> Result<ValueExpr, SpecError> {
        let mut lhs = self.vterm()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => BinOp::Add,
                // `-` doubles as a negative-literal prefix; only treat it
                // as subtraction when it is not immediately followed by
                // the start of a factor it would bind tighter to. (The
                // lexer only emits Minus, never a signed Int, so `a - 3`
                // and `a -3` parse identically: subtraction.)
                Some(Tok::Minus) => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.vterm()?;
            lhs = ValueExpr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn vterm(&mut self) -> Result<ValueExpr, SpecError> {
        let mut lhs = self.vfact()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Star) => BinOp::Mul,
                Some(Tok::Slash) => BinOp::Div,
                _ => break,
            };
            self.bump();
            let rhs = self.vfact()?;
            lhs = ValueExpr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn vfact(&mut self) -> Result<ValueExpr, SpecError> {
        let at = self.offset();
        match self.bump() {
            Some(Spanned {
                tok: Tok::Int(n), ..
            }) => Ok(ValueExpr::Const(n)),
            Some(Spanned {
                tok: Tok::Minus, ..
            }) => {
                let (n, _) = self.int("an integer literal after `-`")?;
                Ok(ValueExpr::Const(-n))
            }
            Some(Spanned {
                tok: Tok::Ident(w),
                offset,
            }) => {
                if RESERVED.contains(&w.as_str()) {
                    Err(SpecError::syntax(
                        format!("`{w}` is a reserved word, not a stream reference"),
                        offset,
                    ))
                } else {
                    Ok(ValueExpr::Stream(w))
                }
            }
            Some(Spanned {
                tok: Tok::LParen, ..
            }) => {
                let e = self.vexpr()?;
                self.expect(Tok::RParen, "`)` to close the expression")?;
                Ok(e)
            }
            Some(s) => Err(SpecError::syntax(
                format!("expected a stream value, found {}", describe(&s.tok)),
                s.offset,
            )),
            None => Err(SpecError::syntax("expected a stream value", at)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monsem_tspec::Atom;

    #[test]
    fn parses_aggregate_and_derived_streams() {
        let ast = parse_stream_src(
            "stream errs = count(post(err)) over window(100)\n\
             stream total = count(post(_))\n\
             stream pct = errs * 100 / total",
        )
        .unwrap();
        assert_eq!(ast.streams.len(), 3);
        assert!(matches!(
            ast.streams[0].def,
            StreamDef::Aggregate {
                agg: Agg::Count,
                window: Some(WindowSpec::Events(100)),
                ..
            }
        ));
        assert!(matches!(
            ast.streams[1].def,
            StreamDef::Aggregate { window: None, .. }
        ));
        assert!(matches!(ast.streams[2].def, StreamDef::Derived(_)));
    }

    #[test]
    fn parses_time_windows_triggers_and_deadlines() {
        let ast = parse_stream_src(
            "stream lat = max(post(req)) over window(250 ms)\n\
             trigger slow = lat > 40 and post(req)\n\
             deadline post(beat) every 50 ms",
        )
        .unwrap();
        assert!(matches!(
            ast.streams[0].def,
            StreamDef::Aggregate {
                agg: Agg::Max,
                window: Some(WindowSpec::Time(250)),
                ..
            }
        ));
        assert!(matches!(ast.triggers[0].cond, Cond::And(..)));
        assert_eq!(ast.deadlines[0].period, 50);
        assert_eq!(ast.deadlines[0].text, "deadline post(beat) every 50 ms");
    }

    #[test]
    fn grouped_conditions_backtrack_from_comparisons() {
        let ast = parse_stream_src(
            "stream a = count(pre(_))\n\
             stream b = count(post(_))\n\
             trigger t = (a + b) > 4 and (a > 1 or done)",
        )
        .unwrap();
        let Cond::And(lhs, rhs) = &ast.triggers[0].cond else {
            panic!("expected And");
        };
        assert!(matches!(**lhs, Cond::Cmp(..)));
        assert!(matches!(**rhs, Cond::Or(..)));
    }

    #[test]
    fn event_atoms_reuse_tspec_grammar() {
        let ast = parse_stream_src("trigger v = value >= 10 or done").unwrap();
        let Cond::Or(lhs, rhs) = &ast.triggers[0].cond else {
            panic!("expected Or");
        };
        assert!(matches!(
            **lhs,
            Cond::Event(Pred::Atom(Atom::Value(CmpOp::Ge, 10)))
        ));
        assert!(matches!(**rhs, Cond::Event(Pred::Atom(Atom::Done))));
    }

    #[test]
    fn rejects_reserved_names_zero_windows_and_garbage() {
        assert!(parse_stream_src("stream count = count(pre(_))")
            .unwrap_err()
            .message
            .contains("reserved"));
        assert!(parse_stream_src("stream a = count(pre(_)) over window(0)")
            .unwrap_err()
            .message
            .contains("positive"));
        assert!(parse_stream_src("deadline post(b) every 0 ms")
            .unwrap_err()
            .message
            .contains("positive"));
        assert!(parse_stream_src("widget w = 3")
            .unwrap_err()
            .message
            .contains("expected"));
        let wide = format!(
            "stream a = count(pre(_)) over window({})",
            MAX_EVENT_WINDOW + 1
        );
        assert!(parse_stream_src(&wide)
            .unwrap_err()
            .message
            .contains("wider"));
    }
}
