//! Static analysis: name resolution, dependency checking, phase-relevance
//! analysis, and compile-time memory bounds.
//!
//! This is the Lola-style front half of the crate. A parsed [`SpecAst`]
//! becomes a [`StreamSpec`] only if:
//!
//! * every stream reference resolves to a declared stream;
//! * the derived-stream dependency graph has no cycle (all our operators
//!   look at the *current* instant, so a cycle is a zero-delay cycle and
//!   the spec has no well-defined semantics);
//! * `rate` aggregates have a time window (events per second is
//!   meaningless over an event-count window).
//!
//! Compilation also computes everything the evaluator needs to run in
//! constant memory and constant time per event:
//!
//! * a topological evaluation order for the derived streams;
//! * which hook phases the spec can react to at all
//!   ([`StreamSpec::observes_pre`]/[`StreamSpec::observes_post`]) — the
//!   input to [`Monitor::accepts_event`](monsem_monitor::Monitor) gating,
//!   computed by a three-valued *may-match* analysis over every event
//!   predicate in the spec;
//! * a [`MemoryReport`]: the exact steady-state bytes each stream's
//!   evaluator state occupies, derived from window widths at compile
//!   time. Stream evaluation never allocates after the state is built.

use crate::ast::{Agg, Cond, SpecAst, StreamDef, ValueExpr, WindowSpec};
use crate::eval::{Contribution, Pane, PANES};
use crate::parser::parse_stream_src;
use monsem_tspec::{Atom, CmpOp, Pred, SpecError};
use std::collections::HashMap;

/// Cap on declarations of each kind (streams, triggers, deadlines).
pub const MAX_DECLS: usize = 256;

/// A resolved value expression: stream references are indices.
#[derive(Debug, Clone, PartialEq)]
pub enum RExpr {
    /// An integer literal.
    Const(i64),
    /// The current value of the stream at this index.
    Stream(usize),
    /// A binary operation.
    Bin(crate::ast::BinOp, Box<RExpr>, Box<RExpr>),
}

/// A resolved trigger condition.
#[derive(Debug, Clone, PartialEq)]
pub enum RCond {
    /// A tspec event predicate on the current event.
    Event(Pred),
    /// A comparison over stream values; false when either side is
    /// undefined.
    Cmp(RExpr, CmpOp, RExpr),
    /// Classical negation.
    Not(Box<RCond>),
    /// Conjunction.
    And(Box<RCond>, Box<RCond>),
    /// Disjunction.
    Or(Box<RCond>, Box<RCond>),
}

/// A resolved stream definition.
#[derive(Debug, Clone, PartialEq)]
pub enum RStreamKind {
    /// A windowed or cumulative aggregate.
    Aggregate {
        /// The aggregation function.
        agg: Agg,
        /// Which events contribute.
        pred: Pred,
        /// The window; `None` is cumulative.
        window: Option<WindowSpec>,
    },
    /// Arithmetic over other streams.
    Derived(RExpr),
}

/// A resolved stream.
#[derive(Debug, Clone, PartialEq)]
pub struct RStream {
    /// The declared name.
    pub name: String,
    /// The resolved definition.
    pub kind: RStreamKind,
}

/// A resolved trigger.
#[derive(Debug, Clone, PartialEq)]
pub struct RTrigger {
    /// The trigger's name.
    pub name: String,
    /// The resolved condition.
    pub cond: RCond,
}

/// A resolved deadline.
#[derive(Debug, Clone, PartialEq)]
pub struct RDeadline {
    /// Which events reset the deadline clock.
    pub pred: Pred,
    /// The period in milliseconds.
    pub period: u64,
    /// Source text, quoted in miss reasons.
    pub text: String,
}

/// The compile-time memory bound of one stream's evaluator state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamMemory {
    /// The stream's name.
    pub name: String,
    /// Steady-state bytes of evaluator state for this stream.
    pub bytes: usize,
}

/// The compile-time memory bound of a whole spec: stream evaluation
/// allocates all of this up front and nothing afterwards.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MemoryReport {
    /// Per-stream bounds, in declaration order.
    pub streams: Vec<StreamMemory>,
    /// Sum over all streams plus the per-trigger and per-deadline state.
    pub total_bytes: usize,
}

impl std::fmt::Display for MemoryReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for s in &self.streams {
            writeln!(f, "  stream {:<20} {:>8} bytes", s.name, s.bytes)?;
        }
        write!(f, "  total {:>23} bytes", self.total_bytes)
    }
}

/// A compiled stream specification: resolved declarations, evaluation
/// order, phase relevance, and the static memory bound.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamSpec {
    source: String,
    streams: Vec<RStream>,
    /// Indices of derived streams in dependency order.
    eval_order: Vec<usize>,
    triggers: Vec<RTrigger>,
    deadlines: Vec<RDeadline>,
    observes_pre: bool,
    observes_post: bool,
    uses_unsorted: bool,
    memory: MemoryReport,
}

impl StreamSpec {
    /// Parses and compiles stream-spec source.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] on syntax errors, unknown or duplicate
    /// names, zero-delay dependency cycles, a `rate` aggregate without a
    /// time window, or more than [`MAX_DECLS`] declarations of one kind.
    pub fn parse(src: &str) -> Result<StreamSpec, SpecError> {
        let ast = parse_stream_src(src)?;
        compile(src, &ast)
    }

    /// The original source text.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The resolved streams, in declaration order.
    pub fn streams(&self) -> &[RStream] {
        &self.streams
    }

    /// Indices of derived streams in dependency (evaluation) order.
    pub fn eval_order(&self) -> &[usize] {
        &self.eval_order
    }

    /// The resolved triggers.
    pub fn triggers(&self) -> &[RTrigger] {
        &self.triggers
    }

    /// The resolved deadlines.
    pub fn deadlines(&self) -> &[RDeadline] {
        &self.deadlines
    }

    /// Whether any predicate in the spec can hold of a `pre` event — if
    /// not, `pre` hooks are identity on stream state and may be skipped.
    pub fn observes_pre(&self) -> bool {
        self.observes_pre
    }

    /// Whether any predicate in the spec can hold of a `post` event.
    pub fn observes_post(&self) -> bool {
        self.observes_post
    }

    /// Whether any predicate uses the `unsorted` structural atom (if not,
    /// live monitoring never inspects list structure).
    pub fn uses_unsorted(&self) -> bool {
        self.uses_unsorted
    }

    /// The compile-time memory bound.
    pub fn memory(&self) -> &MemoryReport {
        &self.memory
    }
}

fn compile(src: &str, ast: &SpecAst) -> Result<StreamSpec, SpecError> {
    for (count, what) in [
        (ast.streams.len(), "stream"),
        (ast.triggers.len(), "trigger"),
        (ast.deadlines.len(), "deadline"),
    ] {
        if count > MAX_DECLS {
            return Err(SpecError::syntax(
                format!("too many {what} declarations ({count}; limit {MAX_DECLS})"),
                0,
            ));
        }
    }

    // Name resolution.
    let mut ids: HashMap<&str, usize> = HashMap::new();
    for (i, decl) in ast.streams.iter().enumerate() {
        if ids.insert(decl.name.as_str(), i).is_some() {
            return Err(SpecError::syntax(
                format!("duplicate stream `{}`", decl.name),
                decl.offset,
            ));
        }
    }
    let mut trigger_names: HashMap<&str, ()> = HashMap::new();
    for decl in &ast.triggers {
        if trigger_names.insert(decl.name.as_str(), ()).is_some() {
            return Err(SpecError::syntax(
                format!("duplicate trigger `{}`", decl.name),
                decl.offset,
            ));
        }
    }

    let mut streams = Vec::with_capacity(ast.streams.len());
    for decl in &ast.streams {
        let kind = match &decl.def {
            StreamDef::Aggregate { agg, pred, window } => {
                if *agg == Agg::Rate && !matches!(window, Some(WindowSpec::Time(_))) {
                    return Err(SpecError::syntax(
                        format!(
                            "`rate` stream `{}` needs a time window: `over window(<d> ms)`",
                            decl.name
                        ),
                        decl.offset,
                    ));
                }
                RStreamKind::Aggregate {
                    agg: *agg,
                    pred: pred.clone(),
                    window: *window,
                }
            }
            StreamDef::Derived(e) => RStreamKind::Derived(resolve_expr(e, &ids, decl.offset)?),
        };
        streams.push(RStream {
            name: decl.name.clone(),
            kind,
        });
    }

    let eval_order = derived_order(&ast.streams, &streams)?;

    let mut triggers = Vec::with_capacity(ast.triggers.len());
    for decl in &ast.triggers {
        triggers.push(RTrigger {
            name: decl.name.clone(),
            cond: resolve_cond(&decl.cond, &ids, decl.offset)?,
        });
    }
    let deadlines: Vec<RDeadline> = ast
        .deadlines
        .iter()
        .map(|d| RDeadline {
            pred: d.pred.clone(),
            period: d.period,
            text: d.text.clone(),
        })
        .collect();

    // Phase relevance: union of may-match over every predicate anywhere
    // in the spec. Gating is phase-granular only (never name-dependent),
    // so the evaluator behaves identically whether a machine consults
    // the hint or not.
    let mut observes_pre = false;
    let mut observes_post = false;
    let mut uses_unsorted = false;
    {
        let mut see = |pred: &Pred| {
            observes_pre |= may_match(pred, PhaseView::Pre).0;
            observes_post |= may_match(pred, PhaseView::Post).0;
            pred.visit_atoms(&mut |a| uses_unsorted |= matches!(a, Atom::Unsorted));
        };
        for s in &streams {
            if let RStreamKind::Aggregate { pred, .. } = &s.kind {
                see(pred);
            }
        }
        for t in &triggers {
            visit_cond_preds(&t.cond, &mut see);
        }
        for d in &deadlines {
            see(&d.pred);
        }
    }

    let memory = memory_report(&streams, &triggers, &deadlines);

    Ok(StreamSpec {
        source: src.to_string(),
        streams,
        eval_order,
        triggers,
        deadlines,
        observes_pre,
        observes_post,
        uses_unsorted,
        memory,
    })
}

fn resolve_expr(
    e: &ValueExpr,
    ids: &HashMap<&str, usize>,
    offset: usize,
) -> Result<RExpr, SpecError> {
    Ok(match e {
        ValueExpr::Const(n) => RExpr::Const(*n),
        ValueExpr::Stream(name) => match ids.get(name.as_str()) {
            Some(&i) => RExpr::Stream(i),
            None => {
                return Err(SpecError::syntax(
                    format!("unknown stream `{name}`"),
                    offset,
                ))
            }
        },
        ValueExpr::Bin(op, a, b) => RExpr::Bin(
            *op,
            Box::new(resolve_expr(a, ids, offset)?),
            Box::new(resolve_expr(b, ids, offset)?),
        ),
    })
}

fn resolve_cond(c: &Cond, ids: &HashMap<&str, usize>, offset: usize) -> Result<RCond, SpecError> {
    Ok(match c {
        Cond::Event(p) => RCond::Event(p.clone()),
        Cond::Cmp(a, op, b) => RCond::Cmp(
            resolve_expr(a, ids, offset)?,
            *op,
            resolve_expr(b, ids, offset)?,
        ),
        Cond::Not(c) => RCond::Not(Box::new(resolve_cond(c, ids, offset)?)),
        Cond::And(a, b) => RCond::And(
            Box::new(resolve_cond(a, ids, offset)?),
            Box::new(resolve_cond(b, ids, offset)?),
        ),
        Cond::Or(a, b) => RCond::Or(
            Box::new(resolve_cond(a, ids, offset)?),
            Box::new(resolve_cond(b, ids, offset)?),
        ),
    })
}

fn visit_cond_preds(c: &RCond, f: &mut impl FnMut(&Pred)) {
    match c {
        RCond::Event(p) => f(p),
        RCond::Cmp(..) => {}
        RCond::Not(c) => visit_cond_preds(c, f),
        RCond::And(a, b) | RCond::Or(a, b) => {
            visit_cond_preds(a, f);
            visit_cond_preds(b, f);
        }
    }
}

/// Topologically orders the derived streams, rejecting cycles.
///
/// All stream operators are instantaneous (they reference the *current*
/// value of other streams), so any cycle through derived streams is a
/// zero-delay cycle: `stream a = b + 1  stream b = a` has no solution to
/// evaluate. Aggregates are sources (they read events, not streams) and
/// cannot participate in a cycle.
fn derived_order(
    decls: &[crate::ast::StreamDecl],
    streams: &[RStream],
) -> Result<Vec<usize>, SpecError> {
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    fn deps(e: &RExpr, out: &mut Vec<usize>) {
        match e {
            RExpr::Const(_) => {}
            RExpr::Stream(i) => out.push(*i),
            RExpr::Bin(_, a, b) => {
                deps(a, out);
                deps(b, out);
            }
        }
    }
    fn visit(
        i: usize,
        decls: &[crate::ast::StreamDecl],
        streams: &[RStream],
        marks: &mut [Mark],
        order: &mut Vec<usize>,
    ) -> Result<(), SpecError> {
        match marks[i] {
            Mark::Black => return Ok(()),
            Mark::Grey => {
                return Err(SpecError::syntax(
                    format!(
                        "zero-delay cycle through stream `{}`: all stream operators are \
                         instantaneous, so a stream cannot (transitively) depend on itself",
                        streams[i].name
                    ),
                    decls[i].offset,
                ))
            }
            Mark::White => {}
        }
        if let RStreamKind::Derived(e) = &streams[i].kind {
            marks[i] = Mark::Grey;
            let mut ds = Vec::new();
            deps(e, &mut ds);
            for d in ds {
                visit(d, decls, streams, marks, order)?;
            }
            marks[i] = Mark::Black;
            order.push(i);
        } else {
            marks[i] = Mark::Black;
        }
        Ok(())
    }
    let mut marks = vec![Mark::White; streams.len()];
    let mut order = Vec::new();
    for i in 0..streams.len() {
        visit(i, decls, streams, &mut marks, &mut order)?;
    }
    Ok(order)
}

/// The hook phase an event predicate is tested against (`done` is handled
/// at trace end, outside gating).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PhaseView {
    Pre,
    Post,
}

/// Three-valued relevance: `(may_true, may_false)` — whether some event
/// at this phase could satisfy / fail the predicate, over all names and
/// values. Sound, not exact (`value > 0 and value < 0` reports
/// `may_true`), which only costs an unnecessary observation, never a
/// missed one.
fn may_match(p: &Pred, phase: PhaseView) -> (bool, bool) {
    match p {
        Pred::Atom(a) => match a {
            Atom::True => (true, false),
            Atom::False => (false, true),
            Atom::Pre(pat) => match phase {
                PhaseView::Pre => (true, !matches!(pat, monsem_tspec::NamePat::Any)),
                PhaseView::Post => (false, true),
            },
            Atom::Post(pat) => match phase {
                PhaseView::Post => (true, !matches!(pat, monsem_tspec::NamePat::Any)),
                PhaseView::Pre => (false, true),
            },
            Atom::At(pat) => (true, !matches!(pat, monsem_tspec::NamePat::Any)),
            Atom::Done => (false, true),
            Atom::Value(..) | Atom::Unsorted => match phase {
                PhaseView::Post => (true, true),
                PhaseView::Pre => (false, true),
            },
        },
        Pred::Not(q) => {
            let (t, f) = may_match(q, phase);
            (f, t)
        }
        Pred::And(a, b) => {
            let (at, af) = may_match(a, phase);
            let (bt, bf) = may_match(b, phase);
            (at && bt, af || bf)
        }
        Pred::Or(a, b) => {
            let (at, af) = may_match(a, phase);
            let (bt, bf) = may_match(b, phase);
            (at || bt, af && bf)
        }
    }
}

/// Computes the exact steady-state byte footprint of the evaluator state
/// from window widths — the compile-time memory bound the crate's name
/// promises. `values`/`prev`/deadline slots are charged to the totals.
fn memory_report(
    streams: &[RStream],
    triggers: &[RTrigger],
    deadlines: &[RDeadline],
) -> MemoryReport {
    use std::mem::size_of;
    let base = size_of::<crate::eval::AggState>();
    let per_value = size_of::<Option<i64>>();
    let mut report = MemoryReport::default();
    for s in streams {
        let bytes = match &s.kind {
            RStreamKind::Aggregate {
                agg,
                window: Some(WindowSpec::Events(k)),
                ..
            } => {
                let ring = k * size_of::<Contribution>();
                let deques = if matches!(agg, Agg::Min | Agg::Max) {
                    k * size_of::<(u64, i64)>()
                } else {
                    0
                };
                base + ring + deques
            }
            RStreamKind::Aggregate {
                window: Some(WindowSpec::Time(_)),
                ..
            } => base + PANES * size_of::<Pane>(),
            RStreamKind::Aggregate { window: None, .. } | RStreamKind::Derived(_) => base,
        } + per_value;
        report.total_bytes += bytes;
        report.streams.push(StreamMemory {
            name: s.name.clone(),
            bytes,
        });
    }
    report.total_bytes += triggers.len() * size_of::<bool>();
    report.total_bytes += deadlines.len() * size_of::<crate::eval::DeadlineState>();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolves_and_orders_derived_streams() {
        let spec = StreamSpec::parse(
            "stream a = count(pre(_))\n\
             stream c = b + a\n\
             stream b = a * 2",
        )
        .unwrap();
        // `b` must be evaluated before `c`.
        assert_eq!(spec.eval_order(), &[2, 1]);
    }

    #[test]
    fn rejects_zero_delay_cycles() {
        let err = StreamSpec::parse(
            "stream a = b + 1\n\
             stream b = a",
        )
        .unwrap_err();
        assert!(err.message.contains("zero-delay cycle"), "{}", err.message);
        let err = StreamSpec::parse("stream a = a + 1").unwrap_err();
        assert!(err.message.contains("zero-delay cycle"), "{}", err.message);
    }

    #[test]
    fn rejects_unknown_and_duplicate_names() {
        assert!(StreamSpec::parse("stream a = b + 1")
            .unwrap_err()
            .message
            .contains("unknown stream"));
        assert!(StreamSpec::parse("stream a = 1\nstream a = 2")
            .unwrap_err()
            .message
            .contains("duplicate"));
        assert!(StreamSpec::parse("trigger t = done\ntrigger t = done")
            .unwrap_err()
            .message
            .contains("duplicate"));
    }

    #[test]
    fn rate_requires_a_time_window() {
        let err = StreamSpec::parse("stream r = rate(post(_)) over window(10)").unwrap_err();
        assert!(err.message.contains("time window"), "{}", err.message);
        let err = StreamSpec::parse("stream r = rate(post(_))").unwrap_err();
        assert!(err.message.contains("time window"), "{}", err.message);
        assert!(StreamSpec::parse("stream r = rate(post(_)) over window(320 ms)").is_ok());
    }

    #[test]
    fn phase_relevance_is_the_union_of_may_match() {
        let post_only = StreamSpec::parse("stream s = sum(post(f))").unwrap();
        assert!(!post_only.observes_pre());
        assert!(post_only.observes_post());

        let pre_only = StreamSpec::parse("stream c = count(pre(f))").unwrap();
        assert!(pre_only.observes_pre());
        assert!(!pre_only.observes_post());

        // `not post(f)` may hold of any pre event.
        let negated = StreamSpec::parse("stream c = count(not post(f))").unwrap();
        assert!(negated.observes_pre());
        assert!(negated.observes_post());

        // A trigger's event atoms count toward relevance even when every
        // aggregate is post-only.
        let mixed =
            StreamSpec::parse("stream s = sum(post(f))\ntrigger t = s > 3 and pre(g)").unwrap();
        assert!(mixed.observes_pre());

        // A deadline pred counts too.
        let dl = StreamSpec::parse("deadline pre(beat) every 10 ms").unwrap();
        assert!(dl.observes_pre());
        assert!(!dl.observes_post());
    }

    #[test]
    fn memory_report_scales_with_window_widths() {
        let spec = StreamSpec::parse(
            "stream small = count(post(_)) over window(8)\n\
             stream big = count(post(_)) over window(1024)\n\
             stream mx = max(post(_)) over window(8)\n\
             stream t = avg(post(_)) over window(100 ms)\n\
             stream c = count(post(_))\n\
             stream d = small + big",
        )
        .unwrap();
        let bytes: std::collections::HashMap<&str, usize> = spec
            .memory()
            .streams
            .iter()
            .map(|s| (s.name.as_str(), s.bytes))
            .collect();
        assert!(bytes["big"] > bytes["small"], "{:?}", spec.memory());
        // Min/max rings additionally carry the monotonic deque.
        assert!(bytes["mx"] > bytes["small"]);
        // Time windows cost a fixed number of panes regardless of width.
        let t2 = StreamSpec::parse("stream t = avg(post(_)) over window(100000 ms)").unwrap();
        assert_eq!(bytes["t"], t2.memory().streams[0].bytes);
        // Cumulative and derived streams are O(1).
        assert!(bytes["c"] < bytes["small"]);
        assert_eq!(bytes["c"], bytes["d"]);
        assert_eq!(
            spec.memory().total_bytes,
            spec.memory().streams.iter().map(|s| s.bytes).sum::<usize>()
        );
        assert!(spec.memory().to_string().contains("total"));
    }

    #[test]
    fn unsorted_usage_is_detected() {
        assert!(!StreamSpec::parse("stream s = count(post(_))")
            .unwrap()
            .uses_unsorted());
        assert!(StreamSpec::parse("stream s = count(unsorted)")
            .unwrap()
            .uses_unsorted());
    }
}
