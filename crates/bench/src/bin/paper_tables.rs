//! Regenerates every table and figure of the paper's evaluation as plain
//! text (see EXPERIMENTS.md for the index and recorded results).
//!
//! ```text
//! cargo run --release -p monsem-bench --bin paper_tables -- \
//!     [--table all|examples|spec-levels|fig11|futamura|tspec|tspec_levels|tiered|parallel|tape|server-scale|stream] [--json <dir>]
//! ```
//!
//! With `--json <dir>`, the timed tables additionally write
//! machine-readable snapshots — `BENCH_spec_levels.json` (E6),
//! `BENCH_fig11.json` (E7), `BENCH_tspec.json` (tspec overhead),
//! `BENCH_tspec_levels.json` (the three §9.1 levels for one temporal
//! spec), `BENCH_tiered.json` (profile-guided tiering vs the fixed
//! levels), `BENCH_parallel.json` (fork-join speedups),
//! `BENCH_tape.json` (event-tape recording, serialization, offline
//! check, and server ingest), `BENCH_server_scale.json` (batched
//! pipelined ingest over real sockets vs producer count, a batch-size
//! ablation against the synchronous per-event protocol, and
//! checkpoint-seeded vs full-replay check time),
//! `BENCH_server_conns.json` (concurrent-connection sweep: threaded
//! thread-per-connection I/O vs the epoll reactor, with peak thread
//! count and RSS per point) and `BENCH_stream.json` (stream-monitor
//! throughput vs window count and width, with the allocation-free
//! steady state asserted by a counting allocator) — into `<dir>`, so
//! the performance trajectory can be tracked across revisions.
//!
//! Absolute times are machine-dependent; the *shape* (who wins, by what
//! factor, linearity in monitoring activity) is what reproduces the paper.

use monsem_bench::{
    labelled_countdown, par_fib, par_merge_sort, trace_density_program, traced_fib,
};
use monsem_core::machine::{eval_with, EvalOptions};
use monsem_core::{programs, Env};
use monsem_monitor::machine::eval_monitored_with;
use monsem_monitor::{eval_parallel_with, Monitor, ParOptions};
use monsem_monitors::{Collecting, Profiler, Tracer, UnsortedDemon};
use monsem_pe::bta;
use monsem_pe::engine::{compile, compile_monitored};
use monsem_pe::instrument::{instrument, instrument_optimized, step_counter};
use monsem_pe::pipeline::{measure, measure_min, relative_percent};
use monsem_pe::specialize::SpecializeOptions;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// The stream table asserts that steady-state stream evaluation never
/// touches the heap, so the whole binary routes allocation through a
/// counting wrapper around the system allocator. The cost is two relaxed
/// atomic increments per allocation — noise for the other tables, which
/// measure in milliseconds.
struct CountingAlloc;

static ALLOCATIONS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

// SAFETY: defers entirely to the system allocator; the counter is a
// relaxed atomic with no safety obligations.
unsafe impl std::alloc::GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: std::alloc::Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        std::alloc::GlobalAlloc::alloc(&std::alloc::System, layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: std::alloc::Layout) {
        std::alloc::GlobalAlloc::dealloc(&std::alloc::System, ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: std::alloc::Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        std::alloc::GlobalAlloc::realloc(&std::alloc::System, ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let table = args
        .iter()
        .position(|a| a == "--table")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("all")
        .to_string();
    let json_dir: Option<PathBuf> =
        args.iter()
            .position(|a| a == "--json")
            .map(|i| match args.get(i + 1) {
                Some(dir) => PathBuf::from(dir),
                None => {
                    eprintln!("--json needs a directory argument");
                    std::process::exit(2);
                }
            });
    let json = json_dir.as_deref();

    match table.as_str() {
        "examples" => examples(),
        "spec-levels" => spec_levels(json),
        "fig11" => fig11(json),
        "futamura" => futamura(),
        "tspec" => tspec_overhead(json),
        "tspec_levels" | "tspec-levels" => tspec_levels(json),
        "tiered" => tiered(json),
        "parallel" => parallel(json),
        "tape" => tape(json),
        "server-scale" | "server_scale" => server_scale(json),
        "server-conns" | "server_conns" => server_conns(json),
        "stream" => stream(json),
        "all" => {
            examples();
            spec_levels(json);
            fig11(json);
            futamura();
            tspec_overhead(json);
            tspec_levels(json);
            tiered(json);
            parallel(json);
            tape(json);
            server_scale(json);
            server_conns(json);
            stream(json);
        }
        other => {
            eprintln!(
                "unknown table `{other}`; try examples, spec-levels, fig11, futamura, tspec, tspec_levels, tiered, parallel, tape, server-scale, server-conns, stream, all"
            );
            std::process::exit(2);
        }
    }
}

/// Milliseconds with enough digits for a JSON snapshot.
fn json_ms(d: Duration) -> String {
    format!("{:.6}", d.as_secs_f64() * 1e3)
}

fn write_json(dir: &Path, file: &str, body: String) {
    std::fs::create_dir_all(dir).expect("create --json directory");
    let path = dir.join(file);
    std::fs::write(&path, body).expect("write JSON snapshot");
    println!("\nwrote {}", path.display());
}

fn header(title: &str) {
    println!("\n==================================================================");
    println!("{title}");
    println!("==================================================================");
}

/// E1–E5: the paper's worked examples, verbatim.
fn examples() {
    header("E1 (§5): A/B profiler on fac 5  —  paper: σ = ⟨1, 5⟩");
    let (v, s) = eval_monitored_with_defaults(&programs::fac_ab(5), &monsem_monitors::AbProfiler);
    println!("answer = {v}");
    println!("σ = {}", monsem_monitors::AbProfiler.render_state(&s));

    header("E2 (§8): profiler on fac 3 via mul  —  paper: [fac ↦ 4, mul ↦ 3]");
    let p = Profiler::new();
    let (v, s) = eval_monitored_with_defaults(&programs::fac_mul_profiled(3), &p);
    println!("answer = {v}");
    println!("σ = {}", p.render_state(&s));

    header("E3 (§8): tracer on fac 3 via mul  —  paper: indented transcript");
    let t = Tracer::new();
    let (v, s) = eval_monitored_with_defaults(&programs::fac_mul_traced(3), &t);
    println!("{}", t.render_state(&s));
    println!("answer = {v}");

    header("E4 (§8): unsorted-list demon  —  paper: σ = {l1, l3}");
    let d = UnsortedDemon::new();
    let (v, s) = eval_monitored_with_defaults(&programs::inclist_demon(), &d);
    println!("answer = {v}");
    println!("σ = {}", d.render_state(&s));

    header("E5 (§8): collecting monitor on fac 3  —  paper: [test ↦ {true,false}, n ↦ {1,2,3}]");
    let c = Collecting::new();
    let (v, s) = eval_monitored_with_defaults(&programs::collecting_fac(3), &c);
    println!("answer = {v}");
    println!("σ = {}", c.render_state(&s));
}

fn eval_monitored_with_defaults<M: Monitor>(
    e: &monsem_syntax::Expr,
    m: &M,
) -> (monsem_core::Value, M::State) {
    eval_monitored_with(
        e,
        &Env::empty(),
        m,
        m.initial_state(),
        &EvalOptions::default(),
    )
    .expect("example evaluates")
}

const WARMUP: u32 = 3;
const RUNS: u32 = 15;
/// The tspec-levels table compares overheads that differ by tens of
/// microseconds, so it takes the minimum of more runs (see
/// [`measure_min`]) instead of the median of [`RUNS`].
const TSPEC_RUNS: u32 = 25;

fn ms(d: Duration) -> String {
    format!("{:>9.3} ms", d.as_secs_f64() * 1e3)
}

/// E6: the §9.1 measurements.
///
/// The paper's program traces a modest number of calls relative to its
/// total work (its tracer costs only ≈ 11%, and Figure 11 shows cost is
/// linear in trace volume), so the main table uses a workload where ~10%
/// of the computation routes through a traced function. The fully-traced
/// variant is reported afterwards — that regime is dominated by the
/// tracer's *dynamic* stream operations, which §9.1 notes no amount of
/// specialization removes.
fn spec_levels(json: Option<&Path>) {
    header(
        "E6 (§9.1): specialization levels, tracer at ~20% trace density\n\
         paper: monitored interp ≈ 11% slower than standard interp;\n\
         instrumented program ≈ 85% faster than monitored interp, ≈ 83% faster than standard interp",
    );
    let program = trace_density_program(4000, 800);
    let erased = program.erase_annotations();
    let tracer = Tracer::new();
    let opts = EvalOptions::default();
    let compiled_std = compile(&erased).expect("compiles");
    let compiled_mon = compile_monitored(&program, &tracer).expect("compiles");

    let t_interp = measure(
        || {
            eval_with(&erased, &Env::empty(), &opts).unwrap();
        },
        WARMUP,
        RUNS,
    );
    let t_monitored = measure(
        || {
            eval_monitored_with(
                &program,
                &Env::empty(),
                &tracer,
                tracer.initial_state(),
                &opts,
            )
            .unwrap();
        },
        WARMUP,
        RUNS,
    );
    let t_compiled_std = measure(
        || {
            compiled_std.run().unwrap();
        },
        WARMUP,
        RUNS,
    );
    let t_compiled_mon = measure(
        || {
            compiled_mon.run_monitored(&tracer, &opts).unwrap();
        },
        WARMUP,
        RUNS,
    );

    println!("standard interpreter            {}", ms(t_interp));
    println!(
        "monitored interpreter (tracer)  {}   ({} than standard interpreter)",
        ms(t_monitored),
        relative_percent(t_monitored, t_interp)
    );
    println!(
        "instrumented program (compiled) {}   ({} than monitored interpreter, {} than standard interpreter)",
        ms(t_compiled_mon),
        relative_percent(t_compiled_mon, t_monitored),
        relative_percent(t_compiled_mon, t_interp)
    );
    println!("  — compiled, no monitor       {}", ms(t_compiled_std));
    let main_times = (t_interp, t_monitored, t_compiled_mon, t_compiled_std);

    println!();
    println!("fully-traced variant (every call traced — dynamic tracing dominates, cf. §9.1's");
    println!("remark that the tracer's stream operations are dynamic):");
    let program = traced_fib(17);
    let erased = program.erase_annotations();
    let compiled_mon = compile_monitored(&program, &tracer).expect("compiles");
    let t_interp = measure(
        || {
            eval_with(&erased, &Env::empty(), &opts).unwrap();
        },
        WARMUP,
        RUNS,
    );
    let t_monitored = measure(
        || {
            eval_monitored_with(
                &program,
                &Env::empty(),
                &tracer,
                tracer.initial_state(),
                &opts,
            )
            .unwrap();
        },
        WARMUP,
        RUNS,
    );
    let t_compiled_mon = measure(
        || {
            compiled_mon.run_monitored(&tracer, &opts).unwrap();
        },
        WARMUP,
        RUNS,
    );
    println!("standard interpreter            {}", ms(t_interp));
    println!(
        "monitored interpreter (tracer)  {}   ({} than standard interpreter)",
        ms(t_monitored),
        relative_percent(t_monitored, t_interp)
    );
    println!(
        "instrumented program (compiled) {}   ({} than monitored interpreter)",
        ms(t_compiled_mon),
        relative_percent(t_compiled_mon, t_monitored)
    );

    if let Some(dir) = json {
        let body = format!(
            "{{\n  \
               \"table\": \"spec_levels\",\n  \
               \"unit\": \"ms\",\n  \
               \"statistic\": \"median of {RUNS} after {WARMUP} warmups\",\n  \
               \"main\": {{\n    \
                 \"workload\": {{ \"iterations\": 4000, \"traced\": 800 }},\n    \
                 \"standard_interpreter\": {},\n    \
                 \"monitored_interpreter\": {},\n    \
                 \"instrumented_compiled\": {},\n    \
                 \"compiled_no_monitor\": {}\n  \
               }},\n  \
               \"fully_traced\": {{\n    \
                 \"workload\": \"traced_fib(17)\",\n    \
                 \"standard_interpreter\": {},\n    \
                 \"monitored_interpreter\": {},\n    \
                 \"instrumented_compiled\": {}\n  \
               }}\n}}\n",
            json_ms(main_times.0),
            json_ms(main_times.1),
            json_ms(main_times.2),
            json_ms(main_times.3),
            json_ms(t_interp),
            json_ms(t_monitored),
            json_ms(t_compiled_mon),
        );
        write_json(dir, "BENCH_spec_levels.json", body);
    }
}

/// E7: Figure 11.
fn fig11(json: Option<&Path>) {
    header(
        "E7 (Figure 11): run time vs number of trace printouts (2000 iterations)\n\
         paper: standard interpreter flat; monitored interpreter linear in trace activity",
    );
    let tracer = Tracer::new();
    let opts = EvalOptions::default();
    let mut points: Vec<String> = Vec::new();
    println!("{:>8} {:>14} {:>16}", "traced", "standard", "monitored");
    for traced in [0, 250, 500, 1000, 1500, 2000] {
        let program = trace_density_program(2000, traced);
        let erased = program.erase_annotations();
        let t_std = measure(
            || {
                eval_with(&erased, &Env::empty(), &opts).unwrap();
            },
            WARMUP,
            RUNS,
        );
        let t_mon = measure(
            || {
                eval_monitored_with(
                    &program,
                    &Env::empty(),
                    &tracer,
                    tracer.initial_state(),
                    &opts,
                )
                .unwrap();
            },
            WARMUP,
            RUNS,
        );
        println!("{:>8} {} {}", traced, ms(t_std), ms(t_mon));
        points.push(format!(
            "    {{ \"traced\": {traced}, \"standard\": {}, \"monitored\": {} }}",
            json_ms(t_std),
            json_ms(t_mon),
        ));
    }
    if let Some(dir) = json {
        let body = format!(
            "{{\n  \
               \"table\": \"fig11\",\n  \
               \"unit\": \"ms\",\n  \
               \"statistic\": \"median of {RUNS} after {WARMUP} warmups\",\n  \
               \"iterations\": 2000,\n  \
               \"points\": [\n{}\n  ]\n}}\n",
            points.join(",\n"),
        );
        write_json(dir, "BENCH_fig11.json", body);
    }
}

/// Temporal-spec overhead (EXPERIMENTS.md §5¾): compiled-automaton
/// monitors on the hook-dense `labelled_countdown` workload, so the
/// recorded tspec numbers regenerate from the same command as every
/// other table (previously criterion-only).
fn tspec_overhead(json: Option<&Path>) {
    header(
        "Tspec overhead: compiled-automaton monitors on labelled_countdown(2000)\n\
         expectation: one letter classification + one table lookup per event —\n\
         same order as the hand-written demon, linear in event count",
    );
    use monsem_pe::SpecializedSpec;
    use monsem_tspec::SpecMonitor;
    let program = labelled_countdown(2000);
    let erased = program.erase_annotations();
    let opts = EvalOptions::default();
    let t_std = measure(
        || {
            eval_with(&erased, &Env::empty(), &opts).unwrap();
        },
        WARMUP,
        RUNS,
    );
    let safety = SpecMonitor::new("safety", "always(post(B) => value >= 0)").unwrap();
    let t_safety = measure(
        || {
            eval_monitored_with(
                &program,
                &Env::empty(),
                &safety,
                safety.initial_state(),
                &opts,
            )
            .unwrap();
        },
        WARMUP,
        RUNS,
    );
    let specialized = SpecializedSpec::new(
        &program,
        SpecMonitor::new("safety", "always(post(B) => value >= 0)").unwrap(),
    );
    let t_specialized = measure(
        || {
            eval_monitored_with(
                &program,
                &Env::empty(),
                &specialized,
                specialized.initial_state(),
                &opts,
            )
            .unwrap();
        },
        WARMUP,
        RUNS,
    );
    println!("standard interpreter              {}", ms(t_std));
    println!(
        "tspec-safety (interpreted sites)  {}   ({} than standard)",
        ms(t_safety),
        relative_percent(t_safety, t_std)
    );
    println!(
        "tspec-specialized (site table)    {}   ({} than standard)",
        ms(t_specialized),
        relative_percent(t_specialized, t_std)
    );
    if let Some(dir) = json {
        let body = format!(
            "{{\n  \
               \"table\": \"tspec_overhead\",\n  \
               \"unit\": \"ms\",\n  \
               \"statistic\": \"median of {RUNS} after {WARMUP} warmups\",\n  \
               \"workload\": \"labelled_countdown(2000)\",\n  \
               \"spec\": \"always(post(B) => value >= 0)\",\n  \
               \"standard_interpreter\": {},\n  \
               \"tspec_safety\": {},\n  \
               \"tspec_specialized\": {}\n}}\n",
            json_ms(t_std),
            json_ms(t_safety),
            json_ms(t_specialized),
        );
        write_json(dir, "BENCH_tspec.json", body);
    }
}

/// The three §9.1 specialization levels for one temporal spec,
/// head-to-head (BENCH_tspec_levels): level 1 interprets the spec at
/// every event (alphabet dispatch + table lookup), level 2 precomputes
/// site letters and runs on the compiled engine (`SpecializedSpec`),
/// level 3 compiles the minimized, letter-compressed DFA *into* the
/// program (`instrument_spec`) — the residual program runs unmonitored,
/// threading the bare DFA state integer. Each level's *overhead* is its
/// time minus its own machine's unmonitored baseline, so the comparison
/// isolates what the monitoring costs at that level.
fn tspec_levels(json: Option<&Path>) {
    use monsem_pe::{instrument_spec, spec_verdict, SpecializedSpec};
    use monsem_tspec::SpecMonitor;
    header(
        "Tspec levels: one spec, three §9.1 levels, labelled_countdown(n)\n\
         expectation: level-3 overhead ≤ level-2 overhead at every point —\n\
         inlined integer comparisons beat per-event site lookup + trace recording",
    );
    const SPEC: &str = "always(post(B) => value >= 0)";
    let opts = EvalOptions::default();
    let monitor = SpecMonitor::new("safety", SPEC).unwrap();
    let mut points: Vec<String> = Vec::new();
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>12} {:>12} {:>10} {:>10}",
        "n", "interp", "level1", "compiled", "level2", "level3", "ovh2", "ovh3"
    );
    for n in [500i64, 1000, 2000, 4000] {
        let program = labelled_countdown(n);
        let erased = program.erase_annotations();
        let specialized = SpecializedSpec::new(&program, monitor.clone());
        let residual = instrument_spec(&program, &monitor);
        let compiled_std = compile(&erased).expect("compiles");
        let compiled_mon = compile_monitored(&program, &specialized).expect("compiles");
        let compiled_res = compile(&residual).expect("residual compiles");

        // Correctness outside the timed region: the residual's final
        // state decodes to the interpreted monitor's verdict.
        let (_, s1) = eval_monitored_with(
            &program,
            &Env::empty(),
            &monitor,
            monitor.initial_state(),
            &opts,
        )
        .expect("level 1 evaluates");
        match compiled_res.run().expect("level 3 evaluates") {
            monsem_core::Value::Pair(_, state) => {
                assert_eq!(*state, monsem_core::Value::Int(i64::from(s1.state)));
                assert!(spec_verdict(monitor.automaton(), s1.state).is_ok());
            }
            other => panic!("residual program must return a pair, got {other}"),
        }

        let t_interp = measure_min(
            || {
                eval_with(&erased, &Env::empty(), &opts).unwrap();
            },
            WARMUP,
            TSPEC_RUNS,
        );
        let t_level1 = measure_min(
            || {
                eval_monitored_with(
                    &program,
                    &Env::empty(),
                    &monitor,
                    monitor.initial_state(),
                    &opts,
                )
                .unwrap();
            },
            WARMUP,
            TSPEC_RUNS,
        );
        let t_compiled = measure_min(
            || {
                compiled_std.run().unwrap();
            },
            WARMUP,
            TSPEC_RUNS,
        );
        let t_level2 = measure_min(
            || {
                compiled_mon.run_monitored(&specialized, &opts).unwrap();
            },
            WARMUP,
            TSPEC_RUNS,
        );
        let t_level3 = measure_min(
            || {
                compiled_res.run().unwrap();
            },
            WARMUP,
            TSPEC_RUNS,
        );
        let ovh2 = t_level2.saturating_sub(t_compiled);
        let ovh3 = t_level3.saturating_sub(t_compiled);
        println!(
            "{:>6} {} {} {} {} {} {} {}",
            n,
            ms(t_interp),
            ms(t_level1),
            ms(t_compiled),
            ms(t_level2),
            ms(t_level3),
            ms(ovh2),
            ms(ovh3)
        );
        points.push(format!(
            "    {{ \"n\": {n}, \"standard_interpreter\": {}, \"level1_interpreted_spec\": {}, \
             \"compiled_no_monitor\": {}, \"level2_specialized_sites\": {}, \
             \"level3_self_monitoring\": {}, \"overhead_level2\": {}, \"overhead_level3\": {} }}",
            json_ms(t_interp),
            json_ms(t_level1),
            json_ms(t_compiled),
            json_ms(t_level2),
            json_ms(t_level3),
            json_ms(ovh2),
            json_ms(ovh3),
        ));
    }
    if let Some(dir) = json {
        let body = format!(
            "{{\n  \
               \"table\": \"tspec_levels\",\n  \
               \"unit\": \"ms\",\n  \
               \"statistic\": \"min of {TSPEC_RUNS} after {WARMUP} warmups\",\n  \
               \"workload\": \"labelled_countdown(n)\",\n  \
               \"spec\": \"{SPEC}\",\n  \
               \"levels\": {{\n    \
                 \"1\": \"interpreted SpecMonitor (alphabet dispatch per event)\",\n    \
                 \"2\": \"SpecializedSpec on the compiled engine (per-site letters)\",\n    \
                 \"3\": \"instrument_spec residual program (DFA inlined, no monitor object)\"\n  \
               }},\n  \
               \"points\": [\n{}\n  ]\n}}\n",
            points.join(",\n"),
        );
        write_json(dir, "BENCH_tspec_levels.json", body);
    }
}

/// Tiered execution table (BENCH_tiered): the profile-guided
/// `TieredSession` against the three fixed §9.1 levels on the hot-loop
/// `labelled_countdown` workload. The steady state — once the profile
/// has promoted the loop to a compiled residual — should sit between
/// level 2 and level 3: at most level-2 cost everywhere (the residual
/// *is* compiled), within a small factor of level 3 (the per-run guard
/// and bookkeeping are constant). Correctness (answer and final DFA
/// state vs level 1) is asserted before anything is timed, as is
/// laziness: a cold session compiles nothing.
fn tiered(json: Option<&Path>) {
    use monsem_monitor::TierPolicy;
    use monsem_pe::{instrument_spec, SpecializedSpec, TierOutcome, TieredSession};
    use monsem_tspec::SpecMonitor;
    header(
        "Tiered execution: profile-guided promotion vs the fixed levels, labelled_countdown(n)\n\
         expectation: steady-state tiered ≤ level 2 everywhere and within ~1.25× of\n\
         level 3 — the residual is the level-3 translation behind a constant-cost guard",
    );
    const SPEC: &str = "always(post(B) => value >= 0)";
    let opts = EvalOptions::default();
    let monitor = SpecMonitor::new("safety", SPEC).unwrap();

    // Laziness, asserted once up front: a session whose sites stay cold
    // never invokes the translation.
    let cold_runs = 4u64;
    let mut cold = TieredSession::new(&labelled_countdown(4), monitor.clone())
        .expect("cold program compiles")
        .policy(TierPolicy::default().hot_threshold(1_000_000));
    for _ in 0..cold_runs {
        cold.run().expect("cold run evaluates");
    }
    assert_eq!(
        cold.stats().residuals_compiled,
        0,
        "cold sites must not compile"
    );
    println!("laziness: {cold_runs} cold runs compiled 0 residuals\n");

    let mut points: Vec<String> = Vec::new();
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>12} {:>10} {:>10}",
        "n", "level1", "level2", "level3", "tiered", "t/l2", "t/l3"
    );
    for n in [500i64, 1000, 2000, 4000] {
        let program = labelled_countdown(n);
        let specialized = SpecializedSpec::new(&program, monitor.clone());
        let compiled_mon = compile_monitored(&program, &specialized).expect("compiles");
        let compiled_res = compile(&instrument_spec(&program, &monitor)).expect("compiles");

        let mut session = TieredSession::new(&program, monitor.clone())
            .expect("workload compiles")
            .policy(TierPolicy::default().hot_threshold(64));

        // Correctness outside the timed region: the first (profiled)
        // run promotes; steady-state runs are residual-served and agree
        // with level 1 on the answer and the final DFA state.
        let (answer, s1) = eval_monitored_with(
            &program,
            &Env::empty(),
            &monitor,
            monitor.initial_state(),
            &opts,
        )
        .expect("level 1 evaluates");
        let first = session.run().expect("profiled run evaluates");
        assert_eq!(first.value, answer);
        assert_eq!(first.state, s1.state);
        assert_eq!(session.stats().promotions, 1, "the loop must be hot");
        let steady = session.run().expect("residual run evaluates");
        assert_eq!(steady.outcome, TierOutcome::Residual);
        assert_eq!(steady.value, answer);
        assert_eq!(steady.state, s1.state);

        let t_level1 = measure_min(
            || {
                eval_monitored_with(
                    &program,
                    &Env::empty(),
                    &monitor,
                    monitor.initial_state(),
                    &opts,
                )
                .unwrap();
            },
            WARMUP,
            TSPEC_RUNS,
        );
        let t_level2 = measure_min(
            || {
                compiled_mon.run_monitored(&specialized, &opts).unwrap();
            },
            WARMUP,
            TSPEC_RUNS,
        );
        let t_level3 = measure_min(
            || {
                compiled_res.run().unwrap();
            },
            WARMUP,
            TSPEC_RUNS,
        );
        let t_tiered = measure_min(
            || {
                assert_eq!(session.run().unwrap().outcome, TierOutcome::Residual);
            },
            WARMUP,
            TSPEC_RUNS,
        );
        let vs_l2 = t_tiered.as_secs_f64() / t_level2.as_secs_f64();
        let vs_l3 = t_tiered.as_secs_f64() / t_level3.as_secs_f64();
        println!(
            "{:>6} {} {} {} {} {:>9.3}× {:>9.3}×",
            n,
            ms(t_level1),
            ms(t_level2),
            ms(t_level3),
            ms(t_tiered),
            vs_l2,
            vs_l3
        );
        points.push(format!(
            "    {{ \"n\": {n}, \"level1_interpreted_spec\": {}, \"level2_specialized_sites\": {}, \
             \"level3_self_monitoring\": {}, \"tiered_steady_state\": {}, \
             \"tiered_over_level2\": {vs_l2:.4}, \"tiered_over_level3\": {vs_l3:.4} }}",
            json_ms(t_level1),
            json_ms(t_level2),
            json_ms(t_level3),
            json_ms(t_tiered),
        ));
    }
    if let Some(dir) = json {
        let body = format!(
            "{{\n  \
               \"table\": \"tiered\",\n  \
               \"unit\": \"ms\",\n  \
               \"statistic\": \"min of {TSPEC_RUNS} after {WARMUP} warmups\",\n  \
               \"workload\": \"labelled_countdown(n)\",\n  \
               \"spec\": \"{SPEC}\",\n  \
               \"policy\": \"hot_threshold 64; steady state measured after promotion\",\n  \
               \"laziness\": {{ \"cold_runs\": {cold_runs}, \"residuals_compiled\": 0 }},\n  \
               \"points\": [\n{}\n  ]\n}}\n",
            points.join(",\n"),
        );
        write_json(dir, "BENCH_tiered.json", body);
    }
}

/// Fork-join speedup table (BENCH_parallel): profiler-monitored
/// `par_fib` / `par_merge_sort` workloads across a thread axis, each
/// point the median of 3 runs, compared against the *sequential*
/// monitored machine on the identical program. The merge-law proptests
/// (`tests/parallel_fork_join.rs`) pin the states bit-for-bit; this
/// table records what the parallelism buys in wall-clock.
fn parallel(json: Option<&Path>) {
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    header(&format!(
        "Fork-join parallel evaluation: profiler-monitored workloads, median of 3\n\
         expectation: ≥ 2× at 4 threads on 8 independent shards (needs ≥ 4 host\n\
         cores; this host has {host_cpus}); states identical either way",
    ));
    use monsem_monitors::Profiler;
    const PAR_RUNS: u32 = 3;
    let profiler = Profiler::new();
    let opts = EvalOptions::default();
    let threads_axis = [1usize, 2, 4, 8];
    let workloads = [
        ("par_fib(8, 21)", par_fib(8, 21)),
        ("par_merge_sort(8, 220)", par_merge_sort(8, 220)),
    ];
    let mut entries: Vec<String> = Vec::new();
    for (name, program) in &workloads {
        let seq_out = eval_monitored_with(
            program,
            &Env::empty(),
            &profiler,
            profiler.initial_state(),
            &opts,
        )
        .expect("workload evaluates");
        let t_seq = measure(
            || {
                eval_monitored_with(
                    program,
                    &Env::empty(),
                    &profiler,
                    profiler.initial_state(),
                    &opts,
                )
                .unwrap();
            },
            WARMUP,
            PAR_RUNS,
        );
        println!("\n{name}");
        println!("  sequential monitored machine  {}", ms(t_seq));
        let mut points: Vec<String> = Vec::new();
        for &threads in &threads_axis {
            let popts = ParOptions {
                threads,
                eval: opts.clone(),
            };
            let par_out = eval_parallel_with(
                program,
                &Env::empty(),
                &profiler,
                profiler.initial_state(),
                &popts,
            )
            .expect("workload evaluates");
            assert_eq!(seq_out, par_out, "parallel must match sequential exactly");
            let t_par = measure(
                || {
                    eval_parallel_with(
                        program,
                        &Env::empty(),
                        &profiler,
                        profiler.initial_state(),
                        &popts,
                    )
                    .unwrap();
                },
                WARMUP,
                PAR_RUNS,
            );
            let speedup = t_seq.as_secs_f64() / t_par.as_secs_f64();
            println!(
                "  {threads} thread{}                     {}   ({speedup:.2}× vs sequential)",
                if threads == 1 { " " } else { "s" },
                ms(t_par)
            );
            points.push(format!(
                "      {{ \"threads\": {threads}, \"wall_ms\": {}, \"speedup\": {speedup:.3} }}",
                json_ms(t_par)
            ));
        }
        entries.push(format!(
            "    {{\n      \"workload\": \"{name}\",\n      \"sequential_ms\": {},\n      \"points\": [\n{}\n      ]\n    }}",
            json_ms(t_seq),
            points.join(",\n"),
        ));
    }
    if let Some(dir) = json {
        let body = format!(
            "{{\n  \
               \"table\": \"parallel\",\n  \
               \"unit\": \"ms\",\n  \
               \"statistic\": \"median of {PAR_RUNS} after {WARMUP} warmups\",\n  \
               \"monitor\": \"profiler\",\n  \
               \"host_cpus\": {host_cpus},\n  \
               \"machine\": \"monitor::parallel fork-join vs sequential monitored machine\",\n  \
               \"workloads\": [\n{}\n  ]\n}}\n",
            entries.join(",\n"),
        );
        write_json(dir, "BENCH_parallel.json", body);
    }
}

/// Monitoring-as-a-service table (BENCH_tape): what the event tape
/// costs at each stage of its life — recording next to the live
/// monitor, serializing to the versioned binary format, the offline
/// `check` replay, and ingest through the sharded monitor server's
/// bounded queues. Recording should sit within a small constant factor
/// of the live run (one `Vec` push per hook), and the offline stages
/// should process events orders of magnitude faster than the machine
/// produced them — the point of checking tapes instead of re-executing.
fn tape(json: Option<&Path>) {
    use monsem_monitor::{record_monitored_with, MemorySink, SharedSink};
    use monsem_tape::{read_tape, write_tape, MonitorServer, ServerConfig};
    use monsem_tspec::SpecMonitor;
    header(
        "Event tapes: record / serialize / offline-check / server ingest, labelled_countdown(2000)\n\
         expectation: recording within a small factor of the live run; offline check\n\
         and server ingest orders of magnitude faster than re-execution",
    );
    const SPEC: &str = "always(post(B) => value >= 0)";
    let program = labelled_countdown(2000);
    let opts = EvalOptions::default();
    let monitor = SpecMonitor::new("safety", SPEC).unwrap();

    let t_live = measure(
        || {
            eval_monitored_with(
                &program,
                &Env::empty(),
                &monitor,
                monitor.initial_state(),
                &opts,
            )
            .unwrap();
        },
        WARMUP,
        RUNS,
    );
    let t_record = measure(
        || {
            let mem = MemorySink::new();
            let sink = SharedSink::new(mem.clone());
            record_monitored_with(&program, &Env::empty(), monitor.clone(), &sink, &opts).unwrap();
        },
        WARMUP,
        RUNS,
    );

    // One reference tape for the offline stages.
    let mem = MemorySink::new();
    let sink = SharedSink::new(mem.clone());
    record_monitored_with(&program, &Env::empty(), monitor.clone(), &sink, &opts)
        .expect("workload evaluates");
    let events = mem.take();
    let n_events = events.len();
    let bytes = write_tape(&events);
    let bytes_per_event = bytes.len() as f64 / n_events as f64;

    let t_encode = measure(
        || {
            std::hint::black_box(write_tape(&events));
        },
        WARMUP,
        RUNS,
    );
    let t_decode = measure(
        || {
            std::hint::black_box(read_tape(&bytes).unwrap());
        },
        WARMUP,
        RUNS,
    );
    let t_check = measure(
        || {
            std::hint::black_box(monitor.check_tape(&events));
        },
        WARMUP,
        RUNS,
    );
    // Server ingest: one full session lifecycle — open, stream in
    // chunks through the sharded bounded queues, close. Includes the
    // per-request round-trips, i.e. what a producer actually pays.
    const CHUNK: usize = 256;
    let server = MonitorServer::start(ServerConfig::default());
    let mut session = 0u64;
    let t_ingest = measure(
        || {
            session += 1;
            assert!(matches!(
                server.open(session, SPEC, false),
                monsem_tape::Response::Ok
            ));
            for chunk in events.chunks(CHUNK) {
                server.events(session, chunk.to_vec());
            }
            server.close(session);
        },
        WARMUP,
        RUNS,
    );
    server.shutdown();

    let per_ms = |d: Duration| n_events as f64 / (d.as_secs_f64() * 1e3);
    println!("events on tape                  {n_events:>9}   ({bytes_per_event:.1} bytes/event serialized)");
    println!("live monitored run              {}", ms(t_live));
    println!(
        "recording run (tape sink)       {}   ({} than live)",
        ms(t_record),
        relative_percent(t_record, t_live)
    );
    println!(
        "serialize                       {}   ({:>8.0} events/ms)",
        ms(t_encode),
        per_ms(t_encode)
    );
    println!(
        "deserialize                     {}   ({:>8.0} events/ms)",
        ms(t_decode),
        per_ms(t_decode)
    );
    println!(
        "offline check                   {}   ({:>8.0} events/ms)",
        ms(t_check),
        per_ms(t_check)
    );
    println!(
        "server ingest (chunks of {CHUNK})    {}   ({:>8.0} events/ms)",
        ms(t_ingest),
        per_ms(t_ingest)
    );

    if let Some(dir) = json {
        let body = format!(
            "{{\n  \
               \"table\": \"tape\",\n  \
               \"unit\": \"ms\",\n  \
               \"statistic\": \"median of {RUNS} after {WARMUP} warmups\",\n  \
               \"workload\": \"labelled_countdown(2000)\",\n  \
               \"spec\": \"{SPEC}\",\n  \
               \"events\": {n_events},\n  \
               \"bytes_per_event\": {bytes_per_event:.3},\n  \
               \"live_ms\": {},\n  \
               \"record_ms\": {},\n  \
               \"encode_ms\": {},\n  \
               \"decode_ms\": {},\n  \
               \"check_ms\": {},\n  \
               \"check_events_per_ms\": {:.1},\n  \
               \"server_ingest_ms\": {},\n  \
               \"server_events_per_ms\": {:.1}\n}}\n",
            json_ms(t_live),
            json_ms(t_record),
            json_ms(t_encode),
            json_ms(t_decode),
            json_ms(t_check),
            per_ms(t_check),
            json_ms(t_ingest),
            per_ms(t_ingest),
        );
        write_json(dir, "BENCH_tape.json", body);
    }
}

/// Saturation study for the batched, pipelined ingest path: P
/// producers over real sockets (TCP and Unix), a batch-size ablation
/// against the synchronous per-event protocol, and checkpoint-seeded
/// vs full-replay offline check time. Every timed configuration first
/// proves its verdict identical to the offline oracle — a fast path
/// that changes the answer would be a bug, not a speedup.
fn server_scale(json: Option<&Path>) {
    use monsem_core::Value;
    use monsem_monitor::TapeEvent;
    use monsem_syntax::Annotation;
    use monsem_tape::{
        check_tape_from, read_tape, serve_tcp, serve_unix, write_tape_checkpointed, Client,
        MonitorServer, Request, Response, ServerConfig,
    };
    use monsem_tspec::{SpecMonitor, TapeOutcome};
    use std::io::{Read, Write};
    use std::sync::Arc;
    use std::time::Instant;

    const SPEC: &str = "always(post(req) => value >= 0)";
    /// Events per producer per run; also the checkpointed tape's length.
    const TOTAL: usize = 100_000;
    /// Events for the synchronous per-event baseline (each event costs a
    /// full round trip; the full workload would dominate the run).
    const SYNC_N: usize = 16_384;
    const PRODUCERS: &[usize] = &[1, 2, 4, 8];
    const BATCHES: &[usize] = &[1, 16, 64, 256, 1024, 4096, 16384];
    const CKPT_EVERY: usize = 10_000;
    /// Scale points multiply the workload by P, so fewer repetitions.
    const SCALE_WARMUP: u32 = 1;
    const SCALE_RUNS: u32 = 5;

    let host_cpus = std::thread::available_parallelism().map_or(1, usize::from);
    header(&format!(
        "Server saturation: batched pipelined ingest over sockets, {TOTAL} events/producer\n\
         host_cpus = {host_cpus}; every timed point's verdict is asserted against the\n\
         offline oracle before the clock starts"
    ));

    let ann = Annotation::label("req");
    let events: Vec<TapeEvent> = (0..TOTAL)
        .map(|i| {
            // Mostly in-spec values with a violation every 10k events, so
            // the violated path (and earliest-violation tracking) is paid
            // for, not skipped.
            let v = if i % 10_000 == 9_999 {
                -1
            } else {
                (i % 97) as i64
            };
            TapeEvent::post(&ann, &Value::Int(v), i as u64)
        })
        .collect();
    let oracle = SpecMonitor::new("oracle", SPEC)
        .unwrap()
        .check_tape(events.iter());
    let oracle_earliest = oracle.earliest_violation;
    let oracle_violated = matches!(oracle.outcome, TapeOutcome::Violated(_));
    assert!(oracle_violated, "the workload must exercise violations");

    // The offline checker's bare fold on this workload — the rate every
    // ingest path is chasing.
    let oracle_monitor = SpecMonitor::new("oracle", SPEC).unwrap();
    let t_offline = measure(
        || {
            std::hint::black_box(oracle_monitor.check_tape(events.iter()));
        },
        SCALE_WARMUP,
        SCALE_RUNS,
    );
    let offline_epms = TOTAL as f64 / (t_offline.as_secs_f64() * 1e3);
    println!(
        "offline check (no decode)  {}   ({offline_epms:>8.0} events/ms)",
        ms(t_offline)
    );

    /// One timed run: P producers, each with its own connection and
    /// session, pushing the whole workload through a `BatchWriter` and
    /// closing. The close verdict is the barrier *and* the correctness
    /// check: ingested count, earliest violation, and verdict class
    /// must equal the offline oracle's.
    fn producers_run<S, C>(
        connect: &C,
        p: usize,
        batch: usize,
        events: &[TapeEvent],
        oracle_earliest: Option<u64>,
        oracle_violated: bool,
    ) -> Duration
    where
        S: Read + Write + Send,
        C: Fn() -> Client<S> + Sync,
    {
        let start = Instant::now();
        std::thread::scope(|scope| {
            for t in 0..p {
                scope.spawn(move || {
                    let mut client = connect();
                    let session = t as u64;
                    let resp = client
                        .request(&Request::Open {
                            session,
                            enforcing: false,
                            spec: SPEC.to_string(),
                            stream: None,
                        })
                        .expect("open");
                    assert!(matches!(resp, Response::Ok), "open: {resp:?}");
                    // One EventBatch frame per chunk — the same wire
                    // image a `BatchWriter` flushes at this batch size,
                    // minus the per-event clone into its buffer (which
                    // would time the benchmark harness, not the path).
                    for chunk in events.chunks(batch) {
                        client.send_batch(session, chunk).expect("send");
                    }
                    let resp = client.request(&Request::Close { session }).expect("close");
                    let v = match resp {
                        Response::Verdict(v) => v,
                        other => panic!("close: {other:?}"),
                    };
                    assert_eq!(v.ingested, events.len() as u64, "events lost in flight");
                    assert_eq!(v.earliest_violation, oracle_earliest, "verdict drifted");
                    assert_eq!(v.violation.is_some(), oracle_violated, "verdict drifted");
                });
            }
        });
        start.elapsed()
    }

    let batch_default = monsem_tape::DEFAULT_BATCH;
    let mut points: Vec<(String, usize, Duration, f64)> = Vec::new();
    let mut ablation: Vec<(usize, Duration, f64)> = Vec::new();
    let mut sync_point: Option<(Duration, f64)> = None;
    let whole_image: (Duration, f64);

    // In-process pipelined points first: the same fire-and-forget
    // batch-fold-ack path minus the socket, i.e. the apples-to-apples
    // successor of BENCH_tape's synchronous chunked server ingest.
    {
        let server = Arc::new(MonitorServer::start(ServerConfig::default()));
        for &p in PRODUCERS {
            let server_ref = &server;
            let events_ref = &events;
            let wall = measure_producers(
                || {
                    let start = Instant::now();
                    std::thread::scope(|scope| {
                        for t in 0..p {
                            scope.spawn(move || {
                                let session = t as u64;
                                assert!(matches!(
                                    server_ref.request(Request::Open {
                                        session,
                                        enforcing: false,
                                        spec: SPEC.to_string(),
                                        stream: None,
                                    }),
                                    Response::Ok
                                ));
                                // Acks are advisory; an unread (bounded)
                                // channel exercises the drop-not-block path.
                                let (out, _acks) = std::sync::mpsc::sync_channel(64);
                                for chunk in events_ref.chunks(batch_default) {
                                    assert!(server_ref.post(
                                        Request::Events {
                                            session,
                                            events: chunk.to_vec(),
                                        },
                                        out.clone(),
                                    ));
                                }
                                let v = match server_ref.request(Request::Close { session }) {
                                    Response::Verdict(v) => v,
                                    other => panic!("close: {other:?}"),
                                };
                                assert_eq!(v.ingested, events_ref.len() as u64);
                                assert_eq!(v.earliest_violation, oracle_earliest);
                                assert_eq!(v.violation.is_some(), oracle_violated);
                            });
                        }
                    });
                    start.elapsed()
                },
                SCALE_WARMUP,
                SCALE_RUNS,
            );
            let total = (p * TOTAL) as f64;
            let epms = total / (wall.as_secs_f64() * 1e3);
            println!(
                "inproc P={p}  batch={batch_default:<4}  {}   ({epms:>8.0} events/ms aggregate)",
                ms(wall)
            );
            points.push(("inproc".to_string(), p, wall, epms));
        }

        // Batch = the whole tape: one EventBatch frame carrying a
        // pre-encoded 100k-event image. The server pays exactly what
        // the offline checker pays (decode + fold) plus one queue hop —
        // the limit the batching curve converges to.
        let image = monsem_tape::write_tape(&events);
        let mut image_session = 500u64;
        let image_wall = measure_producers(
            || {
                image_session += 1;
                let start = Instant::now();
                assert!(matches!(
                    server.request(Request::Open {
                        session: image_session,
                        enforcing: false,
                        spec: SPEC.to_string(),
                        stream: None,
                    }),
                    Response::Ok
                ));
                let (out, _acks) = std::sync::mpsc::sync_channel(64);
                assert!(server.post(
                    Request::EventBatch {
                        session: image_session,
                        tape: image.clone(),
                    },
                    out,
                ));
                let v = match server.request(Request::Close {
                    session: image_session,
                }) {
                    Response::Verdict(v) => v,
                    other => panic!("close: {other:?}"),
                };
                assert_eq!(v.ingested, events.len() as u64);
                assert_eq!(v.earliest_violation, oracle_earliest);
                start.elapsed()
            },
            SCALE_WARMUP,
            SCALE_RUNS,
        );
        let image_epms = TOTAL as f64 / (image_wall.as_secs_f64() * 1e3);
        println!(
            "inproc P=1  whole image  {}   ({image_epms:>8.0} events/ms)",
            ms(image_wall)
        );
        whole_image = (image_wall, image_epms);
        server.shutdown();
    }

    for transport in ["tcp", "unix"] {
        let server = Arc::new(MonitorServer::start(ServerConfig::default()));
        let sock_path = std::env::temp_dir().join(format!(
            "monsem-bench-scale-{}-{transport}.sock",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&sock_path);
        let (handle, addr) = if transport == "tcp" {
            let h = serve_tcp(Arc::clone(&server), "127.0.0.1:0").expect("bind tcp");
            let a = h.addr().expect("tcp addr");
            (h, Some(a))
        } else {
            (
                serve_unix(Arc::clone(&server), &sock_path).expect("bind unix"),
                None,
            )
        };

        // Producer scaling at the default batch size. The total offered
        // load grows with P (each producer pushes the full workload), so
        // aggregate events/ms is the saturation curve.
        for &p in PRODUCERS {
            let wall = if transport == "tcp" {
                let addr = addr.unwrap();
                let connect = move || Client::connect_tcp(addr).expect("connect");
                measure_producers(
                    || {
                        producers_run(
                            &connect,
                            p,
                            batch_default,
                            &events,
                            oracle_earliest,
                            oracle_violated,
                        )
                    },
                    SCALE_WARMUP,
                    SCALE_RUNS,
                )
            } else {
                let path = sock_path.clone();
                let connect = move || Client::connect_unix(&path).expect("connect");
                measure_producers(
                    || {
                        producers_run(
                            &connect,
                            p,
                            batch_default,
                            &events,
                            oracle_earliest,
                            oracle_violated,
                        )
                    },
                    SCALE_WARMUP,
                    SCALE_RUNS,
                )
            };
            let total = (p * TOTAL) as f64;
            let epms = total / (wall.as_secs_f64() * 1e3);
            println!(
                "{transport:<5} P={p}  batch={batch_default:<4}  {}   ({epms:>8.0} events/ms aggregate)",
                ms(wall)
            );
            points.push((transport.to_string(), p, wall, epms));
        }

        // Batch-size ablation and the synchronous per-event baseline,
        // single producer over TCP (the transport with the higher
        // per-frame cost).
        if transport == "tcp" {
            let addr = addr.unwrap();
            for &batch in BATCHES {
                let connect = move || Client::connect_tcp(addr).expect("connect");
                let wall = measure_producers(
                    || {
                        producers_run(
                            &connect,
                            1,
                            batch,
                            &events,
                            oracle_earliest,
                            oracle_violated,
                        )
                    },
                    SCALE_WARMUP,
                    SCALE_RUNS,
                );
                let epms = TOTAL as f64 / (wall.as_secs_f64() * 1e3);
                println!(
                    "tcp   P=1  batch={batch:<4}  {}   ({epms:>8.0} events/ms)",
                    ms(wall)
                );
                ablation.push((batch, wall, epms));
            }
            // The pre-batching baseline: one synchronous request — a
            // fresh reply channel, a queue round trip, a blocking recv —
            // per event, through the in-process API (the wire protocol no
            // longer has a per-event reply to measure).
            let sync_events = &events[..SYNC_N];
            let sync_oracle = SpecMonitor::new("oracle", SPEC)
                .unwrap()
                .check_tape(sync_events.iter());
            let mut sync_session = 900u64;
            let wall = measure_producers(
                || {
                    sync_session += 1;
                    let start = Instant::now();
                    assert!(matches!(
                        server.request(Request::Open {
                            session: sync_session,
                            enforcing: false,
                            spec: SPEC.to_string(),
                            stream: None,
                        }),
                        Response::Ok
                    ));
                    for ev in sync_events {
                        server.request(Request::Events {
                            session: sync_session,
                            events: vec![ev.clone()],
                        });
                    }
                    let v = match server.request(Request::Close {
                        session: sync_session,
                    }) {
                        Response::Verdict(v) => v,
                        other => panic!("close: {other:?}"),
                    };
                    assert_eq!(v.ingested, sync_events.len() as u64);
                    assert_eq!(v.earliest_violation, sync_oracle.earliest_violation);
                    start.elapsed()
                },
                SCALE_WARMUP,
                SCALE_RUNS,
            );
            let epms = SYNC_N as f64 / (wall.as_secs_f64() * 1e3);
            println!(
                "sync per-event request  {}   ({epms:>8.0} events/ms, {SYNC_N} events, in-process)",
                ms(wall)
            );
            sync_point = Some((wall, epms));
        }

        handle.stop();
        server.shutdown();
        let _ = std::fs::remove_file(&sock_path);
    }

    // Checkpointed vs full-replay offline check on the same ≥100k-event
    // tape. The seeded check must reach the identical verdict before
    // its time means anything.
    let monitor = SpecMonitor::new("ck", SPEC).unwrap();
    let v3 = write_tape_checkpointed(&events, &monitor, None, CKPT_EVERY);
    let decoded = read_tape(&v3).expect("v3 decodes");
    let full = monitor.check_tape(decoded.iter());
    let seeded = check_tape_from(&monitor, &v3, (TOTAL - 1) as u64).expect("seeded check");
    assert_eq!(
        std::mem::discriminant(&seeded.check.outcome),
        std::mem::discriminant(&full.outcome),
        "a checkpoint changed the verdict"
    );
    assert_eq!(seeded.check.earliest_violation, full.earliest_violation);
    assert_eq!(seeded.check.state.state, full.state.state);
    let resumed_at = seeded.resumed_at;
    let replayed = seeded.replayed;
    let t_full = measure(
        || {
            let evs = read_tape(&v3).unwrap();
            std::hint::black_box(monitor.check_tape(evs.iter()));
        },
        WARMUP,
        RUNS,
    );
    let t_seeded = measure(
        || {
            std::hint::black_box(check_tape_from(&monitor, &v3, (TOTAL - 1) as u64).unwrap());
        },
        WARMUP,
        RUNS,
    );
    let ckpt_speedup = t_full.as_secs_f64() / t_seeded.as_secs_f64();
    println!(
        "check --from (full replay)      {}   ({} events folded)",
        ms(t_full),
        TOTAL
    );
    println!(
        "check --from (checkpointed)     {}   (resumed at {resumed_at}, {replayed} folded, {ckpt_speedup:.1}x)",
        ms(t_seeded)
    );

    if let Some(dir) = json {
        let point_rows: Vec<String> = points
            .iter()
            .map(|(transport, p, wall, epms)| {
                format!(
                    "    {{ \"transport\": \"{transport}\", \"producers\": {p}, \"total_events\": {}, \"wall_ms\": {}, \"events_per_ms\": {epms:.1} }}",
                    p * TOTAL,
                    json_ms(*wall)
                )
            })
            .collect();
        let ablation_rows: Vec<String> = ablation
            .iter()
            .map(|(batch, wall, epms)| {
                format!(
                    "    {{ \"batch\": {batch}, \"wall_ms\": {}, \"events_per_ms\": {epms:.1} }}",
                    json_ms(*wall)
                )
            })
            .collect();
        let (sync_wall, sync_epms) = sync_point.expect("tcp section ran");
        let (image_wall, image_epms) = whole_image;
        let body = format!(
            "{{\n  \
               \"table\": \"server_scale\",\n  \
               \"unit\": \"ms\",\n  \
               \"statistic\": \"median of {SCALE_RUNS} after {SCALE_WARMUP} warmups (scale points); median of {RUNS} after {WARMUP} (checkpoint)\",\n  \
               \"host_cpus\": {host_cpus},\n  \
               \"shards\": {},\n  \
               \"spec\": \"{SPEC}\",\n  \
               \"events_per_producer\": {TOTAL},\n  \
               \"default_batch\": {batch_default},\n  \
               \"verdicts_asserted_against_offline_oracle\": true,\n  \
               \"offline_check\": {{ \"wall_ms\": {}, \"events_per_ms\": {offline_epms:.1} }},\n  \
               \"points\": [\n{}\n  ],\n  \
               \"batch_ablation\": [\n{}\n  ],\n  \
               \"whole_tape_image\": {{ \"wall_ms\": {}, \"events_per_ms\": {image_epms:.1} }},\n  \
               \"sync_per_event\": {{ \"events\": {SYNC_N}, \"wall_ms\": {}, \"events_per_ms\": {sync_epms:.1} }},\n  \
               \"checkpoint\": {{ \"tape_events\": {TOTAL}, \"checkpoint_every\": {CKPT_EVERY}, \"full_check_ms\": {}, \"seeded_check_ms\": {}, \"resumed_at\": {resumed_at}, \"replayed\": {replayed}, \"speedup\": {ckpt_speedup:.2} }}\n}}\n",
            ServerConfig::default().shards,
            json_ms(t_offline),
            point_rows.join(",\n"),
            ablation_rows.join(",\n"),
            json_ms(image_wall),
            json_ms(sync_wall),
            json_ms(t_full),
            json_ms(t_seeded),
        );
        write_json(dir, "BENCH_server_scale.json", body);
    }
}

/// Connection-count sweep: C concurrent sessions over TCP on the
/// threaded backend vs the epoll reactor. Every point's close verdicts
/// are asserted against the offline oracle inside the timed run (the
/// close round trip is the barrier), and a sampler thread records the
/// process's peak thread count and RSS from `/proc/self/status` — the
/// threaded backend pays ~2 threads per connection, the reactor a fixed
/// pool, which is the whole point of the table.
fn server_conns(json: Option<&Path>) {
    use monsem_core::Value;
    use monsem_monitor::TapeEvent;
    use monsem_syntax::Annotation;
    use monsem_tape::{
        serve_tcp_with, Client, IoBackend, MonitorServer, Request, Response, ServerConfig,
    };
    use monsem_tspec::{SpecMonitor, TapeOutcome};
    use std::net::TcpStream;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Arc;
    use std::time::Instant;

    const SPEC: &str = "always(post(req) => value >= 0)";
    /// Events per point at C = 1; higher C splits this across
    /// connections (floored so every connection still does real work).
    const TOTAL: usize = 65_536;
    const MIN_PER_CONN: usize = 64;
    const CONNS: &[usize] = &[1, 64, 256, 1024];
    const DRIVERS: usize = 8;
    const IO_THREADS: usize = 2;

    let host_cpus = std::thread::available_parallelism().map_or(1, usize::from);
    let shards = ServerConfig::default().shards;
    header(&format!(
        "Server connection scaling: C concurrent sessions, threaded vs reactor I/O\n\
         host_cpus = {host_cpus}; every point's close verdicts are asserted against\n\
         the offline oracle inside the timed run"
    ));

    /// Peak `Threads:` and `VmRSS:` (kB) seen in `/proc/self/status`
    /// while `stop` stays false. Returns (0, 0) where procfs is absent.
    fn sample_status(stop: &AtomicBool, threads: &AtomicU64, rss: &AtomicU64) {
        while !stop.load(Ordering::Relaxed) {
            if let Ok(status) = std::fs::read_to_string("/proc/self/status") {
                for line in status.lines() {
                    if let Some(v) = line.strip_prefix("Threads:") {
                        if let Ok(n) = v.trim().parse::<u64>() {
                            threads.fetch_max(n, Ordering::Relaxed);
                        }
                    } else if let Some(v) = line.strip_prefix("VmRSS:") {
                        if let Ok(kb) = v.trim().trim_end_matches("kB").trim().parse::<u64>() {
                            rss.fetch_max(kb, Ordering::Relaxed);
                        }
                    }
                }
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    fn connect_retrying(addr: std::net::SocketAddr) -> Client<TcpStream> {
        // At C = 1024 the accept loop can briefly lag the SYN flood;
        // a couple of retries absorb it without hiding real failures.
        for _ in 0..3 {
            if let Ok(c) = Client::connect_tcp(addr) {
                return c;
            }
            std::thread::sleep(Duration::from_millis(100));
        }
        Client::connect_tcp(addr).expect("connect after retries")
    }

    let ann = Annotation::label("req");
    let mut points: Vec<(String, usize, usize, Duration, f64, u64, u64)> = Vec::new();
    let mut epms_at_one: Vec<(String, f64)> = Vec::new();

    for (backend_name, backend) in [
        ("threaded".to_string(), IoBackend::Threaded),
        (
            format!("reactor:{IO_THREADS}"),
            IoBackend::Reactor {
                io_threads: IO_THREADS,
            },
        ),
    ] {
        for &conns in CONNS {
            let per_conn = (TOTAL / conns).max(MIN_PER_CONN);
            // One shared workload per point, violation on a late step so
            // earliest-violation tracking is paid for on every session.
            let violate_at = per_conn as u64 - 2;
            let events: Vec<TapeEvent> = (0..per_conn)
                .map(|i| {
                    let v = if i as u64 == violate_at {
                        -1
                    } else {
                        (i % 97) as i64
                    };
                    TapeEvent::post(&ann, &Value::Int(v), i as u64)
                })
                .collect();
            let oracle = SpecMonitor::new("oracle", SPEC)
                .unwrap()
                .check_tape(events.iter());
            let oracle_earliest = oracle.earliest_violation;
            let oracle_violated = matches!(oracle.outcome, TapeOutcome::Violated(_));
            assert!(oracle_violated, "the workload must exercise violations");
            let chunk = per_conn.min(1024);

            let server = Arc::new(MonitorServer::start(ServerConfig::default()));
            let handle = serve_tcp_with(Arc::clone(&server), "127.0.0.1:0", backend)
                .expect("bind sweep listener");
            let addr = handle.addr().expect("tcp listener has an address");

            let stop = AtomicBool::new(false);
            let peak_threads = AtomicU64::new(0);
            let peak_rss = AtomicU64::new(0);
            let events_ref = &events;

            let wall = std::thread::scope(|scope| {
                scope.spawn(|| sample_status(&stop, &peak_threads, &peak_rss));
                let start = Instant::now();
                std::thread::scope(|run| {
                    for d in 0..DRIVERS.min(conns) {
                        run.spawn(move || {
                            // Driver d owns every session ≡ d (mod drivers)
                            // and keeps all of them in flight at once,
                            // interleaving one chunk per session per round.
                            let drivers = DRIVERS.min(conns);
                            let mine: Vec<u64> =
                                (d as u64..conns as u64).step_by(drivers).collect();
                            let mut clients: Vec<Client<TcpStream>> = mine
                                .iter()
                                .map(|&session| {
                                    let mut c = connect_retrying(addr);
                                    let resp = c
                                        .request(&Request::Open {
                                            session,
                                            enforcing: false,
                                            spec: SPEC.to_string(),
                                            stream: None,
                                        })
                                        .expect("open");
                                    assert!(matches!(resp, Response::Ok), "open: {resp:?}");
                                    c
                                })
                                .collect();
                            for at in (0..per_conn).step_by(chunk) {
                                let slice = &events_ref[at..(at + chunk).min(per_conn)];
                                for (k, c) in clients.iter_mut().enumerate() {
                                    c.send_batch(mine[k], slice).expect("send");
                                }
                            }
                            for (k, c) in clients.iter_mut().enumerate() {
                                let resp = c
                                    .request(&Request::Close { session: mine[k] })
                                    .expect("close");
                                let v = match resp {
                                    Response::Verdict(v) => v,
                                    other => panic!("close: {other:?}"),
                                };
                                assert_eq!(v.ingested, per_conn as u64, "events lost in flight");
                                assert_eq!(
                                    v.earliest_violation, oracle_earliest,
                                    "verdict drifted"
                                );
                                assert_eq!(
                                    v.violation.is_some(),
                                    oracle_violated,
                                    "verdict drifted"
                                );
                            }
                        });
                    }
                });
                let wall = start.elapsed();
                stop.store(true, Ordering::Relaxed);
                wall
            });

            handle.stop();
            server.shutdown();

            let total_events = conns * per_conn;
            let epms = total_events as f64 / (wall.as_secs_f64() * 1e3);
            let threads = peak_threads.load(Ordering::Relaxed);
            let rss = peak_rss.load(Ordering::Relaxed);
            println!(
                "{backend_name:<10} C={conns:<5} {per_conn:>6} ev/conn   {}   ({epms:>7.0} events/ms, peak {threads} threads, {rss} kB RSS)",
                ms(wall)
            );
            if conns == 1 {
                epms_at_one.push((backend_name.clone(), epms));
            }
            // The reactor's headline claim: I/O threads stay bounded at
            // C = 1024 instead of ~2·C. Everything else in the process
            // (shards, drivers, sampler, main) is a small constant.
            #[cfg(target_os = "linux")]
            if conns == 1024 && backend != IoBackend::Threaded {
                let bound = (IO_THREADS + shards + DRIVERS + 8) as u64;
                assert!(
                    threads <= bound,
                    "reactor thread count {threads} exceeds bound {bound} at C=1024"
                );
            }
            points.push((
                backend_name.clone(),
                conns,
                per_conn,
                wall,
                epms,
                threads,
                rss,
            ));
        }
    }

    // Loose floor, not a race: the reactor must not be catastrophically
    // slower than the threaded backend on a single connection.
    if let (Some((_, t_epms)), Some((_, r_epms))) = (
        epms_at_one.iter().find(|(n, _)| n == "threaded"),
        epms_at_one.iter().find(|(n, _)| n.starts_with("reactor")),
    ) {
        println!("C=1 events/ms: threaded {t_epms:.0} vs reactor {r_epms:.0}");
        assert!(
            *r_epms >= 0.4 * *t_epms,
            "reactor C=1 throughput regressed far below threaded: {r_epms:.0} vs {t_epms:.0}"
        );
    }

    if let Some(dir) = json {
        let point_rows: Vec<String> = points
            .iter()
            .map(|(backend, conns, per_conn, wall, epms, threads, rss)| {
                format!(
                    "    {{ \"backend\": \"{backend}\", \"conns\": {conns}, \"events_per_conn\": {per_conn}, \"total_events\": {}, \"wall_ms\": {}, \"events_per_ms\": {epms:.1}, \"peak_threads\": {threads}, \"peak_rss_kb\": {rss} }}",
                    conns * per_conn,
                    json_ms(*wall)
                )
            })
            .collect();
        let body = format!(
            "{{\n  \
               \"table\": \"server_conns\",\n  \
               \"unit\": \"ms\",\n  \
               \"statistic\": \"single timed run per point (connection sweep)\",\n  \
               \"host_cpus\": {host_cpus},\n  \
               \"shards\": {shards},\n  \
               \"io_threads\": {IO_THREADS},\n  \
               \"drivers\": {DRIVERS},\n  \
               \"spec\": \"{SPEC}\",\n  \
               \"verdicts_asserted_against_offline_oracle\": true,\n  \
               \"points\": [\n{}\n  ]\n}}\n",
            point_rows.join(",\n"),
        );
        write_json(dir, "BENCH_server_conns.json", body);
    }
}

/// Median of `runs` wall-clock durations returned by `f` (the closure
/// times itself — connection setup and thread spawn are part of what a
/// producer pays, so they stay inside the clock).
fn measure_producers<F: FnMut() -> Duration>(mut f: F, warmup: u32, runs: u32) -> Duration {
    for _ in 0..warmup {
        f();
    }
    let mut samples: Vec<Duration> = (0..runs.max(1)).map(|_| f()).collect();
    samples.sort();
    samples[samples.len() / 2]
}

/// Stream-monitor throughput vs window count and width, plus the
/// crate's headline static claim: after `initial_state()` the evaluator
/// never touches the heap. The counting [`std::alloc::GlobalAlloc`] wrapper
/// installed at the top of this binary verifies the claim on every run
/// *before* any timing is reported — a regression that starts
/// allocating per event fails the table, not just slows it down.
fn stream(json: Option<&Path>) {
    use monsem_monitor::tape::TapePhase;
    use monsem_monitor::Outcome;
    use monsem_stream::{EvView, StreamMonitor, StreamState};

    header(
        "Stream monitors: events/ms vs window count and width\n\
         expectation: O(1) amortized per event (monotonic deques, paged time panes);\n\
         throughput degrades gently with stream count, not with window width;\n\
         steady state allocation-free (asserted via a counting global allocator)",
    );

    // A deterministic event mix: three labels, bounded values, no rand
    // dependency. ~half the events match each windowed predicate.
    const N: usize = 50_000;
    let names = ["a", "b", "c"];
    let events: Vec<(&str, Option<i64>)> = (0..N)
        .map(|i| {
            let name = names[(i * 7 + 3) % names.len()];
            let int = if i % 4 == 3 {
                None
            } else {
                Some(((i as i64).wrapping_mul(31) % 201) - 100)
            };
            (name, int)
        })
        .collect();

    // Feeds every event through the live hook path with logical time
    // (no wall clock, no tape): exactly what a wall-clock-less embedded
    // monitor pays per event.
    let feed = |m: &StreamMonitor, mut s: StreamState| -> StreamState {
        for &(name, int) in &events {
            let ev = EvView {
                phase: TapePhase::Post,
                name,
                int,
                unsorted: false,
            };
            s = match m.step_event(s, &ev, None, None) {
                Outcome::Continue(s) => s,
                Outcome::Abort { state, .. } => state,
            };
        }
        s
    };

    /// One measured spec variant.
    struct Point {
        label: String,
        streams: usize,
        window: String,
        memory_bytes: usize,
        events_per_ms: f64,
    }

    let mut points: Vec<Point> = Vec::new();
    let mut run = |label: &str, window: &str, src: &str| {
        let m = StreamMonitor::new(label, src).expect("bench spec compiles");
        let memory_bytes = m.spec().memory().total_bytes;
        let n_streams = m.spec().streams().len();

        // Warm one full pass so rings and deques reach steady state,
        // then assert the next pass performs zero heap allocations.
        let mut s = feed(&m, m.initial_state());
        let before = ALLOCATIONS.load(std::sync::atomic::Ordering::Relaxed);
        s = feed(&m, s);
        let after = ALLOCATIONS.load(std::sync::atomic::Ordering::Relaxed);
        assert_eq!(
            after - before,
            0,
            "steady-state stream evaluation allocated ({label})"
        );

        let mut state = Some(s);
        let t = measure(
            || {
                let s = state.take().expect("state is threaded through");
                state = Some(feed(&m, s));
            },
            WARMUP,
            RUNS,
        );
        let events_per_ms = N as f64 / (t.as_secs_f64() * 1e3);
        println!(
            "{label:<26} {n_streams} stream(s), window {window:<9} {:>7} bytes   {events_per_ms:>8.0} events/ms",
            memory_bytes
        );
        points.push(Point {
            label: label.to_string(),
            streams: n_streams,
            window: window.to_string(),
            memory_bytes,
            events_per_ms,
        });
    };

    // Axis 1: window *count* at a fixed width — alternating sum/count
    // aggregates plus one never-firing trigger, so trigger evaluation
    // is on the measured path.
    for n in [1usize, 2, 4, 8] {
        let mut src = String::new();
        for i in 0..n {
            let agg = if i % 2 == 0 { "sum" } else { "count" };
            let pred = if i % 2 == 0 { "post(a)" } else { "post(b)" };
            src.push_str(&format!("stream s{i} = {agg}({pred}) over window(256)\n"));
        }
        src.push_str("trigger overload = s0 > 100000000\n");
        run(&format!("count/sum windows x{n}"), "256", &src);
    }

    // Axis 2: window *width* for the worst-case aggregates — sliding
    // min/max ride monotonic deques, whose amortized cost must not grow
    // with the width.
    for w in [16usize, 256, 4096] {
        let src = format!(
            "stream lo = min(post(a)) over window({w})\n\
             stream hi = max(post(a)) over window({w})\n\
             stream spread = hi - lo\n\
             trigger wild = spread > 100000000\n"
        );
        run(&format!("min/max deques w={w}"), &w.to_string(), &src);
    }

    // Axis 3: time windows (paged panes) with a deadline on the path.
    // Logical time advances 1 ms per event, so panes rotate constantly.
    run(
        "time panes + deadline",
        "1000 ms",
        "stream load = rate(post(_)) over window(1000 ms)\n\
         stream mean = avg(post(a)) over window(500 ms)\n\
         trigger hot = load > 100000000\n\
         deadline post(b) every 60000 ms\n",
    );

    println!("\nsteady state: 0 heap allocations across all variants (asserted)");

    if let Some(dir) = json {
        let rows: Vec<String> = points
            .iter()
            .map(|p| {
                format!(
                    "    {{ \"label\": \"{}\", \"streams\": {}, \"window\": \"{}\", \"memory_bytes\": {}, \"events_per_ms\": {:.1} }}",
                    p.label, p.streams, p.window, p.memory_bytes, p.events_per_ms
                )
            })
            .collect();
        let body = format!(
            "{{\n  \
               \"table\": \"stream\",\n  \
               \"unit\": \"events/ms\",\n  \
               \"statistic\": \"median of {RUNS} after {WARMUP} warmups\",\n  \
               \"workload\": \"synthetic post-event mix, {N} events per pass, logical time\",\n  \
               \"steady_state_allocations\": 0,\n  \
               \"points\": [\n{}\n  ]\n}}\n",
            rows.join(",\n"),
        );
        write_json(dir, "BENCH_stream.json", body);
    }
}

/// E8: the Figure 10 artifact ladder, including the *source-level*
/// instrumented program and its further specialization.
fn futamura() {
    header(
        "E8 (Figure 10): the artifact ladder for fac 12 with a step counter\n\
         level 0/1: monitored interpreter; level 2: instrumented program;\n\
         level 3: instrumented program specialized w.r.t. its static parts",
    );
    let program = programs::fac_ab(12);
    let monitor = step_counter();
    let opts = EvalOptions::default();

    let instrumented = instrument(&program, &monitor);
    let optimized = instrument_optimized(&program, &monitor, &SpecializeOptions::default());
    println!("annotated program:          {}", programs::fac_ab(5));
    println!(
        "instrumented size:          {} AST nodes",
        instrumented.size()
    );
    println!("after specialization:       {} AST nodes", optimized.size());
    println!("specialized program:        {optimized}");

    let division = bta::analyze(&instrumented, &[]);
    let (stat, dyn_) = division.counts();
    println!("BTA on instrumented program: {stat} static points, {dyn_} dynamic points");

    let t_interp_instrumented = measure(
        || {
            eval_with(&instrumented, &Env::empty(), &opts).unwrap();
        },
        WARMUP,
        RUNS,
    );
    let compiled_instrumented = compile(&instrumented).expect("compiles");
    let t_compiled_instrumented = measure(
        || {
            compiled_instrumented.run().unwrap();
        },
        WARMUP,
        RUNS,
    );
    let t_specialized = measure(
        || {
            eval_with(&optimized, &Env::empty(), &opts).unwrap();
        },
        WARMUP,
        RUNS,
    );
    println!("instrumented, interpreted:  {}", ms(t_interp_instrumented));
    println!(
        "instrumented, compiled:     {}",
        ms(t_compiled_instrumented)
    );
    println!("specialized (level 3):      {}", ms(t_specialized));
}
