//! Shared workloads for the benchmark harness reproducing the paper's
//! evaluation (§9.1 and Figure 11). See EXPERIMENTS.md at the workspace
//! root for the experiment index and measured results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use monsem_syntax::{parse_expr, Expr, Ident, Namespace};

/// The specialization-level workload (experiment E6): `fib n` with its
/// functions traced — the monitored interpreter prints nothing unless the
/// tracer asks, so trace volume is controlled by which functions carry
/// headers.
pub fn traced_fib(n: i64) -> Expr {
    let plain = parse_expr(&format!(
        "letrec fib = lambda n. if n < 2 then n else (fib (n-1)) + (fib (n-2)) in fib {n}"
    ))
    .expect("fixture parses");
    monsem_syntax::points::trace_functions(&plain, &[Ident::new("fib")], &Namespace::anonymous())
        .expect("fib exists")
}

/// Like the paper's benchmark program: `fac` through `mul`, traced, at a
/// size that keeps the interpreter busy.
pub fn traced_fac_mul(n: i64) -> Expr {
    monsem_core::programs::fac_mul_traced(n)
}

/// The Figure 11 workload: a fixed amount of computation (`iters` loop
/// iterations) of which exactly `traced` route through a function whose
/// body carries a tracer header. Varying `traced` at fixed `iters` sweeps
/// the *number of trace printouts* while the underlying computation stays
/// identical — the x-axis of Figure 11.
pub fn trace_density_program(iters: i64, traced: i64) -> Expr {
    assert!(traced <= iters, "traced events cannot exceed iterations");
    parse_expr(&format!(
        "letrec t = lambda x. {{t(x)}}:(x + 1) in \
         letrec u = lambda x. x + 1 in \
         letrec loop = lambda i. lambda acc. \
            if i = 0 then acc \
            else loop (i - 1) (if i <= {traced} then t acc else u acc) \
         in loop {iters} 0"
    ))
    .expect("fixture parses")
}

/// Fork-join workload (BENCH_parallel): `shards` independent profiled
/// `fib n` computations under one `par`. Every call routes through the
/// `{fib}` label, so the profiler state each shard accumulates is
/// proportional to the work it does — the adversarial case for
/// split/merge overhead.
pub fn par_fib(shards: usize, n: i64) -> Expr {
    let elems = vec![format!("fib {n}"); shards].join(", ");
    parse_expr(&format!(
        "letrec fib = lambda n. {{fib}}:(if n < 2 then n else (fib (n - 1)) + (fib (n - 2))) \
         in par({elems})"
    ))
    .expect("fixture parses")
}

/// Fork-join workload (BENCH_parallel): `shards` independent profiled
/// merge sorts of the reversed list `[n, …, 1]` under one `par` — the
/// list-heavy counterpart to [`par_fib`], with the recursive `sort`
/// carrying the profiled label.
pub fn par_merge_sort(shards: usize, n: i64) -> Expr {
    let elems = vec![format!("sort (build {n})"); shards].join(", ");
    parse_expr(&format!(
        "letrec take = lambda k. lambda l. \
            if k = 0 then [] else if null? l then [] \
            else (hd l) : (take (k - 1) (tl l)) in \
         letrec drop = lambda k. lambda l. \
            if k = 0 then l else if null? l then [] \
            else drop (k - 1) (tl l) in \
         letrec merge = lambda a. lambda b. \
            if null? a then b else if null? b then a \
            else if (hd a) <= (hd b) \
                 then (hd a) : (merge (tl a) b) \
                 else (hd b) : (merge a (tl b)) in \
         letrec sort = lambda l. {{sort}}:(\
            if null? l then [] else if null? (tl l) then l \
            else merge (sort (take ((length l) / 2) l)) \
                       (sort (drop ((length l) / 2) l))) in \
         letrec build = lambda i. if i = 0 then [] else i : (build (i - 1)) in \
         par({elems})"
    ))
    .expect("fixture parses")
}

/// Workload used by the monitor-overhead comparison: a countdown whose
/// branches carry `{A}`/`{B}` labels, so label-shaped monitors all have
/// `n`+1 events to process (no arithmetic overflow at any size, unlike
/// `fac`).
pub fn labelled_countdown(n: i64) -> Expr {
    parse_expr(&format!(
        "letrec count = lambda x. if (x = 0) then {{A}}:0 else {{B}}:(count (x - 1))          in count {n}"
    ))
    .expect("fixture parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use monsem_core::machine::eval;
    use monsem_core::Value;
    use monsem_monitor::machine::eval_monitored;
    use monsem_monitors::Tracer;

    #[test]
    fn traced_fib_matches_plain_fib() {
        assert_eq!(eval(&traced_fib(12)), Ok(Value::Int(144)));
    }

    #[test]
    fn trace_density_controls_event_count_without_changing_the_answer() {
        let quiet = trace_density_program(50, 0);
        let half = trace_density_program(50, 25);
        let full = trace_density_program(50, 50);
        assert_eq!(eval(&quiet), Ok(Value::Int(50)));
        assert_eq!(eval(&half), Ok(Value::Int(50)));
        assert_eq!(eval(&full), Ok(Value::Int(50)));
        let lines = |e: &Expr| {
            let (_, s) = eval_monitored(e, &Tracer::new()).unwrap();
            s.chan.lines().len()
        };
        assert_eq!(lines(&quiet), 0);
        assert_eq!(lines(&half), 50); // 25 receives + 25 returns
        assert_eq!(lines(&full), 100);
    }
}
