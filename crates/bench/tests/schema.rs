//! Schema guard for the checked-in `BENCH_*.json` snapshots.
//!
//! `paper_tables --json` writes machine-readable snapshots that are
//! committed at the repo root so the performance trajectory is tracked
//! per PR. The *numbers* are machine-dependent and free to drift; the
//! *shape* is not — downstream tooling (and EXPERIMENTS.md) reads these
//! files by field name. This test fails when a snapshot is stale
//! relative to the table schema: a renamed table, a renamed or removed
//! field, or a missing snapshot for a table that writes one. Regenerate
//! with:
//!
//! ```text
//! cargo run --release -p monsem-bench --bin paper_tables -- --table <t> --json .
//! ```

use std::path::PathBuf;

/// Repo root: two levels up from this crate's manifest.
fn root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root resolves")
}

/// Every snapshot `paper_tables --json` writes, with the field names its
/// schema promises. Keep in sync with the `points.push`/`format!` bodies
/// in `src/bin/paper_tables.rs` — a rename there must rename here *and*
/// regenerate the snapshot.
const SCHEMAS: &[(&str, &str, &[&str])] = &[
    (
        "BENCH_spec_levels.json",
        "spec_levels",
        &[
            "\"unit\"",
            "\"statistic\"",
            "\"main\"",
            "\"fully_traced\"",
            "\"workload\"",
            "\"standard_interpreter\"",
            "\"monitored_interpreter\"",
            "\"instrumented_compiled\"",
            "\"compiled_no_monitor\"",
        ],
    ),
    (
        "BENCH_fig11.json",
        "fig11",
        &[
            "\"unit\"",
            "\"iterations\"",
            "\"points\"",
            "\"traced\"",
            "\"standard\"",
            "\"monitored\"",
        ],
    ),
    (
        "BENCH_tspec.json",
        "tspec_overhead",
        &[
            "\"unit\"",
            "\"workload\"",
            "\"spec\"",
            "\"standard_interpreter\"",
            "\"tspec_safety\"",
            "\"tspec_specialized\"",
        ],
    ),
    (
        "BENCH_tspec_levels.json",
        "tspec_levels",
        &[
            "\"unit\"",
            "\"workload\"",
            "\"spec\"",
            "\"levels\"",
            "\"points\"",
            "\"n\"",
            "\"standard_interpreter\"",
            "\"level1_interpreted_spec\"",
            "\"compiled_no_monitor\"",
            "\"level2_specialized_sites\"",
            "\"level3_self_monitoring\"",
            "\"overhead_level2\"",
            "\"overhead_level3\"",
        ],
    ),
    (
        "BENCH_tiered.json",
        "tiered",
        &[
            "\"unit\"",
            "\"workload\"",
            "\"spec\"",
            "\"policy\"",
            "\"laziness\"",
            "\"cold_runs\"",
            "\"residuals_compiled\"",
            "\"points\"",
            "\"n\"",
            "\"level1_interpreted_spec\"",
            "\"level2_specialized_sites\"",
            "\"level3_self_monitoring\"",
            "\"tiered_steady_state\"",
            "\"tiered_over_level2\"",
            "\"tiered_over_level3\"",
        ],
    ),
    (
        "BENCH_parallel.json",
        "parallel",
        &[
            "\"unit\"",
            "\"host_cpus\"",
            "\"workloads\"",
            "\"sequential_ms\"",
            "\"points\"",
            "\"threads\"",
            "\"wall_ms\"",
            "\"speedup\"",
        ],
    ),
    (
        "BENCH_stream.json",
        "stream",
        &[
            "\"unit\"",
            "\"workload\"",
            "\"steady_state_allocations\"",
            "\"points\"",
            "\"label\"",
            "\"streams\"",
            "\"window\"",
            "\"memory_bytes\"",
            "\"events_per_ms\"",
        ],
    ),
    (
        "BENCH_tape.json",
        "tape",
        &[
            "\"unit\"",
            "\"workload\"",
            "\"spec\"",
            "\"events\"",
            "\"bytes_per_event\"",
            "\"live_ms\"",
            "\"record_ms\"",
            "\"encode_ms\"",
            "\"decode_ms\"",
            "\"check_ms\"",
            "\"check_events_per_ms\"",
            "\"server_ingest_ms\"",
            "\"server_events_per_ms\"",
        ],
    ),
    (
        "BENCH_server_scale.json",
        "server_scale",
        &[
            "\"unit\"",
            "\"host_cpus\"",
            "\"shards\"",
            "\"spec\"",
            "\"events_per_producer\"",
            "\"default_batch\"",
            "\"verdicts_asserted_against_offline_oracle\"",
            "\"offline_check\"",
            "\"points\"",
            "\"transport\"",
            "\"producers\"",
            "\"total_events\"",
            "\"wall_ms\"",
            "\"events_per_ms\"",
            "\"batch_ablation\"",
            "\"whole_tape_image\"",
            "\"sync_per_event\"",
            "\"checkpoint\"",
            "\"checkpoint_every\"",
            "\"full_check_ms\"",
            "\"seeded_check_ms\"",
            "\"resumed_at\"",
            "\"replayed\"",
            "\"speedup\"",
        ],
    ),
    (
        "BENCH_server_conns.json",
        "server_conns",
        &[
            "\"unit\"",
            "\"host_cpus\"",
            "\"shards\"",
            "\"io_threads\"",
            "\"drivers\"",
            "\"spec\"",
            "\"verdicts_asserted_against_offline_oracle\"",
            "\"points\"",
            "\"backend\"",
            "\"conns\"",
            "\"events_per_conn\"",
            "\"total_events\"",
            "\"wall_ms\"",
            "\"events_per_ms\"",
            "\"peak_threads\"",
            "\"peak_rss_kb\"",
        ],
    ),
];

#[test]
fn checked_in_snapshots_match_the_table_schemas() {
    let root = root();
    let mut problems: Vec<String> = Vec::new();
    for (file, table, fields) in SCHEMAS {
        let path = root.join(file);
        let Ok(body) = std::fs::read_to_string(&path) else {
            problems.push(format!("{file}: missing — regenerate with --table {table}"));
            continue;
        };
        let tag = format!("\"table\": \"{table}\"");
        if !body.contains(&tag) {
            problems.push(format!("{file}: expected {tag}"));
        }
        for field in *fields {
            if !body.contains(field) {
                problems.push(format!(
                    "{file}: field {field} missing — snapshot stale vs the {table} schema"
                ));
            }
        }
    }
    assert!(
        problems.is_empty(),
        "stale BENCH snapshots:\n  {}",
        problems.join("\n  ")
    );
}

/// The static-memory claim in the stream snapshot is load-bearing (the
/// bench asserts it with a counting global allocator before writing):
/// steady-state stream evaluation performs zero heap allocations.
#[test]
fn stream_snapshot_records_allocation_free_steady_state() {
    let body = std::fs::read_to_string(root().join("BENCH_stream.json"))
        .expect("BENCH_stream.json is checked in");
    assert!(
        body.contains("\"steady_state_allocations\": 0"),
        "the stream snapshot must record an allocation-free steady state"
    );
}

/// The honesty claim in the server-scale snapshot is load-bearing (the
/// bench asserts every timed point's verdict against the offline oracle
/// before the clock starts): a fast number with a wrong verdict is not
/// a number.
#[test]
fn server_scale_snapshot_records_oracle_checked_verdicts() {
    let body = std::fs::read_to_string(root().join("BENCH_server_scale.json"))
        .expect("BENCH_server_scale.json is checked in");
    assert!(
        body.contains("\"verdicts_asserted_against_offline_oracle\": true"),
        "the server-scale snapshot must record oracle-checked verdicts"
    );
}

/// Same honesty claim for the connection sweep, plus the snapshot must
/// actually cover both backends — a sweep that silently dropped the
/// reactor (or the threaded baseline) would still have valid fields.
#[test]
fn server_conns_snapshot_covers_both_backends_with_oracle_checked_verdicts() {
    let body = std::fs::read_to_string(root().join("BENCH_server_conns.json"))
        .expect("BENCH_server_conns.json is checked in");
    assert!(
        body.contains("\"verdicts_asserted_against_offline_oracle\": true"),
        "the server-conns snapshot must record oracle-checked verdicts"
    );
    assert!(
        body.contains("\"backend\": \"threaded\"") && body.contains("\"backend\": \"reactor"),
        "the server-conns snapshot must cover both I/O backends"
    );
    assert!(
        body.contains("\"conns\": 1024"),
        "the server-conns snapshot must include the C=1024 point"
    );
}

/// The laziness claim in the tiered snapshot is load-bearing (the bench
/// asserts it before writing): a cold session compiles zero residuals.
#[test]
fn tiered_snapshot_records_lazy_compilation() {
    let body = std::fs::read_to_string(root().join("BENCH_tiered.json"))
        .expect("BENCH_tiered.json is checked in");
    assert!(
        body.contains("\"residuals_compiled\": 0"),
        "the tiered snapshot must record zero cold-session compilations"
    );
}
