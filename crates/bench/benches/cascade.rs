//! Cost of monitor cascades (§6): the same program under 0–6 stacked
//! monitors, plus the three language modules on one workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use monsem_bench::labelled_countdown;
use monsem_core::machine::EvalOptions;
use monsem_core::Env;
use monsem_monitor::compose::boxed;
use monsem_monitor::imperative::eval_monitored_imperative_with;
use monsem_monitor::lazy::eval_monitored_lazy_with;
use monsem_monitor::machine::eval_monitored_with;
use monsem_monitor::{Monitor, MonitorStack};
use monsem_monitors::profiler::Profiler;
use monsem_syntax::Namespace;

fn stack_of(depth: usize) -> MonitorStack {
    let mut stack = MonitorStack::empty();
    for i in 0..depth {
        // Only layer 0 listens on the anonymous namespace; the rest pay
        // dispatch (accepts) but never fire — measuring cascade overhead.
        let ns = if i == 0 {
            Namespace::anonymous()
        } else {
            Namespace::new(format!("ns{i}"))
        };
        stack = stack.push(boxed(Profiler::in_namespace(ns)));
    }
    stack
}

fn bench_cascade(c: &mut Criterion) {
    let program = labelled_countdown(2_000);
    let opts = EvalOptions::default();
    let mut group = c.benchmark_group("cascade_depth");
    group.sample_size(15);
    for depth in [0usize, 1, 2, 4, 6] {
        let stack = stack_of(depth);
        group.bench_with_input(BenchmarkId::from_parameter(depth), &stack, |b, s| {
            b.iter(|| {
                eval_monitored_with(&program, &Env::empty(), s, s.initial_state(), &opts).unwrap()
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("language_modules");
    group.sample_size(15);
    let p = Profiler::new();
    group.bench_function("strict", |b| {
        b.iter(|| {
            eval_monitored_with(&program, &Env::empty(), &p, p.initial_state(), &opts).unwrap()
        })
    });
    group.bench_function("lazy", |b| {
        b.iter(|| {
            eval_monitored_lazy_with(&program, &Env::empty(), &p, p.initial_state(), &opts).unwrap()
        })
    });
    group.bench_function("imperative", |b| {
        b.iter(|| {
            eval_monitored_imperative_with(&program, &Env::empty(), &p, p.initial_state(), &opts)
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_cascade);
criterion_main!(benches);
