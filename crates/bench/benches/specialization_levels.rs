//! Experiment E6 — the §9.1 specialization-level measurements.
//!
//! The paper reports (for a tracer):
//! * the monitored interpreter ≈ 11% slower than the standard interpreter;
//! * the instrumented program ≈ 85% faster than the monitored interpreter
//!   and ≈ 83% faster than the standard interpreter.
//!
//! Here: `interp/standard` vs `interp/monitored` give the first
//! comparison; `compiled/standard` and `compiled/monitored` are the
//! level-2 artifacts for the second.

use criterion::{criterion_group, criterion_main, Criterion};
use monsem_bench::{trace_density_program, traced_fib};
use monsem_core::machine::{eval_with, EvalOptions};
use monsem_core::Env;
use monsem_monitor::machine::eval_monitored_with;
use monsem_monitor::Monitor;
use monsem_monitors::Tracer;
use monsem_pe::engine::{compile, compile_monitored};

fn bench_levels(c: &mut Criterion) {
    let tracer = Tracer::new();
    let opts = EvalOptions::default();

    // Main comparison (the regime of the paper's table): ~20% of the
    // computation routes through a traced call.
    let sparse = trace_density_program(4_000, 800);
    // Secondary: every call traced — dynamic tracing dominates (§9.1's
    // remark about the tracer's dynamic stream operations).
    let dense = traced_fib(17);

    for (name, program) in [("sparse-trace", sparse), ("fully-traced", dense)] {
        let erased = program.erase_annotations();
        let compiled_standard = compile(&erased).expect("compiles");
        let compiled_monitored = compile_monitored(&program, &tracer).expect("compiles");

        let mut group = c.benchmark_group(format!("specialization_levels/{name}"));
        group.sample_size(20);
        group.bench_function("interp/standard", |b| {
            b.iter(|| eval_with(&erased, &Env::empty(), &opts).unwrap())
        });
        group.bench_function("interp/monitored-tracer", |b| {
            b.iter(|| {
                eval_monitored_with(
                    &program,
                    &Env::empty(),
                    &tracer,
                    tracer.initial_state(),
                    &opts,
                )
                .unwrap()
            })
        });
        group.bench_function("compiled/standard", |b| {
            b.iter(|| compiled_standard.run().unwrap())
        });
        group.bench_function("compiled/monitored-tracer", |b| {
            b.iter(|| compiled_monitored.run_monitored(&tracer, &opts).unwrap())
        });
        group.finish();
    }
}

criterion_group!(benches, bench_levels);
criterion_main!(benches);
