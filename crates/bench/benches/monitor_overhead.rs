//! Per-monitor overhead of the toolbox (§8/§9.2): the same labelled
//! workload under each monitor, against the identity monitor, on the
//! monitored interpreter. The `guarded-*` entries measure the fault
//! model's cost: the same monitor wrapped in
//! [`Guarded`](monsem_monitor::Guarded) (verdict checks, `catch_unwind`,
//! budget bookkeeping) against its bare self.

use criterion::{criterion_group, criterion_main, Criterion};
use monsem_bench::labelled_countdown;
use monsem_core::machine::EvalOptions;
use monsem_core::Env;
use monsem_monitor::machine::eval_monitored_with;
use monsem_monitor::{Budget, FaultPolicy, Guarded, IdentityMonitor, Monitor};
use monsem_monitors::{AbProfiler, Collecting, Profiler, Stepper, UnsortedDemon};
use monsem_pe::SpecializedSpec;
use monsem_tspec::SpecMonitor;

fn bench_monitors(c: &mut Criterion) {
    let program = labelled_countdown(2_000);
    let opts = EvalOptions::default();
    let mut group = c.benchmark_group("monitor_overhead");
    group.sample_size(20);

    fn run<M: Monitor>(program: &monsem_syntax::Expr, m: &M, opts: &EvalOptions) {
        eval_monitored_with(program, &Env::empty(), m, m.initial_state(), opts).unwrap();
    }

    group.bench_function("identity", |b| {
        b.iter(|| run(&program, &IdentityMonitor, &opts))
    });
    group.bench_function("ab-profiler", |b| {
        b.iter(|| run(&program, &AbProfiler, &opts))
    });
    group.bench_function("profiler", |b| {
        b.iter(|| run(&program, &Profiler::new(), &opts))
    });
    group.bench_function("collecting", |b| {
        b.iter(|| run(&program, &Collecting::new(), &opts))
    });
    group.bench_function("demon", |b| {
        b.iter(|| run(&program, &UnsortedDemon::new(), &opts))
    });
    group.bench_function("stepper", |b| {
        b.iter(|| run(&program, &Stepper::new(), &opts))
    });
    // Temporal-specification monitors: `tspec-safety` pays the full
    // interpreted alphabet dispatch per event, `tspec-specialized` has
    // the per-site letters resolved ahead of time, and `tspec-demon`
    // states the §8 unsorted-demon property as a spec (compare `demon`).
    group.bench_function("tspec-safety", |b| {
        let m = SpecMonitor::new("safety", "always(post(B) => value >= 0)").unwrap();
        b.iter(|| run(&program, &m, &opts))
    });
    group.bench_function("tspec-specialized", |b| {
        let m = SpecializedSpec::new(
            &program,
            SpecMonitor::new("safety", "always(post(B) => value >= 0)").unwrap(),
        );
        b.iter(|| run(&program, &m, &opts))
    });
    group.bench_function("tspec-demon", |b| {
        let m = SpecMonitor::new("unsorted", "never(post(_) and unsorted)").unwrap();
        b.iter(|| run(&program, &m, &opts))
    });
    // Fault-model overhead: verdict plumbing + catch_unwind, no budgets.
    group.bench_function("guarded-identity", |b| {
        let m = Guarded::new(IdentityMonitor).policy(FaultPolicy::Quarantine);
        b.iter(|| run(&program, &m, &opts))
    });
    group.bench_function("guarded-demon", |b| {
        let m = Guarded::new(UnsortedDemon::new()).policy(FaultPolicy::Quarantine);
        b.iter(|| run(&program, &m, &opts))
    });
    // Budget bookkeeping on top: step counting + a wall clock read per event.
    group.bench_function("guarded-demon-budgeted", |b| {
        let m = Guarded::new(UnsortedDemon::new())
            .policy(FaultPolicy::Quarantine)
            .budget(
                Budget::unlimited()
                    .with_steps(u64::MAX)
                    .with_wall(std::time::Duration::from_secs(3600)),
            );
        b.iter(|| run(&program, &m, &opts))
    });
    group.finish();
}

criterion_group!(benches, bench_monitors);
criterion_main!(benches);
