//! Ablations for the design choices DESIGN.md §5 calls out:
//!
//! * defunctionalized frames vs boxed-closure continuations;
//! * name-lookup environments vs compiled de Bruijn frames;
//! * owned-state (`MS → MS`) monitor hooks vs interior-mutability hooks.

use criterion::{criterion_group, criterion_main, Criterion};
use monsem_bench::labelled_countdown;
use monsem_core::closure_cps::eval_cps_with;
use monsem_core::machine::{eval_with, EvalOptions};
use monsem_core::{programs, Env, Value};
use monsem_monitor::machine::eval_monitored_with;
use monsem_monitor::scope::Scope;
use monsem_monitor::Monitor;
use monsem_pe::engine::compile;
use monsem_syntax::{Annotation, Expr};
use std::cell::Cell;
use std::rc::Rc;

/// The owned-state counting monitor (the library's idiom).
struct OwnedCounter;
impl Monitor for OwnedCounter {
    type State = u64;
    fn name(&self) -> &str {
        "owned-counter"
    }
    fn initial_state(&self) -> u64 {
        0
    }
    fn pre(&self, _: &Annotation, _: &Expr, _: &Scope<'_>, n: u64) -> u64 {
        n + 1
    }
}

/// The same monitor with interior mutability: the threaded state is `()`
/// and the count lives in a `Cell` inside the monitor.
struct CellCounter(Rc<Cell<u64>>);
impl Monitor for CellCounter {
    type State = ();
    fn name(&self) -> &str {
        "cell-counter"
    }
    fn initial_state(&self) {}
    fn pre(&self, _: &Annotation, _: &Expr, _: &Scope<'_>, (): ()) {
        self.0.set(self.0.get() + 1);
    }
}

fn bench_ablations(c: &mut Criterion) {
    let opts = EvalOptions::default();
    let mut group = c.benchmark_group("ablations");
    group.sample_size(20);

    // Continuation encoding.
    let fib = programs::fib(17);
    group.bench_function("continuations/defunctionalized", |b| {
        b.iter(|| assert_eq!(eval_with(&fib, &Env::empty(), &opts), Ok(Value::Int(1597))))
    });
    group.bench_function("continuations/boxed-closures", |b| {
        b.iter(|| assert_eq!(eval_cps_with(&fib, &Env::empty(), &opts), Ok(Value::Int(1597))))
    });

    // Environment encoding.
    let compiled = compile(&fib).expect("compiles");
    group.bench_function("environments/name-lookup-interp", |b| {
        b.iter(|| eval_with(&fib, &Env::empty(), &opts).unwrap())
    });
    group.bench_function("environments/compiled-de-bruijn", |b| {
        b.iter(|| compiled.run().unwrap())
    });

    // Monitor state style.
    let labelled = labelled_countdown(2_000);
    group.bench_function("monitor-state/owned", |b| {
        b.iter(|| {
            eval_monitored_with(&labelled, &Env::empty(), &OwnedCounter, 0, &opts).unwrap()
        })
    });
    group.bench_function("monitor-state/interior-mutable", |b| {
        b.iter(|| {
            let m = CellCounter(Rc::new(Cell::new(0)));
            eval_monitored_with(&labelled, &Env::empty(), &m, (), &opts).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
