//! Ablations for the design choices DESIGN.md §5 calls out:
//!
//! * defunctionalized frames vs boxed-closure continuations;
//! * variable lookup: string comparison vs interned symbols vs lexical
//!   addresses (and, for reference, the compiled de Bruijn engine);
//! * owned-state (`MS → MS`) monitor hooks vs interior-mutability hooks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use monsem_bench::labelled_countdown;
use monsem_core::closure_cps::eval_cps_with;
use monsem_core::machine::{eval_with, EvalOptions, LookupMode};
use monsem_core::{programs, resolve_closed, Env, Value};
use monsem_monitor::machine::eval_monitored_with;
use monsem_monitor::scope::Scope;
use monsem_monitor::Monitor;
use monsem_pe::engine::compile;
use monsem_syntax::{Annotation, Expr};
use std::cell::Cell;
use std::rc::Rc;

/// The owned-state counting monitor (the library's idiom).
struct OwnedCounter;
impl Monitor for OwnedCounter {
    type State = u64;
    fn name(&self) -> &str {
        "owned-counter"
    }
    fn initial_state(&self) -> u64 {
        0
    }
    fn pre(&self, _: &Annotation, _: &Expr, _: &Scope<'_>, n: u64) -> u64 {
        n + 1
    }
}

/// The same monitor with interior mutability: the threaded state is `()`
/// and the count lives in a `Cell` inside the monitor.
struct CellCounter(Rc<Cell<u64>>);
impl Monitor for CellCounter {
    type State = ();
    fn name(&self) -> &str {
        "cell-counter"
    }
    fn initial_state(&self) {}
    fn pre(&self, _: &Annotation, _: &Expr, _: &Scope<'_>, (): ()) {
        self.0.set(self.0.get() + 1);
    }
}

fn bench_ablations(c: &mut Criterion) {
    let opts = EvalOptions::default();
    let mut group = c.benchmark_group("ablations");
    group.sample_size(40);
    group.measurement_time(std::time::Duration::from_secs(2));

    // Continuation encoding.
    let fib = programs::fib(17);
    group.bench_function("continuations/defunctionalized", |b| {
        b.iter(|| assert_eq!(eval_with(&fib, &Env::empty(), &opts), Ok(Value::Int(1597))))
    });
    group.bench_function("continuations/boxed-closures", |b| {
        b.iter(|| {
            assert_eq!(
                eval_cps_with(&fib, &Env::empty(), &opts),
                Ok(Value::Int(1597))
            )
        })
    });

    // Variable lookup discipline, head to head on the classic recursion
    // benchmarks. `string-compare` reconstructs the pre-interning seed
    // (full string comparison per frame, linear primitive scan);
    // `interned-symbol` is one u32 compare per frame; `lexical-address`
    // follows resolver-computed (depth, slot) addresses — no comparisons.
    // The lexical row evaluates a *pre-resolved* tree: resolution is a
    // one-time pass (hoisted out of the timed loop exactly like `compile`
    // below), and `BySymbol` stops `eval_with` from redundantly
    // re-resolving per iteration — the `VarAt` nodes take the address
    // path unconditionally in every mode.
    let workloads: [(&str, Expr, Value); 3] = [
        ("fac-12", programs::fac(12), Value::Int(479_001_600)),
        ("fib-17", programs::fib(17), Value::Int(1597)),
        ("ack-2-3", programs::ack(2, 3), Value::Int(9)),
    ];
    for (name, program, expected) in &workloads {
        let resolved = resolve_closed(program);
        for (mode_name, mode, program) in [
            ("string-compare", LookupMode::ByString, program),
            ("interned-symbol", LookupMode::BySymbol, program),
            ("lexical-address", LookupMode::BySymbol, &resolved),
        ] {
            let o = EvalOptions::with_lookup(mode);
            group.bench_with_input(
                BenchmarkId::new(format!("environments/{mode_name}"), name),
                program,
                |b, program| {
                    b.iter(|| {
                        assert_eq!(eval_with(program, &Env::empty(), &o), Ok(expected.clone()))
                    })
                },
            );
        }
    }
    // Reference point: the pe crate's closure-compiled de Bruijn engine.
    let compiled = compile(&fib).expect("compiles");
    group.bench_function("environments/compiled-de-bruijn/fib-17", |b| {
        b.iter(|| compiled.run().unwrap())
    });

    // Monitor state style.
    let labelled = labelled_countdown(2_000);
    group.bench_function("monitor-state/owned", |b| {
        b.iter(|| eval_monitored_with(&labelled, &Env::empty(), &OwnedCounter, 0, &opts).unwrap())
    });
    group.bench_function("monitor-state/interior-mutable", |b| {
        b.iter(|| {
            let m = CellCounter(Rc::new(Cell::new(0)));
            eval_monitored_with(&labelled, &Env::empty(), &m, (), &opts).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
