//! Experiment E7 — Figure 11: run time against the number of trace
//! printouts, at a fixed amount of underlying computation.
//!
//! The paper's observation: the standard interpreter's line is flat; the
//! monitored interpreter's time grows linearly with monitoring activity,
//! approaching the standard interpreter as the number of requested trace
//! printouts goes to zero.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use monsem_bench::trace_density_program;
use monsem_core::machine::{eval_with, EvalOptions};
use monsem_core::Env;
use monsem_monitor::machine::eval_monitored_with;
use monsem_monitor::Monitor;
use monsem_monitors::Tracer;

const ITERS: i64 = 2_000;

fn bench_density(c: &mut Criterion) {
    let tracer = Tracer::new();
    let opts = EvalOptions::default();
    let mut group = c.benchmark_group("fig11_trace_density");
    group.sample_size(15);

    for traced in [0, 250, 500, 1_000, 1_500, 2_000] {
        let program = trace_density_program(ITERS, traced);
        let erased = program.erase_annotations();
        group.bench_with_input(
            BenchmarkId::new("standard-interp", traced),
            &erased,
            |b, e| b.iter(|| eval_with(e, &Env::empty(), &opts).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("monitored-interp", traced),
            &program,
            |b, e| {
                b.iter(|| {
                    eval_monitored_with(e, &Env::empty(), &tracer, tracer.initial_state(), &opts)
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_density);
criterion_main!(benches);
