//! **Parameterized monitoring semantics** — the core contribution of
//! *Monitoring Semantics: A Formal Framework for Specifying, Implementing,
//! and Reasoning about Execution Monitors* (Kishon, Hudak, Consel, PLDI
//! 1991), reproduced in Rust.
//!
//! The paper derives, from any continuation semantics, a *monitoring
//! semantics* in which the meaning of a program is a function
//! `MS → (Ans × MS)`: given an initial monitor state it produces the
//! original answer **unchanged** together with the accumulated monitoring
//! information. The derivation is parameterized by a *monitor
//! specification* `Mon = (MSyn, MAlg, MFun)` (Definition 5.1):
//!
//! * **MSyn** — which annotations `{μ}:e` the monitor reacts to
//!   ([`Monitor::accepts`]);
//! * **MAlg** — the monitor-state domain `MS` ([`Monitor::State`]);
//! * **MFun** — the pre/post monitoring functions
//!   `M_pre : Ann → S → A* → MS → MS` and
//!   `M_post : Ann → S → A* → A*' → MS → MS`
//!   ([`Monitor::pre`], [`Monitor::post`]).
//!
//! Module map:
//!
//! * [`spec`] — the [`Monitor`] trait and the identity monitor;
//! * [`scope`] — the semantic context `A*` handed to monitoring functions
//!   (environment, plus the store in the imperative module);
//! * [`machine`] — the monitored strict evaluator (Figure 3), derived from
//!   the standard machine by adding exactly one transition (`{μ}:e`) and
//!   one frame (`κ_post`);
//! * [`lazy`] / [`imperative`] — monitored §9.2 language modules;
//! * [`answer`] — the answer transformer `θ` and monitoring answer algebra
//!   (Definition 4.1);
//! * [`fault`] — fault isolation: verdicts may abort evaluation with a
//!   reason, and the [`Guarded`] wrapper confines panicking or over-budget
//!   monitors so they degrade to the identity monitor instead of taking
//!   the evaluator down (Theorem 7.7 licenses the degradation);
//! * [`compose`] — monitor composition (§6): typed cascades
//!   ([`Compose`]) and the dynamic [`compose::MonitorStack`] built with
//!   the `&` operator, as in the paper's
//!   `evaluate (profile & debug & strict) prog`;
//! * [`parallel`] — fork-join evaluation of `par(e₁, …, eₙ)` across a
//!   thread scope, for monitors whose states split at the fork and merge
//!   at the join ([`MergeMonitor`]);
//! * [`soundness`] — executable form of Theorem 7.7, used by the property
//!   tests;
//! * [`tape`] — serializable event tapes: the pre-abstraction monitoring
//!   stream as data, recorded through a [`tape::TapeSink`] so it can be
//!   checked offline or shipped to a monitor server (`monsem-tape`);
//! * [`session`] — the §9.2 programming environment tying language modules
//!   and monitor toolboxes together;
//! * [`tiered`] — bookkeeping for tiered, profile-guided monitoring
//!   (promotion policy, tier counters, and the specialization tree the
//!   `monsem-pe` tiered driver builds on).
//!
//! # Example: a one-off counting monitor
//!
//! ```
//! use monsem_monitor::{machine::eval_monitored, scope::Scope, Monitor};
//! use monsem_syntax::{parse_expr, Annotation, Expr};
//! use monsem_core::Value;
//!
//! /// Counts evaluations of annotated expressions.
//! struct CountAll;
//! impl Monitor for CountAll {
//!     type State = u64;
//!     fn name(&self) -> &str { "count-all" }
//!     fn initial_state(&self) -> u64 { 0 }
//!     fn pre(&self, _: &Annotation, _: &Expr, _: &Scope<'_>, n: u64) -> u64 { n + 1 }
//! }
//!
//! let prog = parse_expr(
//!     "letrec fac = lambda x. if (x = 0) then {A}:1 else {B}:(x * (fac (x - 1))) in fac 5",
//! )?;
//! let (answer, count) = eval_monitored(&prog, &CountAll)?;
//! assert_eq!(answer, Value::Int(120)); // soundness: the answer is unchanged
//! assert_eq!(count, 6);                // {A} once, {B} five times
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod answer;
pub mod compose;
pub mod fault;
pub mod imperative;
pub mod lazy;
pub mod machine;
pub mod parallel;
pub mod scope;
pub mod session;
pub mod soundness;
pub mod spec;
pub mod tape;
pub mod tiered;

pub use compose::{Compose, MonitorStack};
pub use fault::{Budget, BudgetLedger, FaultPolicy, GuardState, Guarded, Health};
pub use machine::{eval_monitored, eval_monitored_stats_with, eval_monitored_with};
pub use parallel::{eval_parallel, eval_parallel_with, ParOptions};
pub use scope::Scope;
pub use spec::{DynMonitor, HookPhase, IdentityMonitor, MergeMonitor, Monitor, Outcome};
pub use tape::{
    record_monitored, record_monitored_with, MemorySink, SharedSink, TapeEvent, TapePhase,
    TapeSink, Taping, ValueDesc,
};
pub use tiered::{Relatives, SpecTree, TierPolicy, TierStats};
