//! Executable soundness (§7, Theorem 7.7).
//!
//! The theorem: for any well-specified semantics, any program `s`, any
//! annotation placement `s̄` and any monitor,
//!
//! ```text
//! (fix G)⟦s⟧ a* κ / Ans_std  =  ((fix Ḡ)⟦s̄⟧ a* κ σ)↓₁ / Ans_mon
//! ```
//!
//! i.e. the monitored run's first projection equals the standard answer,
//! for every initial monitor state σ. This module turns that statement
//! into a checkable harness used by the integration property tests: it
//! runs the standard machine on the erased program and the monitored
//! machine on the annotated program and compares `Result`s — values *and*
//! errors must agree (an unsound monitor could otherwise "fix" a crash).
//!
//! Two *intended* divergences from the theorem are classified rather than
//! reported as violations:
//!
//! * **Fuel** — the monitored machine takes extra transitions at annotated
//!   points (one `{μ}:e` step plus one `κ_post` return per accepted
//!   annotation), so a run that exhausts fuel in only one engine is
//!   [`SoundnessOutcome::Inconclusive`]. The same reasoning covers the
//!   specialized `pe` engine, which *fuses* transitions (a two-argument
//!   primitive application is one step instead of several) and therefore
//!   exhausts the same fuel later than the interpreters — the differential
//!   test `tests/fuel_accounting.rs` pins down both directions.
//! * **Abort verdicts** — a checking monitor that returns
//!   [`Outcome::Abort`](crate::spec::Outcome::Abort) *means* to change the
//!   observable behaviour: the paper's Theorem 7.7 covers pure `MS → MS`
//!   monitoring functions, and an aborting monitor is deliberately outside
//!   that class. A monitored run ending in
//!   [`EvalError::MonitorAbort`] is reported as
//!   [`SoundnessOutcome::MonitorAborted`], never as a violation. (A
//!   *quarantined* faulty monitor, by contrast, degrades to the identity
//!   monitor and is back inside the theorem — the fault-isolation property
//!   tests hold it to exact answer equality.)

use crate::machine::eval_monitored_with;
use crate::spec::Monitor;
use monsem_core::error::EvalError;
use monsem_core::machine::{eval_with, EvalOptions};
use monsem_core::{Env, Value};
use monsem_syntax::Expr;
use std::fmt;

/// Result of one soundness check.
#[derive(Debug, Clone, PartialEq)]
pub enum SoundnessOutcome {
    /// Both engines agreed (on a value or on an error).
    Agreed(Result<Value, EvalError>),
    /// At least one engine ran out of fuel; no verdict.
    Inconclusive,
    /// The monitor vetoed the monitored run
    /// ([`EvalError::MonitorAbort`]). Not a violation: an abort verdict is
    /// an intended departure from Theorem 7.7's pure-monitor premise.
    MonitorAborted {
        /// The vetoing monitor.
        monitor: String,
        /// Its stated reason.
        reason: String,
    },
}

/// A soundness violation: the monitored semantics changed the program's
/// observable behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct SoundnessViolation {
    /// What the standard semantics produced (on the erased program).
    pub standard: Result<Value, EvalError>,
    /// What the monitored semantics produced (first projection).
    pub monitored: Result<Value, EvalError>,
    /// The annotated program, pretty-printed.
    pub program: String,
}

impl fmt::Display for SoundnessViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "soundness violation on `{}`: standard = {:?}, monitored = {:?}",
            self.program, self.standard, self.monitored
        )
    }
}

impl std::error::Error for SoundnessViolation {}

/// Checks Theorem 7.7 on one annotated program and monitor.
///
/// The standard side runs on the *erased* program (`s` from `s̄`); the
/// monitored side runs on `s̄` from the monitor's initial state.
///
/// # Errors
///
/// [`SoundnessViolation`] (boxed — it carries both results and the
/// program text) when the two observable results differ.
pub fn check_soundness<M: Monitor>(
    annotated: &Expr,
    monitor: &M,
    options: &EvalOptions,
) -> Result<SoundnessOutcome, Box<SoundnessViolation>> {
    let erased = annotated.erase_annotations();
    let standard = eval_with(&erased, &Env::empty(), options);
    let monitored = eval_monitored_with(
        annotated,
        &Env::empty(),
        monitor,
        monitor.initial_state(),
        options,
    )
    .map(|(v, _)| v);

    match (&standard, &monitored) {
        (Err(EvalError::FuelExhausted), _) | (_, Err(EvalError::FuelExhausted)) => {
            Ok(SoundnessOutcome::Inconclusive)
        }
        (_, Err(EvalError::MonitorAbort { monitor, reason })) => {
            Ok(SoundnessOutcome::MonitorAborted {
                monitor: monitor.clone(),
                reason: reason.clone(),
            })
        }
        _ if standard == monitored => Ok(SoundnessOutcome::Agreed(standard)),
        _ => Err(Box::new(SoundnessViolation {
            standard,
            monitored,
            program: annotated.to_string(),
        })),
    }
}

/// Checks the σ-independence half of Theorem 7.7: the monitored answer's
/// first projection must not depend on the initial monitor state.
///
/// # Errors
///
/// [`SoundnessViolation`] when two initial states lead to different
/// observable answers.
pub fn check_sigma_independence<M: Monitor>(
    annotated: &Expr,
    monitor: &M,
    sigmas: impl IntoIterator<Item = M::State>,
    options: &EvalOptions,
) -> Result<(), Box<SoundnessViolation>> {
    let mut first: Option<Result<Value, EvalError>> = None;
    for sigma in sigmas {
        let r =
            eval_monitored_with(annotated, &Env::empty(), monitor, sigma, options).map(|(v, _)| v);
        if matches!(r, Err(EvalError::FuelExhausted)) {
            continue;
        }
        match &first {
            None => first = Some(r),
            Some(prev) if *prev == r => {}
            Some(prev) => {
                return Err(Box::new(SoundnessViolation {
                    standard: prev.clone(),
                    monitored: r,
                    program: annotated.to_string(),
                }))
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scope::Scope;
    use crate::spec::IdentityMonitor;
    use monsem_core::programs;
    use monsem_syntax::{parse_expr, Annotation};

    #[test]
    fn paper_programs_are_sound_under_the_identity_monitor() {
        for prog in [
            programs::fac_ab(5),
            programs::fac_mul_traced(3),
            programs::inclist_demon(),
            programs::collecting_fac(3),
        ] {
            let outcome =
                check_soundness(&prog, &IdentityMonitor, &EvalOptions::default()).unwrap();
            assert!(matches!(outcome, SoundnessOutcome::Agreed(Ok(_))));
        }
    }

    #[test]
    fn erroneous_programs_agree_on_the_error() {
        let e = parse_expr("{a}:(hd [])").unwrap();
        let outcome = check_soundness(&e, &IdentityMonitor, &EvalOptions::default()).unwrap();
        assert_eq!(
            outcome,
            SoundnessOutcome::Agreed(Err(EvalError::EmptyList("hd")))
        );
    }

    #[test]
    fn an_unsound_monitor_is_caught() {
        // The trait gives monitors no channel back into evaluation, so a
        // genuinely unsound monitor is not expressible; assert the
        // violation report itself constructs and displays.
        let v = SoundnessViolation {
            standard: Ok(Value::Int(1)),
            monitored: Ok(Value::Int(2)),
            program: "p".into(),
        };
        assert!(v.to_string().contains("soundness violation"));
    }

    #[test]
    fn sigma_independence_holds_for_a_counting_monitor() {
        #[derive(Debug)]
        struct Count;
        impl Monitor for Count {
            type State = u64;
            fn name(&self) -> &str {
                "count"
            }
            fn initial_state(&self) -> u64 {
                0
            }
            fn pre(&self, _: &Annotation, _: &Expr, _: &Scope<'_>, n: u64) -> u64 {
                n + 1
            }
        }
        let prog = programs::fac_ab(6);
        check_sigma_independence(
            &prog,
            &Count,
            [0, 1, 17, u64::MAX / 2],
            &EvalOptions::default(),
        )
        .unwrap();
    }

    #[test]
    fn abort_verdicts_are_classified_not_violations() {
        use crate::spec::Outcome;
        #[derive(Debug)]
        struct Veto;
        impl Monitor for Veto {
            type State = ();
            fn name(&self) -> &str {
                "veto"
            }
            fn initial_state(&self) {}
            fn try_pre(&self, _: &Annotation, _: &Expr, _: &Scope<'_>, _: ()) -> Outcome<()> {
                Outcome::abort((), "veto", "no annotations allowed")
            }
        }
        let e = parse_expr("{a}:1 + 2").unwrap();
        let outcome = check_soundness(&e, &Veto, &EvalOptions::default()).unwrap();
        assert_eq!(
            outcome,
            SoundnessOutcome::MonitorAborted {
                monitor: "veto".into(),
                reason: "no annotations allowed".into(),
            }
        );
    }

    #[test]
    fn quarantined_faults_stay_inside_the_theorem() {
        use crate::fault::{FaultPolicy, Guarded};
        #[derive(Debug)]
        struct Bomb;
        impl Monitor for Bomb {
            type State = ();
            fn name(&self) -> &str {
                "soundness-bomb"
            }
            fn initial_state(&self) {}
            fn pre(&self, _: &Annotation, _: &Expr, _: &Scope<'_>, _: ()) {
                panic!("boom");
            }
        }
        let prog = programs::fac_ab(5);
        let guarded = Guarded::new(Bomb).policy(FaultPolicy::Quarantine);
        let outcome = check_soundness(&prog, &guarded, &EvalOptions::default()).unwrap();
        assert!(matches!(outcome, SoundnessOutcome::Agreed(Ok(_))));
    }

    #[test]
    fn fuel_differences_are_inconclusive_not_violations() {
        let e = parse_expr("letrec loop = lambda x. {l}:(loop x) in loop 0").unwrap();
        let outcome =
            check_soundness(&e, &IdentityMonitor, &EvalOptions::with_fuel(5_000)).unwrap();
        assert_eq!(outcome, SoundnessOutcome::Inconclusive);
    }
}
