//! The semantic context `A*` passed to monitoring functions.
//!
//! The pre/post monitoring functions of §4.3 receive "the semantic
//! arguments `A*ᵢ`" — for `L_λ` that is the environment `ρ`; for the
//! imperative module it is the environment *and* the store. [`Scope`]
//! packages both behind a lookup that dereferences store locations, so a
//! single monitor specification (e.g. the Figure 7 tracer, which reads
//! `ρ(x₁) … ρ(xₙ)`) works unchanged across language modules.

use monsem_core::imperative::Store;
use monsem_core::value::{ThunkState, Value};
use monsem_core::Env;
use monsem_syntax::Ident;

/// A read-only view of the evaluation context at a monitored program point.
#[derive(Debug, Clone, Copy)]
pub struct Scope<'a> {
    env: &'a Env,
    store: Option<&'a Store>,
}

impl<'a> Scope<'a> {
    /// A pure scope (strict and lazy modules).
    pub fn pure(env: &'a Env) -> Self {
        Scope { env, store: None }
    }

    /// An imperative scope carrying the store.
    pub fn with_store(env: &'a Env, store: &'a Store) -> Self {
        Scope {
            env,
            store: Some(store),
        }
    }

    /// The raw environment.
    pub fn env(&self) -> &'a Env {
        self.env
    }

    /// Looks a variable up, dereferencing store locations and observing
    /// already-memoized thunks (an unforced thunk is reported as `None`:
    /// a monitor must never force evaluation the program didn't perform —
    /// that would not change the answer, but it *would* change the cost
    /// and the memoization state the programmer is trying to observe).
    pub fn lookup(&self, name: &Ident) -> Option<Value> {
        let v = self.env.lookup(name)?;
        self.observe(v)
    }

    /// Renders a variable for human consumption: unforced thunks print as
    /// `<unevaluated>` instead of disappearing.
    pub fn render(&self, name: &Ident) -> String {
        match self.env.lookup(name) {
            None => format!("<unbound:{name}>"),
            Some(v) => match self.observe(v) {
                Some(v) => v.to_string(),
                None => "<unevaluated>".to_string(),
            },
        }
    }

    fn observe(&self, v: Value) -> Option<Value> {
        match v {
            Value::Loc(l) => {
                let store = self.store?;
                Some(store.read(l).clone())
            }
            Value::Thunk(t) => match &*t.borrow() {
                ThunkState::Forced(v) => Some(v.clone()),
                ThunkState::Pending { .. } | ThunkState::InProgress => None,
            },
            other => Some(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn pure_scope_reads_environment_bindings() {
        let env = Env::empty().extend(Ident::new("x"), Value::Int(3));
        let scope = Scope::pure(&env);
        assert_eq!(scope.lookup(&Ident::new("x")), Some(Value::Int(3)));
        assert_eq!(scope.lookup(&Ident::new("y")), None);
        assert_eq!(scope.render(&Ident::new("y")), "<unbound:y>");
    }

    #[test]
    fn store_scope_dereferences_locations() {
        let mut store = Store::new();
        let loc = store.alloc(Value::Int(9));
        let env = Env::empty().extend(Ident::new("x"), Value::Loc(loc));
        let scope = Scope::with_store(&env, &store);
        assert_eq!(scope.lookup(&Ident::new("x")), Some(Value::Int(9)));
    }

    #[test]
    fn pure_scope_does_not_dereference_locations() {
        let env = Env::empty().extend(Ident::new("x"), Value::Loc(0));
        let scope = Scope::pure(&env);
        assert_eq!(scope.lookup(&Ident::new("x")), None);
    }

    #[test]
    fn thunks_are_observed_but_never_forced() {
        let forced = Rc::new(RefCell::new(ThunkState::Forced(Value::Int(5))));
        let pending = Rc::new(RefCell::new(ThunkState::InProgress));
        let env = Env::empty()
            .extend(Ident::new("a"), Value::Thunk(forced))
            .extend(Ident::new("b"), Value::Thunk(pending.clone()));
        let scope = Scope::pure(&env);
        assert_eq!(scope.lookup(&Ident::new("a")), Some(Value::Int(5)));
        assert_eq!(scope.lookup(&Ident::new("b")), None);
        assert_eq!(scope.render(&Ident::new("b")), "<unevaluated>");
        // The thunk was not forced by observation.
        assert!(matches!(&*pending.borrow(), ThunkState::InProgress));
    }
}
