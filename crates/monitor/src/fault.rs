//! Fault isolation for monitors: policies, budgets, and quarantine.
//!
//! The paper's monitoring functions are *pure* `MS → MS` transformers, and
//! Theorem 7.7 guarantees they cannot change the program's answer. A
//! deployable monitor, however, is arbitrary code: it may panic, it may
//! loop, it may burn more time than the monitored program itself. This
//! module makes attaching such a monitor safe:
//!
//! * [`FaultPolicy`] decides what a monitor fault means — [`Fatal`]
//!   (propagate, the historical behaviour) or [`Quarantine`] (confine);
//! * [`Budget`] bounds how many monitoring events a monitor may handle and
//!   how much wall-clock time its hooks may consume in total;
//! * [`Guarded`] wraps any [`Monitor`] and enforces both: each hook call
//!   runs under [`std::panic::catch_unwind`], and a monitor that panics
//!   (under `Quarantine`) or exceeds its budget **degrades to the identity
//!   monitor** for the rest of the run, keeping its last good state.
//!
//! Degradation is sound by construction: the identity monitor is the
//! degenerate case of Theorem 7.7, so from the fault onward the monitored
//! run is answer-equivalent to the standard run — the property tests in
//! `tests/fault_isolation.rs` check exactly this. What happened is not
//! hidden: the wrapper records a per-monitor [`Health`] that session
//! reports surface.
//!
//! [`Fatal`]: FaultPolicy::Fatal
//! [`Quarantine`]: FaultPolicy::Quarantine

use crate::scope::Scope;
use crate::spec::{MergeMonitor, Monitor, Outcome};
use monsem_core::Value;
use monsem_syntax::{Annotation, Expr};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What a monitor fault (panic) means for the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultPolicy {
    /// The panic propagates and takes the evaluator down — the behaviour
    /// of an unwrapped monitor, and the default.
    #[default]
    Fatal,
    /// The panic is caught; the monitor keeps its last good state, is
    /// marked [`Health::Quarantined`], and behaves as the identity monitor
    /// for the rest of the run. Abort verdicts from the wrapped monitor
    /// are confined the same way (recorded as [`Health::Aborted`], not
    /// propagated), so a quarantined monitor can *never* change the
    /// answer.
    Quarantine,
}

/// Resource bounds for one monitor. `Budget::default()` is unlimited.
///
/// Budgets are *reported, not fatal*: an over-budget monitor stops being
/// consulted (identity degradation) and its health says so, but the
/// program runs to completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Budget {
    /// Maximum number of monitoring events (pre and post each count as
    /// one) the monitor may handle.
    pub steps: Option<u64>,
    /// Maximum total wall-clock time the monitor's hooks may consume.
    /// Checked after each hook returns, so a hook that diverges outright
    /// is beyond this bound — pair the budget with `Quarantine` and an
    /// external watchdog if the monitor is fully untrusted.
    pub wall: Option<Duration>,
}

impl Budget {
    /// No bounds at all.
    pub fn unlimited() -> Budget {
        Budget::default()
    }

    /// Bounds the number of monitoring events.
    pub fn with_steps(mut self, steps: u64) -> Budget {
        self.steps = Some(steps);
        self
    }

    /// Bounds the total wall-clock time spent in hooks.
    pub fn with_wall(mut self, wall: Duration) -> Budget {
        self.wall = Some(wall);
        self
    }
}

/// Per-monitor health, reported by [`Monitor::health`] and surfaced in
/// session reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Health {
    /// The monitor handled every event it was offered.
    Ok,
    /// The monitor returned an [`Outcome::Abort`] verdict. Under
    /// [`FaultPolicy::Fatal`] the abort also stops evaluation (this
    /// variant is then only visible in the state carried by the abort);
    /// under [`FaultPolicy::Quarantine`] the verdict is confined and the
    /// run continues without the monitor.
    Aborted(String),
    /// The monitor panicked and was confined by
    /// [`FaultPolicy::Quarantine`]; the payload is the panic message.
    Quarantined(String),
    /// The monitor exceeded its [`Budget`] and stopped being consulted.
    OverBudget(String),
}

impl Health {
    /// Whether the monitor is still being consulted.
    pub fn is_ok(&self) -> bool {
        matches!(self, Health::Ok)
    }
}

impl fmt::Display for Health {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Health::Ok => f.write_str("ok"),
            Health::Aborted(reason) => write!(f, "aborted: {reason}"),
            Health::Quarantined(reason) => write!(f, "quarantined: {reason}"),
            Health::OverBudget(reason) => write!(f, "over budget: {reason}"),
        }
    }
}

/// Shared budget accounting for one fork: every shard of the fork (and
/// the fork-point state itself) charges the same atomic totals, so the
/// step and wall budgets meter the *whole* monitored history exactly as
/// the sequential machine does — not each shard in isolation.
///
/// Installed by [`MergeMonitor::fork`] on [`Guarded`] states; sequential
/// runs never carry one.
#[derive(Debug, Default)]
pub struct BudgetLedger {
    /// Monitoring events charged across every holder of this ledger.
    events: AtomicU64,
    /// Hook wall-clock time charged across every holder, in nanoseconds.
    spent_nanos: AtomicU64,
}

impl BudgetLedger {
    /// A ledger seeded with the accounting already on record at the fork
    /// point, so pre-fork history counts against the budget too.
    pub fn seeded(events: u64, spent: Duration) -> BudgetLedger {
        BudgetLedger {
            events: AtomicU64::new(events),
            spent_nanos: AtomicU64::new(duration_nanos(spent)),
        }
    }

    /// Adds `events` and `spent` to the shared totals, returning the new
    /// totals `(events, spent)`.
    fn charge(&self, events: u64, spent: Duration) -> (u64, Duration) {
        let e = self.events.fetch_add(events, Ordering::Relaxed) + events;
        let n = self
            .spent_nanos
            .fetch_add(duration_nanos(spent), Ordering::Relaxed)
            + duration_nanos(spent);
        (e, Duration::from_nanos(n))
    }

    /// The shared event total.
    pub fn events(&self) -> u64 {
        self.events.load(Ordering::Relaxed)
    }

    /// The shared hook-time total.
    pub fn spent(&self) -> Duration {
        Duration::from_nanos(self.spent_nanos.load(Ordering::Relaxed))
    }
}

fn duration_nanos(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// The state of a [`Guarded`] monitor: the wrapped monitor's state plus
/// the bookkeeping the guard needs.
#[derive(Debug, Clone)]
pub struct GuardState<S> {
    /// The wrapped monitor's state — its *last good* state once the
    /// monitor is no longer [`Health::Ok`].
    pub state: S,
    /// Whether the monitor is still being consulted, and if not, why.
    pub health: Health,
    /// Monitoring events handled so far (pre + post). Under fork-join
    /// this is the holder's *local* count; the [`BudgetLedger`], when
    /// present, carries the global total the budget is checked against.
    pub events: u64,
    /// Total wall-clock time spent inside the monitor's hooks (local
    /// share, as for `events`).
    pub spent: Duration,
    /// The fork-shared budget ledger, installed by
    /// [`MergeMonitor::fork`]. `None` in sequential runs (and under the
    /// per-shard opt-in), where the local fields are the whole story.
    pub ledger: Option<Arc<BudgetLedger>>,
}

/// Wraps a monitor with a [`FaultPolicy`] and a [`Budget`].
///
/// `Guarded<M>` is itself a [`Monitor`] — same name, same annotation
/// syntax — so it slots into every engine, [`Compose`](crate::Compose)
/// cascade, and [`MonitorStack`](crate::MonitorStack) unchanged. Its state
/// is a [`GuardState`] around `M`'s state.
///
/// ```
/// use monsem_monitor::fault::{Budget, FaultPolicy, Guarded, Health};
/// use monsem_monitor::machine::eval_monitored;
/// use monsem_monitor::{Monitor, Scope};
/// use monsem_syntax::{parse_expr, Annotation, Expr};
///
/// /// Panics the third time it sees an event.
/// struct Flaky;
/// impl Monitor for Flaky {
///     type State = u32;
///     fn name(&self) -> &str { "flaky" }
///     fn initial_state(&self) -> u32 { 0 }
///     fn pre(&self, _: &Annotation, _: &Expr, _: &Scope<'_>, n: u32) -> u32 {
///         if n == 2 { panic!("injected") }
///         n + 1
///     }
/// }
///
/// let prog = parse_expr("{a}:1 + {b}:2 + {c}:3 + {d}:4")?;
/// let guarded = Guarded::new(Flaky).policy(FaultPolicy::Quarantine);
/// let (answer, s) = eval_monitored(&prog, &guarded)?;
/// assert_eq!(answer, monsem_core::Value::Int(10)); // answer preserved
/// assert_eq!(s.state, 2);                          // last good state
/// assert!(matches!(s.health, Health::Quarantined(_)));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Guarded<M> {
    inner: M,
    policy: FaultPolicy,
    budget: Budget,
    per_shard_budgets: bool,
}

impl<M: Monitor> Guarded<M> {
    /// Guards `inner` with the default policy ([`FaultPolicy::Fatal`]) and
    /// an unlimited budget — behaviourally identical to the bare monitor
    /// until configured.
    pub fn new(inner: M) -> Self {
        Guarded {
            inner,
            policy: FaultPolicy::default(),
            budget: Budget::default(),
            per_shard_budgets: false,
        }
    }

    /// Sets the fault policy.
    pub fn policy(mut self, policy: FaultPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the budget.
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Opts back into the historical fork-join accounting: each shard
    /// meters its budget relative to the fork point instead of charging
    /// the shared [`BudgetLedger`]. A program can then exceed its budget
    /// by up to a factor of the shard count — useful only when the budget
    /// is deliberately a per-shard bound.
    pub fn per_shard_budgets(mut self, per_shard: bool) -> Self {
        self.per_shard_budgets = per_shard;
        self
    }

    /// The wrapped monitor.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// Charges monitoring work done *outside* the hook path against the
    /// budget.
    ///
    /// [`Guarded`]'s own accounting only sees the time spent inside
    /// hooks, so a driver that discharges monitoring duties without
    /// firing hooks — a tiered engine running a promoted residual, where
    /// a whole monitor-pure stretch of transitions executes as compiled
    /// code — would otherwise run on an unmetered clock. Such a driver
    /// calls this with the stretch's event count and elapsed monitoring
    /// time; the step and wall budgets then degrade the monitor exactly
    /// as if the work had gone through [`Monitor::try_pre`] /
    /// [`Monitor::try_post`]. A monitor that is already degraded absorbs
    /// the charge without change.
    pub fn charge(&self, gs: &mut GuardState<M::State>, events: u64, elapsed: Duration) {
        if !gs.health.is_ok() {
            return;
        }
        gs.events += events;
        gs.spent += elapsed;
        let (total_events, total_spent) = match &gs.ledger {
            Some(ledger) => ledger.charge(events, elapsed),
            None => (gs.events, gs.spent),
        };
        if let Some(max) = self.budget.steps {
            if total_events > max {
                gs.health = Health::OverBudget(format!("step budget of {max} events exhausted"));
                return;
            }
        }
        if let Some(max) = self.budget.wall {
            if total_spent > max {
                gs.health = Health::OverBudget(format!("wall budget of {max:?} exhausted"));
            }
        }
    }

    /// Runs one hook invocation under the guard: budget check, panic
    /// confinement, health bookkeeping. `hook` receives the wrapped
    /// monitor's state and returns its verdict.
    ///
    /// This is the path [`Monitor::try_pre`]/[`Monitor::try_post`] take;
    /// it is public so drivers that deliver events from *outside* an
    /// evaluation — a monitor server feeding a session's guard from a
    /// tape — get identical policy, budget, and health behaviour.
    pub fn guard_with(
        &self,
        mut gs: GuardState<M::State>,
        hook: impl FnOnce(&M, M::State) -> Outcome<M::State>,
    ) -> Outcome<GuardState<M::State>> {
        // A degraded monitor is the identity monitor: no hook call, no
        // state change, no verdict.
        if !gs.health.is_ok() {
            return Outcome::Continue(gs);
        }
        if let Some(max) = self.budget.steps {
            match &gs.ledger {
                // Reserve the event slot on the shared ledger first, so
                // concurrent shards can never jointly exceed the bound.
                Some(ledger) => {
                    if ledger.charge(1, Duration::ZERO).0 > max {
                        gs.health =
                            Health::OverBudget(format!("step budget of {max} events exhausted"));
                        return Outcome::Continue(gs);
                    }
                }
                None => {
                    if gs.events >= max {
                        gs.health =
                            Health::OverBudget(format!("step budget of {max} events exhausted"));
                        return Outcome::Continue(gs);
                    }
                }
            }
        }
        gs.events += 1;
        // Keep the last good state on this side of the unwind boundary:
        // if the hook panics, `taken` is consumed and `gs.state` is what
        // the report shows. Cloning `MS` is cheap for the paper's monitors
        // (sets, maps, counters — all persistent or small).
        let taken = gs.state.clone();
        let started = Instant::now();
        let result = catch_unwind(AssertUnwindSafe(|| hook(&self.inner, taken)));
        let elapsed = started.elapsed();
        gs.spent += elapsed;
        match result {
            Ok(Outcome::Continue(next)) => {
                gs.state = next;
                if let Some(max) = self.budget.wall {
                    let total_spent = match &gs.ledger {
                        Some(ledger) => ledger.charge(0, elapsed).1,
                        None => gs.spent,
                    };
                    if total_spent > max {
                        gs.health = Health::OverBudget(format!("wall budget of {max:?} exhausted"));
                    }
                }
                Outcome::Continue(gs)
            }
            Ok(Outcome::Abort {
                state,
                monitor,
                reason,
            }) => {
                gs.state = state;
                gs.health = Health::Aborted(reason.clone());
                match self.policy {
                    FaultPolicy::Fatal => Outcome::Abort {
                        state: gs,
                        monitor,
                        reason,
                    },
                    // Confined: the verdict is recorded but the run goes
                    // on without the monitor.
                    FaultPolicy::Quarantine => Outcome::Continue(gs),
                }
            }
            Err(payload) => match self.policy {
                FaultPolicy::Fatal => std::panic::resume_unwind(payload),
                FaultPolicy::Quarantine => {
                    gs.health = Health::Quarantined(panic_message(payload.as_ref()));
                    Outcome::Continue(gs)
                }
            },
        }
    }
}

/// Best-effort rendering of a panic payload (`panic!` with a literal gives
/// `&str`, with a format string gives `String`).
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl<M: Monitor> Monitor for Guarded<M> {
    type State = GuardState<M::State>;

    fn name(&self) -> &str {
        // Same name as the wrapped monitor, so reports and abort reasons
        // read naturally.
        self.inner.name()
    }

    fn accepts(&self, ann: &Annotation) -> bool {
        self.inner.accepts(ann)
    }

    fn accepts_event(&self, ann: &Annotation, phase: crate::spec::HookPhase) -> bool {
        self.inner.accepts_event(ann, phase)
    }

    fn initial_state(&self) -> Self::State {
        GuardState {
            state: self.inner.initial_state(),
            health: Health::Ok,
            events: 0,
            spent: Duration::ZERO,
            ledger: None,
        }
    }

    fn try_pre(
        &self,
        ann: &Annotation,
        expr: &Expr,
        scope: &Scope<'_>,
        state: Self::State,
    ) -> Outcome<Self::State> {
        self.guard_with(state, |m, s| m.try_pre(ann, expr, scope, s))
    }

    fn try_post(
        &self,
        ann: &Annotation,
        expr: &Expr,
        scope: &Scope<'_>,
        value: &Value,
        state: Self::State,
    ) -> Outcome<Self::State> {
        self.guard_with(state, |m, s| m.try_post(ann, expr, scope, value, s))
    }

    // The pure hooks collapse the verdict: machines never call these on a
    // Guarded monitor (they call try_*), but composition of pure paths
    // might. Abort verdicts degrade to "record and continue" here because
    // a pure hook has no way to veto.
    fn pre(
        &self,
        ann: &Annotation,
        expr: &Expr,
        scope: &Scope<'_>,
        state: Self::State,
    ) -> Self::State {
        match self.try_pre(ann, expr, scope, state) {
            Outcome::Continue(s) | Outcome::Abort { state: s, .. } => s,
        }
    }

    fn post(
        &self,
        ann: &Annotation,
        expr: &Expr,
        scope: &Scope<'_>,
        value: &Value,
        state: Self::State,
    ) -> Self::State {
        match self.try_post(ann, expr, scope, value, state) {
            Outcome::Continue(s) | Outcome::Abort { state: s, .. } => s,
        }
    }

    fn render_state(&self, state: &Self::State) -> String {
        let inner = self.inner.render_state(&state.state);
        if state.health.is_ok() {
            inner
        } else {
            format!("{inner} [{}]", state.health)
        }
    }

    fn health(&self, state: &Self::State) -> Health {
        state.health.clone()
    }
}

impl<M: MergeMonitor> MergeMonitor for Guarded<M> {
    /// Installs the fork-shared [`BudgetLedger`], seeded with the
    /// accounting already on record, whenever the budget has a bound and
    /// the historical per-shard accounting was not opted into. Every
    /// shard's [`MergeMonitor::split`] then carries the same ledger, so
    /// the step/wall budget meters the whole monitored history — shards
    /// included — exactly as the sequential machine's linear accounting
    /// does. Nested forks reuse the ledger already in place.
    fn fork(&self, mut gs: Self::State) -> Self::State {
        let bounded = self.budget.steps.is_some() || self.budget.wall.is_some();
        if bounded && !self.per_shard_budgets && gs.ledger.is_none() {
            gs.ledger = Some(Arc::new(BudgetLedger::seeded(gs.events, gs.spent)));
        }
        gs.state = self.inner.fork(gs.state);
        gs
    }

    /// A shard starts healthy with the inner split state, *zeroed* local
    /// accounting (each shard's events and spent time are its own delta,
    /// summed back at the join), and the fork's shared ledger, against
    /// which the budget is checked globally. Under
    /// [`Guarded::per_shard_budgets`] no ledger exists and each shard
    /// meters its budget relative to the fork point on its own.
    fn split(&self, gs: &Self::State) -> Self::State {
        GuardState {
            state: self.inner.split(&gs.state),
            health: gs.health.clone(),
            events: 0,
            spent: Duration::ZERO,
            ledger: gs.ledger.clone(),
        }
    }

    /// Accounting (events, spent) always sums. The inner states merge only
    /// while the accumulated side is healthy; once a fault is on record the
    /// monitor has degraded to the identity monitor, so the right-hand
    /// delta is discarded — exactly what the sequential machine would have
    /// recorded, since a degraded monitor's hooks stop firing. The first
    /// non-[`Health::Ok`] health in shard order wins.
    fn merge(&self, mut left: Self::State, right: Self::State) -> Self::State {
        left.events += right.events;
        left.spent += right.spent;
        if left.health.is_ok() {
            left.state = self.inner.merge(left.state, right.state);
            left.health = right.health;
        }
        left
    }

    /// An abort verdict from the inner merge (a checking monitor whose
    /// combined shard history violates its spec) is subject to the same
    /// [`FaultPolicy`] as hook verdicts: `Fatal` propagates, `Quarantine`
    /// records [`Health::Aborted`] and continues.
    fn merge_outcome(&self, mut left: Self::State, right: Self::State) -> Outcome<Self::State> {
        left.events += right.events;
        left.spent += right.spent;
        if !left.health.is_ok() {
            return Outcome::Continue(left);
        }
        match self.inner.merge_outcome(left.state, right.state) {
            Outcome::Continue(s) => {
                left.state = s;
                left.health = right.health;
                Outcome::Continue(left)
            }
            Outcome::Abort {
                state,
                monitor,
                reason,
            } => {
                left.state = state;
                left.health = Health::Aborted(reason.clone());
                match self.policy {
                    FaultPolicy::Fatal => Outcome::Abort {
                        state: left,
                        monitor,
                        reason,
                    },
                    FaultPolicy::Quarantine => Outcome::Continue(left),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monsem_core::Env;

    /// Counts events; panics at `fail_at` if set; aborts at `abort_at` if
    /// set.
    #[derive(Debug, Clone)]
    struct Probe {
        fail_at: Option<u64>,
        abort_at: Option<u64>,
    }

    impl Monitor for Probe {
        type State = u64;
        fn name(&self) -> &str {
            "probe"
        }
        fn initial_state(&self) -> u64 {
            0
        }
        fn try_pre(&self, _: &Annotation, _: &Expr, _: &Scope<'_>, n: u64) -> Outcome<u64> {
            if Some(n) == self.fail_at {
                panic!("probe panicked at event {n}");
            }
            if Some(n) == self.abort_at {
                return Outcome::abort(n, "probe", format!("abort at event {n}"));
            }
            Outcome::Continue(n + 1)
        }
    }

    fn fire(
        m: &impl Monitor<State = GuardState<u64>>,
        s: GuardState<u64>,
    ) -> Outcome<GuardState<u64>> {
        let env = Env::empty();
        let scope = Scope::pure(&env);
        m.try_pre(&Annotation::label("A"), &Expr::int(1), &scope, s)
    }

    #[test]
    fn quarantine_confines_a_panic_and_keeps_last_good_state() {
        let m = Guarded::new(Probe {
            fail_at: Some(2),
            abort_at: None,
        })
        .policy(FaultPolicy::Quarantine);
        let mut s = m.initial_state();
        for _ in 0..5 {
            s = match fire(&m, s) {
                Outcome::Continue(s) => s,
                other => panic!("unexpected verdict {other:?}"),
            };
        }
        assert_eq!(s.state, 2, "state frozen at the last good value");
        assert_eq!(s.events, 3, "two good events plus the faulty one");
        assert!(matches!(&s.health, Health::Quarantined(msg) if msg.contains("event 2")));
        assert_eq!(
            m.render_state(&s),
            "2 [quarantined: probe panicked at event 2]"
        );
    }

    #[test]
    fn fatal_abort_propagates_with_the_reason() {
        let m = Guarded::new(Probe {
            fail_at: None,
            abort_at: Some(1),
        });
        let s = m.initial_state();
        let Outcome::Continue(s) = fire(&m, s) else {
            panic!("first event continues");
        };
        match fire(&m, s) {
            Outcome::Abort {
                state,
                monitor,
                reason,
            } => {
                assert_eq!(monitor, "probe");
                assert_eq!(reason, "abort at event 1");
                assert!(matches!(state.health, Health::Aborted(_)));
            }
            other => panic!("unexpected verdict {other:?}"),
        }
    }

    #[test]
    fn quarantine_confines_abort_verdicts_too() {
        let m = Guarded::new(Probe {
            fail_at: None,
            abort_at: Some(0),
        })
        .policy(FaultPolicy::Quarantine);
        let mut s = m.initial_state();
        for _ in 0..3 {
            s = match fire(&m, s) {
                Outcome::Continue(s) => s,
                other => panic!("unexpected verdict {other:?}"),
            };
        }
        assert!(matches!(s.health, Health::Aborted(_)));
        assert_eq!(s.state, 0);
    }

    #[test]
    fn step_budget_degrades_without_stopping() {
        let m = Guarded::new(Probe {
            fail_at: None,
            abort_at: None,
        })
        .budget(Budget::unlimited().with_steps(3));
        let mut s = m.initial_state();
        for _ in 0..10 {
            s = match fire(&m, s) {
                Outcome::Continue(s) => s,
                other => panic!("unexpected verdict {other:?}"),
            };
        }
        assert_eq!(s.state, 3, "only the budgeted events ran");
        assert!(matches!(&s.health, Health::OverBudget(msg) if msg.contains("3 events")));
    }

    #[test]
    fn wall_budget_marks_slow_monitors() {
        /// Burns ~1ms per event.
        #[derive(Debug)]
        struct Slow;
        impl Monitor for Slow {
            type State = u64;
            fn name(&self) -> &str {
                "slow"
            }
            fn initial_state(&self) -> u64 {
                0
            }
            fn pre(&self, _: &Annotation, _: &Expr, _: &Scope<'_>, n: u64) -> u64 {
                let t = Instant::now();
                while t.elapsed() < Duration::from_millis(1) {
                    std::hint::spin_loop();
                }
                n + 1
            }
        }
        let m =
            Guarded::new(Slow).budget(Budget::unlimited().with_wall(Duration::from_micros(100)));
        let env = Env::empty();
        let scope = Scope::pure(&env);
        let mut s = m.initial_state();
        for _ in 0..5 {
            s = match m.try_pre(&Annotation::label("A"), &Expr::int(1), &scope, s) {
                Outcome::Continue(s) => s,
                other => panic!("unexpected verdict {other:?}"),
            };
        }
        assert_eq!(s.state, 1, "degraded after the first over-budget event");
        assert!(matches!(s.health, Health::OverBudget(_)));
        assert!(s.spent >= Duration::from_millis(1));
    }

    #[test]
    fn charged_residual_stretches_count_against_the_wall_budget() {
        // Regression: the wall budget used to be checked only around
        // hooks, so monitoring time spent in compiled (hook-free)
        // stretches never counted. `charge` closes the gap.
        let m = Guarded::new(Probe {
            fail_at: None,
            abort_at: None,
        })
        .budget(Budget::unlimited().with_wall(Duration::from_millis(1)));
        let mut s = m.initial_state();
        s = match fire(&m, s) {
            Outcome::Continue(s) => s,
            other => panic!("unexpected verdict {other:?}"),
        };
        assert!(s.health.is_ok());
        m.charge(&mut s, 10, Duration::from_millis(2));
        assert_eq!(s.events, 11);
        assert!(matches!(s.health, Health::OverBudget(_)));
        // Degraded: further hooks are the identity.
        let frozen = s.state;
        s = match fire(&m, s) {
            Outcome::Continue(s) => s,
            other => panic!("unexpected verdict {other:?}"),
        };
        assert_eq!(s.state, frozen);
        // Further charges are absorbed without double-reporting.
        m.charge(&mut s, 1, Duration::ZERO);
        assert_eq!(s.events, 11);
    }

    #[test]
    fn charge_meters_the_step_budget_too() {
        let m = Guarded::new(Probe {
            fail_at: None,
            abort_at: None,
        })
        .budget(Budget::unlimited().with_steps(5));
        let mut s = m.initial_state();
        m.charge(&mut s, 5, Duration::ZERO);
        assert!(s.health.is_ok(), "exactly the budget is allowed");
        m.charge(&mut s, 1, Duration::ZERO);
        assert!(matches!(&s.health, Health::OverBudget(msg) if msg.contains("5 events")));
    }

    #[test]
    fn unconfigured_guard_is_transparent() {
        let m = Guarded::new(Probe {
            fail_at: None,
            abort_at: None,
        });
        let mut s = m.initial_state();
        for _ in 0..4 {
            s = match fire(&m, s) {
                Outcome::Continue(s) => s,
                other => panic!("unexpected verdict {other:?}"),
            };
        }
        assert_eq!(s.state, 4);
        assert!(s.health.is_ok());
        assert_eq!(m.health(&s), Health::Ok);
        assert_eq!(m.render_state(&s), "4");
    }
}
