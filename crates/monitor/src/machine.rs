//! The monitored strict evaluator — Figure 3 of the paper, derived from
//! the standard machine of [`monsem_core::machine`].
//!
//! The derivation adds exactly what Definition 4.2 adds:
//!
//! * a transition for `{μ}:e`: thread the state through
//!   `updPre = M_pre ⟦μ⟧ ⟦e⟧ ρ`, push the post-processing continuation
//!   `κ_post` (the machine's internal `Post` frame), and evaluate `e`;
//! * on return to `κ_post`: thread the state through
//!   `updPost = M_post ⟦μ⟧ ⟦e⟧ ρ v` and resume the original continuation;
//! * every other clause "inherits" the standard behaviour — the fixpoint
//!   of the derived functional exhibits the new behaviour at **all**
//!   levels of recursion, which here falls out of the machine loop
//!   handling every subexpression.
//!
//! The meaning of a program is `MS → (Ans × MS)`: see
//! [`monitored_meaning`] for the literal form and [`eval_monitored`] for
//! the convenient one.

use crate::scope::Scope;
use crate::spec::{HookPhase, Monitor, Outcome};
use monsem_core::env::{Env, LetrecPlan};
use monsem_core::error::EvalError;
use monsem_core::machine::{constant, EvalOptions, LookupMode};
use monsem_core::resolve::resolve_for;
use monsem_core::value::{Closure, Value};
use monsem_syntax::{Annotation, Expr, Ident};
use std::rc::Rc;
use std::sync::Arc;

/// Defunctionalized continuations of the monitored machine. Identical to
/// the standard machine's frames plus [`Frame::Post`] (the `κ_post` of
/// Figure 3).
#[derive(Debug)]
enum Frame {
    Arg {
        func: Arc<Expr>,
        env: Env,
    },
    Apply {
        arg: Value,
    },
    Branch {
        then: Arc<Expr>,
        els: Arc<Expr>,
        env: Env,
    },
    Bind {
        name: Ident,
        body: Arc<Expr>,
        env: Env,
    },
    LetrecBind {
        plan: Rc<LetrecPlan>,
        index: usize,
        body: Arc<Expr>,
        env: Env,
    },
    Discard {
        second: Arc<Expr>,
        env: Env,
    },
    /// Collecting the element values of a `par(e₁, …, eₙ)` left-to-right.
    /// This sequential ordering is the reference semantics for the
    /// fork-join machine ([`crate::parallel`]): hooks fired inside the
    /// elements observe the same linear event order as any other
    /// expression.
    Par {
        items: Vec<Arc<Expr>>,
        done: Vec<Value>,
        env: Env,
    },
    /// `κ_post = {λv. (κ v) ∘ updPost}`: when the value of the annotated
    /// expression arrives, apply the post-monitoring function and fall
    /// through to the continuation below.
    Post {
        ann: Annotation,
        expr: Arc<Expr>,
        env: Env,
    },
}

enum State {
    Eval(Arc<Expr>, Env),
    Continue(Value),
}

/// Evaluates the annotated program under monitor `m`, starting from the
/// monitor's initial state. Returns the pair `(Ans, MS)` — the paper's
/// `(fix Ḡ) ⟦s̄⟧ a* κ σ`.
///
/// # Errors
///
/// Any [`EvalError`] the program provokes. Soundness (Theorem 7.7)
/// guarantees the error (or value) is the one the standard semantics
/// produces.
pub fn eval_monitored<M: Monitor>(
    expr: &Expr,
    monitor: &M,
) -> Result<(Value, M::State), EvalError> {
    eval_monitored_with(
        expr,
        &Env::empty(),
        monitor,
        monitor.initial_state(),
        &EvalOptions::default(),
    )
}

/// The meaning of a program in monitoring semantics: `MS → (Ans × MS)`.
///
/// This is the answer-transformer view of §2 made literal — partially
/// applying everything but the initial monitor state.
pub fn monitored_meaning<'a, M: Monitor>(
    expr: &'a Expr,
    monitor: &'a M,
) -> impl Fn(M::State) -> Result<(Value, M::State), EvalError> + 'a {
    move |sigma| eval_monitored_with(expr, &Env::empty(), monitor, sigma, &EvalOptions::default())
}

/// Evaluates under monitor `m` in `env`, from an explicit initial monitor
/// state, with options.
///
/// # Errors
///
/// Any [`EvalError`] the program provokes, including
/// [`EvalError::FuelExhausted`].
pub fn eval_monitored_with<M: Monitor>(
    expr: &Expr,
    env: &Env,
    monitor: &M,
    sigma: M::State,
    options: &EvalOptions,
) -> Result<(Value, M::State), EvalError> {
    Execution::new(expr, env, monitor, sigma, options).finish()
}

/// [`eval_monitored_with`] that additionally reports the number of
/// machine transitions taken — the same count the fuel budget meters, so
/// callers (the fork-join driver, accounting tests) can charge the steps
/// a sub-evaluation consumed back against an enclosing budget.
///
/// # Errors
///
/// As for [`eval_monitored_with`].
pub fn eval_monitored_stats_with<M: Monitor>(
    expr: &Expr,
    env: &Env,
    monitor: &M,
    sigma: M::State,
    options: &EvalOptions,
) -> Result<(Value, M::State, u64), EvalError> {
    let mut exec = Execution::new(expr, env, monitor, sigma, options);
    let result = loop {
        match exec.next_event() {
            Ok(Some(Event::Done { answer })) => break Ok(answer),
            Ok(Some(_)) => {}
            Ok(None) => break Err(EvalError::Internal("event stream ended without Done")),
            Err(err) => break Err(err),
        }
    };
    let steps = exec.steps_taken();
    let answer = result?;
    let sigma = exec
        .sigma
        .take()
        .ok_or(EvalError::Internal("monitor state missing at completion"))?;
    Ok((answer, sigma, steps))
}

/// A monitoring event, as surfaced by [`Execution::next_event`].
///
/// Events are emitted *after* the corresponding monitoring function has
/// updated the monitor state, so `Execution::monitor_state` always shows
/// the post-event σ.
#[derive(Debug, Clone)]
pub enum Event {
    /// Evaluation entered an accepted annotated expression
    /// (`M_pre` has run).
    Pre {
        /// The annotation.
        ann: Annotation,
        /// The annotated expression.
        expr: Arc<Expr>,
        /// The environment at the program point.
        env: Env,
    },
    /// The annotated expression produced a value (`M_post` has run).
    Post {
        /// The annotation.
        ann: Annotation,
        /// The annotated expression.
        expr: Arc<Expr>,
        /// The environment at the program point.
        env: Env,
        /// The produced value.
        value: Value,
    },
    /// Evaluation completed with the program's answer.
    Done {
        /// The final answer.
        answer: Value,
    },
}

/// A **resumable** monitored evaluation: the §8 remark that interactive
/// monitors need "an input as well as an output stream" as a pull API.
///
/// Each call to [`Execution::next_event`] advances the machine to the
/// next monitoring event (or to completion), handing control back to the
/// caller in between — the substrate for interactive debuggers, steppers
/// and front ends, which the scripted debugger monitor approximates in
/// batch.
///
/// ```
/// use monsem_monitor::machine::{Event, Execution};
/// use monsem_monitor::spec::IdentityMonitor;
/// use monsem_core::machine::EvalOptions;
/// use monsem_core::Env;
/// use monsem_syntax::parse_expr;
///
/// let prog = parse_expr("{a}:1 + {b}:2")?;
/// let mut exec =
///     Execution::new(&prog, &Env::empty(), &IdentityMonitor, (), &EvalOptions::default());
/// let mut seen = Vec::new();
/// while let Some(event) = exec.next_event()? {
///     match event {
///         Event::Pre { ann, .. } => seen.push(format!("pre {}", ann.name())),
///         Event::Post { ann, value, .. } => seen.push(format!("post {} = {value}", ann.name())),
///         Event::Done { answer } => seen.push(format!("done {answer}")),
///     }
/// }
/// assert_eq!(seen, ["pre b", "post b = 2", "pre a", "post a = 1", "done 3"]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Execution<'m, M: Monitor> {
    monitor: &'m M,
    stack: Vec<Frame>,
    state: Option<State>,
    sigma: Option<M::State>,
    answer: Option<Value>,
    fuel: u64,
    initial_fuel: u64,
    by_string: bool,
}

impl<'m, M: Monitor> Execution<'m, M> {
    /// Prepares a monitored evaluation (no work happens until the first
    /// [`Execution::next_event`]).
    pub fn new(
        expr: &Expr,
        env: &Env,
        monitor: &'m M,
        sigma: M::State,
        options: &EvalOptions,
    ) -> Self {
        // The derived machine inherits the standard machine's lexical
        // addressing: annotations are structure, not binders, so the
        // resolver threads `{μ}:e` through unchanged and the monitored
        // transitions see the same addresses the oblivious machine does.
        let program = match options.lookup {
            LookupMode::ByAddress => Arc::new(resolve_for(expr, env)),
            LookupMode::BySymbol | LookupMode::ByString => Arc::new(expr.clone()),
        };
        Execution {
            monitor,
            stack: Vec::new(),
            state: Some(State::Eval(program, env.clone())),
            sigma: Some(sigma),
            answer: None,
            fuel: options.fuel,
            initial_fuel: options.fuel,
            by_string: options.lookup == LookupMode::ByString,
        }
    }

    /// Machine transitions taken so far — the count the fuel budget
    /// meters (each transition decrements the fuel by one).
    pub fn steps_taken(&self) -> u64 {
        self.initial_fuel - self.fuel
    }

    /// The current monitor state σ (present until [`Execution::finish`]
    /// consumes it).
    pub fn monitor_state(&self) -> Option<&M::State> {
        self.sigma.as_ref()
    }

    /// Advances to the next monitoring event. Returns `Ok(None)` once the
    /// execution has already delivered [`Event::Done`] (or failed).
    ///
    /// # Errors
    ///
    /// Any [`EvalError`]; after an error the execution is finished.
    pub fn next_event(&mut self) -> Result<Option<Event>, EvalError> {
        match self.advance() {
            Ok(e) => Ok(e),
            Err(err) => {
                self.state = None;
                Err(err)
            }
        }
    }

    /// Drives the execution to completion, discarding intermediate events.
    ///
    /// # Errors
    ///
    /// Any [`EvalError`] the program provokes.
    pub fn finish(mut self) -> Result<(Value, M::State), EvalError> {
        loop {
            match self.next_event()? {
                Some(Event::Done { answer }) => {
                    let sigma = self
                        .sigma
                        .take()
                        .ok_or(EvalError::Internal("monitor state missing at completion"))?;
                    return Ok((answer, sigma));
                }
                Some(_) => {}
                None => {
                    // Already completed through earlier polling.
                    let answer = self
                        .answer
                        .take()
                        .ok_or(EvalError::Internal("finish called with no answer recorded"))?;
                    let sigma = self
                        .sigma
                        .take()
                        .ok_or(EvalError::Internal("monitor state missing at completion"))?;
                    return Ok((answer, sigma));
                }
            }
        }
    }

    fn advance(&mut self) -> Result<Option<Event>, EvalError> {
        let Some(mut state) = self.state.take() else {
            return Ok(None);
        };
        let monitor = self.monitor;
        loop {
            if self.fuel == 0 {
                return Err(EvalError::FuelExhausted);
            }
            self.fuel -= 1;

            state = match state {
                State::Eval(expr, env) => match &*expr {
                    // ⟦{μ}:e⟧ : (V̄⟦e⟧ ρ κ_post) ∘ updPre — for annotations
                    // the monitor accepts; foreign annotations are skipped
                    // exactly as the standard semantics skips all of them.
                    Expr::Ann(ann, inner) => {
                        if monitor.accepts(ann) {
                            // `accepts_event` may rule a phase's hook the
                            // identity; the frame and session event stream
                            // are unchanged either way.
                            if monitor.accepts_event(ann, HookPhase::Pre) {
                                let sigma = self.sigma.take().ok_or(EvalError::Internal(
                                    "monitor state missing at pre hook",
                                ))?;
                                match monitor.try_pre(ann, inner, &Scope::pure(&env), sigma) {
                                    Outcome::Continue(s) => self.sigma = Some(s),
                                    Outcome::Abort {
                                        state,
                                        monitor,
                                        reason,
                                    } => {
                                        // The final σ stays observable through
                                        // `monitor_state` for post-mortem reports.
                                        self.sigma = Some(state);
                                        return Err(EvalError::MonitorAbort { monitor, reason });
                                    }
                                }
                            }
                            self.stack.push(Frame::Post {
                                ann: ann.clone(),
                                expr: inner.clone(),
                                env: env.clone(),
                            });
                            let event = Event::Pre {
                                ann: ann.clone(),
                                expr: inner.clone(),
                                env: env.clone(),
                            };
                            self.state = Some(State::Eval(inner.clone(), env));
                            return Ok(Some(event));
                        }
                        State::Eval(inner.clone(), env)
                    }
                    Expr::Con(c) => State::Continue(constant(c)),
                    Expr::VarAt(_, addr) => State::Continue(env.lookup_addr(addr)),
                    Expr::Var(x) => {
                        let v = if self.by_string {
                            env.lookup_str(x)
                        } else {
                            env.lookup(x)
                        };
                        match v {
                            Some(v) => State::Continue(v),
                            None => return Err(EvalError::UnboundVariable(x.clone())),
                        }
                    }
                    Expr::Lambda(l) => State::Continue(Value::Closure(Rc::new(Closure {
                        param: l.param.clone(),
                        body: l.body.clone(),
                        env: env.clone(),
                    }))),
                    Expr::If(c, t, e) => {
                        self.stack.push(Frame::Branch {
                            then: t.clone(),
                            els: e.clone(),
                            env: env.clone(),
                        });
                        State::Eval(c.clone(), env)
                    }
                    Expr::App(f, a) => {
                        self.stack.push(Frame::Arg {
                            func: f.clone(),
                            env: env.clone(),
                        });
                        State::Eval(a.clone(), env)
                    }
                    Expr::Let(x, v, b) => {
                        self.stack.push(Frame::Bind {
                            name: x.clone(),
                            body: b.clone(),
                            env: env.clone(),
                        });
                        State::Eval(v.clone(), env)
                    }
                    Expr::Letrec(bs, body) => {
                        let plan = Rc::new(LetrecPlan::of(bs));
                        let env = if plan.values == 0 {
                            plan.push_rec(&env)
                        } else {
                            env
                        };
                        if plan.ordered.is_empty() {
                            State::Eval(body.clone(), env)
                        } else {
                            let first = plan.ordered[0].value.clone();
                            self.stack.push(Frame::LetrecBind {
                                plan,
                                index: 0,
                                body: body.clone(),
                                env: env.clone(),
                            });
                            State::Eval(first, env)
                        }
                    }
                    Expr::Seq(a, b) => {
                        self.stack.push(Frame::Discard {
                            second: b.clone(),
                            env: env.clone(),
                        });
                        State::Eval(a.clone(), env)
                    }
                    Expr::Par(items) => match items.split_first() {
                        None => State::Continue(Value::Nil),
                        Some((first, _)) => {
                            self.stack.push(Frame::Par {
                                items: items.clone(),
                                done: Vec::new(),
                                env: env.clone(),
                            });
                            State::Eval(first.clone(), env)
                        }
                    },
                    Expr::Assign(..) => return Err(EvalError::UnsupportedConstruct("assignment")),
                    Expr::While(..) => return Err(EvalError::UnsupportedConstruct("while")),
                },
                State::Continue(value) => match self.stack.pop() {
                    None => {
                        self.answer = Some(value.clone());
                        self.state = None;
                        return Ok(Some(Event::Done { answer: value }));
                    }
                    Some(Frame::Post { ann, expr, env }) => {
                        if monitor.accepts_event(&ann, HookPhase::Post) {
                            let sigma = self
                                .sigma
                                .take()
                                .ok_or(EvalError::Internal("monitor state missing at post hook"))?;
                            match monitor.try_post(&ann, &expr, &Scope::pure(&env), &value, sigma) {
                                Outcome::Continue(s) => self.sigma = Some(s),
                                Outcome::Abort {
                                    state,
                                    monitor,
                                    reason,
                                } => {
                                    self.sigma = Some(state);
                                    return Err(EvalError::MonitorAbort { monitor, reason });
                                }
                            }
                        }
                        let event = Event::Post {
                            ann,
                            expr,
                            env,
                            value: value.clone(),
                        };
                        self.state = Some(State::Continue(value));
                        return Ok(Some(event));
                    }
                    Some(Frame::Arg { func, env }) => {
                        self.stack.push(Frame::Apply { arg: value });
                        State::Eval(func, env)
                    }
                    Some(Frame::Apply { arg }) => match value {
                        Value::Closure(c) => {
                            State::Eval(c.body.clone(), c.env.extend(c.param.clone(), arg))
                        }
                        Value::Prim(p, collected) => {
                            let mut args = collected.as_ref().clone();
                            args.push(arg);
                            if args.len() == p.arity() {
                                if p == monsem_core::prims::Prim::ParMap {
                                    let xs = args.pop().expect("par_map has two arguments");
                                    let f = args.pop().expect("par_map has two arguments");
                                    let (expr, env) = monsem_core::machine::par_map_enter(f, xs)?;
                                    State::Eval(expr, env)
                                } else {
                                    State::Continue(p.apply(&args)?)
                                }
                            } else {
                                State::Continue(Value::Prim(p, Rc::new(args)))
                            }
                        }
                        other => return Err(EvalError::NotAFunction(other.to_string())),
                    },
                    Some(Frame::Branch { then, els, env }) => match value {
                        Value::Bool(true) => State::Eval(then, env),
                        Value::Bool(false) => State::Eval(els, env),
                        other => return Err(EvalError::NonBooleanCondition(other.to_string())),
                    },
                    Some(Frame::Bind { name, body, env }) => {
                        State::Eval(body, env.extend(name, value))
                    }
                    Some(Frame::LetrecBind {
                        plan,
                        index,
                        body,
                        env,
                    }) => {
                        let mut env = plan.bind(&env, index, value);
                        if index + 1 == plan.values {
                            env = plan.push_rec(&env);
                        }
                        if index + 1 < plan.ordered.len() {
                            let next = plan.ordered[index + 1].value.clone();
                            self.stack.push(Frame::LetrecBind {
                                plan,
                                index: index + 1,
                                body,
                                env: env.clone(),
                            });
                            State::Eval(next, env)
                        } else {
                            State::Eval(body, env)
                        }
                    }
                    Some(Frame::Par {
                        items,
                        mut done,
                        env,
                    }) => {
                        done.push(value);
                        match items.get(done.len()).cloned() {
                            Some(next) => {
                                let elem_env = env.clone();
                                self.stack.push(Frame::Par { items, done, env });
                                State::Eval(next, elem_env)
                            }
                            None => State::Continue(Value::list(done)),
                        }
                    }
                    Some(Frame::Discard { second, env }) => State::Eval(second, env),
                },
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::IdentityMonitor;
    use monsem_core::machine::eval;
    use monsem_core::programs;
    use monsem_syntax::parse_expr;

    /// Records the interleaving of pre/post events with their labels —
    /// enough to check the *ordering* guarantees of §2.
    #[derive(Debug, Clone, Default)]
    struct EventLog;
    impl Monitor for EventLog {
        type State = Vec<String>;
        fn name(&self) -> &str {
            "event-log"
        }
        fn initial_state(&self) -> Vec<String> {
            Vec::new()
        }
        fn pre(
            &self,
            ann: &Annotation,
            _: &Expr,
            _: &Scope<'_>,
            mut s: Vec<String>,
        ) -> Vec<String> {
            s.push(format!("pre {}", ann.name()));
            s
        }
        fn post(
            &self,
            ann: &Annotation,
            _: &Expr,
            _: &Scope<'_>,
            v: &Value,
            mut s: Vec<String>,
        ) -> Vec<String> {
            s.push(format!("post {} = {v}", ann.name()));
            s
        }
    }

    #[test]
    fn identity_monitor_reproduces_standard_answers() {
        for prog in [
            programs::fac_ab(5),
            programs::fac_mul_traced(3),
            programs::inclist_demon(),
        ] {
            let (v, ()) = eval_monitored(&prog, &IdentityMonitor).unwrap();
            assert_eq!(Ok(v), eval(&prog));
        }
    }

    #[test]
    fn pre_and_post_bracket_the_evaluation() {
        let e = parse_expr("{outer}:({inner}:(1 + 2) * 2)").unwrap();
        let (v, log) = eval_monitored(&e, &EventLog).unwrap();
        assert_eq!(v, Value::Int(6));
        assert_eq!(
            log,
            vec![
                "pre outer".to_string(),
                "pre inner".to_string(),
                "post inner = 3".to_string(),
                "post outer = 6".to_string(),
            ]
        );
    }

    #[test]
    fn events_follow_the_continuation_order() {
        // Application evaluates the argument before the function (Fig. 2).
        let e = parse_expr("({f}:(lambda x. x)) ({a}:1)").unwrap();
        let (_, log) = eval_monitored(&e, &EventLog).unwrap();
        assert_eq!(
            log,
            vec!["pre a", "post a = 1", "pre f", "post f = <function:x>"]
                .into_iter()
                .map(String::from)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn foreign_annotations_are_skipped() {
        struct OnlyNs;
        impl Monitor for OnlyNs {
            type State = u32;
            fn name(&self) -> &str {
                "only-ns"
            }
            fn accepts(&self, ann: &Annotation) -> bool {
                ann.namespace.as_str() == "mine"
            }
            fn initial_state(&self) -> u32 {
                0
            }
            fn pre(&self, _: &Annotation, _: &Expr, _: &Scope<'_>, n: u32) -> u32 {
                n + 1
            }
        }
        let e = parse_expr("{mine/a}:({other/b}:1)").unwrap();
        let (v, n) = eval_monitored(&e, &OnlyNs).unwrap();
        assert_eq!((v, n), (Value::Int(1), 1));
    }

    #[test]
    fn post_fires_with_the_value_of_a_recursive_call_each_time() {
        let e = parse_expr(
            "letrec fac = lambda x. {fac}:if x = 0 then 1 else x * (fac (x - 1)) in fac 3",
        )
        .unwrap();
        let (_, log) = eval_monitored(&e, &EventLog).unwrap();
        let posts: Vec<&String> = log.iter().filter(|l| l.starts_with("post")).collect();
        assert_eq!(
            posts,
            [
                "post fac = 1",
                "post fac = 1",
                "post fac = 2",
                "post fac = 6"
            ]
            .iter()
            .collect::<Vec<_>>()
        );
    }

    #[test]
    fn errors_abort_with_pending_posts_dropped() {
        let e = parse_expr("{a}:(1 / 0)").unwrap();
        assert_eq!(
            eval_monitored(&e, &EventLog).unwrap_err(),
            EvalError::DivisionByZero
        );
    }

    #[test]
    fn monitored_meaning_is_a_state_transformer() {
        let e = parse_expr("{a}:42").unwrap();
        let meaning = monitored_meaning(&e, &EventLog);
        let (v1, s1) = meaning(vec!["seed".into()]).unwrap();
        assert_eq!(v1, Value::Int(42));
        assert_eq!(
            s1,
            vec!["seed", "pre a", "post a = 42"]
                .into_iter()
                .map(String::from)
                .collect::<Vec<_>>()
        );
        // Different initial states, same answer — Definition 7.4's R.
        let (v2, _) = meaning(Vec::new()).unwrap();
        assert_eq!(v1, v2);
    }

    #[test]
    fn execution_pauses_at_events_and_exposes_sigma() {
        let e = parse_expr("{a}:({b}:1 + 2)").unwrap();
        let mut exec = Execution::new(
            &e,
            &Env::empty(),
            &EventLog,
            Vec::new(),
            &EvalOptions::default(),
        );
        // First event: pre a; σ already updated.
        let ev = exec.next_event().unwrap().unwrap();
        assert!(matches!(&ev, Event::Pre { ann, .. } if ann.name().as_str() == "a"));
        assert_eq!(exec.monitor_state().unwrap(), &vec!["pre a".to_string()]);
        // Second: pre b.
        assert!(matches!(
            exec.next_event().unwrap().unwrap(),
            Event::Pre { .. }
        ));
        // Third: post b with the value 1.
        let ev = exec.next_event().unwrap().unwrap();
        assert!(
            matches!(&ev, Event::Post { ann, value, .. }
                if ann.name().as_str() == "b" && *value == Value::Int(1)),
            "{ev:?}"
        );
        // Then post a = 3 and Done.
        assert!(matches!(
            exec.next_event().unwrap().unwrap(),
            Event::Post { .. }
        ));
        assert!(matches!(
            exec.next_event().unwrap().unwrap(),
            Event::Done {
                answer: Value::Int(3)
            }
        ));
        assert!(exec.next_event().unwrap().is_none(), "stream is exhausted");
    }

    #[test]
    fn execution_finish_after_partial_polling() {
        let e = parse_expr("{a}:40 + 2").unwrap();
        let mut exec = Execution::new(
            &e,
            &Env::empty(),
            &EventLog,
            Vec::new(),
            &EvalOptions::default(),
        );
        let _ = exec.next_event().unwrap(); // consume pre a
        let (v, log) = exec.finish().unwrap();
        assert_eq!(v, Value::Int(42));
        assert_eq!(log, vec!["pre a".to_string(), "post a = 40".to_string()]);
    }

    #[test]
    fn execution_errors_end_the_stream() {
        let e = parse_expr("{a}:(1 / 0)").unwrap();
        let mut exec = Execution::new(
            &e,
            &Env::empty(),
            &EventLog,
            Vec::new(),
            &EvalOptions::default(),
        );
        let _ = exec.next_event().unwrap(); // pre a
        assert_eq!(exec.next_event().unwrap_err(), EvalError::DivisionByZero);
        assert!(exec.next_event().unwrap().is_none());
    }

    /// Aborts when a labelled point produces a value above `limit`.
    #[derive(Debug, Clone)]
    pub(crate) struct Bound(pub i64);
    impl Monitor for Bound {
        type State = u64;
        fn name(&self) -> &str {
            "bound"
        }
        fn initial_state(&self) -> u64 {
            0
        }
        fn try_post(
            &self,
            ann: &Annotation,
            _: &Expr,
            _: &Scope<'_>,
            v: &Value,
            n: u64,
        ) -> Outcome<u64> {
            if matches!(v, Value::Int(i) if *i > self.0) {
                return Outcome::abort(
                    n,
                    self.name(),
                    format!("`{}` produced {v}, over the bound {}", ann.name(), self.0),
                );
            }
            Outcome::Continue(n + 1)
        }
    }

    #[test]
    fn abort_verdict_stops_evaluation_with_reason() {
        let e = parse_expr("{a}:2 + {b}:99 + {c}:3").unwrap();
        let err = eval_monitored(&e, &Bound(10)).unwrap_err();
        assert_eq!(
            err,
            EvalError::MonitorAbort {
                monitor: "bound".into(),
                reason: "`b` produced 99, over the bound 10".into(),
            }
        );
        assert_eq!(
            err.to_string(),
            "monitor `bound` aborted evaluation: `b` produced 99, over the bound 10"
        );
    }

    #[test]
    fn abort_leaves_sigma_observable_in_executions() {
        let e = parse_expr("{a}:2 + {b}:99").unwrap();
        let mut exec = Execution::new(&e, &Env::empty(), &Bound(10), 0, &EvalOptions::default());
        loop {
            match exec.next_event() {
                Ok(Some(_)) => {}
                Ok(None) => panic!("expected an abort"),
                Err(EvalError::MonitorAbort { monitor, .. }) => {
                    assert_eq!(monitor, "bound");
                    break;
                }
                Err(other) => panic!("unexpected error {other}"),
            }
        }
        // σ at the moment of the veto: only {b} had produced a value, and
        // its event aborted before counting.
        assert_eq!(exec.monitor_state(), Some(&0));
    }

    #[test]
    fn pre_hooks_can_abort_too() {
        #[derive(Debug)]
        struct NoEntry;
        impl Monitor for NoEntry {
            type State = ();
            fn name(&self) -> &str {
                "no-entry"
            }
            fn initial_state(&self) {}
            fn try_pre(&self, ann: &Annotation, _: &Expr, _: &Scope<'_>, _: ()) -> Outcome<()> {
                Outcome::abort((), "no-entry", format!("refused to enter `{}`", ann.name()))
            }
        }
        let e = parse_expr("1 + {gate}:2").unwrap();
        assert_eq!(
            eval_monitored(&e, &NoEntry).unwrap_err(),
            EvalError::MonitorAbort {
                monitor: "no-entry".into(),
                reason: "refused to enter `gate`".into(),
            }
        );
    }

    #[test]
    fn fuel_exhaustion_matches_the_standard_machine() {
        let e = parse_expr("letrec loop = lambda x. {l}:(loop x) in loop 0").unwrap();
        let r = eval_monitored_with(
            &e,
            &Env::empty(),
            &IdentityMonitor,
            (),
            &EvalOptions::with_fuel(10_000),
        );
        assert_eq!(r.unwrap_err(), EvalError::FuelExhausted);
    }
}
