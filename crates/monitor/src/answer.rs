//! The monitoring answer algebra (Definition 4.1).
//!
//! The standard answer algebra's operations `φᵢ : A*ᵢ → Ans` are composed
//! with the **answer transformer**
//!
//! ```text
//! θ : Ans → Ans̄        θ α = λσ. ⟨α, σ⟩
//! ```
//!
//! giving `φ̄ᵢ = θ ∘ φᵢ` into `Ans̄ = MS → (Ans × MS)`. Its one-sided
//! inverse `θ⁻¹ ᾱ = (ᾱ σ)↓₁` (σ arbitrary) recovers the standard answer;
//! `θ⁻¹ ∘ θ = id` is Lemma 7.3's engine and is tested below.
//!
//! These combinators make the §7 statements *executable*: the soundness
//! harness really does compare `(fix G)⟦s⟧ / Ans_std` against
//! `θ⁻¹((fix Ḡ)⟦s̄⟧) / Ans_mon`.

use monsem_core::answer::AnswerAlgebra;
use monsem_core::error::EvalError;
use monsem_core::Value;

/// The function type inside a [`MonAnswer`]: `MS → (Ans × MS)` with
/// evaluation errors as the implementation's bottom.
pub type AnswerFn<A, S> = dyn Fn(S) -> Result<(A, S), EvalError>;

/// A monitoring answer: `MS → (Ans × MS)`, with evaluation errors
/// propagated through `Result` (the implementation's bottom).
pub struct MonAnswer<A, S> {
    run: Box<AnswerFn<A, S>>,
    _marker: std::marker::PhantomData<A>,
}

impl<A, S> MonAnswer<A, S> {
    /// Wraps a state transformer as a monitoring answer.
    pub fn new(run: impl Fn(S) -> Result<(A, S), EvalError> + 'static) -> Self {
        MonAnswer {
            run: Box::new(run),
            _marker: std::marker::PhantomData,
        }
    }

    /// Applies the monitoring answer to an initial state.
    ///
    /// # Errors
    ///
    /// Whatever error the underlying evaluation produced.
    pub fn apply(&self, sigma: S) -> Result<(A, S), EvalError> {
        (self.run)(sigma)
    }
}

/// The answer transformer `θ α = λσ.⟨α, σ⟩`.
pub fn theta<A: Clone + 'static, S: 'static>(alpha: A) -> MonAnswer<A, S> {
    MonAnswer::new(move |sigma| Ok((alpha.clone(), sigma)))
}

/// `θ⁻¹ ᾱ = (ᾱ σ)↓₁` for an arbitrary σ.
///
/// # Errors
///
/// Whatever error the monitoring answer produces.
pub fn theta_inv<A, S>(abar: &MonAnswer<A, S>, arbitrary_sigma: S) -> Result<A, EvalError> {
    abar.apply(arbitrary_sigma).map(|(a, _)| a)
}

/// The derived monitoring answer algebra `Ans_mon = [Ans̄; {θ∘φᵢ}]`
/// (Definition 4.1), wrapping a standard algebra.
pub struct MonAnswerAlgebra<Alg> {
    inner: Alg,
}

impl<Alg> MonAnswerAlgebra<Alg> {
    /// Derives the monitoring algebra from a standard one.
    pub fn new(inner: Alg) -> Self {
        MonAnswerAlgebra { inner }
    }
}

impl<Alg> MonAnswerAlgebra<Alg>
where
    Alg: AnswerAlgebra,
    Alg::Ans: Clone + 'static,
{
    /// `φ̄ = θ ∘ φ`.
    ///
    /// # Errors
    ///
    /// Whatever the underlying `φ` rejects.
    pub fn phi_bar<S: 'static>(&self, v: Value) -> Result<MonAnswer<Alg::Ans, S>, EvalError> {
        let alpha = self.inner.phi(v)?;
        Ok(theta(alpha))
    }
}

/// The relation `R` of Definition 7.4: two monitoring answers are related
/// iff their first projections agree for **all** initial states. We check
/// it on a caller-supplied sample of states (universally quantified
/// checking being the property tests' job).
pub fn related<A: PartialEq, S: Clone>(
    a1: &MonAnswer<A, S>,
    a2: &MonAnswer<A, S>,
    sample_states: &[S],
) -> bool {
    sample_states.iter().all(|s1| {
        sample_states
            .iter()
            .all(|s2| match (a1.apply(s1.clone()), a2.apply(s2.clone())) {
                (Ok((x, _)), Ok((y, _))) => x == y,
                (Err(e1), Err(e2)) => e1 == e2,
                _ => false,
            })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use monsem_core::answer::BasAnswer;

    #[test]
    fn theta_pairs_the_answer_with_the_state() {
        let abar: MonAnswer<i64, Vec<u8>> = theta(42);
        assert_eq!(abar.apply(vec![7]).unwrap(), (42, vec![7]));
    }

    #[test]
    fn theta_inv_theta_is_identity() {
        for alpha in [0i64, -3, 999] {
            let abar: MonAnswer<i64, u8> = theta(alpha);
            assert_eq!(theta_inv(&abar, 0).unwrap(), alpha);
            // σ is arbitrary:
            assert_eq!(theta_inv(&abar, 255).unwrap(), alpha);
        }
    }

    #[test]
    fn derived_algebra_composes_theta_with_phi() {
        let alg = MonAnswerAlgebra::new(BasAnswer);
        let abar = alg.phi_bar::<u8>(Value::Int(5)).unwrap();
        assert_eq!(abar.apply(9).unwrap(), (Value::Int(5), 9));
        assert!(alg
            .phi_bar::<u8>(Value::prim(monsem_core::prims::Prim::Add))
            .is_err());
    }

    #[test]
    fn relation_r_ignores_states_but_not_answers() {
        let a: MonAnswer<i64, u8> = theta(1);
        let b: MonAnswer<i64, u8> = theta(1);
        let c: MonAnswer<i64, u8> = theta(2);
        let states = [0u8, 1, 2];
        assert!(related(&a, &b, &states));
        assert!(!related(&a, &c, &states));
    }

    #[test]
    fn relation_r_is_invariant_under_state_transformers() {
        // Lemma 7.5: ᾱ₁ R ᾱ₂ ⟺ ᾱ₁ R (ᾱ₂ ∘ v).
        let a: MonAnswer<i64, u8> = theta(1);
        let b_composed: MonAnswer<i64, u8> =
            MonAnswer::new(move |sigma: u8| Ok((1, sigma.wrapping_add(13))));
        let states = [0u8, 100, 200];
        assert!(related(&a, &b_composed, &states));
    }
}
