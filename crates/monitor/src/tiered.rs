//! Bookkeeping for tiered, profile-guided monitoring.
//!
//! The paper's §9.1 specialization levels form a ladder: level 1
//! interprets the monitor, level 2 compiles the *dispatch*, level 3
//! compiles the monitor *into* the program. A tiered engine climbs the
//! ladder at run time, per annotation site, guided by a profile: run
//! cheap, count events, promote hot sites to compiled residuals behind
//! guards, demote when the guards fail too often. This module holds the
//! engine-independent bookkeeping — the promotion policy, the counters a
//! tiered run reports, and the parent/child specialization tree that
//! lets a re-promotion *refine* an existing residual instead of
//! recompiling from scratch. The driver itself ([`TieredSession`] in
//! `monsem-pe`) lives with the compilation machinery.
//!
//! [`TieredSession`]: ../../monsem_pe/tiered/struct.TieredSession.html

/// When to promote, how much to cache, when to give up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierPolicy {
    /// Total monitoring events a site must accumulate (across profiled
    /// runs) before its enclosing program is promoted to a compiled
    /// residual.
    pub hot_threshold: u64,
    /// Maximum number of compiled residuals kept in the specialization
    /// cache; at the cap, promotion requests are declined rather than
    /// evicting (residuals are per-(site, region) and cheap to hold).
    pub max_residuals: usize,
    /// Consecutive guard failures (escapes from the compiled state
    /// region) a residual tolerates before it is demoted and the region
    /// refined. `1` demotes on the first escape.
    pub demote_after: u32,
    /// How many times a residual may be refined (re-promoted with a
    /// wider region) before the site is pinned to the interpreted tier.
    pub max_refinements: u32,
}

impl Default for TierPolicy {
    /// Promote after 32 events at a site, cache up to 8 residuals,
    /// demote after 2 consecutive guard failures, refine at most 3
    /// times.
    fn default() -> TierPolicy {
        TierPolicy {
            hot_threshold: 32,
            max_residuals: 8,
            demote_after: 2,
            max_refinements: 3,
        }
    }
}

impl TierPolicy {
    /// Sets the promotion threshold.
    pub fn hot_threshold(mut self, events: u64) -> TierPolicy {
        self.hot_threshold = events;
        self
    }

    /// Sets the residual-cache capacity.
    pub fn max_residuals(mut self, n: usize) -> TierPolicy {
        self.max_residuals = n;
        self
    }

    /// Sets the guard-failure tolerance.
    pub fn demote_after(mut self, n: u32) -> TierPolicy {
        self.demote_after = n.max(1);
        self
    }

    /// Sets the refinement cap.
    pub fn max_refinements(mut self, n: u32) -> TierPolicy {
        self.max_refinements = n;
        self
    }
}

/// Counters a tiered driver accumulates across runs. All monotone; a
/// report, not a control structure (control lives in [`TierPolicy`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TierStats {
    /// Runs served by the profiling (interpreted) tier.
    pub interpreted_runs: u64,
    /// Runs served end-to-end by a compiled residual.
    pub residual_runs: u64,
    /// Monitoring events observed while profiling.
    pub profiled_events: u64,
    /// Sites promoted to a compiled residual (first compilation only;
    /// refinements count separately).
    pub promotions: u64,
    /// Residuals actually compiled — promotions plus refinements. A
    /// cold program must show `0` here: compilation is lazy.
    pub residuals_compiled: u64,
    /// Runs whose residual escaped its state region and fell back to
    /// the interpreted tier (the run still completes, correctly).
    pub guard_failures: u64,
    /// Residuals demoted after a guard-failure storm.
    pub demotions: u64,
    /// Demoted residuals re-promoted with a refined (wider) region.
    pub refinements: u64,
}

/// mijit-style family links for one node of the specialization tree:
/// every refined residual remembers the coarser residual it grew out of,
/// and parents list their refinements.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Relatives {
    /// The node this one refines, if any.
    pub parent: Option<usize>,
    /// Nodes that refine this one, in creation order.
    pub children: Vec<usize>,
}

/// An append-only specialization tree: nodes carry a payload `T` (for a
/// tiered monitor, a compiled residual and its state region) plus
/// [`Relatives`] links. Nodes are identified by index; nothing is ever
/// removed, so indices stay valid — a *demoted* residual stays in the
/// tree as the parent its refinement starts from.
#[derive(Debug, Clone, Default)]
pub struct SpecTree<T> {
    nodes: Vec<(T, Relatives)>,
}

impl<T> SpecTree<T> {
    /// An empty tree.
    pub fn new() -> SpecTree<T> {
        SpecTree { nodes: Vec::new() }
    }

    /// Adds a root node (no parent) and returns its id.
    pub fn root(&mut self, value: T) -> usize {
        self.nodes.push((value, Relatives::default()));
        self.nodes.len() - 1
    }

    /// Adds a refinement of `parent` and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `parent` is not a node of this tree.
    pub fn refine(&mut self, parent: usize, value: T) -> usize {
        assert!(parent < self.nodes.len(), "refine: no node {parent}");
        let id = self.nodes.len();
        self.nodes.push((
            value,
            Relatives {
                parent: Some(parent),
                children: Vec::new(),
            },
        ));
        self.nodes[parent].1.children.push(id);
        id
    }

    /// The payload of node `id`.
    pub fn get(&self, id: usize) -> Option<&T> {
        self.nodes.get(id).map(|(v, _)| v)
    }

    /// The family links of node `id`.
    pub fn relatives(&self, id: usize) -> Option<&Relatives> {
        self.nodes.get(id).map(|(_, r)| r)
    }

    /// Walks the parent chain from `id` (exclusive) to the root
    /// (inclusive), eldest last.
    pub fn ancestors(&self, id: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut cur = self.nodes.get(id).and_then(|(_, r)| r.parent);
        while let Some(p) = cur {
            out.push(p);
            cur = self.nodes[p].1.parent;
        }
        out
    }

    /// Number of nodes ever added.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_sane() {
        let p = TierPolicy::default();
        assert!(p.hot_threshold > 0);
        assert!(p.max_residuals > 0);
        assert!(p.demote_after > 0);
    }

    #[test]
    fn demote_after_is_at_least_one() {
        assert_eq!(TierPolicy::default().demote_after(0).demote_after, 1);
    }

    #[test]
    fn spec_tree_links_parents_and_children() {
        let mut t: SpecTree<&str> = SpecTree::new();
        let root = t.root("coarse");
        let kid = t.refine(root, "finer");
        let grandkid = t.refine(kid, "finest");
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(grandkid), Some(&"finest"));
        assert_eq!(t.relatives(kid).unwrap().parent, Some(root));
        assert_eq!(t.relatives(root).unwrap().children, vec![kid]);
        assert_eq!(t.ancestors(grandkid), vec![kid, root]);
        assert_eq!(t.ancestors(root), Vec::<usize>::new());
    }
}
