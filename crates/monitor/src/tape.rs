//! Serializable event tapes: the pre-abstraction monitoring stream.
//!
//! The monitored machines fire hooks *in process*; this module captures
//! the same stream as plain data so it can leave the process — to a file,
//! a socket, or a monitor server. A [`TapeEvent`] carries exactly what a
//! temporal-spec monitor needs to re-derive its abstract letter later:
//! the hook phase, the annotation's namespace and symbol, a [`ValueDesc`]
//! of the produced value (for `post` events), and a monotone step index.
//! Crucially the description is *pre-abstraction*: no spec's alphabet is
//! baked in, so one tape can be checked against any spec, including specs
//! that did not exist when the tape was recorded (hot-swap).
//!
//! The pieces:
//!
//! * [`TapeSink`] — where events go (an in-memory vector, a binary
//!   writer in `monsem-tape`, a socket client);
//! * [`SharedSink`] — a cheaply cloneable, thread-safe cursor over a
//!   sink that assigns step indices; shards of a fork-join evaluation
//!   append through the same cursor;
//! * [`Taping`] — a [`Monitor`] wrapper that records every annotation
//!   event to a sink while delegating to an inner monitor, so recording
//!   composes with live checking;
//! * [`record_monitored`] / [`record_monitored_with`] — run a program
//!   under a taping monitor and close the tape with a [`TapePhase::Done`]
//!   event on success.

use crate::machine::eval_monitored_with;
use crate::scope::Scope;
use crate::spec::{HookPhase, MergeMonitor, Monitor, Outcome};
use monsem_core::env::Env;
use monsem_core::error::EvalError;
use monsem_core::machine::EvalOptions;
use monsem_core::Value;
use monsem_syntax::{Annotation, Expr};
use std::sync::{Arc, Mutex};

/// Which hook a tape event came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TapePhase {
    /// The `updPre` hook, before the annotated expression ran.
    Pre,
    /// The `updPost` hook, after the annotated expression produced a
    /// value.
    Post,
    /// The evaluation completed; closes the trace for end-of-trace
    /// obligations (`eventually(..)` and friends).
    Done,
}

/// A value description rich enough for any spec's abstraction.
///
/// Temporal specs abstract observed values three ways: integer regions
/// cut at comparison constants, the `unsorted` list predicate, and
/// "other". A `ValueDesc` preserves each input to those abstractions —
/// the exact integer if the value was one, whether the value is a
/// definitely-unsorted list, and a bounded display string for
/// diagnostics — so `Alphabet::classify_desc` reaches the same value
/// class `classify_value` reached live.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct ValueDesc {
    /// The value, when it was an integer.
    pub int: Option<i64>,
    /// Whether the value is a list with an adjacent decreasing integer
    /// pair (the Figure 8 demon's trigger).
    pub unsorted: bool,
    /// Bounded human-readable rendering, as used in violation reasons.
    pub display: String,
}

impl ValueDesc {
    /// Describes a concrete value.
    pub fn of(v: &Value) -> ValueDesc {
        ValueDesc {
            int: match v {
                Value::Int(n) => Some(*n),
                _ => None,
            },
            unsorted: value_is_unsorted(v),
            display: short_display(v),
        }
    }
}

/// Canonical bounded rendering of an observed value: at most 40
/// characters, longer values truncated to 37 plus `...`. Violation
/// reasons everywhere use exactly this form, which is what lets an
/// offline `check` reproduce a live run's reasons bit-for-bit.
pub fn short_display(v: &Value) -> String {
    let s = v.to_string();
    if s.chars().count() > 40 {
        let head: String = s.chars().take(37).collect();
        format!("{head}...")
    } else {
        s
    }
}

/// Whether `v` is a list with an adjacent pair of integers in decreasing
/// order — the trigger shared by the Figure 8 demon and the `unsorted`
/// spec predicate.
pub fn value_is_unsorted(v: &Value) -> bool {
    let Some(items) = v.iter_list() else {
        return false;
    };
    items.windows(2).any(|w| match (w[0], w[1]) {
        (Value::Int(a), Value::Int(b)) => a > b,
        _ => false,
    })
}

/// One monitoring event, as serialized to a tape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TapeEvent {
    /// Which hook fired.
    pub phase: TapePhase,
    /// The annotation's namespace (`""` for the anonymous namespace).
    pub namespace: String,
    /// The annotation symbol.
    pub name: String,
    /// The produced value's description; present exactly on
    /// [`TapePhase::Post`] events.
    pub value: Option<ValueDesc>,
    /// Monotone per-tape sequence number, assigned at record time.
    pub step: u64,
    /// Monotone timestamp in milliseconds, present when the recording
    /// sink had a clock attached (tape format v2). `None` on untimed
    /// tapes; time-windowed stream monitors then fall back to logical
    /// time (the observed-event ordinal).
    pub time: Option<u64>,
}

impl TapeEvent {
    /// A `pre` event.
    pub fn pre(ann: &Annotation, step: u64) -> TapeEvent {
        TapeEvent {
            phase: TapePhase::Pre,
            namespace: ann.namespace.as_str().to_string(),
            name: ann.name().as_str().to_string(),
            value: None,
            step,
            time: None,
        }
    }

    /// A `post` event.
    pub fn post(ann: &Annotation, value: &Value, step: u64) -> TapeEvent {
        TapeEvent {
            phase: TapePhase::Post,
            namespace: ann.namespace.as_str().to_string(),
            name: ann.name().as_str().to_string(),
            value: Some(ValueDesc::of(value)),
            step,
            time: None,
        }
    }

    /// The end-of-trace event.
    pub fn done(step: u64) -> TapeEvent {
        TapeEvent {
            phase: TapePhase::Done,
            namespace: String::new(),
            name: String::new(),
            value: None,
            step,
            time: None,
        }
    }

    /// Stamps the event with a timestamp (milliseconds, monotone).
    pub fn at(mut self, time: u64) -> TapeEvent {
        self.time = Some(time);
        self
    }
}

/// Where recorded events go. Implementations must tolerate being called
/// from whichever thread currently holds the [`SharedSink`] lock.
pub trait TapeSink {
    /// Appends one event.
    fn record(&mut self, event: TapeEvent);
}

impl TapeSink for Vec<TapeEvent> {
    fn record(&mut self, event: TapeEvent) {
        self.push(event);
    }
}

/// An in-memory sink that can be drained from a clone — handy when the
/// recording monitor is moved into an evaluation but the events are
/// wanted afterwards.
#[derive(Debug, Clone, Default)]
pub struct MemorySink(Arc<Mutex<Vec<TapeEvent>>>);

impl MemorySink {
    /// An empty sink.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// A copy of the events recorded so far.
    pub fn events(&self) -> Vec<TapeEvent> {
        self.0.lock().expect("memory sink lock").clone()
    }

    /// Drains the recorded events.
    pub fn take(&self) -> Vec<TapeEvent> {
        std::mem::take(&mut *self.0.lock().expect("memory sink lock"))
    }
}

impl TapeSink for MemorySink {
    fn record(&mut self, event: TapeEvent) {
        self.0.lock().expect("memory sink lock").push(event);
    }
}

struct SinkCursor {
    sink: Box<dyn TapeSink + Send>,
    next: u64,
    clock: Option<Box<dyn Fn() -> u64 + Send>>,
    last_time: u64,
}

/// A cloneable, thread-safe cursor over a [`TapeSink`] that assigns the
/// step indices. All clones share one counter, so events recorded by
/// fork-join shards interleave into a single well-ordered tape (the
/// interleaving itself follows the thread schedule; per-shard order is
/// preserved because each shard's hooks are sequential).
#[derive(Clone)]
pub struct SharedSink(Arc<Mutex<SinkCursor>>);

impl SharedSink {
    /// Wraps a sink.
    pub fn new(sink: impl TapeSink + Send + 'static) -> SharedSink {
        SharedSink(Arc::new(Mutex::new(SinkCursor {
            sink: Box::new(sink),
            next: 0,
            clock: None,
            last_time: 0,
        })))
    }

    /// Wraps a sink with a clock: every recorded event is stamped with
    /// `clock()` milliseconds, clamped to be monotone non-decreasing.
    /// Tapes recorded through a clocked sink serialize as format v2.
    pub fn with_clock(
        sink: impl TapeSink + Send + 'static,
        clock: impl Fn() -> u64 + Send + 'static,
    ) -> SharedSink {
        SharedSink(Arc::new(Mutex::new(SinkCursor {
            sink: Box::new(sink),
            next: 0,
            clock: Some(Box::new(clock)),
            last_time: 0,
        })))
    }

    fn record_with(&self, make: impl FnOnce(u64) -> TapeEvent) {
        let mut cursor = self.0.lock().expect("tape sink lock");
        let step = cursor.next;
        cursor.next += 1;
        let mut event = make(step);
        if let Some(clock) = &cursor.clock {
            let now = clock().max(cursor.last_time);
            cursor.last_time = now;
            event.time = Some(now);
        }
        cursor.sink.record(event);
    }

    /// Records a `pre` event for `ann`.
    pub fn record_pre(&self, ann: &Annotation) {
        self.record_with(|step| TapeEvent::pre(ann, step));
    }

    /// Records a `post` event for `ann` with the produced value.
    pub fn record_post(&self, ann: &Annotation, value: &Value) {
        self.record_with(|step| TapeEvent::post(ann, value, step));
    }

    /// Records the end-of-trace event.
    pub fn record_done(&self) {
        self.record_with(TapeEvent::done);
    }

    /// Number of events recorded so far.
    pub fn recorded(&self) -> u64 {
        self.0.lock().expect("tape sink lock").next
    }
}

impl std::fmt::Debug for SharedSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SharedSink(recorded: {})", self.recorded())
    }
}

/// A monitor wrapper that records every annotation event to a tape while
/// delegating to an inner monitor.
///
/// `Taping` accepts *all* annotations — the tape is pre-abstraction, so
/// it must not inherit the inner monitor's MSyn gating — but the inner
/// monitor's hooks fire exactly when they would have fired without the
/// wrapper, so the inner state evolves identically to an untaped run
/// (the property the `check ≡ live` tests lean on).
#[derive(Debug, Clone)]
pub struct Taping<M> {
    inner: M,
    sink: SharedSink,
}

impl<M: Monitor> Taping<M> {
    /// Records to `sink` while running `inner`.
    pub fn new(inner: M, sink: SharedSink) -> Taping<M> {
        Taping { inner, sink }
    }

    /// The wrapped monitor.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// The sink events are recorded to.
    pub fn sink(&self) -> &SharedSink {
        &self.sink
    }
}

impl<M: Monitor> Monitor for Taping<M> {
    type State = M::State;

    fn name(&self) -> &str {
        self.inner.name()
    }

    // Accept everything: the tape carries the full pre-abstraction
    // stream, whatever the inner monitor's syntax is.
    fn accepts(&self, _ann: &Annotation) -> bool {
        true
    }

    fn accepts_event(&self, _ann: &Annotation, _phase: HookPhase) -> bool {
        true
    }

    fn initial_state(&self) -> Self::State {
        self.inner.initial_state()
    }

    fn try_pre(
        &self,
        ann: &Annotation,
        expr: &Expr,
        scope: &Scope<'_>,
        state: Self::State,
    ) -> Outcome<Self::State> {
        self.sink.record_pre(ann);
        if self.inner.accepts(ann) && self.inner.accepts_event(ann, HookPhase::Pre) {
            self.inner.try_pre(ann, expr, scope, state)
        } else {
            Outcome::Continue(state)
        }
    }

    fn try_post(
        &self,
        ann: &Annotation,
        expr: &Expr,
        scope: &Scope<'_>,
        value: &Value,
        state: Self::State,
    ) -> Outcome<Self::State> {
        self.sink.record_post(ann, value);
        if self.inner.accepts(ann) && self.inner.accepts_event(ann, HookPhase::Post) {
            self.inner.try_post(ann, expr, scope, value, state)
        } else {
            Outcome::Continue(state)
        }
    }

    fn pre(
        &self,
        ann: &Annotation,
        expr: &Expr,
        scope: &Scope<'_>,
        state: Self::State,
    ) -> Self::State {
        match self.try_pre(ann, expr, scope, state) {
            Outcome::Continue(s) | Outcome::Abort { state: s, .. } => s,
        }
    }

    fn post(
        &self,
        ann: &Annotation,
        expr: &Expr,
        scope: &Scope<'_>,
        value: &Value,
        state: Self::State,
    ) -> Self::State {
        match self.try_post(ann, expr, scope, value, state) {
            Outcome::Continue(s) | Outcome::Abort { state: s, .. } => s,
        }
    }

    fn render_state(&self, state: &Self::State) -> String {
        self.inner.render_state(state)
    }

    fn health(&self, state: &Self::State) -> crate::fault::Health {
        self.inner.health(state)
    }
}

impl<M: MergeMonitor> MergeMonitor for Taping<M> {
    fn fork(&self, state: Self::State) -> Self::State {
        self.inner.fork(state)
    }

    fn split(&self, state: &Self::State) -> Self::State {
        self.inner.split(state)
    }

    fn merge(&self, left: Self::State, right: Self::State) -> Self::State {
        self.inner.merge(left, right)
    }

    fn merge_outcome(&self, left: Self::State, right: Self::State) -> Outcome<Self::State> {
        self.inner.merge_outcome(left, right)
    }
}

/// Runs `expr` under `monitor`, recording the event tape to `sink` and
/// closing it with a [`TapePhase::Done`] event iff the evaluation
/// succeeds (an erroring run leaves the tape open-ended, mirroring a
/// live trace that never completed).
///
/// # Errors
///
/// Any [`EvalError`] the program provokes — including aborts from
/// `monitor` itself, which is consulted live while the tape records.
pub fn record_monitored<M: Monitor>(
    expr: &Expr,
    monitor: M,
    sink: &SharedSink,
) -> Result<(Value, M::State), EvalError> {
    record_monitored_with(expr, &Env::empty(), monitor, sink, &EvalOptions::default())
}

/// [`record_monitored`] with an explicit environment and options.
///
/// # Errors
///
/// As for [`record_monitored`].
pub fn record_monitored_with<M: Monitor>(
    expr: &Expr,
    env: &Env,
    monitor: M,
    sink: &SharedSink,
    options: &EvalOptions,
) -> Result<(Value, M::State), EvalError> {
    let taping = Taping::new(monitor, sink.clone());
    let sigma = taping.initial_state();
    let (value, state) = eval_monitored_with(expr, env, &taping, sigma, options)?;
    sink.record_done();
    Ok((value, state))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::IdentityMonitor;
    use monsem_syntax::parse_expr;

    #[test]
    fn taping_records_the_event_stream_in_hook_order() {
        let e = parse_expr("{outer}:({inner}:(1 + 2) * 2)").unwrap();
        let mem = MemorySink::new();
        let sink = SharedSink::new(mem.clone());
        let (v, ()) = record_monitored(&e, IdentityMonitor, &sink).unwrap();
        assert_eq!(v, Value::Int(6));
        let events = mem.events();
        let shape: Vec<(TapePhase, &str)> = events
            .iter()
            .map(|ev| (ev.phase, ev.name.as_str()))
            .collect();
        assert_eq!(
            shape,
            vec![
                (TapePhase::Pre, "outer"),
                (TapePhase::Pre, "inner"),
                (TapePhase::Post, "inner"),
                (TapePhase::Post, "outer"),
                (TapePhase::Done, ""),
            ]
        );
        assert_eq!(
            events.iter().map(|ev| ev.step).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4],
            "steps are assigned monotonically"
        );
        assert_eq!(
            events[2].value,
            Some(ValueDesc {
                int: Some(3),
                unsorted: false,
                display: "3".to_string()
            })
        );
    }

    #[test]
    fn value_descriptions_cover_the_abstraction_inputs() {
        let sorted = Value::list([1, 2, 3].map(Value::Int));
        let unsorted = Value::list([3, 1, 2].map(Value::Int));
        assert!(!ValueDesc::of(&sorted).unsorted);
        assert!(ValueDesc::of(&unsorted).unsorted);
        assert_eq!(ValueDesc::of(&Value::Int(-7)).int, Some(-7));
        assert_eq!(ValueDesc::of(&Value::Bool(true)).int, None);
        let long = Value::list((0..40).map(Value::Int).collect::<Vec<_>>());
        let desc = ValueDesc::of(&long);
        assert_eq!(desc.display.chars().count(), 40);
        assert!(desc.display.ends_with("..."));
    }

    #[test]
    fn erroring_runs_leave_the_tape_without_done() {
        let e = parse_expr("{a}:(1 / 0)").unwrap();
        let mem = MemorySink::new();
        let sink = SharedSink::new(mem.clone());
        let err = record_monitored(&e, IdentityMonitor, &sink).unwrap_err();
        assert_eq!(err, EvalError::DivisionByZero);
        let events = mem.events();
        assert!(events.iter().all(|ev| ev.phase != TapePhase::Done));
        assert_eq!(events.len(), 1, "only `pre a` made it to the tape");
    }
}
