//! The monitored imperative language module (§9.2).
//!
//! Derived from [`monsem_core::imperative`] by the Definition 4.2
//! construction. The monitoring functions receive a [`Scope`] that carries
//! the store, so a monitor can observe the *current contents* of mutable
//! variables — the semantic events a Magpie-style demon (§8) watches.

use crate::scope::Scope;
use crate::spec::{HookPhase, Monitor, Outcome};
use monsem_core::env::{Env, LetrecPlan};
use monsem_core::error::EvalError;
use monsem_core::imperative::Store;
use monsem_core::machine::{constant, EvalOptions, LookupMode};
use monsem_core::resolve::resolve_for;
use monsem_core::value::{Closure, Value};
use monsem_syntax::{Annotation, Expr, Ident};
use std::rc::Rc;
use std::sync::Arc;

#[derive(Debug)]
enum Frame {
    Arg {
        func: Arc<Expr>,
        env: Env,
    },
    Apply {
        arg: Value,
    },
    Branch {
        then: Arc<Expr>,
        els: Arc<Expr>,
        env: Env,
    },
    Bind {
        name: Ident,
        body: Arc<Expr>,
        env: Env,
    },
    LetrecBind {
        plan: Rc<LetrecPlan>,
        index: usize,
        body: Arc<Expr>,
        env: Env,
    },
    Discard {
        second: Arc<Expr>,
        env: Env,
    },
    Write {
        loc: usize,
    },
    LoopTest {
        cond: Arc<Expr>,
        body: Arc<Expr>,
        env: Env,
    },
    LoopBack {
        cond: Arc<Expr>,
        body: Arc<Expr>,
        env: Env,
    },
    Post {
        ann: Annotation,
        expr: Arc<Expr>,
        env: Env,
    },
}

enum State {
    Eval(Arc<Expr>, Env),
    Continue(Value),
}

/// Evaluates the annotated program imperatively under monitor `m`.
///
/// # Errors
///
/// Any [`EvalError`] the program provokes.
pub fn eval_monitored_imperative<M: Monitor>(
    expr: &Expr,
    monitor: &M,
) -> Result<(Value, M::State), EvalError> {
    eval_monitored_imperative_with(
        expr,
        &Env::empty(),
        monitor,
        monitor.initial_state(),
        &EvalOptions::default(),
    )
    .map(|(v, s, _)| (v, s))
}

/// Full-control variant of [`eval_monitored_imperative`]; also returns the
/// final store.
///
/// # Errors
///
/// Any [`EvalError`], including [`EvalError::FuelExhausted`].
pub fn eval_monitored_imperative_with<M: Monitor>(
    expr: &Expr,
    env: &Env,
    monitor: &M,
    sigma: M::State,
    options: &EvalOptions,
) -> Result<(Value, M::State, Store), EvalError> {
    let mut store = Store::new();
    let mut stack: Vec<Frame> = Vec::new();
    let program = match options.lookup {
        LookupMode::ByAddress => Arc::new(resolve_for(expr, env)),
        LookupMode::BySymbol | LookupMode::ByString => Arc::new(expr.clone()),
    };
    let by_string = options.lookup == LookupMode::ByString;
    let mut state = State::Eval(program, env.clone());
    let mut sigma = sigma;
    let mut fuel = options.fuel;

    loop {
        if fuel == 0 {
            return Err(EvalError::FuelExhausted);
        }
        fuel -= 1;

        state = match state {
            State::Eval(expr, env) => match &*expr {
                Expr::Ann(ann, inner) => {
                    if monitor.accepts(ann) {
                        if monitor.accepts_event(ann, HookPhase::Pre) {
                            sigma = match monitor.try_pre(
                                ann,
                                inner,
                                &Scope::with_store(&env, &store),
                                sigma,
                            ) {
                                Outcome::Continue(s) => s,
                                Outcome::Abort {
                                    monitor, reason, ..
                                } => return Err(EvalError::MonitorAbort { monitor, reason }),
                            };
                        }
                        stack.push(Frame::Post {
                            ann: ann.clone(),
                            expr: inner.clone(),
                            env: env.clone(),
                        });
                    }
                    State::Eval(inner.clone(), env)
                }
                Expr::Con(c) => State::Continue(constant(c)),
                Expr::VarAt(_, addr) => match env.lookup_addr(addr) {
                    Value::Loc(l) => State::Continue(store.read(l).clone()),
                    v => State::Continue(v),
                },
                Expr::Var(x) => {
                    let v = if by_string {
                        env.lookup_str(x)
                    } else {
                        env.lookup(x)
                    };
                    match v {
                        Some(Value::Loc(l)) => State::Continue(store.read(l).clone()),
                        Some(v) => State::Continue(v),
                        None => return Err(EvalError::UnboundVariable(x.clone())),
                    }
                }
                Expr::Lambda(l) => State::Continue(Value::Closure(Rc::new(Closure {
                    param: l.param.clone(),
                    body: l.body.clone(),
                    env: env.clone(),
                }))),
                Expr::If(c, t, e) => {
                    stack.push(Frame::Branch {
                        then: t.clone(),
                        els: e.clone(),
                        env: env.clone(),
                    });
                    State::Eval(c.clone(), env)
                }
                Expr::App(f, a) => {
                    stack.push(Frame::Arg {
                        func: f.clone(),
                        env: env.clone(),
                    });
                    State::Eval(a.clone(), env)
                }
                Expr::Let(x, v, b) => {
                    stack.push(Frame::Bind {
                        name: x.clone(),
                        body: b.clone(),
                        env: env.clone(),
                    });
                    State::Eval(v.clone(), env)
                }
                Expr::Letrec(bs, body) => {
                    let plan = Rc::new(LetrecPlan::of(bs));
                    let env = if plan.values == 0 {
                        plan.push_rec(&env)
                    } else {
                        env
                    };
                    if plan.ordered.is_empty() {
                        State::Eval(body.clone(), env)
                    } else {
                        let first = plan.ordered[0].value.clone();
                        stack.push(Frame::LetrecBind {
                            plan,
                            index: 0,
                            body: body.clone(),
                            env: env.clone(),
                        });
                        State::Eval(first, env)
                    }
                }
                Expr::Seq(a, b) => {
                    stack.push(Frame::Discard {
                        second: b.clone(),
                        env: env.clone(),
                    });
                    State::Eval(a.clone(), env)
                }
                Expr::Par(..) => {
                    return Err(EvalError::UnsupportedConstruct(
                        "par (only the strict machines evaluate it)",
                    ))
                }
                Expr::Assign(x, e) => match env.lookup(x) {
                    Some(Value::Loc(l)) => {
                        stack.push(Frame::Write { loc: l });
                        State::Eval(e.clone(), env)
                    }
                    Some(_) => return Err(EvalError::NotAssignable(x.clone())),
                    None => return Err(EvalError::UnboundVariable(x.clone())),
                },
                Expr::While(c, b) => {
                    stack.push(Frame::LoopTest {
                        cond: c.clone(),
                        body: b.clone(),
                        env: env.clone(),
                    });
                    State::Eval(c.clone(), env)
                }
            },
            State::Continue(value) => match stack.pop() {
                None => return Ok((value, sigma, store)),
                Some(Frame::Post { ann, expr, env }) => {
                    if monitor.accepts_event(&ann, HookPhase::Post) {
                        sigma = match monitor.try_post(
                            &ann,
                            &expr,
                            &Scope::with_store(&env, &store),
                            &value,
                            sigma,
                        ) {
                            Outcome::Continue(s) => s,
                            Outcome::Abort {
                                monitor, reason, ..
                            } => return Err(EvalError::MonitorAbort { monitor, reason }),
                        };
                    }
                    State::Continue(value)
                }
                Some(Frame::Arg { func, env }) => {
                    stack.push(Frame::Apply { arg: value });
                    State::Eval(func, env)
                }
                Some(Frame::Apply { arg }) => match value {
                    Value::Closure(c) => {
                        let loc = store.alloc(arg);
                        State::Eval(
                            c.body.clone(),
                            c.env.extend(c.param.clone(), Value::Loc(loc)),
                        )
                    }
                    Value::Prim(p, collected) => {
                        let mut args = collected.as_ref().clone();
                        args.push(arg);
                        if args.len() == p.arity() {
                            State::Continue(p.apply(&args)?)
                        } else {
                            State::Continue(Value::Prim(p, Rc::new(args)))
                        }
                    }
                    other => return Err(EvalError::NotAFunction(other.to_string())),
                },
                Some(Frame::Branch { then, els, env }) => match value {
                    Value::Bool(true) => State::Eval(then, env),
                    Value::Bool(false) => State::Eval(els, env),
                    other => return Err(EvalError::NonBooleanCondition(other.to_string())),
                },
                Some(Frame::Bind { name, body, env }) => {
                    let loc = store.alloc(value);
                    State::Eval(body, env.extend(name, Value::Loc(loc)))
                }
                Some(Frame::LetrecBind {
                    plan,
                    index,
                    body,
                    env,
                }) => {
                    let bound = if index < plan.values {
                        Value::Loc(store.alloc(value))
                    } else {
                        value
                    };
                    let mut env = plan.bind(&env, index, bound);
                    if index + 1 == plan.values {
                        env = plan.push_rec(&env);
                    }
                    if index + 1 < plan.ordered.len() {
                        let next = plan.ordered[index + 1].value.clone();
                        stack.push(Frame::LetrecBind {
                            plan,
                            index: index + 1,
                            body,
                            env: env.clone(),
                        });
                        State::Eval(next, env)
                    } else {
                        State::Eval(body, env)
                    }
                }
                Some(Frame::Discard { second, env }) => State::Eval(second, env),
                Some(Frame::Write { loc }) => {
                    store.write(loc, value);
                    State::Continue(Value::Unit)
                }
                Some(Frame::LoopTest { cond, body, env }) => match value {
                    Value::Bool(true) => {
                        stack.push(Frame::LoopBack {
                            cond,
                            body: body.clone(),
                            env: env.clone(),
                        });
                        State::Eval(body, env)
                    }
                    Value::Bool(false) => State::Continue(Value::Unit),
                    other => return Err(EvalError::NonBooleanCondition(other.to_string())),
                },
                Some(Frame::LoopBack { cond, body, env }) => {
                    stack.push(Frame::LoopTest {
                        cond: cond.clone(),
                        body,
                        env: env.clone(),
                    });
                    State::Eval(cond, env)
                }
            },
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monsem_core::imperative::eval_imperative;
    use monsem_syntax::parse_expr;

    /// Watches a named mutable variable at annotated points: records its
    /// current store contents at each `pre` event.
    #[derive(Debug, Clone)]
    struct Watch(Ident);
    impl Monitor for Watch {
        type State = Vec<Value>;
        fn name(&self) -> &str {
            "watch"
        }
        fn initial_state(&self) -> Vec<Value> {
            Vec::new()
        }
        fn pre(
            &self,
            _: &Annotation,
            _: &Expr,
            scope: &Scope<'_>,
            mut s: Vec<Value>,
        ) -> Vec<Value> {
            if let Some(v) = scope.lookup(&self.0) {
                s.push(v);
            }
            s
        }
    }

    #[test]
    fn monitor_observes_mutation_through_the_store() {
        let e = parse_expr("let n = 0 in while n < 3 do {tick}:(n := n + 1) end; n").unwrap();
        let (v, seen) = eval_monitored_imperative(&e, &Watch(Ident::new("n"))).unwrap();
        assert_eq!(v, Value::Int(3));
        assert_eq!(seen, vec![Value::Int(0), Value::Int(1), Value::Int(2)]);
    }

    #[test]
    fn answers_match_the_unmonitored_imperative_machine() {
        let src = "let n = 5 in let acc = 1 in \
                   (while n > 0 do {step}:(acc := acc * n); n := n - 1 end); acc";
        let e = parse_expr(src).unwrap();
        let (v, _) = eval_monitored_imperative(&e, &Watch(Ident::new("acc"))).unwrap();
        assert_eq!(Ok(v), eval_imperative(&e));
    }

    #[test]
    fn abort_verdict_stops_imperative_evaluation_mid_loop() {
        /// Aborts as soon as the watched variable's store contents exceed
        /// the bound — a §8 demon with teeth, reading through the store.
        #[derive(Debug, Clone)]
        struct Ceiling(Ident, i64);
        impl Monitor for Ceiling {
            type State = ();
            fn name(&self) -> &str {
                "ceiling"
            }
            fn initial_state(&self) {}
            fn try_pre(&self, _: &Annotation, _: &Expr, scope: &Scope<'_>, _: ()) -> Outcome<()> {
                if let Some(Value::Int(n)) = scope.lookup(&self.0) {
                    if n > self.1 {
                        return Outcome::abort((), "ceiling", format!("{} reached {n}", self.0));
                    }
                }
                Outcome::Continue(())
            }
        }
        let e = parse_expr("let n = 0 in while true do {tick}:(n := n + 1) end; n").unwrap();
        assert_eq!(
            eval_monitored_imperative(&e, &Ceiling(Ident::new("n"), 2)).unwrap_err(),
            EvalError::MonitorAbort {
                monitor: "ceiling".into(),
                reason: "n reached 3".into(),
            }
        );
    }

    #[test]
    fn post_sees_the_assignment_result() {
        #[derive(Debug, Clone)]
        struct PostVals;
        impl Monitor for PostVals {
            type State = Vec<String>;
            fn name(&self) -> &str {
                "post-vals"
            }
            fn initial_state(&self) -> Vec<String> {
                Vec::new()
            }
            fn post(
                &self,
                _: &Annotation,
                _: &Expr,
                scope: &Scope<'_>,
                v: &Value,
                mut s: Vec<String>,
            ) -> Vec<String> {
                s.push(format!("{v} with x = {}", scope.render(&Ident::new("x"))));
                s
            }
        }
        let e = parse_expr("let x = 1 in {w}:(x := 2); x").unwrap();
        let (v, log) = eval_monitored_imperative(&e, &PostVals).unwrap();
        assert_eq!(v, Value::Int(2));
        // The assignment returns unit; the store already holds 2.
        assert_eq!(log, vec!["() with x = 2".to_string()]);
    }
}
