//! The monitored lazy language module — the §9.2 integration of the
//! monitoring semantics with call-by-need evaluation.
//!
//! Derived from [`monsem_core::lazy`] by the Definition 4.2 construction:
//! one extra transition for `{μ}:e` and one `κ_post` frame; everything
//! else inherits. Note that under call-by-need an annotation inside a
//! never-forced binding never fires — monitoring reflects the actual
//! demand-driven evaluation order, which is precisely what a lazy tracer
//! is for.

use crate::scope::Scope;
use crate::spec::{HookPhase, Monitor, Outcome};
use monsem_core::env::{Env, LetrecPlan};
use monsem_core::error::EvalError;
use monsem_core::machine::{constant, EvalOptions, LookupMode};
use monsem_core::prims::Prim;
use monsem_core::resolve::resolve_for;
use monsem_core::value::{Closure, ThunkRef, ThunkState, Value};
use monsem_syntax::{Annotation, Binding, Expr};
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

#[derive(Debug)]
enum Frame {
    ApplyTo {
        arg: Arc<Expr>,
        env: Env,
    },
    Branch {
        then: Arc<Expr>,
        els: Arc<Expr>,
        env: Env,
    },
    Update(ThunkRef),
    PrimArgs {
        prim: Prim,
        args: Vec<Value>,
        index: usize,
    },
    Discard {
        second: Arc<Expr>,
        env: Env,
    },
    Post {
        ann: Annotation,
        expr: Arc<Expr>,
        env: Env,
    },
}

enum State {
    Eval(Arc<Expr>, Env),
    Continue(Value),
}

/// Evaluates the annotated program call-by-need under monitor `m`.
///
/// # Errors
///
/// Any [`EvalError`] the program provokes.
pub fn eval_monitored_lazy<M: Monitor>(
    expr: &Expr,
    monitor: &M,
) -> Result<(Value, M::State), EvalError> {
    eval_monitored_lazy_with(
        expr,
        &Env::empty(),
        monitor,
        monitor.initial_state(),
        &EvalOptions::default(),
    )
}

/// Full-control variant of [`eval_monitored_lazy`].
///
/// # Errors
///
/// Any [`EvalError`], including [`EvalError::FuelExhausted`].
pub fn eval_monitored_lazy_with<M: Monitor>(
    expr: &Expr,
    env: &Env,
    monitor: &M,
    sigma: M::State,
    options: &EvalOptions,
) -> Result<(Value, M::State), EvalError> {
    let mut stack: Vec<Frame> = Vec::new();
    let program = match options.lookup {
        LookupMode::ByAddress => Arc::new(resolve_for(expr, env)),
        LookupMode::BySymbol | LookupMode::ByString => Arc::new(expr.clone()),
    };
    let by_string = options.lookup == LookupMode::ByString;
    let mut state = State::Eval(program, env.clone());
    let mut sigma = sigma;
    let mut fuel = options.fuel;

    loop {
        if fuel == 0 {
            return Err(EvalError::FuelExhausted);
        }
        fuel -= 1;

        state = match state {
            State::Eval(expr, env) => match &*expr {
                Expr::Ann(ann, inner) => {
                    if monitor.accepts(ann) {
                        if monitor.accepts_event(ann, HookPhase::Pre) {
                            sigma = match monitor.try_pre(ann, inner, &Scope::pure(&env), sigma) {
                                Outcome::Continue(s) => s,
                                Outcome::Abort {
                                    monitor, reason, ..
                                } => return Err(EvalError::MonitorAbort { monitor, reason }),
                            };
                        }
                        stack.push(Frame::Post {
                            ann: ann.clone(),
                            expr: inner.clone(),
                            env: env.clone(),
                        });
                    }
                    State::Eval(inner.clone(), env)
                }
                Expr::Con(c) => State::Continue(constant(c)),
                Expr::VarAt(_, addr) => match env.lookup_addr(addr) {
                    Value::Thunk(t) => force(t, &mut stack)?,
                    v => State::Continue(v),
                },
                Expr::Var(x) => {
                    let v = if by_string {
                        env.lookup_str(x)
                    } else {
                        env.lookup(x)
                    };
                    match v {
                        Some(Value::Thunk(t)) => force(t, &mut stack)?,
                        Some(v) => State::Continue(v),
                        None => return Err(EvalError::UnboundVariable(x.clone())),
                    }
                }
                Expr::Lambda(l) => State::Continue(Value::Closure(Rc::new(Closure {
                    param: l.param.clone(),
                    body: l.body.clone(),
                    env: env.clone(),
                }))),
                Expr::If(c, t, e) => {
                    stack.push(Frame::Branch {
                        then: t.clone(),
                        els: e.clone(),
                        env: env.clone(),
                    });
                    State::Eval(c.clone(), env)
                }
                Expr::App(f, a) => {
                    stack.push(Frame::ApplyTo {
                        arg: a.clone(),
                        env: env.clone(),
                    });
                    State::Eval(f.clone(), env)
                }
                Expr::Let(x, v, b) => {
                    let t = suspend(v.clone(), env.clone());
                    State::Eval(b.clone(), env.extend(x.clone(), t))
                }
                Expr::Letrec(bs, body) => State::Eval(body.clone(), letrec_env(bs, &env)),
                Expr::Seq(a, b) => {
                    stack.push(Frame::Discard {
                        second: b.clone(),
                        env: env.clone(),
                    });
                    State::Eval(a.clone(), env)
                }
                Expr::Par(..) => {
                    return Err(EvalError::UnsupportedConstruct(
                        "par (only the strict machines evaluate it)",
                    ))
                }
                Expr::Assign(..) => return Err(EvalError::UnsupportedConstruct("assignment")),
                Expr::While(..) => return Err(EvalError::UnsupportedConstruct("while")),
            },
            State::Continue(value) => match stack.pop() {
                None => return Ok((value, sigma)),
                Some(Frame::Post { ann, expr, env }) => {
                    if monitor.accepts_event(&ann, HookPhase::Post) {
                        sigma = match monitor.try_post(
                            &ann,
                            &expr,
                            &Scope::pure(&env),
                            &value,
                            sigma,
                        ) {
                            Outcome::Continue(s) => s,
                            Outcome::Abort {
                                monitor, reason, ..
                            } => return Err(EvalError::MonitorAbort { monitor, reason }),
                        };
                    }
                    State::Continue(value)
                }
                Some(Frame::ApplyTo { arg, env }) => match value {
                    Value::Closure(c) => {
                        let t = suspend(arg, env);
                        State::Eval(c.body.clone(), c.env.extend(c.param.clone(), t))
                    }
                    Value::Prim(p, collected) => {
                        let mut args = collected.as_ref().clone();
                        args.push(suspend(arg, env));
                        if args.len() == p.arity() {
                            prim_step(p, args, &mut stack)?
                        } else {
                            State::Continue(Value::Prim(p, Rc::new(args)))
                        }
                    }
                    other => return Err(EvalError::NotAFunction(other.to_string())),
                },
                Some(Frame::Branch { then, els, env }) => match value {
                    Value::Bool(true) => State::Eval(then, env),
                    Value::Bool(false) => State::Eval(els, env),
                    other => return Err(EvalError::NonBooleanCondition(other.to_string())),
                },
                Some(Frame::Update(t)) => {
                    *t.borrow_mut() = ThunkState::Forced(value.clone());
                    State::Continue(value)
                }
                Some(Frame::PrimArgs {
                    prim,
                    mut args,
                    index,
                }) => {
                    args[index] = value;
                    prim_step(prim, args, &mut stack)?
                }
                Some(Frame::Discard { second, env }) => State::Eval(second, env),
            },
        };
    }
}

fn suspend(expr: Arc<Expr>, env: Env) -> Value {
    if let Expr::Con(c) = &*expr {
        return constant(c);
    }
    Value::Thunk(Rc::new(RefCell::new(ThunkState::Pending { expr, env })))
}

fn force(t: ThunkRef, stack: &mut Vec<Frame>) -> Result<State, EvalError> {
    let taken = {
        let mut state = t.borrow_mut();
        match &*state {
            ThunkState::Forced(v) => return Ok(State::Continue(v.clone())),
            ThunkState::InProgress => return Err(EvalError::BlackHole),
            ThunkState::Pending { .. } => std::mem::replace(&mut *state, ThunkState::InProgress),
        }
    };
    match taken {
        ThunkState::Pending { expr, env } => {
            stack.push(Frame::Update(t));
            Ok(State::Eval(expr, env))
        }
        _ => unreachable!("checked above"),
    }
}

fn prim_step(prim: Prim, mut args: Vec<Value>, stack: &mut Vec<Frame>) -> Result<State, EvalError> {
    let mut i = 0;
    while i < args.len() {
        if let Value::Thunk(t) = &args[i] {
            let t = t.clone();
            let forced = {
                let state = t.borrow();
                match &*state {
                    ThunkState::Forced(v) => Some(v.clone()),
                    ThunkState::InProgress => return Err(EvalError::BlackHole),
                    ThunkState::Pending { .. } => None,
                }
            };
            match forced {
                Some(v) => {
                    args[i] = v;
                    continue;
                }
                None => {
                    stack.push(Frame::PrimArgs {
                        prim,
                        args: args.clone(),
                        index: i,
                    });
                    return force(t, stack);
                }
            }
        }
        i += 1;
    }
    Ok(State::Continue(prim.apply(&args)?))
}

fn letrec_env(bs: &[Binding], env: &Env) -> Env {
    let plan = LetrecPlan::of(bs);
    let mut env = env.clone();
    let mut value_thunks: Vec<ThunkRef> = Vec::new();
    let mut annotated_thunks: Vec<ThunkRef> = Vec::new();
    let suspend_binding = |env: &Env, b: &Binding, created: &mut Vec<ThunkRef>| match suspend(
        b.value.clone(),
        Env::empty(),
    ) {
        Value::Thunk(t) => {
            created.push(t.clone());
            env.extend(b.name.clone(), Value::Thunk(t))
        }
        constant_value => env.extend(b.name.clone(), constant_value),
    };
    for b in &plan.ordered[..plan.values] {
        env = suspend_binding(&env, b, &mut value_thunks);
    }
    env = plan.push_rec(&env);
    let rec_env = env.clone();
    for b in &plan.ordered[plan.values..] {
        env = suspend_binding(&env, b, &mut annotated_thunks);
    }
    // Value thunks see the final environment; annotated lambda thunks
    // close over the rec-rooted one — the shape the resolver predicts for
    // the group's function bodies (see `monsem_core::lazy::letrec_env`).
    for t in value_thunks {
        let mut state = t.borrow_mut();
        if let ThunkState::Pending { env: thunk_env, .. } = &mut *state {
            *thunk_env = env.clone();
        }
    }
    for t in annotated_thunks {
        let mut state = t.borrow_mut();
        if let ThunkState::Pending { env: thunk_env, .. } = &mut *state {
            *thunk_env = rec_env.clone();
        }
    }
    env
}

#[cfg(test)]
mod tests {
    use super::*;
    use monsem_core::lazy::eval_lazy;
    use monsem_syntax::parse_expr;

    #[derive(Debug, Clone, Default)]
    struct Log;
    impl Monitor for Log {
        type State = Vec<String>;
        fn name(&self) -> &str {
            "log"
        }
        fn initial_state(&self) -> Vec<String> {
            Vec::new()
        }
        fn pre(&self, a: &Annotation, _: &Expr, _: &Scope<'_>, mut s: Vec<String>) -> Vec<String> {
            s.push(format!("pre {}", a.name()));
            s
        }
        fn post(
            &self,
            a: &Annotation,
            _: &Expr,
            _: &Scope<'_>,
            v: &Value,
            mut s: Vec<String>,
        ) -> Vec<String> {
            s.push(format!("post {} = {v}", a.name()));
            s
        }
    }

    #[test]
    fn answers_match_the_unmonitored_lazy_machine() {
        let e = parse_expr(
            "letrec fac = lambda x. {f}:if x = 0 then 1 else x * (fac (x - 1)) in fac 5",
        )
        .unwrap();
        let (v, _) = eval_monitored_lazy(&e, &Log).unwrap();
        assert_eq!(Ok(v), eval_lazy(&e));
    }

    #[test]
    fn unused_annotated_argument_never_fires_the_monitor() {
        let e = parse_expr("(lambda x. 1) ({never}:(2 + 3))").unwrap();
        let (v, log) = eval_monitored_lazy(&e, &Log).unwrap();
        assert_eq!(v, Value::Int(1));
        assert!(log.is_empty(), "monitor fired on unused binding: {log:?}");
    }

    #[test]
    fn forced_annotated_argument_fires_exactly_once_despite_two_uses() {
        let e = parse_expr("(lambda x. x + x) ({once}:(2 + 3))").unwrap();
        let (v, log) = eval_monitored_lazy(&e, &Log).unwrap();
        assert_eq!(v, Value::Int(10));
        assert_eq!(
            log,
            vec!["pre once".to_string(), "post once = 5".to_string()]
        );
    }

    #[test]
    fn abort_verdict_stops_lazy_evaluation() {
        #[derive(Debug)]
        struct NoBigValues;
        impl Monitor for NoBigValues {
            type State = ();
            fn name(&self) -> &str {
                "no-big"
            }
            fn initial_state(&self) {}
            fn try_post(
                &self,
                _: &Annotation,
                _: &Expr,
                _: &Scope<'_>,
                v: &Value,
                _: (),
            ) -> Outcome<()> {
                if matches!(v, Value::Int(i) if *i > 10) {
                    return Outcome::abort((), "no-big", format!("saw {v}"));
                }
                Outcome::Continue(())
            }
        }
        let e = parse_expr("let x = {x}:(6 * 7) in x + 1").unwrap();
        assert_eq!(
            eval_monitored_lazy(&e, &NoBigValues).unwrap_err(),
            EvalError::MonitorAbort {
                monitor: "no-big".into(),
                reason: "saw 42".into(),
            }
        );
        // A never-demanded annotation never gets the chance to abort.
        let e = parse_expr("let x = {x}:(6 * 7) in 1").unwrap();
        assert_eq!(
            eval_monitored_lazy(&e, &NoBigValues).unwrap(),
            (Value::Int(1), ())
        );
    }

    #[test]
    fn demand_order_shows_in_the_event_log() {
        // `y` is demanded before `x` because `+` forces left-to-right but
        // the outer expression is `y + x`... make it explicit:
        let e = parse_expr("let x = {x}:1 in let y = {y}:2 in y + x").unwrap();
        let (_, log) = eval_monitored_lazy(&e, &Log).unwrap();
        assert_eq!(
            log,
            vec!["pre y", "post y = 2", "pre x", "post x = 1"]
                .into_iter()
                .map(String::from)
                .collect::<Vec<_>>()
        );
    }
}
