//! The §9.2 programming environment.
//!
//! "The implementation provides a generic programming environment which
//! allows automatic integration of monitoring tools with several language
//! modules (lazy, strict and imperative languages). … the user simply
//! types `evaluate (profile & debug & strict) prog`."
//!
//! [`Session`] is that environment: pick a [`LanguageModule`], stack
//! monitors with `&` (see [`MonitorStack`]), and [`Session::run`] a
//! program. The result is a [`Report`]: the program's answer plus every
//! monitor's final state, with the §6 disjointness requirement checked up
//! front.

use crate::compose::{DisjointnessError, MonitorStack};
use crate::fault::{Budget, FaultPolicy, Health};
use crate::imperative::eval_monitored_imperative_with;
use crate::lazy::eval_monitored_lazy_with;
use crate::machine::eval_monitored_with;
use crate::spec::{DynMonitor, DynState, Monitor};
use monsem_core::error::EvalError;
use monsem_core::machine::EvalOptions;
use monsem_core::{Env, Value};
use monsem_syntax::{parse_program, Expr, ParseError};
use std::fmt;

/// Which language module interprets the program (§9.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LanguageModule {
    /// Call-by-value (the paper's `strict`).
    #[default]
    Strict,
    /// Call-by-need (the paper's `lazy`).
    Lazy,
    /// Store-threading with assignment and loops.
    Imperative,
}

/// A configured monitoring session.
pub struct Session {
    language: LanguageModule,
    tools: MonitorStack,
    options: EvalOptions,
}

impl Default for Session {
    fn default() -> Self {
        Session::new()
    }
}

impl Session {
    /// A strict session with no monitors.
    pub fn new() -> Self {
        Session {
            language: LanguageModule::Strict,
            tools: MonitorStack::empty(),
            options: EvalOptions::default(),
        }
    }

    /// Selects the language module.
    pub fn language(mut self, language: LanguageModule) -> Self {
        self.language = language;
        self
    }

    /// Adds a monitor as the outermost cascade layer.
    pub fn monitor(mut self, monitor: Box<dyn DynMonitor>) -> Self {
        self.tools = self.tools.push(monitor);
        self
    }

    /// Adds a fault-guarded monitor as the outermost cascade layer: its
    /// panics are confined per `policy`, its hook usage bounded by
    /// `budget`, and its [`ReportEntry::health`] says what happened.
    pub fn monitor_guarded<M: Monitor + 'static>(
        mut self,
        monitor: M,
        policy: FaultPolicy,
        budget: Budget,
    ) -> Self {
        self.tools = self.tools.push_guarded(monitor, policy, budget);
        self
    }

    /// Installs a whole stack at once (replacing any previous tools).
    pub fn tools(mut self, tools: MonitorStack) -> Self {
        self.tools = tools;
        self
    }

    /// Sets evaluation options (fuel).
    pub fn options(mut self, options: EvalOptions) -> Self {
        self.options = options;
        self
    }

    /// Parses and runs a source program.
    ///
    /// # Errors
    ///
    /// [`SessionError`] on parse failure, §6 disjointness violations, or
    /// evaluation errors.
    pub fn run(&self, src: &str) -> Result<Report, SessionError> {
        let prog = parse_program(src)?;
        self.run_expr(&prog)
    }

    /// Runs an already-parsed program.
    ///
    /// # Errors
    ///
    /// [`SessionError`] on §6 disjointness violations or evaluation errors.
    pub fn run_expr(&self, prog: &Expr) -> Result<Report, SessionError> {
        self.tools.check_disjoint(prog)?;
        let sigma = self.tools.initial_state();
        let (answer, states) = match self.language {
            LanguageModule::Strict => {
                eval_monitored_with(prog, &Env::empty(), &self.tools, sigma, &self.options)?
            }
            LanguageModule::Lazy => {
                eval_monitored_lazy_with(prog, &Env::empty(), &self.tools, sigma, &self.options)?
            }
            LanguageModule::Imperative => {
                let (v, s, _store) = eval_monitored_imperative_with(
                    prog,
                    &Env::empty(),
                    &self.tools,
                    sigma,
                    &self.options,
                )?;
                (v, s)
            }
        };
        let entries = self
            .tools
            .layers()
            .iter()
            .zip(states)
            .map(|(m, s)| ReportEntry {
                monitor: m.name().to_string(),
                rendered: m.render_state_dyn(&s),
                health: m.health_dyn(&s),
                state: s,
            })
            .collect();
        Ok(Report { answer, entries })
    }
}

/// The §9.2 one-liner: `evaluate(profile & debug, Strict, prog)`.
///
/// # Errors
///
/// See [`Session::run_expr`].
pub fn evaluate(
    tools: MonitorStack,
    language: LanguageModule,
    prog: &Expr,
) -> Result<Report, SessionError> {
    Session::new()
        .language(language)
        .tools(tools)
        .run_expr(prog)
}

/// One monitor's contribution to a [`Report`].
#[derive(Debug)]
pub struct ReportEntry {
    /// Monitor name.
    pub monitor: String,
    /// Human-readable final state.
    pub rendered: String,
    /// Whether the monitor handled every event, or was degraded mid-run
    /// (quarantined after a panic, or over budget). Plain monitors are
    /// always [`Health::Ok`].
    pub health: Health,
    /// The raw final state (downcast with [`DynState::downcast`]).
    pub state: DynState,
}

/// The outcome of a monitored run: the answer plus every monitor's final
/// state.
#[derive(Debug)]
pub struct Report {
    /// The program's answer — by Theorem 7.7, identical to what the
    /// unmonitored language module produces.
    pub answer: Value,
    /// Per-monitor final states, in cascade order.
    pub entries: Vec<ReportEntry>,
}

impl Report {
    /// The final state of the named monitor.
    pub fn state_of(&self, monitor: &str) -> Option<&DynState> {
        self.entries
            .iter()
            .find(|e| e.monitor == monitor)
            .map(|e| &e.state)
    }

    /// The rendered state of the named monitor.
    pub fn rendered_of(&self, monitor: &str) -> Option<&str> {
        self.entries
            .iter()
            .find(|e| e.monitor == monitor)
            .map(|e| e.rendered.as_str())
    }

    /// The health of the named monitor.
    pub fn health_of(&self, monitor: &str) -> Option<&Health> {
        self.entries
            .iter()
            .find(|e| e.monitor == monitor)
            .map(|e| &e.health)
    }

    /// Whether every monitor handled every event it was offered.
    pub fn all_healthy(&self) -> bool {
        self.entries.iter().all(|e| e.health.is_ok())
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "answer: {}", self.answer)?;
        for e in &self.entries {
            if e.health.is_ok() {
                writeln!(f, "--- {} ---", e.monitor)?;
            } else {
                writeln!(f, "--- {} ({}) ---", e.monitor, e.health)?;
            }
            writeln!(f, "{}", e.rendered)?;
        }
        Ok(())
    }
}

/// Errors a session can produce.
#[derive(Debug)]
pub enum SessionError {
    /// The source did not parse.
    Parse(ParseError),
    /// Two monitors claimed the same annotation (§6).
    Disjointness(DisjointnessError),
    /// The program failed to evaluate.
    Eval(EvalError),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Parse(e) => write!(f, "{e}"),
            SessionError::Disjointness(e) => write!(f, "{e}"),
            SessionError::Eval(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SessionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SessionError::Parse(e) => Some(e),
            SessionError::Disjointness(e) => Some(e),
            SessionError::Eval(e) => Some(e),
        }
    }
}

impl From<ParseError> for SessionError {
    fn from(e: ParseError) -> Self {
        SessionError::Parse(e)
    }
}

impl From<DisjointnessError> for SessionError {
    fn from(e: DisjointnessError) -> Self {
        SessionError::Disjointness(e)
    }
}

impl From<EvalError> for SessionError {
    fn from(e: EvalError) -> Self {
        SessionError::Eval(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compose::boxed;
    use crate::scope::Scope;
    use monsem_syntax::{Annotation, Namespace};

    #[derive(Debug, Clone)]
    struct NsCounter(Namespace, &'static str);
    impl Monitor for NsCounter {
        type State = u32;
        fn name(&self) -> &str {
            self.1
        }
        fn accepts(&self, ann: &Annotation) -> bool {
            ann.namespace == self.0
        }
        fn initial_state(&self) -> u32 {
            0
        }
        fn pre(&self, _: &Annotation, _: &Expr, _: &Scope<'_>, n: u32) -> u32 {
            n + 1
        }
    }

    #[test]
    fn session_runs_with_stacked_tools_across_modules() {
        let src = "letrec f = lambda x. {a/hit}:({b/hit}:(x + 1)) in f 41";
        for lang in [
            LanguageModule::Strict,
            LanguageModule::Lazy,
            LanguageModule::Imperative,
        ] {
            let report = Session::new()
                .language(lang)
                .monitor(boxed(NsCounter(Namespace::new("a"), "count-a")))
                .monitor(boxed(NsCounter(Namespace::new("b"), "count-b")))
                .run(src)
                .unwrap();
            assert_eq!(report.answer, Value::Int(42), "{lang:?}");
            assert_eq!(
                report.state_of("count-a").unwrap().downcast::<u32>(),
                Some(1)
            );
            assert_eq!(report.rendered_of("count-b"), Some("1"));
        }
    }

    /// Panics the moment it sees an event in its namespace.
    #[derive(Debug, Clone)]
    struct NsBomb(Namespace);
    impl Monitor for NsBomb {
        type State = u32;
        fn name(&self) -> &str {
            "bomb"
        }
        fn accepts(&self, ann: &Annotation) -> bool {
            ann.namespace == self.0
        }
        fn initial_state(&self) -> u32 {
            0
        }
        fn pre(&self, _: &Annotation, _: &Expr, _: &Scope<'_>, _: u32) -> u32 {
            panic!("session bomb");
        }
    }

    #[test]
    fn session_reports_health_instead_of_crashing() {
        let src = "letrec f = lambda x. {a/hit}:({b/hit}:(x + 1)) in f 41";
        for lang in [
            LanguageModule::Strict,
            LanguageModule::Lazy,
            LanguageModule::Imperative,
        ] {
            let report = Session::new()
                .language(lang)
                .monitor(boxed(NsCounter(Namespace::new("a"), "count-a")))
                .monitor_guarded(
                    NsBomb(Namespace::new("b")),
                    FaultPolicy::Quarantine,
                    Budget::unlimited(),
                )
                .run(src)
                .unwrap();
            assert_eq!(report.answer, Value::Int(42), "{lang:?}: answer preserved");
            assert_eq!(report.health_of("count-a"), Some(&Health::Ok));
            assert!(
                matches!(report.health_of("bomb"), Some(Health::Quarantined(msg)) if msg == "session bomb"),
                "{lang:?}: {:?}",
                report.health_of("bomb")
            );
            assert!(!report.all_healthy());
            assert!(report
                .to_string()
                .contains("bomb (quarantined: session bomb)"));
        }
    }

    #[test]
    fn session_surfaces_monitor_aborts_in_every_module() {
        /// Vetoes any value over 10 at annotated points.
        #[derive(Debug, Clone)]
        struct Cap(Namespace);
        impl Monitor for Cap {
            type State = ();
            fn name(&self) -> &str {
                "cap"
            }
            fn accepts(&self, ann: &Annotation) -> bool {
                ann.namespace == self.0
            }
            fn initial_state(&self) {}
            fn try_post(
                &self,
                _: &Annotation,
                _: &Expr,
                _: &Scope<'_>,
                v: &Value,
                _: (),
            ) -> crate::spec::Outcome<()> {
                if matches!(v, Value::Int(n) if *n > 10) {
                    return crate::spec::Outcome::abort((), "cap", format!("saw {v}"));
                }
                crate::spec::Outcome::Continue(())
            }
        }
        for lang in [
            LanguageModule::Strict,
            LanguageModule::Lazy,
            LanguageModule::Imperative,
        ] {
            let err = Session::new()
                .language(lang)
                .monitor(boxed(Cap(Namespace::anonymous())))
                .run("{big}:(6 * 7)")
                .unwrap_err();
            assert!(
                matches!(
                    &err,
                    SessionError::Eval(EvalError::MonitorAbort { monitor, reason })
                        if monitor == "cap" && reason == "saw 42"
                ),
                "{lang:?}: {err}"
            );
        }
    }

    #[test]
    fn over_budget_monitors_are_reported_not_fatal() {
        let report = Session::new()
            .monitor_guarded(
                NsCounter(Namespace::anonymous(), "thrifty"),
                FaultPolicy::Quarantine,
                Budget::unlimited().with_steps(2),
            )
            .run("{a}:1 + {b}:2 + {c}:3")
            .unwrap();
        assert_eq!(report.answer, Value::Int(6));
        assert!(matches!(
            report.health_of("thrifty"),
            Some(Health::OverBudget(_))
        ));
    }

    #[test]
    fn parse_errors_are_session_errors() {
        let err = Session::new().run("if without then").unwrap_err();
        assert!(matches!(err, SessionError::Parse(_)));
    }

    #[test]
    fn disjointness_is_checked_before_running() {
        let err = Session::new()
            .monitor(boxed(NsCounter(Namespace::new("a"), "one")))
            .monitor(boxed(NsCounter(Namespace::new("a"), "two")))
            .run("{a/x}:1")
            .unwrap_err();
        assert!(matches!(err, SessionError::Disjointness(_)));
    }

    #[test]
    fn imperative_module_runs_imperative_programs() {
        let report = Session::new()
            .language(LanguageModule::Imperative)
            .run("let x = 0 in while x < 4 do x := x + 1 end; x")
            .unwrap();
        assert_eq!(report.answer, Value::Int(4));
    }

    #[test]
    fn report_displays_every_monitor() {
        let report = Session::new()
            .monitor(boxed(NsCounter(Namespace::anonymous(), "anon")))
            .run("{hit}:1")
            .unwrap();
        let shown = report.to_string();
        assert!(shown.contains("answer: 1"));
        assert!(shown.contains("--- anon ---"));
    }
}
