//! Fork-join monitored evaluation: `par(e₁, …, eₙ)` elements on worker
//! threads, monitor states split at the fork and merged at the join.
//!
//! The sequential monitored machine ([`crate::machine`]) gives `par` its
//! reference semantics — evaluate the elements left-to-right, yield the
//! list of values, fire hooks in the linear order of §2. This machine
//! produces the **same answer and the same final monitor state** for any
//! [`MergeMonitor`] whose split/merge obey the documented laws, but shards
//! the element evaluations across a [`std::thread::scope`]:
//!
//! 1. At a top-level `par` with more than one element, the current
//!    environment is frozen **once** ([`monsem_core::freeze`]) and each
//!    element becomes a work item.
//! 2. Each shard starts from [`MergeMonitor::split`] of the fork-point
//!    state σ, thaws the environment on its worker thread, and runs the
//!    ordinary sequential monitored machine — so nested `par`s inside a
//!    shard evaluate sequentially, and every hook, abort, and fault policy
//!    behaves exactly as in [`crate::machine`].
//! 3. The join merges shard states **deterministically left-to-right**
//!    with [`MergeMonitor::merge_outcome`], regardless of completion
//!    order; shard answers are thawed into the result list in element
//!    order. Determinism is what lets the property tests pin
//!    `parallel ≡ sequential` bit-for-bit.
//!
//! Faults follow the PR 2 policy surface: a shard whose *monitor* panics
//! behaves per its [`Guarded`](crate::fault::Guarded) wrapper on the
//! worker thread (quarantine degrades, fatal propagates); a panic that
//! does escape a shard is caught at the join and surfaced as
//! [`EvalError::MonitorAbort`] — it never poisons the scope or the other
//! shards. Errors are ranked leftmost-first, matching the sequential
//! machine, which would have hit the leftmost failing element before
//! evaluating anything to its right.
//!
//! Resource accounting is **global**, as in the sequential machine:
//!
//! * **Fuel** is one shared budget. Sequential segments deduct the steps
//!   they consumed; at a join, each shard's actual step count is charged
//!   back to the parent, so the elements of a `par` jointly cannot burn
//!   more fuel than a sequential run of the same program could. (The
//!   driver's own spine transitions are not charged, so a parallel run
//!   may use *slightly less* fuel than the sequential machine — never
//!   more.)
//! * **Guarded budgets** are metered on a fork-shared
//!   [`BudgetLedger`](crate::fault::BudgetLedger), installed by
//!   [`MergeMonitor::fork`] — see [`Guarded`](crate::fault::Guarded),
//!   whose `per_shard_budgets` builder is the documented opt-in back to
//!   the historical per-shard accounting.

use crate::fault::panic_message;
use crate::machine::eval_monitored_stats_with;
use crate::scope::Scope;
use crate::spec::{HookPhase, MergeMonitor, Outcome};
use monsem_core::env::Env;
use monsem_core::error::EvalError;
use monsem_core::freeze::{freeze, freeze_env, thaw, thaw_env, FrozenValue};
use monsem_core::machine::{constant, par_map_enter, EvalOptions, LookupMode};
use monsem_core::prims::Prim;
use monsem_core::resolve::resolve_for;
use monsem_core::value::{Closure, Value};
use monsem_syntax::Expr;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Options for the fork-join machine.
#[derive(Debug, Clone)]
pub struct ParOptions {
    /// Worker threads used per `par` fork. Defaults to the machine's
    /// available parallelism (at least 1). A value of 1 still exercises
    /// the freeze/split/merge path, on the calling thread's schedule.
    pub threads: usize,
    /// Options threaded into each shard's sequential machine. The fuel
    /// budget is *global*: shards draw on the one remaining budget, and
    /// their actual step counts are charged back at the join.
    pub eval: EvalOptions,
}

impl Default for ParOptions {
    fn default() -> Self {
        ParOptions {
            threads: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            eval: EvalOptions::default(),
        }
    }
}

impl ParOptions {
    /// Sets the worker-thread count (clamped to at least 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }
}

/// What one shard sends back across the scope boundary: the frozen
/// value, the shard's final monitor state, and the machine steps the
/// shard consumed (charged back to the parent's fuel at the join).
type ShardResult<S> = Result<(FrozenValue, S, u64), EvalError>;

/// Evaluates `expr` under `monitor`, forking at top-level `par` forms.
///
/// Equivalent to [`eval_monitored`](crate::machine::eval_monitored) —
/// same answer, same final monitor state — whenever the monitor's
/// split/merge laws hold.
///
/// # Errors
///
/// Any [`EvalError`] the program provokes, ranked as the sequential
/// machine would rank it (leftmost shard first).
pub fn eval_parallel<M>(expr: &Expr, monitor: &M) -> Result<(Value, M::State), EvalError>
where
    M: MergeMonitor + Sync,
    M::State: Send,
{
    eval_parallel_with(
        expr,
        &Env::empty(),
        monitor,
        monitor.initial_state(),
        &ParOptions::default(),
    )
}

/// [`eval_parallel`] with an explicit environment, initial monitor state
/// and options.
///
/// # Errors
///
/// As for [`eval_parallel`].
pub fn eval_parallel_with<M>(
    expr: &Expr,
    env: &Env,
    monitor: &M,
    sigma: M::State,
    options: &ParOptions,
) -> Result<(Value, M::State), EvalError>
where
    M: MergeMonitor + Sync,
    M::State: Send,
{
    // Resolve once up front (as the sequential machines do); the driver
    // below then evaluates with addresses already in place.
    let program = match options.eval.lookup {
        LookupMode::ByAddress => Arc::new(resolve_for(expr, env)),
        LookupMode::BySymbol | LookupMode::ByString => Arc::new(expr.clone()),
    };
    let mut driver_options = options.clone();
    // The program is already resolved; shards must not resolve again
    // against their thawed (value-bearing) environments.
    driver_options.eval.lookup = match options.eval.lookup {
        LookupMode::ByAddress => LookupMode::BySymbol,
        other => other,
    };
    // The one fuel budget, drawn down by sequential segments and shard
    // charge-backs alike.
    let mut fuel = options.eval.fuel;
    drive(&program, env, monitor, sigma, &driver_options, &mut fuel)
}

/// Evaluates `expr`, forking at *top-level* `par` forms — a `par` that is
/// the spine of the program (possibly under annotations, lets, seqs, …)
/// is found by running the sequential machine until it would evaluate the
/// `par`, which we do here with a small driver: evaluate the whole
/// expression sequentially, except that `Expr::Par` nodes reached by this
/// driver fork.
///
/// Rather than duplicating the machine, the driver rewrites the program:
/// it walks to each `Par` node reachable without entering a lambda and
/// evaluates those shards in parallel; everything else is delegated to
/// the sequential monitored machine. `par` forms *inside* functions
/// called by the program are evaluated sequentially by the shard's
/// machine — fork-join nesting is deliberately flat (one scope per
/// top-level `par`).
fn drive<M>(
    expr: &Arc<Expr>,
    env: &Env,
    monitor: &M,
    sigma: M::State,
    options: &ParOptions,
    fuel: &mut u64,
) -> Result<(Value, M::State), EvalError>
where
    M: MergeMonitor + Sync,
    M::State: Send,
{
    match &**expr {
        Expr::Par(items) if items.len() > 1 => fork_join(items, env, monitor, sigma, options, fuel),
        Expr::Par(items) => match items.split_first() {
            // Degenerate `par`s don't pay for a scope.
            None => Ok((Value::Nil, sigma)),
            Some((only, _)) => {
                let (v, sigma) = drive(only, env, monitor, sigma, options, fuel)?;
                Ok((Value::list([v]), sigma))
            }
        },
        // Evaluation-order-transparent spine forms: recurse so a `par`
        // under a `let`, `seq`, annotation, or `if` still forks.
        Expr::Ann(ann, inner) if !monitor.accepts(ann) => {
            drive(inner, env, monitor, sigma, options, fuel)
        }
        // Accepted annotations bracket the drive of their body with the
        // same pre/post hooks the sequential machine fires, so
        // `{μ}:par(…)` still forks.
        Expr::Ann(ann, inner) => {
            let sigma = if monitor.accepts_event(ann, HookPhase::Pre) {
                match monitor.try_pre(ann, inner, &Scope::pure(env), sigma) {
                    Outcome::Continue(s) => s,
                    Outcome::Abort {
                        monitor, reason, ..
                    } => return Err(EvalError::MonitorAbort { monitor, reason }),
                }
            } else {
                sigma
            };
            let (value, sigma) = drive(inner, env, monitor, sigma, options, fuel)?;
            let sigma = if monitor.accepts_event(ann, HookPhase::Post) {
                match monitor.try_post(ann, inner, &Scope::pure(env), &value, sigma) {
                    Outcome::Continue(s) => s,
                    Outcome::Abort {
                        monitor, reason, ..
                    } => return Err(EvalError::MonitorAbort { monitor, reason }),
                }
            } else {
                sigma
            };
            Ok((value, sigma))
        }
        Expr::Let(x, v, b) => {
            let (bound, sigma) = drive(v, env, monitor, sigma, options, fuel)?;
            let env = env.extend(x.clone(), bound);
            drive(b, &env, monitor, sigma, options, fuel)
        }
        Expr::Seq(a, b) => {
            let (_, sigma) = drive(a, env, monitor, sigma, options, fuel)?;
            drive(b, env, monitor, sigma, options, fuel)
        }
        Expr::If(c, t, e) => {
            let (cond, sigma) = drive(c, env, monitor, sigma, options, fuel)?;
            match cond {
                Value::Bool(true) => drive(t, env, monitor, sigma, options, fuel),
                Value::Bool(false) => drive(e, env, monitor, sigma, options, fuel),
                other => Err(EvalError::NonBooleanCondition(other.to_string())),
            }
        }
        // Trivial leaves, evaluated in place.
        Expr::Con(c) => Ok((constant(c), sigma)),
        Expr::Lambda(l) => Ok((
            Value::Closure(Rc::new(Closure {
                param: l.param.clone(),
                body: l.body.clone(),
                env: env.clone(),
            })),
            sigma,
        )),
        // A saturated top-level `par_map f xs` forks like the `par` it
        // rewrites to. The machine evaluates the argument before the
        // function (paper order), so hooks in `xs` fire before hooks in
        // `f` — `drive` preserves that here.
        Expr::App(pmf, xs_expr) => {
            let forked = match &**pmf {
                Expr::App(pm, f_expr) if resolves_to_par_map(pm, env, options) => Some(f_expr),
                _ => None,
            };
            match forked {
                Some(f_expr) => {
                    let (xs, sigma) = drive(xs_expr, env, monitor, sigma, options, fuel)?;
                    let (f, sigma) = drive(f_expr, env, monitor, sigma, options, fuel)?;
                    let (par_expr, par_env) = par_map_enter(f, xs)?;
                    drive(&par_expr, &par_env, monitor, sigma, options, fuel)
                }
                None => delegate(expr, env, monitor, sigma, options, fuel),
            }
        }
        // Anything else (letrec, vars, …): hand the subtree to the
        // sequential monitored machine. `par` forms inside it evaluate
        // sequentially.
        _ => delegate(expr, env, monitor, sigma, options, fuel),
    }
}

/// Hands a subtree to the sequential monitored machine with the fuel
/// that remains, and deducts the steps it actually consumed.
fn delegate<M>(
    expr: &Arc<Expr>,
    env: &Env,
    monitor: &M,
    sigma: M::State,
    options: &ParOptions,
    fuel: &mut u64,
) -> Result<(Value, M::State), EvalError>
where
    M: MergeMonitor + Sync,
    M::State: Send,
{
    let mut eval_options = options.eval.clone();
    eval_options.fuel = *fuel;
    let (value, sigma, steps) =
        eval_monitored_stats_with(expr, env, monitor, sigma, &eval_options)?;
    *fuel -= steps;
    Ok((value, sigma))
}

/// Whether `expr` is a variable that denotes the (unapplied) `par_map`
/// primitive in `env` — checked through the environment, so a program
/// that shadows the name keeps its own binding and evaluates sequentially.
fn resolves_to_par_map(expr: &Expr, env: &Env, options: &ParOptions) -> bool {
    let v = match expr {
        Expr::VarAt(_, addr) => Some(env.lookup_addr(addr)),
        Expr::Var(x) => {
            if options.eval.lookup == LookupMode::ByString {
                env.lookup_str(x)
            } else {
                env.lookup(x)
            }
        }
        _ => None,
    };
    matches!(v, Some(Value::Prim(Prim::ParMap, args)) if args.is_empty())
}

/// The fork-join proper: one scope, `min(threads, n)` workers pulling
/// shard indices from an atomic queue.
fn fork_join<M>(
    items: &[Arc<Expr>],
    env: &Env,
    monitor: &M,
    sigma: M::State,
    options: &ParOptions,
    fuel: &mut u64,
) -> Result<(Value, M::State), EvalError>
where
    M: MergeMonitor + Sync,
    M::State: Send,
{
    let n = items.len();
    // Freeze the fork-point environment once; every shard thaws its own
    // copy. A program whose environment holds thunks/locations cannot
    // fork (only the lazy/imperative engines create those, and they don't
    // evaluate `par` at all).
    let frozen_env = freeze_env(env)?;
    // The fork hook runs once on the fork-point state, before any split:
    // monitors that need fork-wide shared bookkeeping (Guarded's global
    // budget ledger) install it here, and every shard's split inherits it.
    let sigma = monitor.fork(sigma);
    // One split per shard, all relative to the same fork-point σ — taken
    // on this thread, in order, so monitors with ordered internals see a
    // deterministic split sequence.
    let seeds: Vec<M::State> = (0..n).map(|_| monitor.split(&sigma)).collect();

    // Each shard runs with everything that remains of the global fuel;
    // the join charges back what the shards *actually* consumed, so the
    // elements jointly cannot outspend the budget (checked below).
    let mut shard_options = options.eval.clone();
    shard_options.fuel = *fuel;

    let workers = options.threads.min(n).max(1);
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<ShardResult<M::State>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    let seeds: Vec<Mutex<Option<M::State>>> =
        seeds.into_iter().map(|s| Mutex::new(Some(s))).collect();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let seed = seeds[i]
                    .lock()
                    .expect("seed mutex")
                    .take()
                    .expect("each shard seed is taken exactly once");
                // Panics are confined *per shard*: a monitor under
                // `FaultPolicy::Fatal` (or a machine bug) fails its own
                // shard as a MonitorAbort at the join, never poisons the
                // scope, and the worker goes on to its next shard.
                let result = catch_unwind(AssertUnwindSafe(|| {
                    let shard_env = thaw_env(&frozen_env);
                    eval_monitored_stats_with(&items[i], &shard_env, monitor, seed, &shard_options)
                        .and_then(|(v, s, steps)| Ok((freeze(&v)?, s, steps)))
                }))
                .unwrap_or_else(|payload| {
                    Err(EvalError::MonitorAbort {
                        monitor: "parallel".to_string(),
                        reason: format!("shard {i} panicked: {}", panic_message(payload.as_ref())),
                    })
                });
                *slots[i].lock().expect("slot mutex") = Some(result);
            });
        }
    });
    // The scope joined every worker. A worker that panicked (a monitor
    // under FaultPolicy::Fatal, or a bug) left its slot empty — and,
    // because each worker owns many shards, possibly later slots too.
    // Collect in element order so the leftmost failure wins, exactly as
    // the sequential machine would have failed there first.
    let mut values = Vec::with_capacity(n);
    let mut acc = sigma;
    for (i, slot) in slots.into_iter().enumerate() {
        let result = slot.into_inner().expect("slot mutex").unwrap_or_else(|| {
            Err(EvalError::MonitorAbort {
                monitor: "parallel".to_string(),
                reason: format!("shard {i} of par(..{n}) panicked before producing a result"),
            })
        });
        let (frozen_value, shard_sigma, steps) = result?;
        // Charge the shard's steps against the shared budget, in element
        // order, so the leftmost over-spending shard exhausts the fuel
        // exactly where the sequential machine would have.
        *fuel = fuel.checked_sub(steps).ok_or(EvalError::FuelExhausted)?;
        values.push(thaw(&frozen_value));
        acc = match monitor.merge_outcome(acc, shard_sigma) {
            Outcome::Continue(s) => s,
            Outcome::Abort {
                state,
                monitor,
                reason,
            } => {
                let _ = state;
                return Err(EvalError::MonitorAbort { monitor, reason });
            }
        };
    }
    Ok((Value::list(values), acc))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::eval_monitored;
    use crate::scope::Scope;
    use crate::spec::{IdentityMonitor, Monitor};
    use monsem_syntax::{parse_expr, Annotation};

    /// Counts pre events — the simplest cumulative MergeMonitor.
    #[derive(Debug, Clone, Copy)]
    struct Count;
    impl Monitor for Count {
        type State = u64;
        fn name(&self) -> &str {
            "count"
        }
        fn initial_state(&self) -> u64 {
            0
        }
        fn pre(&self, _: &Annotation, _: &Expr, _: &Scope<'_>, n: u64) -> u64 {
            n + 1
        }
    }
    impl MergeMonitor for Count {
        fn split(&self, _: &u64) -> u64 {
            0
        }
        fn merge(&self, left: u64, right: u64) -> u64 {
            left + right
        }
    }

    const FIB_PAR: &str = "letrec fib = lambda n. {call}:(if n < 2 then n \
         else fib (n - 1) + fib (n - 2)) in par(fib 10, fib 11, fib 9, fib 8)";

    #[test]
    fn parallel_matches_sequential_answer_and_state() {
        let e = parse_expr(FIB_PAR).unwrap();
        let seq = eval_monitored(&e, &Count).unwrap();
        let par = eval_parallel(&e, &Count).unwrap();
        assert_eq!(par, seq);
    }

    #[test]
    fn identity_monitor_forks_too() {
        let e = parse_expr("par(1 + 1, 2 + 2, 3 + 3)").unwrap();
        let (v, ()) = eval_parallel(&e, &IdentityMonitor).unwrap();
        assert_eq!(
            v,
            Value::list([Value::Int(2), Value::Int(4), Value::Int(6)])
        );
    }

    #[test]
    fn single_and_empty_pars_skip_the_scope() {
        let e = parse_expr("par(41 + 1)").unwrap();
        let (v, _) = eval_parallel(&e, &Count).unwrap();
        assert_eq!(v, Value::list([Value::Int(42)]));
        let e = parse_expr("par()").unwrap();
        let (v, _) = eval_parallel(&e, &Count).unwrap();
        assert_eq!(v, Value::Nil);
    }

    #[test]
    fn par_under_let_and_seq_still_forks() {
        let e = parse_expr("let n = 20 in par(n + 1, n + 2, n + 3)").unwrap();
        let seq = eval_monitored(&e, &Count).unwrap();
        let par = eval_parallel(&e, &Count).unwrap();
        assert_eq!(par, seq);
    }

    #[test]
    fn leftmost_shard_error_wins() {
        let e = parse_expr("par(1 + 1, 1 / 0, undefined_name)").unwrap();
        let err = eval_parallel(&e, &Count).unwrap_err();
        assert_eq!(err, EvalError::DivisionByZero);
    }

    #[test]
    fn one_thread_is_still_correct() {
        let e = parse_expr(FIB_PAR).unwrap();
        let seq = eval_monitored(&e, &Count).unwrap();
        let par = eval_parallel_with(
            &e,
            &Env::empty(),
            &Count,
            0,
            &ParOptions::default().with_threads(1),
        )
        .unwrap();
        assert_eq!(par, seq);
    }

    #[test]
    fn par_map_forks_through_the_prim() {
        let e = parse_expr("par_map (lambda x. x * x) [1, 2, 3, 4, 5]").unwrap();
        let seq = eval_monitored(&e, &Count).unwrap();
        let par = eval_parallel(&e, &Count).unwrap();
        assert_eq!(par, seq);
        assert_eq!(par.0, Value::list([1, 4, 9, 16, 25].map(Value::Int)));
    }
}
