//! Monitor composition (§6).
//!
//! "With the simple constraint that the annotation syntaxes are disjoint,
//! monitors may be composed in such a way that they are guaranteed not to
//! interfere with each other."
//!
//! Two realizations:
//!
//! * [`Compose`] — the typed cascade of Figure 5. `Compose<M1, M2>` has
//!   state `(MS₁, MS₂)`, the product the paper's answer domain
//!   `MS₂ → ((Ans × MS₁) × MS₂)` carries. Because a monitor can read the
//!   state of monitors *before* it in the cascade, `M2`'s hooks receive a
//!   [`Scope`] as usual and may be given `M1`'s state via
//!   [`Compose::observing`] (the paper: "a monitor could monitor the
//!   behavior of the monitors before it in the cascade").
//! * [`MonitorStack`] — a dynamic cascade of boxed monitors, built with
//!   the `&` operator exactly as the paper's §9.2 environment builds
//!   `profile & debug & strict`.
//!
//! Both check the §6 disjointness requirement: an annotation accepted by
//! two layers is a specification error, reported eagerly by
//! [`MonitorStack::check_disjoint`] and (optionally) at runtime.

use crate::fault::{Budget, FaultPolicy, Guarded, Health};
use crate::scope::Scope;
use crate::spec::{DynMonitor, DynState, HookPhase, MergeMonitor, Monitor, Outcome};
use monsem_core::Value;
use monsem_syntax::{Annotation, Expr};
use std::ops::BitAnd;

/// The typed cascade of two monitors (Figure 5): first `M1` is derived
/// over the standard semantics, then `M2` over the result.
///
/// ```
/// use monsem_monitor::{machine::eval_monitored, Compose};
/// use monsem_monitor::spec::IdentityMonitor;
/// use monsem_syntax::parse_expr;
/// let prog = parse_expr("{p}:(1 + 1)")?;
/// let cascade = Compose::new(IdentityMonitor, IdentityMonitor);
/// let (answer, ((), ())) = eval_monitored(&prog, &cascade)?;
/// assert_eq!(answer.to_string(), "2");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Compose<M1, M2> {
    /// The inner monitor (derived first).
    pub first: M1,
    /// The outer monitor (derived over the monitored semantics).
    pub second: M2,
    name: String,
}

impl<M1: Monitor, M2: Monitor> Compose<M1, M2> {
    /// Cascades `second` over `first`.
    pub fn new(first: M1, second: M2) -> Self {
        let name = format!("{} & {}", first.name(), second.name());
        Compose {
            first,
            second,
            name,
        }
    }

    /// Gives the outer monitor a view of the inner monitor's state *at
    /// this moment* — see [`ObservedPre`] for the hook shape.
    ///
    /// This is deliberately a read-only affordance: `M2` may observe
    /// `MS₁` but never write it, which is what keeps cascades
    /// interference-free.
    pub fn observing(self) -> ObservingCompose<M1, M2> {
        ObservingCompose(self)
    }
}

impl<M1: Monitor, M2: Monitor> Monitor for Compose<M1, M2> {
    type State = (M1::State, M2::State);

    fn name(&self) -> &str {
        &self.name
    }

    fn accepts(&self, ann: &Annotation) -> bool {
        self.first.accepts(ann) || self.second.accepts(ann)
    }

    fn accepts_event(&self, ann: &Annotation, phase: HookPhase) -> bool {
        self.first.accepts_event(ann, phase) || self.second.accepts_event(ann, phase)
    }

    fn initial_state(&self) -> Self::State {
        (self.first.initial_state(), self.second.initial_state())
    }

    fn pre(
        &self,
        ann: &Annotation,
        expr: &Expr,
        scope: &Scope<'_>,
        (s1, s2): Self::State,
    ) -> Self::State {
        let s1 = if self.first.accepts_event(ann, HookPhase::Pre) {
            self.first.pre(ann, expr, scope, s1)
        } else {
            s1
        };
        let s2 = if self.second.accepts_event(ann, HookPhase::Pre) {
            self.second.pre(ann, expr, scope, s2)
        } else {
            s2
        };
        (s1, s2)
    }

    fn post(
        &self,
        ann: &Annotation,
        expr: &Expr,
        scope: &Scope<'_>,
        value: &Value,
        (s1, s2): Self::State,
    ) -> Self::State {
        // Post-processing unnests: the outer monitor's updPost wraps the
        // inner one's (Figure 5), so M2 sees the state after M1 ran.
        let s1 = if self.first.accepts_event(ann, HookPhase::Post) {
            self.first.post(ann, expr, scope, value, s1)
        } else {
            s1
        };
        let s2 = if self.second.accepts_event(ann, HookPhase::Post) {
            self.second.post(ann, expr, scope, value, s2)
        } else {
            s2
        };
        (s1, s2)
    }

    fn try_pre(
        &self,
        ann: &Annotation,
        expr: &Expr,
        scope: &Scope<'_>,
        (s1, s2): Self::State,
    ) -> Outcome<Self::State> {
        let s1 = if self.first.accepts_event(ann, HookPhase::Pre) {
            match self.first.try_pre(ann, expr, scope, s1) {
                Outcome::Continue(s) => s,
                Outcome::Abort {
                    state,
                    monitor,
                    reason,
                } => {
                    return Outcome::Abort {
                        state: (state, s2),
                        monitor,
                        reason,
                    }
                }
            }
        } else {
            s1
        };
        let s2 = if self.second.accepts_event(ann, HookPhase::Pre) {
            match self.second.try_pre(ann, expr, scope, s2) {
                Outcome::Continue(s) => s,
                Outcome::Abort {
                    state,
                    monitor,
                    reason,
                } => {
                    return Outcome::Abort {
                        state: (s1, state),
                        monitor,
                        reason,
                    }
                }
            }
        } else {
            s2
        };
        Outcome::Continue((s1, s2))
    }

    fn try_post(
        &self,
        ann: &Annotation,
        expr: &Expr,
        scope: &Scope<'_>,
        value: &Value,
        (s1, s2): Self::State,
    ) -> Outcome<Self::State> {
        let s1 = if self.first.accepts_event(ann, HookPhase::Post) {
            match self.first.try_post(ann, expr, scope, value, s1) {
                Outcome::Continue(s) => s,
                Outcome::Abort {
                    state,
                    monitor,
                    reason,
                } => {
                    return Outcome::Abort {
                        state: (state, s2),
                        monitor,
                        reason,
                    }
                }
            }
        } else {
            s1
        };
        let s2 = if self.second.accepts_event(ann, HookPhase::Post) {
            match self.second.try_post(ann, expr, scope, value, s2) {
                Outcome::Continue(s) => s,
                Outcome::Abort {
                    state,
                    monitor,
                    reason,
                } => {
                    return Outcome::Abort {
                        state: (s1, state),
                        monitor,
                        reason,
                    }
                }
            }
        } else {
            s2
        };
        Outcome::Continue((s1, s2))
    }

    fn render_state(&self, (s1, s2): &Self::State) -> String {
        format!(
            "{}: {}\n{}: {}",
            self.first.name(),
            self.first.render_state(s1),
            self.second.name(),
            self.second.render_state(s2)
        )
    }
}

impl<M1: MergeMonitor, M2: MergeMonitor> MergeMonitor for Compose<M1, M2> {
    fn fork(&self, (s1, s2): Self::State) -> Self::State {
        (self.first.fork(s1), self.second.fork(s2))
    }

    fn split(&self, (s1, s2): &Self::State) -> Self::State {
        (self.first.split(s1), self.second.split(s2))
    }

    fn merge(&self, (l1, l2): Self::State, (r1, r2): Self::State) -> Self::State {
        (self.first.merge(l1, r1), self.second.merge(l2, r2))
    }

    fn merge_outcome(&self, (l1, l2): Self::State, (r1, r2): Self::State) -> Outcome<Self::State> {
        // A veto from either layer wins; the inner layer merges first,
        // mirroring the hook order of the cascade.
        let s1 = match self.first.merge_outcome(l1, r1) {
            Outcome::Continue(s) => s,
            Outcome::Abort {
                state,
                monitor,
                reason,
            } => {
                return Outcome::Abort {
                    state: (state, self.second.merge(l2, r2)),
                    monitor,
                    reason,
                }
            }
        };
        match self.second.merge_outcome(l2, r2) {
            Outcome::Continue(s2) => Outcome::Continue((s1, s2)),
            Outcome::Abort {
                state,
                monitor,
                reason,
            } => Outcome::Abort {
                state: (s1, state),
                monitor,
                reason,
            },
        }
    }
}

/// A monitor whose outer hooks receive the inner monitor's current state —
/// the §6 remark that "a monitor could monitor the behavior of the
/// monitors before it in the cascade" made concrete.
///
/// Implement [`ObservedPre`] for `M2` to receive `MS₁`.
#[derive(Debug, Clone)]
pub struct ObservingCompose<M1, M2>(Compose<M1, M2>);

/// Optional extension implemented by outer monitors that want to observe
/// the inner monitor's state.
pub trait ObservedPre<Inner>: Monitor {
    /// Like [`Monitor::pre`], with the inner monitor state in view.
    fn pre_observing(
        &self,
        ann: &Annotation,
        expr: &Expr,
        scope: &Scope<'_>,
        inner: &Inner,
        state: Self::State,
    ) -> Self::State;
}

impl<M1, M2> Monitor for ObservingCompose<M1, M2>
where
    M1: Monitor,
    M2: ObservedPre<M1::State>,
{
    type State = (M1::State, M2::State);

    fn name(&self) -> &str {
        Monitor::name(&self.0)
    }

    fn accepts(&self, ann: &Annotation) -> bool {
        Monitor::accepts(&self.0, ann)
    }

    fn accepts_event(&self, ann: &Annotation, phase: HookPhase) -> bool {
        // The outer monitor's observing hook fires at `pre` whenever it
        // accepts at all, so only narrow the inner layer's phases.
        self.0.first.accepts_event(ann, phase) || self.0.second.accepts(ann)
    }

    fn initial_state(&self) -> Self::State {
        self.0.initial_state()
    }

    fn pre(
        &self,
        ann: &Annotation,
        expr: &Expr,
        scope: &Scope<'_>,
        (s1, s2): Self::State,
    ) -> Self::State {
        let s1 = if self.0.first.accepts_event(ann, HookPhase::Pre) {
            self.0.first.pre(ann, expr, scope, s1)
        } else {
            s1
        };
        let s2 = if self.0.second.accepts(ann) {
            self.0.second.pre_observing(ann, expr, scope, &s1, s2)
        } else {
            s2
        };
        (s1, s2)
    }

    fn post(
        &self,
        ann: &Annotation,
        expr: &Expr,
        scope: &Scope<'_>,
        value: &Value,
        state: Self::State,
    ) -> Self::State {
        self.0.post(ann, expr, scope, value, state)
    }

    fn render_state(&self, state: &Self::State) -> String {
        self.0.render_state(state)
    }
}

/// A dynamic cascade of monitors, in cascade order (innermost first).
///
/// Built with the `&` operator on boxed monitors:
///
/// ```
/// use monsem_monitor::compose::{boxed, MonitorStack};
/// use monsem_monitor::spec::IdentityMonitor;
///
/// let tools: MonitorStack = boxed(IdentityMonitor) & boxed(IdentityMonitor);
/// assert_eq!(tools.len(), 2);
/// ```
pub struct MonitorStack {
    monitors: Vec<Box<dyn DynMonitor>>,
}

/// Boxes a monitor for use in a [`MonitorStack`].
pub fn boxed<M: Monitor + 'static>(monitor: M) -> Box<dyn DynMonitor> {
    Box::new(monitor)
}

/// Adapter exposing a [`MergeMonitor`]'s split/merge through the
/// object-safe [`DynMonitor`] interface.
///
/// Rust has no trait specialization, so the blanket `impl DynMonitor for
/// M: Monitor` cannot detect that `M` also implements [`MergeMonitor`] —
/// its `split_dyn`/`merge_outcome_dyn` always answer `None`. Wrapping the
/// monitor in `MergeLayer` (via [`boxed_mergeable`] or
/// [`MonitorStack::push_mergeable`]) routes every hook through unchanged
/// *and* answers the merge queries, which is what lets a whole
/// [`MonitorStack`] implement [`MergeMonitor`].
#[derive(Debug, Clone)]
pub struct MergeLayer<M>(pub M);

impl<M: MergeMonitor> DynMonitor for MergeLayer<M> {
    fn name(&self) -> &str {
        self.0.name()
    }

    fn accepts(&self, ann: &Annotation) -> bool {
        self.0.accepts(ann)
    }

    fn accepts_event_dyn(&self, ann: &Annotation, phase: HookPhase) -> bool {
        self.0.accepts_event(ann, phase)
    }

    fn initial_state_dyn(&self) -> DynState {
        DynState::new(self.0.initial_state())
    }

    fn pre_dyn(
        &self,
        ann: &Annotation,
        expr: &Expr,
        scope: &Scope<'_>,
        state: DynState,
    ) -> DynState {
        DynState::new(self.0.pre(ann, expr, scope, Self::unwrap(state)))
    }

    fn post_dyn(
        &self,
        ann: &Annotation,
        expr: &Expr,
        scope: &Scope<'_>,
        value: &Value,
        state: DynState,
    ) -> DynState {
        DynState::new(self.0.post(ann, expr, scope, value, Self::unwrap(state)))
    }

    fn try_pre_dyn(
        &self,
        ann: &Annotation,
        expr: &Expr,
        scope: &Scope<'_>,
        state: DynState,
    ) -> Outcome<DynState> {
        self.0
            .try_pre(ann, expr, scope, Self::unwrap(state))
            .map(DynState::new)
    }

    fn try_post_dyn(
        &self,
        ann: &Annotation,
        expr: &Expr,
        scope: &Scope<'_>,
        value: &Value,
        state: DynState,
    ) -> Outcome<DynState> {
        self.0
            .try_post(ann, expr, scope, value, Self::unwrap(state))
            .map(DynState::new)
    }

    fn render_state_dyn(&self, state: &DynState) -> String {
        match state.downcast::<M::State>() {
            Some(s) => self.0.render_state(&s),
            None => "<foreign state>".to_string(),
        }
    }

    fn health_dyn(&self, state: &DynState) -> Health {
        match state.downcast::<M::State>() {
            Some(s) => self.0.health(&s),
            None => Health::Ok,
        }
    }

    fn fork_dyn(&self, state: DynState) -> Option<DynState> {
        Some(DynState::new(self.0.fork(Self::unwrap(state))))
    }

    fn split_dyn(&self, state: &DynState) -> Option<DynState> {
        let s = state.downcast::<M::State>()?;
        Some(DynState::new(self.0.split(&s)))
    }

    fn merge_outcome_dyn(&self, left: DynState, right: DynState) -> Option<Outcome<DynState>> {
        Some(
            self.0
                .merge_outcome(Self::unwrap(left), Self::unwrap(right))
                .map(DynState::new),
        )
    }
}

impl<M: MergeMonitor> MergeLayer<M> {
    fn unwrap(state: DynState) -> M::State {
        state.downcast().expect(
            "monitor state type mismatch: a DynState must round-trip through its own monitor",
        )
    }
}

/// Boxes a [`MergeMonitor`] so its split/merge survive type erasure — see
/// [`MergeLayer`].
pub fn boxed_mergeable<M: MergeMonitor + 'static>(monitor: M) -> Box<dyn DynMonitor> {
    Box::new(MergeLayer(monitor))
}

/// Boxes a monitor wrapped in a fault [`Guarded`] layer: its panics are
/// confined (or not) per `policy` and its hook usage is bounded by
/// `budget`. The guarded layer keeps the monitor's name, so session
/// reports and abort reasons are unchanged.
pub fn guarded<M: Monitor + 'static>(
    monitor: M,
    policy: FaultPolicy,
    budget: Budget,
) -> Box<dyn DynMonitor> {
    Box::new(Guarded::new(monitor).policy(policy).budget(budget))
}

impl MonitorStack {
    /// A stack with a single monitor.
    pub fn single(monitor: Box<dyn DynMonitor>) -> Self {
        MonitorStack {
            monitors: vec![monitor],
        }
    }

    /// An empty stack (the identity of `&`).
    pub fn empty() -> Self {
        MonitorStack {
            monitors: Vec::new(),
        }
    }

    /// Appends a monitor as the new outermost layer.
    pub fn push(mut self, monitor: Box<dyn DynMonitor>) -> Self {
        self.monitors.push(monitor);
        self
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.monitors.len()
    }

    /// Whether the stack has no layers.
    pub fn is_empty(&self) -> bool {
        self.monitors.is_empty()
    }

    /// Appends a [`MergeMonitor`] as the new outermost layer, preserving
    /// its split/merge through type erasure — see [`MergeLayer`].
    pub fn push_mergeable<M: MergeMonitor + 'static>(self, monitor: M) -> Self {
        self.push(boxed_mergeable(monitor))
    }

    /// Whether every layer supports [`MergeMonitor`] split/merge (i.e. was
    /// pushed via [`MonitorStack::push_mergeable`] / [`boxed_mergeable`]).
    pub fn is_mergeable(&self) -> bool {
        let probe = self.initial_state();
        self.monitors
            .iter()
            .zip(probe.iter())
            .all(|(m, s)| m.split_dyn(s).is_some())
    }

    /// Appends a fault-guarded monitor as the new outermost layer — see
    /// [`guarded`].
    pub fn push_guarded<M: Monitor + 'static>(
        self,
        monitor: M,
        policy: FaultPolicy,
        budget: Budget,
    ) -> Self {
        self.push(guarded(monitor, policy, budget))
    }

    /// The layers, innermost first.
    pub fn layers(&self) -> &[Box<dyn DynMonitor>] {
        &self.monitors
    }

    /// Per-layer health for a final stack state, innermost first. Plain
    /// (unguarded) layers are always [`Health::Ok`].
    pub fn healths(&self, states: &[DynState]) -> Vec<(String, Health)> {
        self.monitors
            .iter()
            .zip(states.iter())
            .map(|(m, s)| (m.name().to_string(), m.health_dyn(s)))
            .collect()
    }

    /// Checks the §6 disjointness requirement against a concrete program:
    /// every annotation must be accepted by **at most one** layer.
    ///
    /// # Errors
    ///
    /// The offending annotation and the two claiming layers.
    pub fn check_disjoint(&self, program: &Expr) -> Result<(), DisjointnessError> {
        for ann in program.annotations() {
            let claimants: Vec<&str> = self
                .monitors
                .iter()
                .filter(|m| m.accepts(ann))
                .map(|m| m.name())
                .collect();
            if claimants.len() > 1 {
                return Err(DisjointnessError {
                    annotation: ann.clone(),
                    first: claimants[0].to_string(),
                    second: claimants[1].to_string(),
                });
            }
        }
        Ok(())
    }
}

/// Violation of the §6 disjointness requirement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DisjointnessError {
    /// The annotation claimed twice.
    pub annotation: Annotation,
    /// First claiming monitor.
    pub first: String,
    /// Second claiming monitor.
    pub second: String,
}

impl std::fmt::Display for DisjointnessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "annotation {} is claimed by both `{}` and `{}` — cascaded monitors must have \
             disjoint annotation syntaxes (§6)",
            self.annotation, self.first, self.second
        )
    }
}

impl std::error::Error for DisjointnessError {}

impl Monitor for MonitorStack {
    type State = Vec<DynState>;

    fn name(&self) -> &str {
        "monitor-stack"
    }

    fn accepts(&self, ann: &Annotation) -> bool {
        self.monitors.iter().any(|m| m.accepts(ann))
    }

    fn accepts_event(&self, ann: &Annotation, phase: HookPhase) -> bool {
        self.monitors
            .iter()
            .any(|m| m.accepts_event_dyn(ann, phase))
    }

    fn initial_state(&self) -> Self::State {
        self.monitors
            .iter()
            .map(|m| m.initial_state_dyn())
            .collect()
    }

    fn pre(
        &self,
        ann: &Annotation,
        expr: &Expr,
        scope: &Scope<'_>,
        mut states: Self::State,
    ) -> Self::State {
        for (m, s) in self.monitors.iter().zip(states.iter_mut()) {
            if m.accepts_event_dyn(ann, HookPhase::Pre) {
                *s = m.pre_dyn(ann, expr, scope, s.clone());
            }
        }
        states
    }

    fn post(
        &self,
        ann: &Annotation,
        expr: &Expr,
        scope: &Scope<'_>,
        value: &Value,
        mut states: Self::State,
    ) -> Self::State {
        for (m, s) in self.monitors.iter().zip(states.iter_mut()) {
            if m.accepts_event_dyn(ann, HookPhase::Post) {
                *s = m.post_dyn(ann, expr, scope, value, s.clone());
            }
        }
        states
    }

    fn try_pre(
        &self,
        ann: &Annotation,
        expr: &Expr,
        scope: &Scope<'_>,
        mut states: Self::State,
    ) -> Outcome<Self::State> {
        for (i, m) in self.monitors.iter().enumerate() {
            if m.accepts_event_dyn(ann, HookPhase::Pre) {
                match m.try_pre_dyn(ann, expr, scope, states[i].clone()) {
                    Outcome::Continue(next) => states[i] = next,
                    Outcome::Abort {
                        state,
                        monitor,
                        reason,
                    } => {
                        // Only the vetoing layer's cell moves; neighbours
                        // keep the states they had when the veto fired.
                        states[i] = state;
                        return Outcome::Abort {
                            state: states,
                            monitor,
                            reason,
                        };
                    }
                }
            }
        }
        Outcome::Continue(states)
    }

    fn try_post(
        &self,
        ann: &Annotation,
        expr: &Expr,
        scope: &Scope<'_>,
        value: &Value,
        mut states: Self::State,
    ) -> Outcome<Self::State> {
        for (i, m) in self.monitors.iter().enumerate() {
            if m.accepts_event_dyn(ann, HookPhase::Post) {
                match m.try_post_dyn(ann, expr, scope, value, states[i].clone()) {
                    Outcome::Continue(next) => states[i] = next,
                    Outcome::Abort {
                        state,
                        monitor,
                        reason,
                    } => {
                        states[i] = state;
                        return Outcome::Abort {
                            state: states,
                            monitor,
                            reason,
                        };
                    }
                }
            }
        }
        Outcome::Continue(states)
    }

    fn render_state(&self, states: &Self::State) -> String {
        self.monitors
            .iter()
            .zip(states.iter())
            .map(|(m, s)| format!("{}: {}", m.name(), m.render_state_dyn(s)))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

impl MergeMonitor for MonitorStack {
    /// Layers pushed without merge support keep their state unchanged —
    /// `fork` is a bookkeeping hook, not a split, so there is nothing to
    /// panic about before [`MergeMonitor::split`] runs.
    fn fork(&self, states: Self::State) -> Self::State {
        self.monitors
            .iter()
            .zip(states)
            .map(|(m, s)| m.fork_dyn(s.clone()).unwrap_or(s))
            .collect()
    }

    /// # Panics
    ///
    /// If a layer was not registered as mergeable (pushed with
    /// [`boxed`]/[`guarded`] instead of [`boxed_mergeable`] /
    /// [`MonitorStack::push_mergeable`]) — check
    /// [`MonitorStack::is_mergeable`] first.
    fn split(&self, states: &Self::State) -> Self::State {
        self.monitors
            .iter()
            .zip(states.iter())
            .map(|(m, s)| {
                m.split_dyn(s).unwrap_or_else(|| {
                    panic!(
                        "monitor `{}` does not support split/merge; push it with \
                         `push_mergeable`/`boxed_mergeable` to use the stack under fork-join",
                        m.name()
                    )
                })
            })
            .collect()
    }

    fn merge(&self, left: Self::State, right: Self::State) -> Self::State {
        match self.merge_outcome(left, right) {
            Outcome::Continue(s) | Outcome::Abort { state: s, .. } => s,
        }
    }

    /// # Panics
    ///
    /// As for [`MergeMonitor::split`].
    fn merge_outcome(&self, mut left: Self::State, right: Self::State) -> Outcome<Self::State> {
        for (i, (m, r)) in self.monitors.iter().zip(right).enumerate() {
            let l = left[i].clone();
            let merged = m.merge_outcome_dyn(l, r).unwrap_or_else(|| {
                panic!(
                    "monitor `{}` does not support split/merge; push it with \
                     `push_mergeable`/`boxed_mergeable` to use the stack under fork-join",
                    m.name()
                )
            });
            match merged {
                Outcome::Continue(s) => left[i] = s,
                Outcome::Abort {
                    state,
                    monitor,
                    reason,
                } => {
                    left[i] = state;
                    return Outcome::Abort {
                        state: left,
                        monitor,
                        reason,
                    };
                }
            }
        }
        Outcome::Continue(left)
    }
}

impl BitAnd<Box<dyn DynMonitor>> for Box<dyn DynMonitor> {
    type Output = MonitorStack;

    fn bitand(self, rhs: Box<dyn DynMonitor>) -> MonitorStack {
        MonitorStack::single(self).push(rhs)
    }
}

impl BitAnd<Box<dyn DynMonitor>> for MonitorStack {
    type Output = MonitorStack;

    fn bitand(self, rhs: Box<dyn DynMonitor>) -> MonitorStack {
        self.push(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::eval_monitored;
    use monsem_syntax::{parse_expr, Namespace};

    /// Counts annotations in one namespace.
    #[derive(Debug, Clone)]
    struct NsCounter {
        ns: Namespace,
        label: &'static str,
    }
    impl NsCounter {
        fn new(ns: &str, label: &'static str) -> Self {
            NsCounter {
                ns: Namespace::new(ns),
                label,
            }
        }
    }
    impl Monitor for NsCounter {
        type State = u32;
        fn name(&self) -> &str {
            self.label
        }
        fn accepts(&self, ann: &Annotation) -> bool {
            ann.namespace == self.ns
        }
        fn initial_state(&self) -> u32 {
            0
        }
        fn pre(&self, _: &Annotation, _: &Expr, _: &Scope<'_>, n: u32) -> u32 {
            n + 1
        }
    }

    const DOUBLY: &str = "letrec f = lambda x. {a/one}:({b/two}:(x + 1)) in f ({a/one}:41)";

    #[test]
    fn typed_cascade_separates_states() {
        let e = parse_expr(DOUBLY).unwrap();
        let m = Compose::new(NsCounter::new("a", "A"), NsCounter::new("b", "B"));
        let (v, (a, b)) = eval_monitored(&e, &m).unwrap();
        assert_eq!(v, Value::Int(42));
        assert_eq!((a, b), (2, 1));
    }

    #[test]
    fn dynamic_stack_matches_the_typed_cascade() {
        let e = parse_expr(DOUBLY).unwrap();
        let stack = boxed(NsCounter::new("a", "A")) & boxed(NsCounter::new("b", "B"));
        stack.check_disjoint(&e).unwrap();
        let (v, states) = eval_monitored(&e, &stack).unwrap();
        assert_eq!(v, Value::Int(42));
        assert_eq!(states[0].downcast::<u32>(), Some(2));
        assert_eq!(states[1].downcast::<u32>(), Some(1));
    }

    #[test]
    fn disjointness_violations_are_reported() {
        let e = parse_expr("{a/x}:1").unwrap();
        let stack = boxed(NsCounter::new("a", "first")) & boxed(NsCounter::new("a", "second"));
        let err = stack.check_disjoint(&e).unwrap_err();
        assert_eq!(err.first, "first");
        assert_eq!(err.second, "second");
        assert!(err.to_string().contains("disjoint"));
    }

    #[test]
    fn composition_does_not_change_the_answer() {
        let e = parse_expr(DOUBLY).unwrap();
        let plain = monsem_core::machine::eval(&e).unwrap();
        let m = Compose::new(NsCounter::new("a", "A"), NsCounter::new("b", "B"));
        let (v, _) = eval_monitored(&e, &m).unwrap();
        assert_eq!(v, plain);
    }

    #[test]
    fn observing_compose_lets_the_outer_monitor_read_inner_state() {
        /// Records the inner counter's value at each of its own events.
        #[derive(Debug, Clone)]
        struct Snapshots;
        impl Monitor for Snapshots {
            type State = Vec<u32>;
            fn name(&self) -> &str {
                "snapshots"
            }
            fn accepts(&self, ann: &Annotation) -> bool {
                ann.namespace == Namespace::new("b")
            }
            fn initial_state(&self) -> Vec<u32> {
                Vec::new()
            }
        }
        impl ObservedPre<u32> for Snapshots {
            fn pre_observing(
                &self,
                _: &Annotation,
                _: &Expr,
                _: &Scope<'_>,
                inner: &u32,
                mut s: Vec<u32>,
            ) -> Vec<u32> {
                s.push(*inner);
                s
            }
        }
        let e = parse_expr(DOUBLY).unwrap();
        let m = Compose::new(NsCounter::new("a", "A"), Snapshots).observing();
        let (_, (a, snaps)) = eval_monitored(&e, &m).unwrap();
        assert_eq!(a, 2);
        // {b/two} fires once, inside the second {a/one} — it sees 2.
        assert_eq!(snaps, vec![2]);
    }

    /// Accepts namespace `ns` and panics at its `fail_at`-th event.
    #[derive(Debug, Clone)]
    struct NsBomb {
        ns: Namespace,
        fail_at: u32,
    }
    impl Monitor for NsBomb {
        type State = u32;
        fn name(&self) -> &str {
            "bomb"
        }
        fn accepts(&self, ann: &Annotation) -> bool {
            ann.namespace == self.ns
        }
        fn initial_state(&self) -> u32 {
            0
        }
        fn pre(&self, _: &Annotation, _: &Expr, _: &Scope<'_>, n: u32) -> u32 {
            if n == self.fail_at {
                panic!("bomb went off");
            }
            n + 1
        }
    }

    #[test]
    fn quarantined_layer_does_not_disturb_its_neighbours() {
        let e = parse_expr(DOUBLY).unwrap();
        // Healthy run: both counters see their events.
        let healthy = MonitorStack::empty()
            .push(boxed(NsCounter::new("a", "A")))
            .push(boxed(NsCounter::new("b", "B")));
        let (v_healthy, healthy_states) = eval_monitored(&e, &healthy).unwrap();

        // Same stack with a bomb wedged between the two counters; it
        // accepts namespace `a` annotations too — skip disjointness on
        // purpose, we want it to receive events.
        let stack = MonitorStack::empty()
            .push(boxed(NsCounter::new("a", "A")))
            .push_guarded(
                NsBomb {
                    ns: Namespace::new("a"),
                    fail_at: 0,
                },
                FaultPolicy::Quarantine,
                Budget::unlimited(),
            )
            .push(boxed(NsCounter::new("b", "B")));
        let (v, states) = eval_monitored(&e, &stack).unwrap();
        assert_eq!(v, v_healthy, "answer preserved");
        assert_eq!(
            states[0].downcast::<u32>(),
            healthy_states[0].downcast::<u32>(),
            "inner neighbour undisturbed"
        );
        assert_eq!(
            states[2].downcast::<u32>(),
            healthy_states[1].downcast::<u32>(),
            "outer neighbour undisturbed"
        );
        let healths = stack.healths(&states);
        assert_eq!(healths[0].1, Health::Ok);
        assert!(matches!(&healths[1].1, Health::Quarantined(msg) if msg == "bomb went off"));
        assert_eq!(healths[2].1, Health::Ok);
    }

    #[test]
    fn abort_inside_a_stack_names_the_layer() {
        /// Aborts on its first event.
        #[derive(Debug, Clone)]
        struct Veto(Namespace);
        impl Monitor for Veto {
            type State = ();
            fn name(&self) -> &str {
                "veto"
            }
            fn accepts(&self, ann: &Annotation) -> bool {
                ann.namespace == self.0
            }
            fn initial_state(&self) {}
            fn try_pre(&self, _: &Annotation, _: &Expr, _: &Scope<'_>, _: ()) -> Outcome<()> {
                Outcome::abort((), "veto", "no b events allowed")
            }
        }
        let e = parse_expr(DOUBLY).unwrap();
        let stack = MonitorStack::empty()
            .push(boxed(NsCounter::new("a", "A")))
            .push(boxed(Veto(Namespace::new("b"))));
        let err = eval_monitored(&e, &stack).unwrap_err();
        assert_eq!(
            err,
            monsem_core::EvalError::MonitorAbort {
                monitor: "veto".into(),
                reason: "no b events allowed".into(),
            }
        );
    }

    #[test]
    fn fatal_panic_in_a_stack_layer_still_propagates() {
        let e = parse_expr(DOUBLY).unwrap();
        let stack = MonitorStack::empty().push_guarded(
            NsBomb {
                ns: Namespace::new("a"),
                fail_at: 0,
            },
            FaultPolicy::Fatal,
            Budget::unlimited(),
        );
        let caught =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| eval_monitored(&e, &stack)));
        assert!(caught.is_err(), "Fatal policy re-raises the panic");
    }

    #[test]
    fn typed_cascade_propagates_abort_from_either_side() {
        #[derive(Debug, Clone)]
        struct VetoNs(Namespace);
        impl Monitor for VetoNs {
            type State = ();
            fn name(&self) -> &str {
                "veto-ns"
            }
            fn accepts(&self, ann: &Annotation) -> bool {
                ann.namespace == self.0
            }
            fn initial_state(&self) {}
            fn try_pre(&self, ann: &Annotation, _: &Expr, _: &Scope<'_>, _: ()) -> Outcome<()> {
                Outcome::abort((), "veto-ns", format!("vetoed `{}`", ann.name()))
            }
        }
        let e = parse_expr(DOUBLY).unwrap();
        let inner_veto = Compose::new(VetoNs(Namespace::new("b")), NsCounter::new("a", "A"));
        let err = eval_monitored(&e, &inner_veto).unwrap_err();
        assert!(matches!(
            &err,
            monsem_core::EvalError::MonitorAbort { monitor, .. } if monitor == "veto-ns"
        ));
        let outer_veto = Compose::new(NsCounter::new("a", "A"), VetoNs(Namespace::new("b")));
        let err = eval_monitored(&e, &outer_veto).unwrap_err();
        assert!(matches!(
            &err,
            monsem_core::EvalError::MonitorAbort { monitor, .. } if monitor == "veto-ns"
        ));
    }

    #[test]
    fn render_state_names_every_layer() {
        let stack = boxed(NsCounter::new("a", "A")) & boxed(NsCounter::new("b", "B"));
        let s = stack.initial_state();
        let rendered = stack.render_state(&s);
        assert!(rendered.contains("A: 0"));
        assert!(rendered.contains("B: 0"));
    }
}
