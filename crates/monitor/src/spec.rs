//! Monitor specifications (Definition 5.1).
//!
//! A monitor is a triple `Mon = (MSyn, MAlg, MFun)`. The [`Monitor`] trait
//! packages the three components: the annotation syntax the monitor reacts
//! to, the monitor-state algebra, and the pair of monitoring functions.
//! Monitoring functions are *pure state transformers* `MS → MS` — the
//! paper's §7 proof leans on exactly this (they are Reynolds-"trivial"
//! functions, so composing them with a continuation cannot change the
//! final answer).

use crate::scope::Scope;
use monsem_core::Value;
use monsem_syntax::{Annotation, Expr};
use std::any::Any;
use std::fmt;
use std::rc::Rc;

/// A monitor specification.
///
/// The default implementations make the common cases tiny: a monitor that
/// only gathers information *before* evaluation implements just
/// [`Monitor::pre`] (like the Figure 6 profiler); one that reacts to
/// results implements just [`Monitor::post`] (like the Figure 8 demon and
/// Figure 9 collecting monitor).
pub trait Monitor {
    /// **MAlg** — the monitor-state domain `MS`.
    type State: Clone + fmt::Debug + 'static;

    /// A short name (used by composition diagnostics and session reports).
    fn name(&self) -> &str;

    /// **MSyn** — whether the annotation belongs to this monitor's syntax.
    ///
    /// The default accepts everything; cascaded monitors (§6) must narrow
    /// this so that annotation syntaxes stay disjoint (use
    /// [`Annotation::namespace`] or the shape of
    /// [`Annotation::kind`](monsem_syntax::AnnKind)).
    fn accepts(&self, ann: &Annotation) -> bool {
        let _ = ann;
        true
    }

    /// The initial (presumably empty) monitor state `σ`.
    fn initial_state(&self) -> Self::State;

    /// **MFun** — `M_pre ⟦μ⟧ ⟦s⟧ a* : MS → MS`, invoked just *before* the
    /// annotated expression is evaluated.
    fn pre(
        &self,
        ann: &Annotation,
        expr: &Expr,
        scope: &Scope<'_>,
        state: Self::State,
    ) -> Self::State {
        let _ = (ann, expr, scope);
        state
    }

    /// **MFun** — `M_post ⟦μ⟧ ⟦s⟧ a* ι* : MS → MS`, invoked just *after*,
    /// with the intermediate result `ι*` that flows into the continuation.
    fn post(
        &self,
        ann: &Annotation,
        expr: &Expr,
        scope: &Scope<'_>,
        value: &Value,
        state: Self::State,
    ) -> Self::State {
        let _ = (ann, expr, scope, value);
        state
    }

    /// Renders a final monitor state for human consumption (session
    /// reports, examples). Defaults to the `Debug` form.
    fn render_state(&self, state: &Self::State) -> String {
        format!("{state:?}")
    }
}

/// The identity monitor: empty state, identity monitoring functions.
///
/// Instantiating the monitoring semantics with this monitor yields the
/// standard semantics back — the degenerate case of Theorem 7.7, used by
/// tests and as the unit of composition.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IdentityMonitor;

impl Monitor for IdentityMonitor {
    type State = ();

    fn name(&self) -> &str {
        "identity"
    }

    fn initial_state(&self) {}
}

/// An object-safe view of a monitor, with the state erased to
/// `Rc<dyn Any>`. This is what [`MonitorStack`](crate::MonitorStack) and
/// the [`session`](crate::session) environment traffic in.
pub trait DynMonitor {
    /// See [`Monitor::name`].
    fn name(&self) -> &str;
    /// See [`Monitor::accepts`].
    fn accepts(&self, ann: &Annotation) -> bool;
    /// See [`Monitor::initial_state`].
    fn initial_state_dyn(&self) -> DynState;
    /// See [`Monitor::pre`].
    fn pre_dyn(
        &self,
        ann: &Annotation,
        expr: &Expr,
        scope: &Scope<'_>,
        state: DynState,
    ) -> DynState;
    /// See [`Monitor::post`].
    fn post_dyn(
        &self,
        ann: &Annotation,
        expr: &Expr,
        scope: &Scope<'_>,
        value: &Value,
        state: DynState,
    ) -> DynState;
    /// See [`Monitor::render_state`].
    fn render_state_dyn(&self, state: &DynState) -> String;
}

/// A type-erased monitor state.
#[derive(Clone)]
pub struct DynState(Rc<dyn Any>);

impl DynState {
    /// Wraps a concrete state.
    pub fn new<S: 'static>(state: S) -> Self {
        DynState(Rc::new(state))
    }

    /// Recovers the concrete state.
    pub fn downcast<S: 'static + Clone>(&self) -> Option<S> {
        self.0.downcast_ref::<S>().cloned()
    }
}

impl fmt::Debug for DynState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("DynState(..)")
    }
}

impl<M: Monitor> DynMonitor for M {
    fn name(&self) -> &str {
        Monitor::name(self)
    }

    fn accepts(&self, ann: &Annotation) -> bool {
        Monitor::accepts(self, ann)
    }

    fn initial_state_dyn(&self) -> DynState {
        DynState::new(self.initial_state())
    }

    fn pre_dyn(
        &self,
        ann: &Annotation,
        expr: &Expr,
        scope: &Scope<'_>,
        state: DynState,
    ) -> DynState {
        let s: M::State = state.downcast().expect(
            "monitor state type mismatch: a DynState must round-trip through its own monitor",
        );
        DynState::new(self.pre(ann, expr, scope, s))
    }

    fn post_dyn(
        &self,
        ann: &Annotation,
        expr: &Expr,
        scope: &Scope<'_>,
        value: &Value,
        state: DynState,
    ) -> DynState {
        let s: M::State = state.downcast().expect(
            "monitor state type mismatch: a DynState must round-trip through its own monitor",
        );
        DynState::new(self.post(ann, expr, scope, value, s))
    }

    fn render_state_dyn(&self, state: &DynState) -> String {
        match state.downcast::<M::State>() {
            Some(s) => self.render_state(&s),
            None => "<foreign state>".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monsem_core::Env;

    #[derive(Debug, Clone, Copy, Default)]
    struct Count;
    impl Monitor for Count {
        type State = u32;
        fn name(&self) -> &str {
            "count"
        }
        fn initial_state(&self) -> u32 {
            0
        }
        fn pre(&self, _: &Annotation, _: &Expr, _: &Scope<'_>, n: u32) -> u32 {
            n + 1
        }
    }

    #[test]
    fn identity_monitor_does_nothing() {
        let m = IdentityMonitor;
        let env = Env::empty();
        let scope = Scope::pure(&env);
        let ann = Annotation::label("A");
        let e = Expr::int(1);
        m.initial_state();
        m.pre(&ann, &e, &scope, ());
        m.post(&ann, &e, &scope, &Value::Int(1), ());
    }

    #[test]
    fn dyn_monitor_round_trips_state() {
        let m = Count;
        let env = Env::empty();
        let scope = Scope::pure(&env);
        let ann = Annotation::label("A");
        let e = Expr::int(1);
        let s0 = DynMonitor::initial_state_dyn(&m);
        let s1 = m.pre_dyn(&ann, &e, &scope, s0);
        let s2 = m.pre_dyn(&ann, &e, &scope, s1);
        assert_eq!(s2.downcast::<u32>(), Some(2));
        assert_eq!(m.render_state_dyn(&s2), "2");
    }

    #[test]
    fn default_hooks_are_identity() {
        #[derive(Debug)]
        struct Passive;
        impl Monitor for Passive {
            type State = String;
            fn name(&self) -> &str {
                "passive"
            }
            fn initial_state(&self) -> String {
                "s".into()
            }
        }
        let env = Env::empty();
        let scope = Scope::pure(&env);
        let ann = Annotation::label("A");
        let e = Expr::int(1);
        let s = Passive.pre(&ann, &e, &scope, "x".into());
        assert_eq!(s, "x");
        let s = Passive.post(&ann, &e, &scope, &Value::Int(1), s);
        assert_eq!(s, "x");
    }
}
