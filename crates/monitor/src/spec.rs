//! Monitor specifications (Definition 5.1).
//!
//! A monitor is a triple `Mon = (MSyn, MAlg, MFun)`. The [`Monitor`] trait
//! packages the three components: the annotation syntax the monitor reacts
//! to, the monitor-state algebra, and the pair of monitoring functions.
//! Monitoring functions are *pure state transformers* `MS → MS` — the
//! paper's §7 proof leans on exactly this (they are Reynolds-"trivial"
//! functions, so composing them with a continuation cannot change the
//! final answer).

use crate::scope::Scope;
use monsem_core::Value;
use monsem_syntax::{Annotation, Expr};
use std::any::Any;
use std::fmt;
use std::rc::Rc;

/// The verdict of a fallible monitoring function
/// ([`Monitor::try_pre`]/[`Monitor::try_post`]).
///
/// The paper's monitoring functions are total `MS → MS` transformers; a
/// *checking* monitor (the §8 demon, a contract) additionally wants to
/// veto the computation. `Outcome` is that judgement: `Continue` is the
/// ordinary case, `Abort` stops evaluation with a reason, surfaced by the
/// monitored machines as
/// [`EvalError::MonitorAbort`](monsem_core::EvalError::MonitorAbort).
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome<S> {
    /// Keep evaluating with the updated monitor state.
    Continue(S),
    /// Veto the computation.
    Abort {
        /// The monitor state at the moment of the veto (reported, since
        /// evaluation produces no answer).
        state: S,
        /// Which monitor vetoed (composition fills in the layer's name).
        monitor: String,
        /// Why.
        reason: String,
    },
}

/// Which monitoring function a hook invocation belongs to.
///
/// The monitored machines fire two hooks per accepted annotation — `updPre`
/// just before the annotated expression is evaluated and `updPost` just
/// after. [`Monitor::accepts_event`] refines **MSyn** with this phase so a
/// compiled monitor (e.g. a `monsem-tspec` automaton whose alphabet only
/// mentions `post` events) can tell the machine that one of the two hooks
/// is the identity and may be skipped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HookPhase {
    /// The `updPre` hook, before the annotated expression runs.
    Pre,
    /// The `updPost` hook, after the annotated expression produced `ι*`.
    Post,
}

impl<S> Outcome<S> {
    /// Shorthand for an abort verdict.
    pub fn abort(state: S, monitor: impl Into<String>, reason: impl Into<String>) -> Self {
        Outcome::Abort {
            state,
            monitor: monitor.into(),
            reason: reason.into(),
        }
    }

    /// The carried state, whatever the verdict.
    pub fn state(&self) -> &S {
        match self {
            Outcome::Continue(s) | Outcome::Abort { state: s, .. } => s,
        }
    }

    /// Applies `f` to the carried state, preserving the verdict.
    pub fn map<T>(self, f: impl FnOnce(S) -> T) -> Outcome<T> {
        match self {
            Outcome::Continue(s) => Outcome::Continue(f(s)),
            Outcome::Abort {
                state,
                monitor,
                reason,
            } => Outcome::Abort {
                state: f(state),
                monitor,
                reason,
            },
        }
    }
}

/// A monitor specification.
///
/// The default implementations make the common cases tiny: a monitor that
/// only gathers information *before* evaluation implements just
/// [`Monitor::pre`] (like the Figure 6 profiler); one that reacts to
/// results implements just [`Monitor::post`] (like the Figure 8 demon and
/// Figure 9 collecting monitor).
///
/// # Fallible hooks
///
/// The monitored machines actually invoke [`Monitor::try_pre`] and
/// [`Monitor::try_post`], whose default implementations delegate to the
/// pure hooks and always `Continue` — so every pure monitor is
/// source-compatible and still satisfies Theorem 7.7. A checking monitor
/// overrides the `try_*` forms to return [`Outcome::Abort`]; a fault-prone
/// monitor is wrapped in [`Guarded`](crate::fault::Guarded) to confine
/// panics and enforce budgets.
pub trait Monitor {
    /// **MAlg** — the monitor-state domain `MS`.
    type State: Clone + fmt::Debug + 'static;

    /// A short name (used by composition diagnostics and session reports).
    fn name(&self) -> &str;

    /// **MSyn** — whether the annotation belongs to this monitor's syntax.
    ///
    /// The default accepts everything; cascaded monitors (§6) must narrow
    /// this so that annotation syntaxes stay disjoint (use
    /// [`Annotation::namespace`] or the shape of
    /// [`Annotation::kind`](monsem_syntax::AnnKind)).
    fn accepts(&self, ann: &Annotation) -> bool {
        let _ = ann;
        true
    }

    /// **MSyn**, refined per hook phase: whether the monitor wants the
    /// `updPre` or `updPost` hook at this annotation.
    ///
    /// This is a *pure optimization hint*: a machine may consult it to skip
    /// an identity hook (the pe engine drops the hook at compile time), or
    /// may ignore it and invoke `try_pre`/`try_post` anyway — so an
    /// implementation must only return `false` for a phase whose hook is a
    /// no-op on its state. The default says both phases matter whenever
    /// [`Monitor::accepts`] does.
    fn accepts_event(&self, ann: &Annotation, phase: HookPhase) -> bool {
        let _ = phase;
        self.accepts(ann)
    }

    /// The initial (presumably empty) monitor state `σ`.
    fn initial_state(&self) -> Self::State;

    /// **MFun** — `M_pre ⟦μ⟧ ⟦s⟧ a* : MS → MS`, invoked just *before* the
    /// annotated expression is evaluated.
    fn pre(
        &self,
        ann: &Annotation,
        expr: &Expr,
        scope: &Scope<'_>,
        state: Self::State,
    ) -> Self::State {
        let _ = (ann, expr, scope);
        state
    }

    /// **MFun** — `M_post ⟦μ⟧ ⟦s⟧ a* ι* : MS → MS`, invoked just *after*,
    /// with the intermediate result `ι*` that flows into the continuation.
    fn post(
        &self,
        ann: &Annotation,
        expr: &Expr,
        scope: &Scope<'_>,
        value: &Value,
        state: Self::State,
    ) -> Self::State {
        let _ = (ann, expr, scope, value);
        state
    }

    /// Fallible form of [`Monitor::pre`]: may veto the computation.
    ///
    /// This is what the monitored machines call. The default delegates to
    /// the pure hook and continues, so ordinary monitors never see it.
    fn try_pre(
        &self,
        ann: &Annotation,
        expr: &Expr,
        scope: &Scope<'_>,
        state: Self::State,
    ) -> Outcome<Self::State> {
        Outcome::Continue(self.pre(ann, expr, scope, state))
    }

    /// Fallible form of [`Monitor::post`]: may veto the computation.
    fn try_post(
        &self,
        ann: &Annotation,
        expr: &Expr,
        scope: &Scope<'_>,
        value: &Value,
        state: Self::State,
    ) -> Outcome<Self::State> {
        Outcome::Continue(self.post(ann, expr, scope, value, state))
    }

    /// Renders a final monitor state for human consumption (session
    /// reports, examples). Defaults to the `Debug` form.
    fn render_state(&self, state: &Self::State) -> String {
        format!("{state:?}")
    }

    /// The monitor's health as recorded in `state`. Plain monitors are
    /// always healthy; [`Guarded`](crate::fault::Guarded) monitors report
    /// quarantine/budget degradation here, and session reports surface it
    /// per monitor.
    fn health(&self, state: &Self::State) -> crate::fault::Health {
        let _ = state;
        crate::fault::Health::Ok
    }
}

/// A monitor whose state forms a *mergeable* algebra, enabling fork-join
/// parallel evaluation ([`crate::parallel`]).
///
/// The parallel machine evaluates the elements of `par(e₁, …, eₙ)` on
/// worker threads. Each shard starts from [`MergeMonitor::split`] of the
/// fork-point state σ, records its own observations, and the machine then
/// folds the shard states back **deterministically left-to-right** with
/// [`MergeMonitor::merge`]:
///
/// ```text
/// σ' = merge(…merge(merge(σ, s₁), s₂)…, sₙ)
/// ```
///
/// # Laws
///
/// For the fold above to agree with what the sequential machine would have
/// computed (the parallel extension of Theorem 7.7), implementations must
/// satisfy:
///
/// 1. **Associativity** — `merge(merge(a, b), c) == merge(a, merge(b, c))`.
/// 2. **Split is a left and right identity** — for every reachable σ,
///    `merge(σ, split(σ)) == σ` and (when a split state is on the left of
///    a merge chain rooted at σ) `merge(split(σ), d)` must carry exactly
///    the delta `d`. For cumulative monitors `split` is simply the empty
///    state; monitors whose transitions read context (an open-call stack, a
///    DFA's current node) copy that context into the shard and exclude it
///    from the delta that `merge` adds back.
/// 3. **Hook/merge homomorphism** — running the monitor's hooks over a
///    shard's event sequence starting from `split(σ)` and merging, equals
///    running the same hooks sequentially from σ. Together with (1)/(2)
///    this is what the `parallel ≡ sequential` property tests pin down
///    bit-for-bit.
///
/// Laws (1) and (2) make `(State, merge, split)` a monoid *relative to
/// each fork point*; they are checked for every shipped monitor by the
/// `merge_laws` proptests.
pub trait MergeMonitor: Monitor {
    /// Called **once per fork point**, on the fork-point state, before any
    /// [`MergeMonitor::split`] — the hook where a monitor installs
    /// bookkeeping that must be *shared* across all shards of one fork
    /// (e.g. [`Guarded`](crate::fault::Guarded)'s global budget ledger).
    /// The default is the identity, which is right for monitors whose
    /// split states are independent.
    fn fork(&self, state: Self::State) -> Self::State {
        state
    }

    /// The state a freshly forked shard starts from, given the fork-point
    /// state. Cumulative monitors return the empty state; context-reading
    /// monitors copy the context a hook transition consults.
    fn split(&self, state: &Self::State) -> Self::State;

    /// Folds a shard's final state (`right`, the delta) into the
    /// accumulated state (`left`). Called left-to-right in shard order.
    fn merge(&self, left: Self::State, right: Self::State) -> Self::State;

    /// Fallible form of [`MergeMonitor::merge`], mirroring
    /// [`Monitor::try_pre`]: a *checking* monitor may discover at the join
    /// point that the combined history violates its specification and veto.
    /// The parallel machine calls this; the default never vetoes.
    fn merge_outcome(&self, left: Self::State, right: Self::State) -> Outcome<Self::State> {
        Outcome::Continue(self.merge(left, right))
    }
}

/// The identity monitor: empty state, identity monitoring functions.
///
/// Instantiating the monitoring semantics with this monitor yields the
/// standard semantics back — the degenerate case of Theorem 7.7, used by
/// tests and as the unit of composition.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IdentityMonitor;

impl Monitor for IdentityMonitor {
    type State = ();

    fn name(&self) -> &str {
        "identity"
    }

    fn initial_state(&self) {}
}

impl MergeMonitor for IdentityMonitor {
    fn split(&self, _: &()) {}

    fn merge(&self, _: (), _: ()) {}
}

/// An object-safe view of a monitor, with the state erased to
/// `Rc<dyn Any>`. This is what [`MonitorStack`](crate::MonitorStack) and
/// the [`session`](crate::session) environment traffic in.
pub trait DynMonitor {
    /// See [`Monitor::name`].
    fn name(&self) -> &str;
    /// See [`Monitor::accepts`].
    fn accepts(&self, ann: &Annotation) -> bool;
    /// See [`Monitor::accepts_event`].
    fn accepts_event_dyn(&self, ann: &Annotation, phase: HookPhase) -> bool;
    /// See [`Monitor::initial_state`].
    fn initial_state_dyn(&self) -> DynState;
    /// See [`Monitor::pre`].
    fn pre_dyn(
        &self,
        ann: &Annotation,
        expr: &Expr,
        scope: &Scope<'_>,
        state: DynState,
    ) -> DynState;
    /// See [`Monitor::post`].
    fn post_dyn(
        &self,
        ann: &Annotation,
        expr: &Expr,
        scope: &Scope<'_>,
        value: &Value,
        state: DynState,
    ) -> DynState;
    /// See [`Monitor::try_pre`].
    fn try_pre_dyn(
        &self,
        ann: &Annotation,
        expr: &Expr,
        scope: &Scope<'_>,
        state: DynState,
    ) -> Outcome<DynState>;
    /// See [`Monitor::try_post`].
    fn try_post_dyn(
        &self,
        ann: &Annotation,
        expr: &Expr,
        scope: &Scope<'_>,
        value: &Value,
        state: DynState,
    ) -> Outcome<DynState>;
    /// See [`Monitor::render_state`].
    fn render_state_dyn(&self, state: &DynState) -> String;
    /// See [`Monitor::health`].
    fn health_dyn(&self, state: &DynState) -> crate::fault::Health;
    /// See [`MergeMonitor::fork`]. `None` as for [`DynMonitor::split_dyn`].
    fn fork_dyn(&self, state: DynState) -> Option<DynState> {
        let _ = state;
        None
    }
    /// See [`MergeMonitor::split`]. `None` means the monitor behind this
    /// object was not registered as mergeable (Rust has no trait
    /// specialization, so the blanket [`Monitor`] adapter cannot discover a
    /// [`MergeMonitor`] impl — wrap the monitor in
    /// [`MergeLayer`](crate::compose::MergeLayer) to expose it).
    fn split_dyn(&self, state: &DynState) -> Option<DynState> {
        let _ = state;
        None
    }
    /// See [`MergeMonitor::merge_outcome`]. `None` as for
    /// [`DynMonitor::split_dyn`].
    fn merge_outcome_dyn(&self, left: DynState, right: DynState) -> Option<Outcome<DynState>> {
        let _ = (left, right);
        None
    }
}

/// A type-erased monitor state.
#[derive(Clone)]
pub struct DynState(Rc<dyn Any>);

impl DynState {
    /// Wraps a concrete state.
    pub fn new<S: 'static>(state: S) -> Self {
        DynState(Rc::new(state))
    }

    /// Recovers the concrete state.
    pub fn downcast<S: 'static + Clone>(&self) -> Option<S> {
        self.0.downcast_ref::<S>().cloned()
    }
}

impl fmt::Debug for DynState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("DynState(..)")
    }
}

impl<M: Monitor> DynMonitor for M {
    fn name(&self) -> &str {
        Monitor::name(self)
    }

    fn accepts(&self, ann: &Annotation) -> bool {
        Monitor::accepts(self, ann)
    }

    fn accepts_event_dyn(&self, ann: &Annotation, phase: HookPhase) -> bool {
        Monitor::accepts_event(self, ann, phase)
    }

    fn initial_state_dyn(&self) -> DynState {
        DynState::new(self.initial_state())
    }

    fn pre_dyn(
        &self,
        ann: &Annotation,
        expr: &Expr,
        scope: &Scope<'_>,
        state: DynState,
    ) -> DynState {
        let s: M::State = state.downcast().expect(
            "monitor state type mismatch: a DynState must round-trip through its own monitor",
        );
        DynState::new(self.pre(ann, expr, scope, s))
    }

    fn post_dyn(
        &self,
        ann: &Annotation,
        expr: &Expr,
        scope: &Scope<'_>,
        value: &Value,
        state: DynState,
    ) -> DynState {
        let s: M::State = state.downcast().expect(
            "monitor state type mismatch: a DynState must round-trip through its own monitor",
        );
        DynState::new(self.post(ann, expr, scope, value, s))
    }

    fn try_pre_dyn(
        &self,
        ann: &Annotation,
        expr: &Expr,
        scope: &Scope<'_>,
        state: DynState,
    ) -> Outcome<DynState> {
        let s: M::State = state.downcast().expect(
            "monitor state type mismatch: a DynState must round-trip through its own monitor",
        );
        self.try_pre(ann, expr, scope, s).map(DynState::new)
    }

    fn try_post_dyn(
        &self,
        ann: &Annotation,
        expr: &Expr,
        scope: &Scope<'_>,
        value: &Value,
        state: DynState,
    ) -> Outcome<DynState> {
        let s: M::State = state.downcast().expect(
            "monitor state type mismatch: a DynState must round-trip through its own monitor",
        );
        self.try_post(ann, expr, scope, value, s).map(DynState::new)
    }

    fn render_state_dyn(&self, state: &DynState) -> String {
        match state.downcast::<M::State>() {
            Some(s) => self.render_state(&s),
            None => "<foreign state>".to_string(),
        }
    }

    fn health_dyn(&self, state: &DynState) -> crate::fault::Health {
        match state.downcast::<M::State>() {
            Some(s) => self.health(&s),
            None => crate::fault::Health::Ok,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monsem_core::Env;

    #[derive(Debug, Clone, Copy, Default)]
    struct Count;
    impl Monitor for Count {
        type State = u32;
        fn name(&self) -> &str {
            "count"
        }
        fn initial_state(&self) -> u32 {
            0
        }
        fn pre(&self, _: &Annotation, _: &Expr, _: &Scope<'_>, n: u32) -> u32 {
            n + 1
        }
    }

    #[test]
    fn identity_monitor_does_nothing() {
        let m = IdentityMonitor;
        let env = Env::empty();
        let scope = Scope::pure(&env);
        let ann = Annotation::label("A");
        let e = Expr::int(1);
        m.initial_state();
        m.pre(&ann, &e, &scope, ());
        m.post(&ann, &e, &scope, &Value::Int(1), ());
    }

    #[test]
    fn dyn_monitor_round_trips_state() {
        let m = Count;
        let env = Env::empty();
        let scope = Scope::pure(&env);
        let ann = Annotation::label("A");
        let e = Expr::int(1);
        let s0 = DynMonitor::initial_state_dyn(&m);
        let s1 = m.pre_dyn(&ann, &e, &scope, s0);
        let s2 = m.pre_dyn(&ann, &e, &scope, s1);
        assert_eq!(s2.downcast::<u32>(), Some(2));
        assert_eq!(m.render_state_dyn(&s2), "2");
    }

    #[test]
    fn default_hooks_are_identity() {
        #[derive(Debug)]
        struct Passive;
        impl Monitor for Passive {
            type State = String;
            fn name(&self) -> &str {
                "passive"
            }
            fn initial_state(&self) -> String {
                "s".into()
            }
        }
        let env = Env::empty();
        let scope = Scope::pure(&env);
        let ann = Annotation::label("A");
        let e = Expr::int(1);
        let s = Passive.pre(&ann, &e, &scope, "x".into());
        assert_eq!(s, "x");
        let s = Passive.post(&ann, &e, &scope, &Value::Int(1), s);
        assert_eq!(s, "x");
    }
}
