//! Low-level wire primitives shared by the tape file format and the
//! server protocol: LEB128 unsigned varints, zigzag signed varints, and
//! a bounds-checked byte reader.

use std::fmt;

/// A decoding failure at the byte level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ended mid-value.
    UnexpectedEof,
    /// A varint ran past 10 bytes (more than 64 bits of payload).
    VarintOverflow,
    /// A string field was not valid UTF-8.
    BadUtf8,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEof => write!(f, "unexpected end of input"),
            WireError::VarintOverflow => write!(f, "varint exceeds 64 bits"),
            WireError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
        }
    }
}

impl std::error::Error for WireError {}

/// Appends `n` as an LEB128 unsigned varint.
pub fn put_uvarint(out: &mut Vec<u8>, mut n: u64) {
    loop {
        let byte = (n & 0x7f) as u8;
        n >>= 7;
        if n == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends `n` zigzag-encoded as an unsigned varint.
pub fn put_ivarint(out: &mut Vec<u8>, n: i64) {
    put_uvarint(out, ((n << 1) ^ (n >> 63)) as u64);
}

/// Appends a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_uvarint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// A cursor over a byte slice with bounds-checked primitive reads.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Starts reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// The current byte offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        let b = *self.buf.get(self.pos).ok_or(WireError::UnexpectedEof)?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads `len` raw bytes.
    pub fn bytes(&mut self, len: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(len).ok_or(WireError::UnexpectedEof)?;
        let slice = self
            .buf
            .get(self.pos..end)
            .ok_or(WireError::UnexpectedEof)?;
        self.pos = end;
        Ok(slice)
    }

    /// Reads an LEB128 unsigned varint.
    pub fn uvarint(&mut self) -> Result<u64, WireError> {
        let mut n: u64 = 0;
        for shift in (0..64).step_by(7) {
            let byte = self.u8()?;
            let payload = u64::from(byte & 0x7f);
            if shift == 63 && payload > 1 {
                return Err(WireError::VarintOverflow);
            }
            n |= payload << shift;
            if byte & 0x80 == 0 {
                return Ok(n);
            }
        }
        Err(WireError::VarintOverflow)
    }

    /// Reads a zigzag-encoded signed varint.
    pub fn ivarint(&mut self) -> Result<i64, WireError> {
        let z = self.uvarint()?;
        Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, WireError> {
        let len = self.uvarint()?;
        let len = usize::try_from(len).map_err(|_| WireError::UnexpectedEof)?;
        let bytes = self.bytes(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadUtf8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uvarint_roundtrips_edge_values() {
        for n in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_uvarint(&mut buf, n);
            let mut r = ByteReader::new(&buf);
            assert_eq!(r.uvarint().unwrap(), n);
            assert!(r.is_empty());
        }
    }

    #[test]
    fn ivarint_roundtrips_signs() {
        for n in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            let mut buf = Vec::new();
            put_ivarint(&mut buf, n);
            let mut r = ByteReader::new(&buf);
            assert_eq!(r.ivarint().unwrap(), n);
        }
    }

    #[test]
    fn truncated_input_errors_cleanly() {
        let mut buf = Vec::new();
        put_uvarint(&mut buf, 300);
        let mut r = ByteReader::new(&buf[..1]);
        assert_eq!(r.uvarint(), Err(WireError::UnexpectedEof));
        let mut r = ByteReader::new(&[0xff; 11]);
        assert_eq!(r.uvarint(), Err(WireError::VarintOverflow));
    }

    #[test]
    fn strings_roundtrip() {
        let mut buf = Vec::new();
        put_str(&mut buf, "héllo");
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.string().unwrap(), "héllo");
    }
}
