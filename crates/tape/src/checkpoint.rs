//! Checkpointed recording and seeded replay: the compaction layer over
//! format-v3 tapes.
//!
//! A checkpoint is a *verified resumption point*: it pins the safety
//! spec's DFA state (plus the earliest prefix violation) and, when a
//! stream spec rides along, a digest-guarded snapshot of the full
//! stream-evaluator state. Checking a long tape "from" an offset then
//! seeks to the last checkpoint at or before that offset and replays
//! only the suffix — the verdict provably matches a full replay because
//! both monitors are pure folds ([`monsem_tspec::SpecMonitor`]'s MFun
//! view) and the checkpoint carries exactly the fold accumulator.
//!
//! Digests ([`digest64`] of the spec source, and of the snapshot bytes)
//! guard against *mistakes*, not adversaries: checking a tape with a
//! different spec than the one checkpointed silently falls back to a
//! full replay rather than seeding from a foreign automaton's state.

use crate::format::{
    digest64, read_tape_checkpointed, Checkpoint, StreamCheckpoint, TapeError, TapeWriter,
};
use monsem_monitor::tape::{TapeEvent, TapeSink};
use monsem_monitor::{Monitor, Outcome};
use monsem_stream::{restore_state, snapshot_state, StreamCheck, StreamMonitor};
use monsem_tspec::{SpecMonitor, SpecState, TapeCheck};
use std::collections::VecDeque;

/// The digest a checkpoint stores for a spec: [`digest64`] of its
/// source text.
pub fn spec_digest(src: &str) -> u64 {
    digest64(src.as_bytes())
}

/// Serializes `events` into a v3 tape, folding `spec` (and `stream`,
/// when given) alongside the writer and emitting a [`Checkpoint`] after
/// every `every` events. Timestamps are preserved when any event
/// carries one, exactly like [`crate::write_tape`].
///
/// The final partial interval gets no checkpoint — there is nothing
/// after it to skip.
pub fn write_tape_checkpointed(
    events: &[TapeEvent],
    spec: &SpecMonitor,
    stream: Option<&StreamMonitor>,
    every: usize,
) -> Vec<u8> {
    let every = every.max(1);
    let timed = events.iter().any(|ev| ev.time.is_some());
    let mut w = TapeWriter::checkpointed(Vec::new(), timed);
    let mut ss = spec.initial_state();
    let mut earliest: Option<u64> = None;
    let mut stream_state = stream.map(|m| m.initial_state());
    for (i, ev) in events.iter().enumerate() {
        w.record(ev.clone());
        let had = ss.violation.is_some();
        ss = match spec.advance_tape_event(ss, ev) {
            Outcome::Continue(s) | Outcome::Abort { state: s, .. } => s,
        };
        if !had && ss.violation.is_some() && earliest.is_none() {
            earliest = Some(ev.step);
        }
        if let (Some(m), Some(st)) = (stream, stream_state.take()) {
            stream_state = Some(match m.advance_tape_event(st, ev) {
                Outcome::Continue(s) | Outcome::Abort { state: s, .. } => s,
            });
        }
        let folded = i + 1;
        if folded % every == 0 && folded < events.len() {
            let stream_ckpt = match (stream, &stream_state) {
                (Some(m), Some(st)) => {
                    let snapshot = snapshot_state(st);
                    Some(StreamCheckpoint {
                        spec_digest: spec_digest(m.spec().source()),
                        snapshot_digest: digest64(&snapshot),
                        snapshot,
                    })
                }
                _ => None,
            };
            w.checkpoint(&Checkpoint {
                events: folded as u64,
                step: ev.step,
                spec_digest: spec_digest(spec.spec().source()),
                dfa_state: ss.state,
                dfa_events: ss.events,
                earliest_violation: earliest,
                stream: stream_ckpt,
            });
        }
    }
    w.finish().expect("writing to a Vec cannot fail")
}

/// The last checkpoint at or before the `from_events` offset whose spec
/// digest matches `spec_src`, if any. `from_events` counts tape events,
/// so `seek_checkpoint(…, n, …)` returns a state that already folded
/// its first `events ≤ n` events.
pub fn seek_checkpoint<'a>(
    checkpoints: &'a [Checkpoint],
    from_events: u64,
    spec_src: &str,
) -> Option<&'a Checkpoint> {
    let want = spec_digest(spec_src);
    checkpoints
        .iter()
        .rev()
        .find(|c| c.events <= from_events && c.spec_digest == want)
}

/// Reconstructs the [`SpecState`] a checkpoint pinned. The trace ring
/// (recent-event context used in violation *messages*) is not carried,
/// so messages rendered after seeding omit prefix events; the verdict,
/// DFA state, and earliest-violation step are exact.
pub fn seeded_spec_state(ckpt: &Checkpoint) -> SpecState {
    SpecState {
        state: ckpt.dfa_state,
        events: ckpt.dfa_events,
        trace: VecDeque::new(),
        violation: ckpt
            .earliest_violation
            .map(|step| format!("violated at event step {step} (before the checkpoint)")),
        tape: None,
        lossy: false,
    }
}

/// A checkpoint-seeded check result: the verdict plus how much of the
/// tape the replay actually had to fold.
#[derive(Debug, Clone, PartialEq)]
pub struct SeededCheck<C> {
    /// The verdict, identical to what a full replay would conclude
    /// (violation *messages* may omit pre-checkpoint trace context).
    pub check: C,
    /// Tape-event offset the replay resumed from (0 = no usable
    /// checkpoint, full replay).
    pub resumed_at: u64,
    /// Events folded by the replay (`total - resumed_at`).
    pub replayed: u64,
}

/// Checks a tape against `monitor`, seeking to the last checkpoint at
/// or before `from` (an event offset) instead of replaying from zero.
/// Falls back to a full replay when the tape has no checkpoints in
/// range or they were recorded under a different spec.
///
/// # Errors
///
/// [`TapeError`] if the tape bytes do not parse.
pub fn check_tape_from(
    monitor: &SpecMonitor,
    tape: &[u8],
    from: u64,
) -> Result<SeededCheck<TapeCheck>, TapeError> {
    let (events, checkpoints) = read_tape_checkpointed(tape)?;
    let total = events.len() as u64;
    match seek_checkpoint(&checkpoints, from.min(total), monitor.spec().source()) {
        Some(ckpt) => {
            let seed = seeded_spec_state(ckpt);
            let mut check =
                monitor.check_tape_seeded(seed, events.iter().skip(ckpt.events as usize));
            // A violation inside the skipped prefix is earlier than
            // anything the replay can observe.
            check.earliest_violation = ckpt.earliest_violation.or(check.earliest_violation);
            Ok(SeededCheck {
                check,
                resumed_at: ckpt.events,
                replayed: total - ckpt.events,
            })
        }
        None => Ok(SeededCheck {
            check: monitor.check_tape(events.iter()),
            resumed_at: 0,
            replayed: total,
        }),
    }
}

/// The stream-spec counterpart of [`check_tape_from`]: seeks the last
/// checkpoint at or before `from` that carries a stream snapshot whose
/// spec and snapshot digests both verify, restores it, and replays the
/// suffix. Any digest or decode mismatch falls back to a full replay —
/// a checkpoint can make a check faster, never wrong.
///
/// # Errors
///
/// [`TapeError`] if the tape bytes do not parse.
pub fn check_stream_from(
    monitor: &StreamMonitor,
    tape: &[u8],
    from: u64,
) -> Result<SeededCheck<StreamCheck>, TapeError> {
    let (events, checkpoints) = read_tape_checkpointed(tape)?;
    let total = events.len() as u64;
    let want = spec_digest(monitor.spec().source());
    let seed = checkpoints
        .iter()
        .rev()
        .filter(|c| c.events <= from.min(total))
        .find_map(|c| {
            let s = c.stream.as_ref()?;
            if s.spec_digest != want || digest64(&s.snapshot) != s.snapshot_digest {
                return None;
            }
            Some((c.events, restore_state(monitor, &s.snapshot).ok()?))
        });
    match seed {
        Some((resumed_at, state)) => Ok(SeededCheck {
            check: monitor.check_tape_seeded(state, events.iter().skip(resumed_at as usize)),
            resumed_at,
            replayed: total - resumed_at,
        }),
        None => Ok(SeededCheck {
            check: monitor.check_tape(events.iter()),
            resumed_at: 0,
            replayed: total,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monsem_core::Value;
    use monsem_syntax::Annotation;
    use monsem_tspec::TapeOutcome;

    const SPEC: &str = "always(post(p) => value >= 0)";
    const STREAM: &str = "stream neg = count(value < 0) over window(8)\n\
                          trigger bad = neg >= 2\n\
                          deadline post(p) every 50 ms";

    fn tape_events(n: u64, bad_at: &[u64], done: bool) -> Vec<TapeEvent> {
        let ann = Annotation::label("p");
        let mut evs: Vec<TapeEvent> = (0..n)
            .map(|i| {
                let v = if bad_at.contains(&i) { -1 } else { 1 };
                TapeEvent::post(&ann, &Value::Int(v), i).at(i * 25)
            })
            .collect();
        if done {
            evs.push(TapeEvent::done(n).at(n * 25));
        }
        evs
    }

    fn assert_agrees(full: &TapeCheck, seeded: &TapeCheck) {
        // Messages can differ (the seed has no trace ring); the verdict
        // class, earliest step, and DFA state must not.
        assert_eq!(
            std::mem::discriminant(&full.outcome),
            std::mem::discriminant(&seeded.outcome)
        );
        assert_eq!(full.earliest_violation, seeded.earliest_violation);
        assert_eq!(full.state.state, seeded.state.state);
        assert_eq!(full.state.events, seeded.state.events);
    }

    #[test]
    fn seeded_spec_check_matches_full_replay() {
        let m = SpecMonitor::new("ck", SPEC).unwrap();
        for bad_at in [&[][..], &[3][..], &[3, 57][..], &[57][..]] {
            for done in [false, true] {
                let events = tape_events(80, bad_at, done);
                let tape = write_tape_checkpointed(&events, &m, None, 16);
                let full = m.check_tape(events.iter());
                for from in [0, 15, 16, 40, 80, 200] {
                    let seeded = check_tape_from(&m, &tape, from).unwrap();
                    assert_agrees(&full, &seeded.check);
                    if from >= 16 {
                        assert!(seeded.resumed_at >= 16, "from={from} used a checkpoint");
                    }
                }
            }
        }
    }

    #[test]
    fn seeded_stream_check_matches_full_replay() {
        let spec = SpecMonitor::new("ck", SPEC).unwrap();
        let m = StreamMonitor::new("ck-stream", STREAM).unwrap();
        let events = tape_events(90, &[10, 12, 70], true);
        let tape = write_tape_checkpointed(&events, &spec, Some(&m), 20);
        let full = m.check_tape(events.iter());
        for from in [0, 20, 60, 90] {
            let seeded = check_stream_from(&m, &tape, from).unwrap();
            assert_eq!(full.firings, seeded.check.firings);
            assert_eq!(full.fired_total, seeded.check.fired_total);
            assert_eq!(full.missed, seeded.check.missed);
            assert_eq!(full.state, seeded.check.state);
        }
        let at_60 = check_stream_from(&m, &tape, 60).unwrap();
        assert_eq!(at_60.resumed_at, 60);
        assert_eq!(at_60.replayed, 91 - 60);
    }

    #[test]
    fn wrong_spec_digest_falls_back_to_full_replay() {
        let m = SpecMonitor::new("ck", SPEC).unwrap();
        let events = tape_events(40, &[5], false);
        let tape = write_tape_checkpointed(&events, &m, None, 8);
        let other = SpecMonitor::new("ck", "never(post(q))").unwrap();
        let seeded = check_tape_from(&other, &tape, 40).unwrap();
        assert_eq!(seeded.resumed_at, 0, "foreign checkpoints are not trusted");
        assert_eq!(seeded.replayed, 40);
        // And the verdict is the honest one for *this* spec.
        assert_eq!(seeded.check.outcome, TapeOutcome::Pending);

        let stream = StreamMonitor::new("s", "stream c = count(post(_))").unwrap();
        let with_stream = check_stream_from(&stream, &tape, 40).unwrap();
        assert_eq!(
            with_stream.resumed_at, 0,
            "no stream snapshots on this tape"
        );
    }

    #[test]
    fn enforcing_monitors_seed_past_their_abort_consistently() {
        // An enforcing full replay stops folding at the abort while the
        // checkpoint recorder keeps observing, so the fold *counters*
        // legitimately differ; the verdict and its earliest step must
        // not.
        let m = SpecMonitor::new("ck", SPEC).unwrap().enforcing();
        let events = tape_events(50, &[7], false);
        let tape = write_tape_checkpointed(&events, &m, None, 10);
        let full = m.check_tape(events.iter());
        let seeded = check_tape_from(&m, &tape, 30).unwrap();
        assert!(matches!(full.outcome, TapeOutcome::Violated(_)));
        assert!(matches!(seeded.check.outcome, TapeOutcome::Violated(_)));
        assert_eq!(full.earliest_violation, Some(7));
        assert_eq!(seeded.check.earliest_violation, Some(7));
    }
}
