//! The monitor-server wire protocol: length-framed requests and
//! responses over any byte stream (TCP or Unix sockets in [`crate::net`]).
//!
//! Every message is a frame: a big-endian `u32` payload length followed
//! by the payload. Payloads are tag-discriminated and use the same
//! varint primitives as the tape format; events inside an
//! [`Request::Events`] frame are encoded self-contained (no interning)
//! so frames can be decoded independently of connection history.
//!
//! # Batched, pipelined ingest
//!
//! [`Request::EventBatch`] carries its events as a complete tape image
//! (the exact bytes [`crate::write_tape`] would produce), so a producer
//! that already records to a tape can ship the same bytes — wire ==
//! tape — and the per-tape string interning amortizes event names
//! across the batch. Event frames are *fire-and-forget*: the server
//! does not reply per frame but emits a cumulative [`Response::Ack`]
//! every configured number of events, so the socket round-trip leaves
//! the per-event path entirely. [`Request::Open`], [`Request::Swap`],
//! and [`Request::Close`] remain strictly request/reply.

use crate::wire::{put_ivarint, put_str, put_uvarint, ByteReader, WireError};
use monsem_monitor::tape::{TapeEvent, TapePhase, ValueDesc};
use std::fmt;
use std::io::{self, Read, Write};

/// Hard cap on a frame payload, to bound a malicious or corrupt peer.
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// A protocol decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// A frame declared a payload larger than [`MAX_FRAME`].
    FrameTooLarge(u32),
    /// An unknown message tag.
    BadTag(u8),
    /// A byte-level decoding failure.
    Wire(WireError),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::FrameTooLarge(n) => write!(f, "frame of {n} bytes exceeds {MAX_FRAME}"),
            ProtoError::BadTag(t) => write!(f, "unknown message tag {t:#04x}"),
            ProtoError::Wire(e) => write!(f, "malformed message: {e}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<WireError> for ProtoError {
    fn from(e: WireError) -> ProtoError {
        ProtoError::Wire(e)
    }
}

fn proto_io(e: ProtoError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e)
}

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Opens a monitoring session: compiles `spec` and installs a fresh
    /// guarded monitor under `session`.
    Open {
        /// Caller-chosen session id; also picks the worker shard.
        session: u64,
        /// Whether a violation should abort (and close) the session.
        enforcing: bool,
        /// The temporal spec source text.
        spec: String,
        /// Optional stream spec source text: an SLO check evaluated next
        /// to the safety spec (trigger firings and deadline misses are
        /// reported in the session's [`Verdict`]).
        stream: Option<String>,
    },
    /// Appends events to a session's tape.
    Events {
        /// The session to feed.
        session: u64,
        /// The events, in tape order.
        events: Vec<TapeEvent>,
    },
    /// Hot-swaps the session's spec, splicing state by replaying the
    /// session's bounded suffix window through the new automaton.
    Swap {
        /// The session to reconfigure.
        session: u64,
        /// The new safety spec source text; `None` keeps the current
        /// one.
        spec: Option<String>,
        /// The new stream spec source text; `None` keeps the current one
        /// (a stream spec survives a safety-spec swap unchanged).
        stream: Option<String>,
    },
    /// Closes the session and reports its final verdict.
    Close {
        /// The session to finish.
        session: u64,
    },
    /// Appends a batch of events encoded as a complete tape image.
    ///
    /// Like [`Request::Events`] but fire-and-forget: the server replies
    /// only with periodic cumulative [`Response::Ack`] frames (and an
    /// error frame on failure), never per batch.
    EventBatch {
        /// The session to feed.
        session: u64,
        /// A complete tape image ([`crate::write_tape`] output): magic,
        /// version, interned events.
        tape: Vec<u8>,
    },
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// The request was applied.
    Ok,
    /// The request failed; human-readable reason.
    Err(String),
    /// A session verdict (returned by every successful session request,
    /// so producers see violations as soon as they are ingested).
    Verdict(Verdict),
    /// A cumulative acknowledgement on the fire-and-forget event path:
    /// every event with step ≤ `through_step` has been folded into the
    /// session's monitor. Acks are advisory (the server drops them
    /// rather than stall a shard when the client is not reading);
    /// [`Request::Close`]'s verdict is the authoritative barrier.
    Ack {
        /// The session this ack describes.
        session: u64,
        /// The highest event step folded so far.
        through_step: u64,
    },
}

/// The observable state of a session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Verdict {
    /// The session this verdict describes.
    pub session: u64,
    /// Events ingested so far (including ones the monitor did not
    /// observe).
    pub ingested: u64,
    /// The guard's health: `"ok"`, or the degradation reason.
    pub health: String,
    /// The first violation, if any.
    pub violation: Option<String>,
    /// Step index of the event that first entered the violation.
    pub earliest_violation: Option<u64>,
    /// Final acceptance: `Some` once the session saw its `done` marker
    /// or was closed, `None` while still open-ended.
    pub accepted: Option<bool>,
    /// Whether the last hot-swap had to splice from a truncated window
    /// (the replayed suffix was shorter than the session's history).
    pub swap_truncated: bool,
    /// Stream-spec trigger firings so far (0 without a stream spec).
    pub firings: u64,
    /// Stream-spec deadline misses so far (0 without a stream spec).
    pub missed: u64,
}

const REQ_OPEN: u8 = 0x01;
const REQ_EVENTS: u8 = 0x02;
const REQ_SWAP: u8 = 0x03;
const REQ_CLOSE: u8 = 0x04;
const REQ_BATCH: u8 = 0x05;

const RESP_OK: u8 = 0x01;
const RESP_ERR: u8 = 0x02;
const RESP_VERDICT: u8 = 0x03;
const RESP_ACK: u8 = 0x04;

const EV_PRE: u8 = 0x01;
const EV_POST: u8 = 0x02;
const EV_DONE: u8 = 0x03;

const FLAG_INT: u8 = 0x01;
const FLAG_UNSORTED: u8 = 0x02;

fn put_event(out: &mut Vec<u8>, ev: &TapeEvent) {
    match ev.phase {
        TapePhase::Pre => {
            out.push(EV_PRE);
            put_str(out, &ev.namespace);
            put_str(out, &ev.name);
            put_uvarint(out, ev.step);
        }
        TapePhase::Post => {
            out.push(EV_POST);
            put_str(out, &ev.namespace);
            put_str(out, &ev.name);
            put_uvarint(out, ev.step);
            let desc = ev.value.clone().unwrap_or_default();
            let mut flags = 0u8;
            if desc.int.is_some() {
                flags |= FLAG_INT;
            }
            if desc.unsorted {
                flags |= FLAG_UNSORTED;
            }
            out.push(flags);
            if let Some(n) = desc.int {
                put_ivarint(out, n);
            }
            put_str(out, &desc.display);
        }
        TapePhase::Done => {
            out.push(EV_DONE);
            put_uvarint(out, ev.step);
        }
    }
    put_opt_u64(out, ev.time);
}

fn read_event(r: &mut ByteReader<'_>) -> Result<TapeEvent, ProtoError> {
    let mut ev = match r.u8()? {
        EV_PRE => TapeEvent {
            phase: TapePhase::Pre,
            namespace: r.string()?,
            name: r.string()?,
            value: None,
            step: r.uvarint()?,
            time: None,
        },
        EV_POST => {
            let namespace = r.string()?;
            let name = r.string()?;
            let step = r.uvarint()?;
            let flags = r.u8()?;
            let int = if flags & FLAG_INT != 0 {
                Some(r.ivarint()?)
            } else {
                None
            };
            let display = r.string()?;
            TapeEvent {
                phase: TapePhase::Post,
                namespace,
                name,
                value: Some(ValueDesc {
                    int,
                    unsorted: flags & FLAG_UNSORTED != 0,
                    display,
                }),
                step,
                time: None,
            }
        }
        EV_DONE => TapeEvent {
            phase: TapePhase::Done,
            namespace: String::new(),
            name: String::new(),
            value: None,
            step: r.uvarint()?,
            time: None,
        },
        tag => return Err(ProtoError::BadTag(tag)),
    };
    ev.time = read_opt_u64(r)?;
    Ok(ev)
}

fn put_opt_str(out: &mut Vec<u8>, s: &Option<String>) {
    match s {
        Some(s) => {
            out.push(1);
            put_str(out, s);
        }
        None => out.push(0),
    }
}

fn read_opt_str(r: &mut ByteReader<'_>) -> Result<Option<String>, ProtoError> {
    Ok(match r.u8()? {
        0 => None,
        _ => Some(r.string()?),
    })
}

fn put_opt_u64(out: &mut Vec<u8>, n: Option<u64>) {
    match n {
        Some(n) => {
            out.push(1);
            put_uvarint(out, n);
        }
        None => out.push(0),
    }
}

fn read_opt_u64(r: &mut ByteReader<'_>) -> Result<Option<u64>, ProtoError> {
    Ok(match r.u8()? {
        0 => None,
        _ => Some(r.uvarint()?),
    })
}

impl Request {
    /// Serializes to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Open {
                session,
                enforcing,
                spec,
                stream,
            } => {
                out.push(REQ_OPEN);
                put_uvarint(&mut out, *session);
                out.push(u8::from(*enforcing));
                put_str(&mut out, spec);
                put_opt_str(&mut out, stream);
            }
            Request::Events { session, events } => {
                out.push(REQ_EVENTS);
                put_uvarint(&mut out, *session);
                put_uvarint(&mut out, events.len() as u64);
                for ev in events {
                    put_event(&mut out, ev);
                }
            }
            Request::Swap {
                session,
                spec,
                stream,
            } => {
                out.push(REQ_SWAP);
                put_uvarint(&mut out, *session);
                put_opt_str(&mut out, spec);
                put_opt_str(&mut out, stream);
            }
            Request::Close { session } => {
                out.push(REQ_CLOSE);
                put_uvarint(&mut out, *session);
            }
            Request::EventBatch { session, tape } => {
                out.push(REQ_BATCH);
                put_uvarint(&mut out, *session);
                put_uvarint(&mut out, tape.len() as u64);
                out.extend_from_slice(tape);
            }
        }
        out
    }

    /// Parses a frame payload.
    ///
    /// # Errors
    ///
    /// [`ProtoError`] on unknown tags or malformed fields.
    pub fn decode(buf: &[u8]) -> Result<Request, ProtoError> {
        let mut r = ByteReader::new(buf);
        match r.u8()? {
            REQ_OPEN => Ok(Request::Open {
                session: r.uvarint()?,
                enforcing: r.u8()? != 0,
                spec: r.string()?,
                stream: read_opt_str(&mut r)?,
            }),
            REQ_EVENTS => {
                let session = r.uvarint()?;
                let count = r.uvarint()?;
                let mut events = Vec::new();
                for _ in 0..count {
                    events.push(read_event(&mut r)?);
                }
                Ok(Request::Events { session, events })
            }
            REQ_SWAP => Ok(Request::Swap {
                session: r.uvarint()?,
                spec: read_opt_str(&mut r)?,
                stream: read_opt_str(&mut r)?,
            }),
            REQ_CLOSE => Ok(Request::Close {
                session: r.uvarint()?,
            }),
            REQ_BATCH => {
                let session = r.uvarint()?;
                let len = usize::try_from(r.uvarint()?)
                    .map_err(|_| ProtoError::Wire(WireError::VarintOverflow))?;
                Ok(Request::EventBatch {
                    session,
                    tape: r.bytes(len)?.to_vec(),
                })
            }
            tag => Err(ProtoError::BadTag(tag)),
        }
    }
}

impl Response {
    /// Serializes to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Ok => out.push(RESP_OK),
            Response::Err(reason) => {
                out.push(RESP_ERR);
                put_str(&mut out, reason);
            }
            Response::Verdict(v) => {
                out.push(RESP_VERDICT);
                put_uvarint(&mut out, v.session);
                put_uvarint(&mut out, v.ingested);
                put_str(&mut out, &v.health);
                match &v.violation {
                    Some(reason) => {
                        out.push(1);
                        put_str(&mut out, reason);
                    }
                    None => out.push(0),
                }
                put_opt_u64(&mut out, v.earliest_violation);
                out.push(match v.accepted {
                    None => 0,
                    Some(false) => 1,
                    Some(true) => 2,
                });
                out.push(u8::from(v.swap_truncated));
                put_uvarint(&mut out, v.firings);
                put_uvarint(&mut out, v.missed);
            }
            Response::Ack {
                session,
                through_step,
            } => {
                out.push(RESP_ACK);
                put_uvarint(&mut out, *session);
                put_uvarint(&mut out, *through_step);
            }
        }
        out
    }

    /// Parses a frame payload.
    ///
    /// # Errors
    ///
    /// [`ProtoError`] on unknown tags or malformed fields.
    pub fn decode(buf: &[u8]) -> Result<Response, ProtoError> {
        let mut r = ByteReader::new(buf);
        match r.u8()? {
            RESP_OK => Ok(Response::Ok),
            RESP_ERR => Ok(Response::Err(r.string()?)),
            RESP_VERDICT => {
                let session = r.uvarint()?;
                let ingested = r.uvarint()?;
                let health = r.string()?;
                let violation = match r.u8()? {
                    0 => None,
                    _ => Some(r.string()?),
                };
                let earliest_violation = read_opt_u64(&mut r)?;
                let accepted = match r.u8()? {
                    0 => None,
                    1 => Some(false),
                    _ => Some(true),
                };
                let swap_truncated = r.u8()? != 0;
                let firings = r.uvarint()?;
                let missed = r.uvarint()?;
                Ok(Response::Verdict(Verdict {
                    session,
                    ingested,
                    health,
                    violation,
                    earliest_violation,
                    accepted,
                    swap_truncated,
                    firings,
                    missed,
                }))
            }
            RESP_ACK => Ok(Response::Ack {
                session: r.uvarint()?,
                through_step: r.uvarint()?,
            }),
            tag => Err(ProtoError::BadTag(tag)),
        }
    }
}

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Propagates I/O errors from the underlying stream.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len =
        u32::try_from(payload.len()).map_err(|_| proto_io(ProtoError::FrameTooLarge(u32::MAX)))?;
    if len > MAX_FRAME {
        return Err(proto_io(ProtoError::FrameTooLarge(len)));
    }
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// An incremental frame decoder for nonblocking transports: bytes are
/// [`FrameDecoder::extend`]ed in whatever dribbles the socket delivers
/// (down to one byte at a time), and [`FrameDecoder::next_frame`] yields
/// each complete payload as soon as its last byte arrives.
///
/// This is the readiness-driven counterpart of [`read_frame`]: the
/// blocking reader parks the thread until a frame completes, the decoder
/// returns `Ok(None)` and lets the caller go back to `epoll_wait`. Both
/// accept the same wire format, so a byte stream produced by
/// [`write_frame`] decodes identically through either.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Consumed prefix of `buf`; compacted lazily so a burst of frames
    /// costs one memmove, not one per frame.
    start: usize,
}

/// Compact the consumed prefix away once it exceeds this many bytes.
const DECODER_COMPACT_AT: usize = 64 * 1024;

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Appends freshly received bytes. Any split is fine — mid-length,
    /// mid-payload, several frames at once.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes received but not yet yielded as frames.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Whether the stream stopped mid-frame: EOF now would be unclean.
    pub fn has_partial(&self) -> bool {
        self.buffered() > 0
    }

    /// Yields the next complete frame payload, or `Ok(None)` when more
    /// bytes are needed.
    ///
    /// # Errors
    ///
    /// [`ProtoError::FrameTooLarge`] as soon as a length prefix exceeds
    /// [`MAX_FRAME`] — the decoder does not wait for the bogus payload.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, ProtoError> {
        let pending = &self.buf[self.start..];
        if pending.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes([pending[0], pending[1], pending[2], pending[3]]);
        if len > MAX_FRAME {
            return Err(ProtoError::FrameTooLarge(len));
        }
        let total = 4 + len as usize;
        if pending.len() < total {
            return Ok(None);
        }
        let payload = pending[4..total].to_vec();
        self.start += total;
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        } else if self.start > DECODER_COMPACT_AT {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        Ok(Some(payload))
    }
}

/// Reads one length-prefixed frame. Returns `Ok(None)` on clean EOF at a
/// frame boundary.
///
/// # Errors
///
/// I/O errors, or `InvalidData` when the declared length exceeds
/// [`MAX_FRAME`].
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len);
    if len > MAX_FRAME {
        return Err(proto_io(ProtoError::FrameTooLarge(len)));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use monsem_core::Value;
    use monsem_syntax::Annotation;

    #[test]
    fn requests_roundtrip() {
        let ann = Annotation::label("p");
        let reqs = vec![
            Request::Open {
                session: 7,
                enforcing: true,
                spec: "never(post(b))".to_string(),
                stream: Some("stream errs = count(post(p))".to_string()),
            },
            Request::Open {
                session: 8,
                enforcing: false,
                spec: "never(post(b))".to_string(),
                stream: None,
            },
            Request::Events {
                session: 7,
                events: vec![
                    TapeEvent::pre(&ann, 0).at(12),
                    TapeEvent::post(&ann, &Value::Int(-3), 1),
                    TapeEvent::done(2).at(90),
                ],
            },
            Request::Swap {
                session: 7,
                spec: Some("always(post(p) => value > 0)".to_string()),
                stream: None,
            },
            Request::Swap {
                session: 7,
                spec: None,
                stream: Some("trigger hot = errs > 3".to_string()),
            },
            Request::Close { session: 7 },
        ];
        for req in reqs {
            assert_eq!(Request::decode(&req.encode()).unwrap(), req);
        }
    }

    #[test]
    fn event_batches_roundtrip_as_tape_bytes() {
        let ann = Annotation::label("p");
        let events = vec![
            TapeEvent::pre(&ann, 0).at(5),
            TapeEvent::post(&ann, &Value::Int(42), 1).at(9),
        ];
        let tape = crate::write_tape(&events);
        let req = Request::EventBatch {
            session: 11,
            tape: tape.clone(),
        };
        match Request::decode(&req.encode()).unwrap() {
            Request::EventBatch {
                session,
                tape: wire,
            } => {
                assert_eq!(session, 11);
                // Wire == tape: the payload is a complete tape image.
                assert_eq!(wire, tape);
                assert_eq!(crate::read_tape(&wire).unwrap(), events);
            }
            other => panic!("decoded {other:?}"),
        }
    }

    #[test]
    fn responses_roundtrip() {
        let resps = vec![
            Response::Ok,
            Response::Err("no such session".to_string()),
            Response::Verdict(Verdict {
                session: 3,
                ingested: 10,
                health: "ok".to_string(),
                violation: Some("spec `x` violated".to_string()),
                earliest_violation: Some(4),
                accepted: Some(false),
                swap_truncated: true,
                firings: 2,
                missed: 1,
            }),
            Response::Verdict(Verdict {
                session: 3,
                ingested: 0,
                health: "ok".to_string(),
                violation: None,
                earliest_violation: None,
                accepted: None,
                swap_truncated: false,
                firings: 0,
                missed: 0,
            }),
            Response::Ack {
                session: 9,
                through_step: 4095,
            },
        ];
        for resp in resps {
            assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        }
    }

    #[test]
    fn frames_roundtrip_and_eof_is_clean() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = io::Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn oversized_frames_are_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME + 1).to_be_bytes());
        let err = read_frame(&mut io::Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn decoder_yields_frames_at_every_byte_boundary() {
        // The same byte stream write_frame produced, fed one byte at a
        // time: each frame must appear exactly when its last byte lands.
        let frames: Vec<&[u8]> = vec![b"hello", b"", b"x", b"wide payload \xff\x00\x7f"];
        let mut wire = Vec::new();
        for f in &frames {
            write_frame(&mut wire, f).unwrap();
        }
        let mut dec = FrameDecoder::new();
        let mut got: Vec<Vec<u8>> = Vec::new();
        for (i, b) in wire.iter().enumerate() {
            dec.extend(std::slice::from_ref(b));
            while let Some(frame) = dec.next_frame().unwrap() {
                got.push(frame);
            }
            let complete_bytes: usize = frames
                .iter()
                .scan(0usize, |acc, f| {
                    *acc += 4 + f.len();
                    Some(*acc)
                })
                .take_while(|&end| end <= i + 1)
                .count();
            assert_eq!(got.len(), complete_bytes, "after byte {i}");
        }
        assert_eq!(got, frames);
        assert!(!dec.has_partial(), "clean boundary at the end");
    }

    #[test]
    fn decoder_rejects_oversized_prefix_before_the_payload_arrives() {
        let mut dec = FrameDecoder::new();
        dec.extend(&(MAX_FRAME + 1).to_be_bytes());
        assert!(dec.next_frame().is_err(), "no need to wait for the body");
    }

    #[test]
    fn decoder_reports_partial_frames() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"abc").unwrap();
        let mut dec = FrameDecoder::new();
        dec.extend(&wire[..wire.len() - 1]);
        assert_eq!(dec.next_frame().unwrap(), None);
        assert!(dec.has_partial(), "EOF here would be unclean");
        dec.extend(&wire[wire.len() - 1..]);
        assert_eq!(dec.next_frame().unwrap().unwrap(), b"abc");
        assert!(!dec.has_partial());
        assert_eq!(dec.buffered(), 0);
    }
}
