//! A long-lived monitor server: many producer sessions stream tape
//! events in, a sharded worker pool advances one guarded spec monitor
//! per session, and verdicts flow back.
//!
//! Design points:
//!
//! * **Sharding** — sessions are routed to `shards` worker threads by
//!   session id, so one server ingests many concurrent tapes while each
//!   session's events stay strictly ordered.
//! * **Backpressure** — each shard's queue is a *bounded*
//!   [`std::sync::mpsc::sync_channel`] of depth
//!   [`ServerConfig::queue_depth`]; producers that outrun the monitor
//!   block on ingest rather than ballooning server memory.
//! * **Fault policy** — every session's monitor is wrapped in
//!   [`Guarded`], so the existing fault machinery applies unchanged: a
//!   panicking or aborting spec under [`FaultPolicy::Quarantine`]
//!   degrades that session to the identity monitor (ingest continues,
//!   verdicts report the degradation), and [`Budget`]s meter how much
//!   monitoring work a session may consume.
//! * **Hot-swap** — [`Request::Swap`] compiles a new spec and *splices*
//!   session state by replaying the session's bounded suffix window
//!   (the last [`ServerConfig::swap_window`] events) through the new
//!   automaton. If the window had already dropped older events the
//!   verdict flags `swap_truncated`: the new spec judged only the
//!   suffix it could see.
//! * **Pipelined ingest** — event frames can bypass the request/reply
//!   round-trip entirely: [`MonitorServer::post`] enqueues an
//!   [`Request::Events`] or [`Request::EventBatch`] fire-and-forget,
//!   and the shard emits a cumulative [`Response::Ack`] every
//!   [`ServerConfig::ack_every`] ingested events. The shard table
//!   itself is a plain immutable array — routing an event costs an
//!   index and a channel send, no lock and no allocation.
//! * **Checkpoint compaction** — with
//!   [`ServerConfig::checkpoint_every`] set, a session drops its
//!   hot-swap replay window at every checkpoint boundary instead of
//!   retaining the full `swap_window` suffix indefinitely; a swap that
//!   crosses a boundary honestly reports `swap_truncated`.
//! * **Drain on shutdown** — [`MonitorServer::shutdown`] closes the
//!   intake and poisons each shard queue, so every event enqueued
//!   before shutdown is still folded (and acked) before the workers
//!   exit: the server never acknowledges an event it did not fold.
//! * **Stream SLOs** — a session may carry a
//!   [`monsem_stream::StreamMonitor`] next to its safety spec: trigger
//!   firings and deadline misses are reported in every [`Verdict`]. The
//!   stream check is always observing, survives safety-spec swaps, and
//!   can itself be hot-swapped (splicing by the same window replay).

use crate::format::read_tape;
use crate::proto::{Request, Response, Verdict};
use monsem_monitor::tape::{TapeEvent, TapePhase};
use monsem_monitor::{Budget, FaultPolicy, GuardState, Guarded, Health, Monitor, Outcome};
use monsem_stream::{StreamMonitor, StreamState};
use monsem_tspec::{SpecMonitor, SpecState, DEFAULT_REPLAY_CAP};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Mutex;
use std::thread::JoinHandle;

/// Default ingested-event interval between cumulative acks on the
/// fire-and-forget path.
pub const DEFAULT_ACK_EVERY: usize = 256;

/// Tuning knobs for a [`MonitorServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads; sessions are routed by `session % shards`.
    pub shards: usize,
    /// Bounded per-shard queue depth — the backpressure window.
    pub queue_depth: usize,
    /// How many recent events each session retains for hot-swap splicing.
    pub swap_window: usize,
    /// Fault policy for every session's [`Guarded`] wrapper.
    pub policy: FaultPolicy,
    /// Monitoring budget for every session.
    pub budget: Budget,
    /// Emit a cumulative [`Response::Ack`] after this many ingested
    /// events on the fire-and-forget path (0 behaves like 1: ack after
    /// every posted frame).
    pub ack_every: usize,
    /// Checkpoint interval in ingested events; at each boundary the
    /// session's hot-swap replay window is dropped (compaction — memory
    /// stays bounded by the interval, and a later swap reports
    /// `swap_truncated`). 0 disables compaction.
    pub checkpoint_every: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            shards: 4,
            queue_depth: 256,
            swap_window: DEFAULT_REPLAY_CAP,
            policy: FaultPolicy::Quarantine,
            budget: Budget::default(),
            ack_every: DEFAULT_ACK_EVERY,
            checkpoint_every: 0,
        }
    }
}

/// Where a shard delivers fire-and-forget outcomes: cumulative acks and
/// errors for posted event frames, and (on the [`Reply::Routed`] path)
/// control replies that must travel back to a connection the worker
/// cannot block on.
///
/// The two delivery guarantees differ deliberately:
///
/// * [`ResponseSink::ack`] is *advisory* — a sink may coalesce a stale
///   queued ack into a newer `through_step`, or decline outright
///   (return `false`) when its queue is full. The worker only advances
///   its ack watermark when the sink accepted, so a declined ack is
///   retried at the next boundary, never lost silently forever.
/// * [`ResponseSink::send`] is *must-deliver*: errors and routed control
///   replies either reach the peer or the sink reports the connection
///   dead (`false`). Dropping them on queue pressure is not an option —
///   that was the silent-`Response::Err`-loss bug.
pub trait ResponseSink: Send {
    /// Offers a cumulative ack. Returns `true` if the sink took
    /// responsibility for (eventually) delivering an ack at least this
    /// new.
    fn ack(&self, session: u64, through_step: u64) -> bool;

    /// Delivers an error or routed reply, blocking or buffering as the
    /// transport requires. Returns `false` only when the peer is gone.
    fn send(&self, resp: Response) -> bool;
}

/// The in-process sink: a plain bounded channel. Acks `try_send` (the
/// documented advisory semantics — an unread channel loses acks rather
/// than wedging the shard); errors block, so they are never lost while
/// the receiver lives.
impl ResponseSink for SyncSender<Response> {
    fn ack(&self, session: u64, through_step: u64) -> bool {
        self.try_send(Response::Ack {
            session,
            through_step,
        })
        .is_ok()
    }

    fn send(&self, resp: Response) -> bool {
        SyncSender::send(self, resp).is_ok()
    }
}

/// Where a job's outcome goes.
pub(crate) enum Reply {
    /// Strict request/reply: the caller blocks on this one-shot channel.
    Sync(SyncSender<Response>),
    /// Fire-and-forget event path: the sink is the connection's
    /// outbound queue. Acks are offered per [`ResponseSink::ack`];
    /// errors go through the must-deliver [`ResponseSink::send`].
    Acked(Box<dyn ResponseSink>),
    /// A control request whose reply is delivered through the sink
    /// instead of a blocking one-shot channel — the reactor's
    /// nonblocking control path. The reply (whatever it is) is
    /// [`ResponseSink::send`]-ed.
    Routed(Box<dyn ResponseSink>),
}

pub(crate) enum Job {
    Req(Request, Reply),
    /// Queue poison: the worker folds everything enqueued before this
    /// marker, then exits. Shutdown's drain guarantee rides on channel
    /// FIFO order.
    Stop,
}

/// Why a nonblocking submit did not enqueue.
pub(crate) enum SubmitError {
    /// The shard queue is full; the job is handed back so the caller
    /// can park it and retry. This is the reactor's backpressure edge.
    Full(Job),
    /// The server is shut down; nothing was or will be enqueued.
    Down,
}

/// The server: a set of shard queues feeding worker threads.
///
/// Share it behind an [`std::sync::Arc`] — every method takes `&self`.
/// The in-process entry points are [`MonitorServer::request`]
/// (synchronous) and [`MonitorServer::post`] (fire-and-forget with
/// cumulative acks); the socket front ends in [`crate::net`] decode
/// frames into the same calls.
#[derive(Debug)]
pub struct MonitorServer {
    /// Immutable after construction: routing is an index + send, with
    /// no lock and no sender clone on the per-event path.
    shards: Box<[SyncSender<Job>]>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    down: AtomicBool,
}

struct Session {
    guard: Guarded<SpecMonitor>,
    gs: Option<GuardState<SpecState>>,
    /// The optional stream-SLO check riding next to the safety spec.
    /// Always *observing* — an SLO verdict reports, it never vetoes
    /// ingest — and outside the guard: its evaluation is statically
    /// memory-bounded and cannot panic on event data.
    stream: Option<(StreamMonitor, StreamState)>,
    enforcing: bool,
    window: VecDeque<TapeEvent>,
    window_dropped: u64,
    window_cap: usize,
    /// Checkpoint interval in ingested events (0 = off): at each
    /// boundary the replay window is compacted away.
    checkpoint_every: usize,
    ingested: u64,
    /// Highest event step folded so far — what a cumulative ack quotes.
    last_step: u64,
    /// `ingested` as of the last ack successfully sent.
    acked_at: u64,
    earliest_violation: Option<u64>,
    accepted: Option<bool>,
    swap_truncated: bool,
}

fn stream_monitor(src: &str, session: u64) -> Result<(StreamMonitor, StreamState), String> {
    let m = StreamMonitor::new(format!("session-{session}-stream"), src)
        .map_err(|e| format!("stream spec: {e}"))?;
    let s = m.initial_state();
    Ok((m, s))
}

impl Session {
    fn open(
        spec: &str,
        stream: Option<&str>,
        session: u64,
        enforcing: bool,
        config: &ServerConfig,
    ) -> Result<Session, String> {
        let mut monitor =
            SpecMonitor::new(format!("session-{session}"), spec).map_err(|e| e.to_string())?;
        if enforcing {
            monitor = monitor.enforcing();
        }
        let stream = stream.map(|src| stream_monitor(src, session)).transpose()?;
        let guard = Guarded::new(monitor)
            .policy(config.policy)
            .budget(config.budget);
        let gs = guard.initial_state();
        Ok(Session {
            guard,
            gs: Some(gs),
            stream,
            enforcing,
            window: VecDeque::new(),
            window_dropped: 0,
            window_cap: config.swap_window.max(1),
            checkpoint_every: config.checkpoint_every,
            ingested: 0,
            last_step: 0,
            acked_at: 0,
            earliest_violation: None,
            accepted: None,
            swap_truncated: false,
        })
    }

    fn gs(&self) -> &GuardState<SpecState> {
        self.gs.as_ref().expect("session guard state present")
    }

    fn verdict(&self, session: u64) -> Verdict {
        let gs = self.gs();
        Verdict {
            session,
            ingested: self.ingested,
            health: match &gs.health {
                Health::Ok => "ok".to_string(),
                Health::Aborted(r) => format!("aborted: {r}"),
                Health::Quarantined(r) => format!("quarantined: {r}"),
                Health::OverBudget(r) => format!("over-budget: {r}"),
            },
            violation: gs.state.violation.clone(),
            earliest_violation: self.earliest_violation,
            accepted: self.accepted,
            swap_truncated: self.swap_truncated,
            firings: self.stream.as_ref().map_or(0, |(_, s)| s.fired_total),
            missed: self.stream.as_ref().map_or(0, |(_, s)| s.missed_total),
        }
    }

    /// Feeds one event through the guarded monitor. Takes the event by
    /// value: after folding (by reference) it is *moved* into the
    /// replay window, so the hot path allocates nothing per event
    /// beyond what the monitors themselves do.
    fn ingest(&mut self, ev: TapeEvent) {
        self.ingested += 1;
        self.last_step = self.last_step.max(ev.step);
        if self.checkpoint_every > 0
            && self.ingested.is_multiple_of(self.checkpoint_every as u64)
            && !self.window.is_empty()
        {
            // Checkpoint boundary: compact the replay window away. A
            // swap after this point splices from a shorter (possibly
            // empty) suffix and reports `swap_truncated`.
            self.window_dropped += self.window.len() as u64;
            self.window.clear();
        }
        if self.accepted.is_some() {
            // The trace already ended; late events are counted but not
            // judged.
            return;
        }
        if ev.phase == TapePhase::Done {
            self.finish(ev.time);
            return;
        }
        if let Some((m, s)) = self.stream.take() {
            let s = match m.advance_tape_event(s, &ev) {
                Outcome::Continue(s) | Outcome::Abort { state: s, .. } => s,
            };
            self.stream = Some((m, s));
        }
        let gs = self.gs.take().expect("session guard state present");
        let had_violation = gs.state.violation.is_some();
        let gs = match self
            .guard
            .guard_with(gs, |m, s| m.advance_tape_event(s, &ev))
        {
            Outcome::Continue(gs) => gs,
            Outcome::Abort { state: gs, .. } => {
                // Enforcing abort: the trace is over for this session.
                self.accepted = Some(false);
                gs
            }
        };
        if !had_violation && gs.state.violation.is_some() && self.earliest_violation.is_none() {
            self.earliest_violation = Some(ev.step);
        }
        self.gs = Some(gs);
        if self.window.len() == self.window_cap {
            self.window.pop_front();
            self.window_dropped += 1;
        }
        self.window.push_back(ev);
    }

    /// Ends the trace: runs the end-of-trace check and pins acceptance.
    /// `end_time` is the `done` marker's timestamp (for deadline
    /// end-gap checks), when the tape carries one.
    fn finish(&mut self, end_time: Option<u64>) {
        if let Some((m, s)) = &mut self.stream {
            *s = m.finish(s, end_time);
        }
        let gs = self.gs.as_mut().expect("session guard state present");
        if !gs.health.is_ok() {
            // A degraded monitor renders no verdict on the full trace.
            self.accepted = None;
            return;
        }
        match self.guard.inner().finish(&gs.state) {
            Ok(done) => {
                gs.state = done;
                self.accepted = Some(true);
            }
            Err(reason) => {
                if gs.state.violation.is_none() {
                    gs.state.violation = Some(reason);
                }
                self.accepted = Some(false);
            }
        }
    }

    /// Hot-swaps the session's specs, splicing state by replaying the
    /// retained window through the new monitors. `None` keeps the
    /// corresponding spec in force unchanged — in particular a stream
    /// spec survives a safety-spec swap, and vice versa.
    fn swap(
        &mut self,
        spec: Option<&str>,
        stream: Option<&str>,
        session: u64,
        config: &ServerConfig,
    ) -> Result<(), String> {
        // Compile both before installing either: a swap is atomic.
        let new_safety = spec
            .map(|src| {
                let mut m = SpecMonitor::new(format!("session-{session}"), src)
                    .map_err(|e| e.to_string())?;
                if self.enforcing {
                    m = m.enforcing();
                }
                Ok::<_, String>(m)
            })
            .transpose()?;
        let new_stream = stream.map(|src| stream_monitor(src, session)).transpose()?;
        if let Some(monitor) = new_safety {
            let (state, earliest) = splice_state(&monitor, self.window.iter());
            let guard = Guarded::new(monitor)
                .policy(config.policy)
                .budget(config.budget);
            let mut gs = guard.initial_state();
            gs.state = state;
            self.guard = guard;
            self.gs = Some(gs);
            self.earliest_violation = earliest;
        }
        if let Some((m, mut s)) = new_stream {
            for ev in &self.window {
                s = match m.advance_tape_event(s, ev) {
                    Outcome::Continue(s) | Outcome::Abort { state: s, .. } => s,
                };
            }
            self.stream = Some((m, s));
        }
        if spec.is_some() || stream.is_some() {
            self.swap_truncated = self.window_dropped > 0;
        }
        if self.accepted.is_some() {
            // The trace had already ended; re-judge it under the new
            // specs so the close verdict reflects what is now in force.
            self.accepted = None;
            self.finish(None);
        }
        Ok(())
    }
}

/// Replays `window` through `monitor` from its initial state, returning
/// the spliced state and the step of the earliest violating event seen
/// during the replay. This is the pure core of hot-swap, shared with the
/// tests that assert splice ≡ running the new spec over the same suffix.
pub fn splice_state<'a>(
    monitor: &SpecMonitor,
    window: impl IntoIterator<Item = &'a TapeEvent>,
) -> (SpecState, Option<u64>) {
    let mut state = monitor.initial_state();
    let mut earliest = None;
    for ev in window {
        let had = state.violation.is_some();
        state = match monitor.advance_tape_event(state, ev) {
            Outcome::Continue(s) | Outcome::Abort { state: s, .. } => s,
        };
        if !had && state.violation.is_some() && earliest.is_none() {
            earliest = Some(ev.step);
        }
    }
    (state, earliest)
}

pub(crate) fn req_session(req: &Request) -> u64 {
    match req {
        Request::Open { session, .. }
        | Request::Events { session, .. }
        | Request::Swap { session, .. }
        | Request::Close { session }
        | Request::EventBatch { session, .. } => *session,
    }
}

fn handle(sessions: &mut HashMap<u64, Session>, config: &ServerConfig, req: Request) -> Response {
    match req {
        Request::Open {
            session,
            enforcing,
            spec,
            stream,
        } => match Session::open(&spec, stream.as_deref(), session, enforcing, config) {
            Ok(s) => {
                sessions.insert(session, s);
                Response::Ok
            }
            Err(e) => Response::Err(format!("open session {session}: {e}")),
        },
        Request::Events { session, events } => match sessions.get_mut(&session) {
            Some(s) => {
                for ev in events {
                    s.ingest(ev);
                }
                Response::Verdict(s.verdict(session))
            }
            None => Response::Err(format!("no such session {session}")),
        },
        Request::EventBatch { session, tape } => match read_tape(&tape) {
            Ok(events) => match sessions.get_mut(&session) {
                Some(s) => {
                    // The batch fold: N events advance the monitor
                    // back-to-back without touching the shard queue (or
                    // any reply machinery) between them.
                    for ev in events {
                        s.ingest(ev);
                    }
                    Response::Verdict(s.verdict(session))
                }
                None => Response::Err(format!("no such session {session}")),
            },
            Err(e) => Response::Err(format!("batch for session {session}: {e}")),
        },
        Request::Swap {
            session,
            spec,
            stream,
        } => match sessions.get_mut(&session) {
            Some(s) => match s.swap(spec.as_deref(), stream.as_deref(), session, config) {
                Ok(()) => Response::Verdict(s.verdict(session)),
                Err(e) => Response::Err(format!("swap session {session}: {e}")),
            },
            None => Response::Err(format!("no such session {session}")),
        },
        Request::Close { session } => match sessions.remove(&session) {
            Some(mut s) => {
                if s.accepted.is_none() {
                    // Closing ends the trace.
                    s.finish(None);
                }
                Response::Verdict(s.verdict(session))
            }
            None => Response::Err(format!("no such session {session}")),
        },
    }
}

fn worker(rx: Receiver<Job>, config: ServerConfig) {
    let mut sessions: HashMap<u64, Session> = HashMap::new();
    let ack_every = config.ack_every.max(1) as u64;
    while let Ok(job) = rx.recv() {
        match job {
            Job::Stop => break,
            Job::Req(req, Reply::Sync(reply)) => {
                let resp = handle(&mut sessions, &config, req);
                // A dead requester is not the worker's problem.
                let _ = reply.send(resp);
            }
            Job::Req(req, Reply::Acked(sink)) => {
                let session = req_session(&req);
                match handle(&mut sessions, &config, req) {
                    Response::Verdict(_) => {
                        // Folded. Ack cumulatively once the window
                        // fills; a declined ack just defers to a later
                        // boundary (never to before the fold — the
                        // events are already in the monitor).
                        if let Some(s) = sessions.get_mut(&session) {
                            if s.ingested - s.acked_at >= ack_every
                                && sink.ack(session, s.last_step)
                            {
                                s.acked_at = s.ingested;
                            }
                        }
                    }
                    err @ Response::Err(_) => {
                        // Must-deliver: a full outbound queue blocks or
                        // buffers, it never eats the error.
                        let _ = sink.send(err);
                    }
                    _ => {}
                }
            }
            Job::Req(req, Reply::Routed(sink)) => {
                let resp = handle(&mut sessions, &config, req);
                // A dead connection is not the worker's problem.
                let _ = sink.send(resp);
            }
        }
    }
}

impl MonitorServer {
    /// Starts the worker pool.
    pub fn start(config: ServerConfig) -> MonitorServer {
        let shard_count = config.shards.max(1);
        let mut shards = Vec::with_capacity(shard_count);
        let mut workers = Vec::with_capacity(shard_count);
        for i in 0..shard_count {
            let (tx, rx) = sync_channel(config.queue_depth.max(1));
            let cfg = config.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("monsem-shard-{i}"))
                    .spawn(move || worker(rx, cfg))
                    .expect("spawn shard worker"),
            );
            shards.push(tx);
        }
        MonitorServer {
            shards: shards.into_boxed_slice(),
            workers: Mutex::new(workers),
            down: AtomicBool::new(false),
        }
    }

    /// The shard sender for `session`, or `None` once the server is
    /// shutting down. No lock: the table is immutable for the server's
    /// lifetime, so routing is a flag load and an index.
    fn route(&self, session: u64) -> Option<&SyncSender<Job>> {
        if self.down.load(Ordering::Acquire) {
            return None;
        }
        Some(&self.shards[(session % self.shards.len() as u64) as usize])
    }

    /// Routes a request to its session's shard and waits for the reply.
    /// Blocks while the shard's bounded queue is full — this is the
    /// backpressure producers feel.
    pub fn request(&self, req: Request) -> Response {
        let Some(tx) = self.route(req_session(&req)) else {
            return Response::Err("server is shut down".to_string());
        };
        let (reply_tx, reply_rx) = sync_channel(1);
        if tx.send(Job::Req(req, Reply::Sync(reply_tx))).is_err() {
            return Response::Err("server is shut down".to_string());
        }
        reply_rx
            .recv()
            .unwrap_or_else(|_| Response::Err("server worker died".to_string()))
    }

    /// Enqueues an event request fire-and-forget: no per-message reply
    /// is produced. The shard folds the events and offers a cumulative
    /// [`Response::Ack`] into `out` — the connection's outbound frame
    /// queue — every [`ServerConfig::ack_every`] ingested events
    /// (advisory `try_send`; see [`ResponseSink::ack`]). Errors are
    /// must-deliver: they block on a full queue rather than vanish.
    /// Returns `false` if the server is shut down (nothing was
    /// enqueued).
    ///
    /// Meant for [`Request::Events`] and [`Request::EventBatch`] only —
    /// control requests belong on the synchronous
    /// [`MonitorServer::request`] path (posting one here folds it but
    /// discards its non-error reply). Blocks while the shard queue is
    /// full, like [`MonitorServer::request`].
    pub fn post(&self, req: Request, out: SyncSender<Response>) -> bool {
        self.post_with(req, Box::new(out))
    }

    /// [`MonitorServer::post`] generalized over the outcome sink: the
    /// socket front ends pass their per-connection outbound buffers
    /// here instead of a channel.
    pub fn post_with(&self, req: Request, sink: Box<dyn ResponseSink>) -> bool {
        match self.route(req_session(&req)) {
            Some(tx) => tx.send(Job::Req(req, Reply::Acked(sink))).is_ok(),
            None => false,
        }
    }

    /// Nonblocking submit for readiness-driven callers: offers `job` to
    /// `session`'s shard queue and *returns* instead of blocking when
    /// the queue is full, handing the job back so the caller can park
    /// the connection and retry. The reactor's per-connection
    /// backpressure is built on this edge.
    pub(crate) fn try_submit(&self, session: u64, job: Job) -> Result<(), SubmitError> {
        let Some(tx) = self.route(session) else {
            return Err(SubmitError::Down);
        };
        tx.try_send(job).map_err(|e| match e {
            TrySendError::Full(job) => SubmitError::Full(job),
            TrySendError::Disconnected(_) => SubmitError::Down,
        })
    }

    /// Opens a session running `spec`.
    pub fn open(&self, session: u64, spec: &str, enforcing: bool) -> Response {
        self.request(Request::Open {
            session,
            enforcing,
            spec: spec.to_string(),
            stream: None,
        })
    }

    /// Opens a session running `spec` with a stream-SLO check beside it.
    pub fn open_with_stream(
        &self,
        session: u64,
        spec: &str,
        stream: &str,
        enforcing: bool,
    ) -> Response {
        self.request(Request::Open {
            session,
            enforcing,
            spec: spec.to_string(),
            stream: Some(stream.to_string()),
        })
    }

    /// Streams events into a session.
    pub fn events(&self, session: u64, events: Vec<TapeEvent>) -> Response {
        self.request(Request::Events { session, events })
    }

    /// Hot-swaps a session's safety spec (the stream spec, if any,
    /// stays in force).
    pub fn swap(&self, session: u64, spec: &str) -> Response {
        self.request(Request::Swap {
            session,
            spec: Some(spec.to_string()),
            stream: None,
        })
    }

    /// Hot-swaps a session's stream spec (the safety spec stays in
    /// force).
    pub fn swap_stream(&self, session: u64, stream: &str) -> Response {
        self.request(Request::Swap {
            session,
            spec: None,
            stream: Some(stream.to_string()),
        })
    }

    /// Closes a session, ending its trace.
    pub fn close(&self, session: u64) -> Response {
        self.request(Request::Close { session })
    }

    /// Stops accepting requests, drains the queues, and joins the
    /// workers.
    ///
    /// The drain is real: the intake flag flips first, then each shard
    /// queue is poisoned with a `Job::Stop` marker. Channel FIFO
    /// order means every job enqueued before the marker is still
    /// folded (and replied to or acked) before its worker exits — a
    /// stopped server never acknowledges an event it did not fold, and
    /// never drops a queued one.
    pub fn shutdown(&self) {
        self.down.store(true, Ordering::Release);
        for tx in self.shards.iter() {
            // Err here means the worker already exited — fine.
            let _ = tx.send(Job::Stop);
        }
        let workers: Vec<_> = self
            .workers
            .lock()
            .expect("worker table lock")
            .drain(..)
            .collect();
        for w in workers {
            let _ = w.join();
        }
    }
}

impl Drop for MonitorServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monsem_core::Value;
    use monsem_syntax::Annotation;

    fn post(name: &str, v: i64, step: u64) -> TapeEvent {
        TapeEvent::post(&Annotation::label(name), &Value::Int(v), step)
    }

    fn verdict(resp: Response) -> Verdict {
        match resp {
            Response::Verdict(v) => v,
            other => panic!("expected verdict, got {other:?}"),
        }
    }

    #[test]
    fn session_lifecycle_reports_the_violation() {
        let server = MonitorServer::start(ServerConfig::default());
        assert_eq!(server.open(1, "never(post(b))", false), Response::Ok);
        let v = verdict(server.events(1, vec![post("a", 1, 0), post("b", 2, 1)]));
        assert_eq!(v.ingested, 2);
        assert!(v.violation.as_deref().unwrap().contains("post b"));
        assert_eq!(v.earliest_violation, Some(1));
        assert_eq!(v.accepted, None, "trace still open");
        let v = verdict(server.close(1));
        assert_eq!(v.accepted, Some(false));
        // The session is gone after close.
        assert!(matches!(server.events(1, vec![]), Response::Err(_)));
        server.shutdown();
    }

    #[test]
    fn done_event_pins_acceptance() {
        let server = MonitorServer::start(ServerConfig::default());
        server.open(2, "eventually(post(b))", false);
        let v = verdict(server.events(
            2,
            vec![post("a", 1, 0), post("b", 2, 1), TapeEvent::done(2)],
        ));
        assert_eq!(v.accepted, Some(true));
        assert_eq!(v.violation, None);
        server.shutdown();
    }

    #[test]
    fn swap_splices_from_the_window() {
        let server = MonitorServer::start(ServerConfig::default());
        server.open(3, "never(post(zzz))", false);
        verdict(server.events(3, vec![post("p", 5, 0), post("p", -5, 1)]));
        // The new spec sees the replayed suffix and flags the -5.
        let v = verdict(server.swap(3, "always(post(p) => value > 0)"));
        assert!(v.violation.as_deref().unwrap().contains("post p = -5"));
        assert_eq!(v.earliest_violation, Some(1));
        assert!(!v.swap_truncated);
        server.shutdown();
    }

    #[test]
    fn swap_past_the_window_is_flagged_truncated() {
        let config = ServerConfig {
            swap_window: 2,
            ..ServerConfig::default()
        };
        let server = MonitorServer::start(config);
        server.open(4, "never(post(zzz))", false);
        verdict(server.events(4, vec![post("p", -5, 0), post("p", 1, 1), post("p", 2, 2)]));
        // The violating step 0 fell out of the 2-event window.
        let v = verdict(server.swap(4, "always(post(p) => value > 0)"));
        assert_eq!(v.violation, None, "the evidence is out of the window");
        assert!(v.swap_truncated, "and the verdict says so");
        server.shutdown();
    }

    #[test]
    fn stream_slos_ride_next_to_the_safety_spec() {
        let server = MonitorServer::start(ServerConfig::default());
        assert_eq!(
            server.open_with_stream(
                7,
                "never(post(zzz))",
                "stream neg = count(value < 0) over window(10)\ntrigger any = neg >= 2",
                false,
            ),
            Response::Ok
        );
        let v = verdict(server.events(7, vec![post("p", -1, 0), post("p", 3, 1)]));
        assert_eq!(v.firings, 0, "one negative is below the trigger");
        let v = verdict(server.events(7, vec![post("p", -2, 2)]));
        assert_eq!(v.firings, 1);
        assert_eq!(v.violation, None, "SLO firings are not safety violations");
        // A safety-spec swap keeps the stream state in force.
        let v = verdict(server.swap(7, "never(post(yyy))"));
        assert_eq!(v.firings, 1);
        // A stream swap splices the new spec from the retained window:
        // value < 0 has two rising edges over [-1, 3, -2].
        let v = verdict(server.swap_stream(7, "trigger seen = value < 0"));
        assert_eq!(v.firings, 2);
        let v = verdict(server.close(7));
        assert_eq!(v.accepted, Some(true));
        server.shutdown();
    }

    #[test]
    fn stream_deadlines_miss_on_timed_gaps() {
        let server = MonitorServer::start(ServerConfig::default());
        server.open_with_stream(
            8,
            "never(post(zzz))",
            "deadline post(beat) every 50 ms",
            false,
        );
        let beat = |v: i64, step: u64, t: u64| {
            TapeEvent::post(&Annotation::label("beat"), &Value::Int(v), step).at(t)
        };
        let v = verdict(server.events(8, vec![beat(1, 0, 0), beat(1, 1, 40), beat(1, 2, 200)]));
        assert_eq!(v.missed, 1, "one 160 ms gap against a 50 ms period");
        let v = verdict(server.events(8, vec![TapeEvent::done(3).at(400)]));
        assert_eq!(v.missed, 2, "the end-of-trace gap misses again");
        assert_eq!(v.accepted, Some(true));
        server.shutdown();
    }

    #[test]
    fn bad_stream_specs_fail_open_and_swap() {
        let server = MonitorServer::start(ServerConfig::default());
        assert!(matches!(
            server.open_with_stream(9, "never(post(b))", "stream x = rate(post(p))", false),
            Response::Err(_)
        ));
        server.open(9, "never(post(b))", false);
        assert!(matches!(
            server.swap_stream(9, "trigger t = nosuch > 0"),
            Response::Err(_)
        ));
        server.shutdown();
    }

    #[test]
    fn unknown_sessions_and_bad_specs_error() {
        let server = MonitorServer::start(ServerConfig::default());
        assert!(matches!(server.events(9, vec![]), Response::Err(_)));
        assert!(matches!(server.open(9, "always(", false), Response::Err(_)));
        server.shutdown();
    }

    #[test]
    fn batched_ingest_matches_per_event_ingest() {
        let server = MonitorServer::start(ServerConfig::default());
        let events = vec![post("p", 5, 0), post("p", -5, 1), post("p", 7, 2)];
        server.open(10, "always(post(p) => value > 0)", false);
        server.open(11, "always(post(p) => value > 0)", false);
        let per_event = verdict(server.events(10, events.clone()));
        let batched = verdict(server.request(Request::EventBatch {
            session: 11,
            tape: crate::write_tape(&events),
        }));
        assert_eq!(per_event.ingested, batched.ingested);
        // Violation messages embed the session name; compare modulo it.
        for v in [&per_event, &batched] {
            assert!(v.violation.as_deref().unwrap().contains("post p = -5"));
        }
        assert_eq!(per_event.earliest_violation, batched.earliest_violation);
        server.shutdown();
    }

    #[test]
    fn posted_events_ack_cumulatively() {
        let config = ServerConfig {
            ack_every: 4,
            ..ServerConfig::default()
        };
        let server = MonitorServer::start(config);
        server.open(12, "never(post(zzz))", false);
        let (out, acks) = sync_channel(64);
        for chunk in 0..3u64 {
            let events: Vec<_> = (0..4).map(|i| post("p", 1, chunk * 4 + i)).collect();
            assert!(server.post(
                Request::EventBatch {
                    session: 12,
                    tape: crate::write_tape(&events),
                },
                out.clone(),
            ));
        }
        // Close is the barrier: after its verdict, all prior acks are
        // in the queue.
        let v = verdict(server.close(12));
        assert_eq!(v.ingested, 12);
        drop(out);
        let acked: Vec<_> = acks.iter().collect();
        assert_eq!(acked.len(), 3, "one cumulative ack per 4-event window");
        let steps: Vec<_> = acked
            .iter()
            .map(|a| match a {
                Response::Ack {
                    session,
                    through_step,
                } => {
                    assert_eq!(*session, 12);
                    *through_step
                }
                other => panic!("expected ack, got {other:?}"),
            })
            .collect();
        assert_eq!(steps, vec![3, 7, 11], "acks are cumulative and ordered");
        server.shutdown();
    }

    #[test]
    fn posting_to_a_missing_session_reports_the_error() {
        let server = MonitorServer::start(ServerConfig::default());
        let (out, errs) = sync_channel(4);
        assert!(server.post(
            Request::Events {
                session: 99,
                events: vec![post("p", 1, 0)],
            },
            out,
        ));
        assert!(matches!(errs.recv().unwrap(), Response::Err(_)));
        server.shutdown();
    }

    #[test]
    fn checkpoints_compact_the_swap_window() {
        let config = ServerConfig {
            checkpoint_every: 4,
            ..ServerConfig::default()
        };
        let server = MonitorServer::start(config);
        server.open(13, "never(post(zzz))", false);
        // The violating -5 at step 1 falls before the checkpoint at
        // ingested = 4, so the compacted window cannot re-judge it.
        verdict(server.events(
            13,
            vec![
                post("p", 5, 0),
                post("p", -5, 1),
                post("p", 6, 2),
                post("p", 7, 3),
                post("p", 8, 4),
            ],
        ));
        let v = verdict(server.swap(13, "always(post(p) => value > 0)"));
        assert_eq!(v.violation, None, "the evidence predates the checkpoint");
        assert!(v.swap_truncated, "and the verdict says so");
        server.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_events_before_acking_stops() {
        // The drain guarantee, observed through acks: everything posted
        // before shutdown is folded, and every ack quotes only folded
        // steps — a stopped server never acks an event it did not fold.
        let config = ServerConfig {
            shards: 1,
            ack_every: 1,
            ..ServerConfig::default()
        };
        let server = MonitorServer::start(config);
        server.open(14, "never(post(zzz))", false);
        let (out, acks) = sync_channel(256);
        let last_step = 29;
        for step in 0..=last_step {
            assert!(server.post(
                Request::Events {
                    session: 14,
                    events: vec![post("p", 1, step)],
                },
                out.clone(),
            ));
        }
        server.shutdown();
        drop(out);
        let steps: Vec<u64> = acks
            .iter()
            .map(|a| match a {
                Response::Ack { through_step, .. } => through_step,
                other => panic!("expected ack, got {other:?}"),
            })
            .collect();
        assert_eq!(
            steps.last().copied(),
            Some(last_step),
            "the drain folded (and acked) everything queued before stop"
        );
        assert!(steps.windows(2).all(|w| w[0] < w[1]), "acks are monotonic");
        // And the intake really is closed.
        assert!(matches!(server.close(14), Response::Err(_)));
        assert!(!server.post(
            Request::Events {
                session: 14,
                events: vec![],
            },
            sync_channel(1).0,
        ));
    }

    #[test]
    fn enforcing_sessions_stop_at_the_violation() {
        let config = ServerConfig {
            policy: FaultPolicy::Fatal,
            ..ServerConfig::default()
        };
        let server = MonitorServer::start(config);
        server.open(5, "never(post(b))", true);
        let v = verdict(server.events(5, vec![post("b", 1, 0), post("a", 2, 1)]));
        assert_eq!(v.accepted, Some(false), "enforcing abort ends the trace");
        assert_eq!(v.ingested, 2, "late events are counted, not judged");
        assert_eq!(v.earliest_violation, Some(0));
        server.shutdown();
    }
}
