//! A long-lived monitor server: many producer sessions stream tape
//! events in, a sharded worker pool advances one guarded spec monitor
//! per session, and verdicts flow back.
//!
//! Design points:
//!
//! * **Sharding** — sessions are routed to `shards` worker threads by
//!   session id, so one server ingests many concurrent tapes while each
//!   session's events stay strictly ordered.
//! * **Backpressure** — each shard's queue is a *bounded*
//!   [`std::sync::mpsc::sync_channel`] of depth
//!   [`ServerConfig::queue_depth`]; producers that outrun the monitor
//!   block on ingest rather than ballooning server memory.
//! * **Fault policy** — every session's monitor is wrapped in
//!   [`Guarded`], so the existing fault machinery applies unchanged: a
//!   panicking or aborting spec under [`FaultPolicy::Quarantine`]
//!   degrades that session to the identity monitor (ingest continues,
//!   verdicts report the degradation), and [`Budget`]s meter how much
//!   monitoring work a session may consume.
//! * **Hot-swap** — [`Request::Swap`] compiles a new spec and *splices*
//!   session state by replaying the session's bounded suffix window
//!   (the last [`ServerConfig::swap_window`] events) through the new
//!   automaton. If the window had already dropped older events the
//!   verdict flags `swap_truncated`: the new spec judged only the
//!   suffix it could see.
//! * **Stream SLOs** — a session may carry a
//!   [`monsem_stream::StreamMonitor`] next to its safety spec: trigger
//!   firings and deadline misses are reported in every [`Verdict`]. The
//!   stream check is always observing, survives safety-spec swaps, and
//!   can itself be hot-swapped (splicing by the same window replay).

use crate::proto::{Request, Response, Verdict};
use monsem_monitor::tape::{TapeEvent, TapePhase};
use monsem_monitor::{Budget, FaultPolicy, GuardState, Guarded, Health, Monitor, Outcome};
use monsem_stream::{StreamMonitor, StreamState};
use monsem_tspec::{SpecMonitor, SpecState, DEFAULT_REPLAY_CAP};
use std::collections::{HashMap, VecDeque};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Mutex;
use std::thread::JoinHandle;

/// Tuning knobs for a [`MonitorServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads; sessions are routed by `session % shards`.
    pub shards: usize,
    /// Bounded per-shard queue depth — the backpressure window.
    pub queue_depth: usize,
    /// How many recent events each session retains for hot-swap splicing.
    pub swap_window: usize,
    /// Fault policy for every session's [`Guarded`] wrapper.
    pub policy: FaultPolicy,
    /// Monitoring budget for every session.
    pub budget: Budget,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            shards: 4,
            queue_depth: 256,
            swap_window: DEFAULT_REPLAY_CAP,
            policy: FaultPolicy::Quarantine,
            budget: Budget::default(),
        }
    }
}

type Job = (Request, SyncSender<Response>);

/// The server: a set of shard queues feeding worker threads.
///
/// Share it behind an [`std::sync::Arc`] — every method takes `&self`.
/// The in-process entry point is [`MonitorServer::request`]; the socket
/// front ends in [`crate::net`] decode frames into the same calls.
#[derive(Debug)]
pub struct MonitorServer {
    shards: Mutex<Vec<SyncSender<Job>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

struct Session {
    guard: Guarded<SpecMonitor>,
    gs: Option<GuardState<SpecState>>,
    /// The optional stream-SLO check riding next to the safety spec.
    /// Always *observing* — an SLO verdict reports, it never vetoes
    /// ingest — and outside the guard: its evaluation is statically
    /// memory-bounded and cannot panic on event data.
    stream: Option<(StreamMonitor, StreamState)>,
    enforcing: bool,
    window: VecDeque<TapeEvent>,
    window_dropped: u64,
    window_cap: usize,
    ingested: u64,
    earliest_violation: Option<u64>,
    accepted: Option<bool>,
    swap_truncated: bool,
}

fn stream_monitor(src: &str, session: u64) -> Result<(StreamMonitor, StreamState), String> {
    let m = StreamMonitor::new(format!("session-{session}-stream"), src)
        .map_err(|e| format!("stream spec: {e}"))?;
    let s = m.initial_state();
    Ok((m, s))
}

impl Session {
    fn open(
        spec: &str,
        stream: Option<&str>,
        session: u64,
        enforcing: bool,
        config: &ServerConfig,
    ) -> Result<Session, String> {
        let mut monitor =
            SpecMonitor::new(format!("session-{session}"), spec).map_err(|e| e.to_string())?;
        if enforcing {
            monitor = monitor.enforcing();
        }
        let stream = stream.map(|src| stream_monitor(src, session)).transpose()?;
        let guard = Guarded::new(monitor)
            .policy(config.policy)
            .budget(config.budget);
        let gs = guard.initial_state();
        Ok(Session {
            guard,
            gs: Some(gs),
            stream,
            enforcing,
            window: VecDeque::new(),
            window_dropped: 0,
            window_cap: config.swap_window.max(1),
            ingested: 0,
            earliest_violation: None,
            accepted: None,
            swap_truncated: false,
        })
    }

    fn gs(&self) -> &GuardState<SpecState> {
        self.gs.as_ref().expect("session guard state present")
    }

    fn verdict(&self, session: u64) -> Verdict {
        let gs = self.gs();
        Verdict {
            session,
            ingested: self.ingested,
            health: match &gs.health {
                Health::Ok => "ok".to_string(),
                Health::Aborted(r) => format!("aborted: {r}"),
                Health::Quarantined(r) => format!("quarantined: {r}"),
                Health::OverBudget(r) => format!("over-budget: {r}"),
            },
            violation: gs.state.violation.clone(),
            earliest_violation: self.earliest_violation,
            accepted: self.accepted,
            swap_truncated: self.swap_truncated,
            firings: self.stream.as_ref().map_or(0, |(_, s)| s.fired_total),
            missed: self.stream.as_ref().map_or(0, |(_, s)| s.missed_total),
        }
    }

    /// Feeds one event through the guarded monitor.
    fn ingest(&mut self, ev: &TapeEvent) {
        self.ingested += 1;
        if self.accepted.is_some() {
            // The trace already ended; late events are counted but not
            // judged.
            return;
        }
        if ev.phase == TapePhase::Done {
            self.finish(ev.time);
            return;
        }
        if self.window.len() == self.window_cap {
            self.window.pop_front();
            self.window_dropped += 1;
        }
        self.window.push_back(ev.clone());
        if let Some((m, s)) = self.stream.take() {
            let s = match m.advance_tape_event(s, ev) {
                Outcome::Continue(s) | Outcome::Abort { state: s, .. } => s,
            };
            self.stream = Some((m, s));
        }
        let gs = self.gs.take().expect("session guard state present");
        let had_violation = gs.state.violation.is_some();
        let gs = match self
            .guard
            .guard_with(gs, |m, s| m.advance_tape_event(s, ev))
        {
            Outcome::Continue(gs) => gs,
            Outcome::Abort { state: gs, .. } => {
                // Enforcing abort: the trace is over for this session.
                self.accepted = Some(false);
                gs
            }
        };
        if !had_violation && gs.state.violation.is_some() && self.earliest_violation.is_none() {
            self.earliest_violation = Some(ev.step);
        }
        self.gs = Some(gs);
    }

    /// Ends the trace: runs the end-of-trace check and pins acceptance.
    /// `end_time` is the `done` marker's timestamp (for deadline
    /// end-gap checks), when the tape carries one.
    fn finish(&mut self, end_time: Option<u64>) {
        if let Some((m, s)) = &mut self.stream {
            *s = m.finish(s, end_time);
        }
        let gs = self.gs.as_mut().expect("session guard state present");
        if !gs.health.is_ok() {
            // A degraded monitor renders no verdict on the full trace.
            self.accepted = None;
            return;
        }
        match self.guard.inner().finish(&gs.state) {
            Ok(done) => {
                gs.state = done;
                self.accepted = Some(true);
            }
            Err(reason) => {
                if gs.state.violation.is_none() {
                    gs.state.violation = Some(reason);
                }
                self.accepted = Some(false);
            }
        }
    }

    /// Hot-swaps the session's specs, splicing state by replaying the
    /// retained window through the new monitors. `None` keeps the
    /// corresponding spec in force unchanged — in particular a stream
    /// spec survives a safety-spec swap, and vice versa.
    fn swap(
        &mut self,
        spec: Option<&str>,
        stream: Option<&str>,
        session: u64,
        config: &ServerConfig,
    ) -> Result<(), String> {
        // Compile both before installing either: a swap is atomic.
        let new_safety = spec
            .map(|src| {
                let mut m = SpecMonitor::new(format!("session-{session}"), src)
                    .map_err(|e| e.to_string())?;
                if self.enforcing {
                    m = m.enforcing();
                }
                Ok::<_, String>(m)
            })
            .transpose()?;
        let new_stream = stream.map(|src| stream_monitor(src, session)).transpose()?;
        if let Some(monitor) = new_safety {
            let (state, earliest) = splice_state(&monitor, self.window.iter());
            let guard = Guarded::new(monitor)
                .policy(config.policy)
                .budget(config.budget);
            let mut gs = guard.initial_state();
            gs.state = state;
            self.guard = guard;
            self.gs = Some(gs);
            self.earliest_violation = earliest;
        }
        if let Some((m, mut s)) = new_stream {
            for ev in &self.window {
                s = match m.advance_tape_event(s, ev) {
                    Outcome::Continue(s) | Outcome::Abort { state: s, .. } => s,
                };
            }
            self.stream = Some((m, s));
        }
        if spec.is_some() || stream.is_some() {
            self.swap_truncated = self.window_dropped > 0;
        }
        if self.accepted.is_some() {
            // The trace had already ended; re-judge it under the new
            // specs so the close verdict reflects what is now in force.
            self.accepted = None;
            self.finish(None);
        }
        Ok(())
    }
}

/// Replays `window` through `monitor` from its initial state, returning
/// the spliced state and the step of the earliest violating event seen
/// during the replay. This is the pure core of hot-swap, shared with the
/// tests that assert splice ≡ running the new spec over the same suffix.
pub fn splice_state<'a>(
    monitor: &SpecMonitor,
    window: impl IntoIterator<Item = &'a TapeEvent>,
) -> (SpecState, Option<u64>) {
    let mut state = monitor.initial_state();
    let mut earliest = None;
    for ev in window {
        let had = state.violation.is_some();
        state = match monitor.advance_tape_event(state, ev) {
            Outcome::Continue(s) | Outcome::Abort { state: s, .. } => s,
        };
        if !had && state.violation.is_some() && earliest.is_none() {
            earliest = Some(ev.step);
        }
    }
    (state, earliest)
}

fn handle(sessions: &mut HashMap<u64, Session>, config: &ServerConfig, req: Request) -> Response {
    match req {
        Request::Open {
            session,
            enforcing,
            spec,
            stream,
        } => match Session::open(&spec, stream.as_deref(), session, enforcing, config) {
            Ok(s) => {
                sessions.insert(session, s);
                Response::Ok
            }
            Err(e) => Response::Err(format!("open session {session}: {e}")),
        },
        Request::Events { session, events } => match sessions.get_mut(&session) {
            Some(s) => {
                for ev in &events {
                    s.ingest(ev);
                }
                Response::Verdict(s.verdict(session))
            }
            None => Response::Err(format!("no such session {session}")),
        },
        Request::Swap {
            session,
            spec,
            stream,
        } => match sessions.get_mut(&session) {
            Some(s) => match s.swap(spec.as_deref(), stream.as_deref(), session, config) {
                Ok(()) => Response::Verdict(s.verdict(session)),
                Err(e) => Response::Err(format!("swap session {session}: {e}")),
            },
            None => Response::Err(format!("no such session {session}")),
        },
        Request::Close { session } => match sessions.remove(&session) {
            Some(mut s) => {
                if s.accepted.is_none() {
                    // Closing ends the trace.
                    s.finish(None);
                }
                Response::Verdict(s.verdict(session))
            }
            None => Response::Err(format!("no such session {session}")),
        },
    }
}

fn worker(rx: Receiver<Job>, config: ServerConfig) {
    let mut sessions: HashMap<u64, Session> = HashMap::new();
    while let Ok((req, reply)) = rx.recv() {
        let resp = handle(&mut sessions, &config, req);
        // A dead requester is not the worker's problem.
        let _ = reply.send(resp);
    }
}

impl MonitorServer {
    /// Starts the worker pool.
    pub fn start(config: ServerConfig) -> MonitorServer {
        let shard_count = config.shards.max(1);
        let mut shards = Vec::with_capacity(shard_count);
        let mut workers = Vec::with_capacity(shard_count);
        for i in 0..shard_count {
            let (tx, rx) = sync_channel(config.queue_depth.max(1));
            let cfg = config.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("monsem-shard-{i}"))
                    .spawn(move || worker(rx, cfg))
                    .expect("spawn shard worker"),
            );
            shards.push(tx);
        }
        MonitorServer {
            shards: Mutex::new(shards),
            workers: Mutex::new(workers),
        }
    }

    /// Routes a request to its session's shard and waits for the reply.
    /// Blocks while the shard's bounded queue is full — this is the
    /// backpressure producers feel.
    pub fn request(&self, req: Request) -> Response {
        let session = match &req {
            Request::Open { session, .. }
            | Request::Events { session, .. }
            | Request::Swap { session, .. }
            | Request::Close { session } => *session,
        };
        let tx = {
            let shards = self.shards.lock().expect("shard table lock");
            if shards.is_empty() {
                return Response::Err("server is shut down".to_string());
            }
            shards[(session % shards.len() as u64) as usize].clone()
        };
        let (reply_tx, reply_rx) = sync_channel(1);
        if tx.send((req, reply_tx)).is_err() {
            return Response::Err("server is shut down".to_string());
        }
        reply_rx
            .recv()
            .unwrap_or_else(|_| Response::Err("server worker died".to_string()))
    }

    /// Opens a session running `spec`.
    pub fn open(&self, session: u64, spec: &str, enforcing: bool) -> Response {
        self.request(Request::Open {
            session,
            enforcing,
            spec: spec.to_string(),
            stream: None,
        })
    }

    /// Opens a session running `spec` with a stream-SLO check beside it.
    pub fn open_with_stream(
        &self,
        session: u64,
        spec: &str,
        stream: &str,
        enforcing: bool,
    ) -> Response {
        self.request(Request::Open {
            session,
            enforcing,
            spec: spec.to_string(),
            stream: Some(stream.to_string()),
        })
    }

    /// Streams events into a session.
    pub fn events(&self, session: u64, events: Vec<TapeEvent>) -> Response {
        self.request(Request::Events { session, events })
    }

    /// Hot-swaps a session's safety spec (the stream spec, if any,
    /// stays in force).
    pub fn swap(&self, session: u64, spec: &str) -> Response {
        self.request(Request::Swap {
            session,
            spec: Some(spec.to_string()),
            stream: None,
        })
    }

    /// Hot-swaps a session's stream spec (the safety spec stays in
    /// force).
    pub fn swap_stream(&self, session: u64, stream: &str) -> Response {
        self.request(Request::Swap {
            session,
            spec: None,
            stream: Some(stream.to_string()),
        })
    }

    /// Closes a session, ending its trace.
    pub fn close(&self, session: u64) -> Response {
        self.request(Request::Close { session })
    }

    /// Stops accepting requests, drains the queues, and joins the
    /// workers.
    pub fn shutdown(&self) {
        self.shards.lock().expect("shard table lock").clear();
        let workers: Vec<_> = self
            .workers
            .lock()
            .expect("worker table lock")
            .drain(..)
            .collect();
        for w in workers {
            let _ = w.join();
        }
    }
}

impl Drop for MonitorServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monsem_core::Value;
    use monsem_syntax::Annotation;

    fn post(name: &str, v: i64, step: u64) -> TapeEvent {
        TapeEvent::post(&Annotation::label(name), &Value::Int(v), step)
    }

    fn verdict(resp: Response) -> Verdict {
        match resp {
            Response::Verdict(v) => v,
            other => panic!("expected verdict, got {other:?}"),
        }
    }

    #[test]
    fn session_lifecycle_reports_the_violation() {
        let server = MonitorServer::start(ServerConfig::default());
        assert_eq!(server.open(1, "never(post(b))", false), Response::Ok);
        let v = verdict(server.events(1, vec![post("a", 1, 0), post("b", 2, 1)]));
        assert_eq!(v.ingested, 2);
        assert!(v.violation.as_deref().unwrap().contains("post b"));
        assert_eq!(v.earliest_violation, Some(1));
        assert_eq!(v.accepted, None, "trace still open");
        let v = verdict(server.close(1));
        assert_eq!(v.accepted, Some(false));
        // The session is gone after close.
        assert!(matches!(server.events(1, vec![]), Response::Err(_)));
        server.shutdown();
    }

    #[test]
    fn done_event_pins_acceptance() {
        let server = MonitorServer::start(ServerConfig::default());
        server.open(2, "eventually(post(b))", false);
        let v = verdict(server.events(
            2,
            vec![post("a", 1, 0), post("b", 2, 1), TapeEvent::done(2)],
        ));
        assert_eq!(v.accepted, Some(true));
        assert_eq!(v.violation, None);
        server.shutdown();
    }

    #[test]
    fn swap_splices_from_the_window() {
        let server = MonitorServer::start(ServerConfig::default());
        server.open(3, "never(post(zzz))", false);
        verdict(server.events(3, vec![post("p", 5, 0), post("p", -5, 1)]));
        // The new spec sees the replayed suffix and flags the -5.
        let v = verdict(server.swap(3, "always(post(p) => value > 0)"));
        assert!(v.violation.as_deref().unwrap().contains("post p = -5"));
        assert_eq!(v.earliest_violation, Some(1));
        assert!(!v.swap_truncated);
        server.shutdown();
    }

    #[test]
    fn swap_past_the_window_is_flagged_truncated() {
        let config = ServerConfig {
            swap_window: 2,
            ..ServerConfig::default()
        };
        let server = MonitorServer::start(config);
        server.open(4, "never(post(zzz))", false);
        verdict(server.events(4, vec![post("p", -5, 0), post("p", 1, 1), post("p", 2, 2)]));
        // The violating step 0 fell out of the 2-event window.
        let v = verdict(server.swap(4, "always(post(p) => value > 0)"));
        assert_eq!(v.violation, None, "the evidence is out of the window");
        assert!(v.swap_truncated, "and the verdict says so");
        server.shutdown();
    }

    #[test]
    fn stream_slos_ride_next_to_the_safety_spec() {
        let server = MonitorServer::start(ServerConfig::default());
        assert_eq!(
            server.open_with_stream(
                7,
                "never(post(zzz))",
                "stream neg = count(value < 0) over window(10)\ntrigger any = neg >= 2",
                false,
            ),
            Response::Ok
        );
        let v = verdict(server.events(7, vec![post("p", -1, 0), post("p", 3, 1)]));
        assert_eq!(v.firings, 0, "one negative is below the trigger");
        let v = verdict(server.events(7, vec![post("p", -2, 2)]));
        assert_eq!(v.firings, 1);
        assert_eq!(v.violation, None, "SLO firings are not safety violations");
        // A safety-spec swap keeps the stream state in force.
        let v = verdict(server.swap(7, "never(post(yyy))"));
        assert_eq!(v.firings, 1);
        // A stream swap splices the new spec from the retained window:
        // value < 0 has two rising edges over [-1, 3, -2].
        let v = verdict(server.swap_stream(7, "trigger seen = value < 0"));
        assert_eq!(v.firings, 2);
        let v = verdict(server.close(7));
        assert_eq!(v.accepted, Some(true));
        server.shutdown();
    }

    #[test]
    fn stream_deadlines_miss_on_timed_gaps() {
        let server = MonitorServer::start(ServerConfig::default());
        server.open_with_stream(
            8,
            "never(post(zzz))",
            "deadline post(beat) every 50 ms",
            false,
        );
        let beat = |v: i64, step: u64, t: u64| {
            TapeEvent::post(&Annotation::label("beat"), &Value::Int(v), step).at(t)
        };
        let v = verdict(server.events(8, vec![beat(1, 0, 0), beat(1, 1, 40), beat(1, 2, 200)]));
        assert_eq!(v.missed, 1, "one 160 ms gap against a 50 ms period");
        let v = verdict(server.events(8, vec![TapeEvent::done(3).at(400)]));
        assert_eq!(v.missed, 2, "the end-of-trace gap misses again");
        assert_eq!(v.accepted, Some(true));
        server.shutdown();
    }

    #[test]
    fn bad_stream_specs_fail_open_and_swap() {
        let server = MonitorServer::start(ServerConfig::default());
        assert!(matches!(
            server.open_with_stream(9, "never(post(b))", "stream x = rate(post(p))", false),
            Response::Err(_)
        ));
        server.open(9, "never(post(b))", false);
        assert!(matches!(
            server.swap_stream(9, "trigger t = nosuch > 0"),
            Response::Err(_)
        ));
        server.shutdown();
    }

    #[test]
    fn unknown_sessions_and_bad_specs_error() {
        let server = MonitorServer::start(ServerConfig::default());
        assert!(matches!(server.events(9, vec![]), Response::Err(_)));
        assert!(matches!(server.open(9, "always(", false), Response::Err(_)));
        server.shutdown();
    }

    #[test]
    fn enforcing_sessions_stop_at_the_violation() {
        let config = ServerConfig {
            policy: FaultPolicy::Fatal,
            ..ServerConfig::default()
        };
        let server = MonitorServer::start(config);
        server.open(5, "never(post(b))", true);
        let v = verdict(server.events(5, vec![post("b", 1, 0), post("a", 2, 1)]));
        assert_eq!(v.accepted, Some(false), "enforcing abort ends the trace");
        assert_eq!(v.ingested, 2, "late events are counted, not judged");
        assert_eq!(v.earliest_violation, Some(0));
        server.shutdown();
    }
}
