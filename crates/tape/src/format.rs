//! The versioned binary tape format.
//!
//! A tape is a header followed by a flat record stream:
//!
//! ```text
//! header  := "MTAP" u16-le version (1 untimed, 2 timed)
//! record  := STR | PRE | POST | DONE | TIME (v2 only)
//! STR     := 0x01 uvarint(len) bytes        -- interns the next string id
//! PRE     := 0x02 uvarint(ns) uvarint(name) uvarint(step)
//! POST    := 0x03 uvarint(ns) uvarint(name) uvarint(step)
//!                 u8(flags) [ivarint(int)] uvarint(display)
//! DONE    := 0x04 uvarint(step)
//! TIME    := 0x05 uvarint(delta-ms)         -- stamps the next event
//! ```
//!
//! Strings (namespaces, names, value displays) are interned: the first
//! `STR` record defines id 0, the next id 1, and so on; event records
//! refer to strings by id. `POST` flags: bit 0 — the value was an
//! integer, carried as a zigzag varint; bit 1 — the value was an
//! unsorted list ([`ValueDesc::unsorted`]). All integers are LEB128
//! varints, so a typical event costs a handful of bytes once its strings
//! are warm.
//!
//! **Format v2** adds optional per-event monotonic timestamps: a `TIME`
//! record carries the delta (in milliseconds, LEB128) from the previous
//! stamped event and applies to the immediately following event record.
//! Events without a preceding `TIME` record stay unstamped, so mixed
//! tapes round-trip exactly. A writer emits v2 only when the recording
//! had a clock attached ([`write_tape`] auto-detects; see
//! [`TapeWriter::timed`]); readers accept v1 tapes unchanged.
//!
//! **Format v3** adds `CKPT` records: a [`Checkpoint`] summarizes the
//! monitor state reached after folding every event before it — the DFA
//! state of the spec it was folded under (named by digest), the
//! earliest-violation step, and optionally an opaque stream-monitor
//! snapshot with its own digest. A checker may seed from the last
//! checkpoint at or before a requested offset instead of replaying from
//! zero (`monsem check --from`). Readers that do not care
//! ([`read_tape`]) skip `CKPT` records, so v3 tapes negotiate down
//! cleanly; [`read_tape_checkpointed`] surfaces them.
//!
//! ```text
//! CKPT := 0x06 uvarint(events) uvarint(step) u8(flags)
//!              uvarint(spec-digest) uvarint(dfa-state) uvarint(dfa-events)
//!              [uvarint(earliest-violation-step)]            -- flags bit 0
//!              [uvarint(stream-spec-digest)
//!               uvarint(snapshot-digest)
//!               uvarint(len) snapshot-bytes]                 -- flags bit 1
//! ```
//!
//! The writer is a [`TapeSink`], so it drops into every recording entry
//! point ([`Taping`](monsem_monitor::Taping), `record_monitored`, the
//! pe engine); I/O errors are sticky and surface at
//! [`TapeWriter::finish`], keeping the hook path infallible as
//! [`TapeSink`] requires.

use crate::wire::{put_ivarint, put_str, put_uvarint, ByteReader, WireError};
use monsem_monitor::tape::{TapeEvent, TapePhase, TapeSink, ValueDesc};
use std::collections::HashMap;
use std::fmt;
use std::io::{self, Write};

/// The four magic bytes opening every tape.
pub const MAGIC: [u8; 4] = *b"MTAP";
/// The baseline (untimed) format version.
pub const VERSION: u16 = 1;
/// The timed format version: v1 plus `TIME` records.
pub const VERSION_TIMED: u16 = 2;
/// The checkpointed format version: v2 plus `CKPT` records.
pub const VERSION_CHECKPOINT: u16 = 3;

const TAG_STR: u8 = 0x01;
const TAG_PRE: u8 = 0x02;
const TAG_POST: u8 = 0x03;
const TAG_DONE: u8 = 0x04;
const TAG_TIME: u8 = 0x05;
const TAG_CKPT: u8 = 0x06;

const FLAG_INT: u8 = 0x01;
const FLAG_UNSORTED: u8 = 0x02;

const CKPT_VIOLATION: u8 = 0x01;
const CKPT_STREAM: u8 = 0x02;

/// FNV-1a over `bytes`: the digest used to name specs and stream
/// snapshots inside [`Checkpoint`] records. Not cryptographic — it
/// guards against *mistakes* (checking a tape's checkpoints against the
/// wrong spec), not adversaries.
pub fn digest64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A folded-prefix summary embedded in a v3 tape: everything a checker
/// needs to resume replay *after* the events preceding this record,
/// without folding them again.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Tape events preceding this record — the replay resume offset.
    pub events: u64,
    /// Step index of the last preceding event (`0` before any event).
    pub step: u64,
    /// [`digest64`] of the spec source the DFA fields were folded under.
    /// A checker running a different spec must ignore this checkpoint.
    pub spec_digest: u64,
    /// The spec monitor's DFA state after the prefix.
    pub dfa_state: u32,
    /// The spec monitor's relevant-event count after the prefix (tape
    /// events the automaton did not observe are not in it).
    pub dfa_events: u64,
    /// Step of the event on which the prefix first entered a violation,
    /// if it did.
    pub earliest_violation: Option<u64>,
    /// Stream-monitor snapshot of the same prefix, when one was folded
    /// alongside.
    pub stream: Option<StreamCheckpoint>,
}

/// An opaque stream-monitor snapshot rider on a [`Checkpoint`]. The
/// bytes are produced and consumed by `monsem-stream`'s snapshot codec;
/// the tape layer only frames and digests them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamCheckpoint {
    /// [`digest64`] of the stream spec source the snapshot belongs to.
    pub spec_digest: u64,
    /// [`digest64`] of `snapshot` — detects truncation or corruption
    /// before a checker trusts the bytes.
    pub snapshot_digest: u64,
    /// The serialized stream state.
    pub snapshot: Vec<u8>,
}

/// A malformed tape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TapeError {
    /// The input does not start with [`MAGIC`].
    BadMagic,
    /// The version is newer than this reader understands.
    BadVersion(u16),
    /// An unknown record tag, with its byte offset.
    BadTag(u8, usize),
    /// An event referred to a string id never interned.
    BadStringId(u64),
    /// A byte-level decoding failure.
    Wire(WireError),
}

impl fmt::Display for TapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TapeError::BadMagic => write!(f, "not a tape: bad magic"),
            TapeError::BadVersion(v) => write!(f, "unsupported tape version {v}"),
            TapeError::BadTag(t, at) => write!(f, "unknown record tag {t:#04x} at byte {at}"),
            TapeError::BadStringId(id) => write!(f, "reference to un-interned string id {id}"),
            TapeError::Wire(e) => write!(f, "malformed tape: {e}"),
        }
    }
}

impl std::error::Error for TapeError {}

impl From<WireError> for TapeError {
    fn from(e: WireError) -> TapeError {
        TapeError::Wire(e)
    }
}

/// Streams [`TapeEvent`]s to a [`Write`] in the binary format.
///
/// Implements [`TapeSink`], whose `record` cannot fail; write errors are
/// therefore *sticky* — the first one is kept, subsequent records are
/// discarded, and [`TapeWriter::finish`] reports it.
#[derive(Debug)]
pub struct TapeWriter<W: Write> {
    out: W,
    strings: HashMap<String, u64>,
    buf: Vec<u8>,
    error: Option<io::Error>,
    timed: bool,
    checkpointed: bool,
    last_time: u64,
}

impl<W: Write> TapeWriter<W> {
    /// Opens an untimed (v1) tape: writes the header immediately. Event
    /// timestamps, if any, are dropped; use [`TapeWriter::timed`] to
    /// keep them.
    pub fn new(out: W) -> TapeWriter<W> {
        TapeWriter::with_version(out, false, false)
    }

    /// Opens a timed (v2) tape: stamped events get a `TIME` record with
    /// the millisecond delta from the previous stamped event (clamped
    /// monotone); unstamped events are written as in v1.
    pub fn timed(out: W) -> TapeWriter<W> {
        TapeWriter::with_version(out, true, false)
    }

    /// Opens a checkpointed (v3) tape: [`TapeWriter::checkpoint`] becomes
    /// available, and `timed` selects whether event timestamps are kept
    /// (v3 subsumes v2's `TIME` records).
    pub fn checkpointed(out: W, timed: bool) -> TapeWriter<W> {
        TapeWriter::with_version(out, timed, true)
    }

    fn with_version(out: W, timed: bool, checkpointed: bool) -> TapeWriter<W> {
        let mut w = TapeWriter {
            out,
            strings: HashMap::new(),
            buf: Vec::new(),
            error: None,
            timed,
            checkpointed,
            last_time: 0,
        };
        let version = if checkpointed {
            VERSION_CHECKPOINT
        } else if timed {
            VERSION_TIMED
        } else {
            VERSION
        };
        w.buf.extend_from_slice(&MAGIC);
        w.buf.extend_from_slice(&version.to_le_bytes());
        w.flush_buf();
        w
    }

    /// Writes a `CKPT` record. No-op on v1/v2 tapes — only a writer
    /// opened with [`TapeWriter::checkpointed`] may carry them.
    pub fn checkpoint(&mut self, ckpt: &Checkpoint) {
        if !self.checkpointed || self.error.is_some() {
            return;
        }
        self.buf.push(TAG_CKPT);
        put_uvarint(&mut self.buf, ckpt.events);
        put_uvarint(&mut self.buf, ckpt.step);
        let mut flags = 0u8;
        if ckpt.earliest_violation.is_some() {
            flags |= CKPT_VIOLATION;
        }
        if ckpt.stream.is_some() {
            flags |= CKPT_STREAM;
        }
        self.buf.push(flags);
        put_uvarint(&mut self.buf, ckpt.spec_digest);
        put_uvarint(&mut self.buf, u64::from(ckpt.dfa_state));
        put_uvarint(&mut self.buf, ckpt.dfa_events);
        if let Some(step) = ckpt.earliest_violation {
            put_uvarint(&mut self.buf, step);
        }
        if let Some(sc) = &ckpt.stream {
            put_uvarint(&mut self.buf, sc.spec_digest);
            put_uvarint(&mut self.buf, sc.snapshot_digest);
            put_uvarint(&mut self.buf, sc.snapshot.len() as u64);
            self.buf.extend_from_slice(&sc.snapshot);
        }
        self.flush_buf();
    }

    fn flush_buf(&mut self) {
        if self.error.is_none() {
            if let Err(e) = self.out.write_all(&self.buf) {
                self.error = Some(e);
            }
        }
        self.buf.clear();
    }

    fn intern(&mut self, s: &str) -> u64 {
        if let Some(&id) = self.strings.get(s) {
            return id;
        }
        let id = self.strings.len() as u64;
        self.strings.insert(s.to_string(), id);
        self.buf.push(TAG_STR);
        put_str(&mut self.buf, s);
        id
    }

    /// Flushes and returns the underlying writer, or the first write
    /// error encountered.
    ///
    /// # Errors
    ///
    /// The sticky [`io::Error`], if any record failed to write.
    pub fn finish(mut self) -> io::Result<W> {
        self.flush_buf();
        if let Some(e) = self.error {
            return Err(e);
        }
        self.out.flush()?;
        Ok(self.out)
    }
}

impl<W: Write> TapeSink for TapeWriter<W> {
    fn record(&mut self, event: TapeEvent) {
        if self.error.is_some() {
            return;
        }
        if self.timed {
            if let Some(t) = event.time {
                let t = t.max(self.last_time);
                self.buf.push(TAG_TIME);
                put_uvarint(&mut self.buf, t - self.last_time);
                self.last_time = t;
            }
        }
        match event.phase {
            TapePhase::Pre => {
                let ns = self.intern(&event.namespace);
                let name = self.intern(&event.name);
                self.buf.push(TAG_PRE);
                put_uvarint(&mut self.buf, ns);
                put_uvarint(&mut self.buf, name);
                put_uvarint(&mut self.buf, event.step);
            }
            TapePhase::Post => {
                let ns = self.intern(&event.namespace);
                let name = self.intern(&event.name);
                let desc = event.value.unwrap_or_default();
                let display = self.intern(&desc.display);
                self.buf.push(TAG_POST);
                put_uvarint(&mut self.buf, ns);
                put_uvarint(&mut self.buf, name);
                put_uvarint(&mut self.buf, event.step);
                let mut flags = 0u8;
                if desc.int.is_some() {
                    flags |= FLAG_INT;
                }
                if desc.unsorted {
                    flags |= FLAG_UNSORTED;
                }
                self.buf.push(flags);
                if let Some(n) = desc.int {
                    put_ivarint(&mut self.buf, n);
                }
                put_uvarint(&mut self.buf, display);
            }
            TapePhase::Done => {
                self.buf.push(TAG_DONE);
                put_uvarint(&mut self.buf, event.step);
            }
        }
        self.flush_buf();
    }
}

/// Serializes `events` into a fresh in-memory tape. Picks the version
/// automatically: v2 iff any event carries a timestamp (i.e. the
/// recording had a clock attached), v1 otherwise.
pub fn write_tape<'a>(events: impl IntoIterator<Item = &'a TapeEvent>) -> Vec<u8> {
    let events: Vec<&TapeEvent> = events.into_iter().collect();
    let timed = events.iter().any(|ev| ev.time.is_some());
    let mut w = TapeWriter::with_version(Vec::new(), timed, false);
    for ev in events {
        w.record(ev.clone());
    }
    w.finish().expect("writing to a Vec cannot fail")
}

/// Parses a binary tape back into its event stream.
///
/// # Errors
///
/// [`TapeError`] on any malformation: bad magic or version, unknown
/// tags, dangling string ids, or truncated records.
pub fn read_tape(buf: &[u8]) -> Result<Vec<TapeEvent>, TapeError> {
    read_tape_with(buf, |_| {})
}

/// Parses a binary tape, also surfacing its [`Checkpoint`] records (v3;
/// v1/v2 tapes simply yield none). The returned checkpoints are in tape
/// order; each one's [`Checkpoint::events`] is the number of events
/// decoded before it.
///
/// # Errors
///
/// As for [`read_tape`].
pub fn read_tape_checkpointed(buf: &[u8]) -> Result<(Vec<TapeEvent>, Vec<Checkpoint>), TapeError> {
    let mut ckpts = Vec::new();
    let events = read_tape_with(buf, |c| ckpts.push(c))?;
    Ok((events, ckpts))
}

fn read_tape_with(
    buf: &[u8],
    mut on_checkpoint: impl FnMut(Checkpoint),
) -> Result<Vec<TapeEvent>, TapeError> {
    let mut r = ByteReader::new(buf);
    if r.bytes(4)? != MAGIC {
        return Err(TapeError::BadMagic);
    }
    let version = u16::from_le_bytes(r.bytes(2)?.try_into().expect("two bytes"));
    if !(VERSION..=VERSION_CHECKPOINT).contains(&version) {
        return Err(TapeError::BadVersion(version));
    }
    let mut last_time = 0u64;
    let mut pending_time: Option<u64> = None;
    let mut strings: Vec<String> = Vec::new();
    let lookup = |strings: &[String], id: u64| -> Result<String, TapeError> {
        usize::try_from(id)
            .ok()
            .and_then(|i| strings.get(i))
            .cloned()
            .ok_or(TapeError::BadStringId(id))
    };
    let mut events = Vec::new();
    while !r.is_empty() {
        let at = r.position();
        match r.u8()? {
            TAG_STR => strings.push(r.string()?),
            TAG_TIME if version >= VERSION_TIMED => {
                last_time = last_time.saturating_add(r.uvarint()?);
                pending_time = Some(last_time);
            }
            TAG_CKPT if version >= VERSION_CHECKPOINT => {
                let ckpt_events = r.uvarint()?;
                let step = r.uvarint()?;
                let flags = r.u8()?;
                let spec_digest = r.uvarint()?;
                let dfa_state = u32::try_from(r.uvarint()?)
                    .map_err(|_| TapeError::Wire(WireError::VarintOverflow))?;
                let dfa_events = r.uvarint()?;
                let earliest_violation = if flags & CKPT_VIOLATION != 0 {
                    Some(r.uvarint()?)
                } else {
                    None
                };
                let stream = if flags & CKPT_STREAM != 0 {
                    let sd = r.uvarint()?;
                    let snap_digest = r.uvarint()?;
                    let len = usize::try_from(r.uvarint()?)
                        .map_err(|_| TapeError::Wire(WireError::VarintOverflow))?;
                    Some(StreamCheckpoint {
                        spec_digest: sd,
                        snapshot_digest: snap_digest,
                        snapshot: r.bytes(len)?.to_vec(),
                    })
                } else {
                    None
                };
                on_checkpoint(Checkpoint {
                    events: ckpt_events,
                    step,
                    spec_digest,
                    dfa_state,
                    dfa_events,
                    earliest_violation,
                    stream,
                });
            }
            TAG_PRE => {
                let namespace = lookup(&strings, r.uvarint()?)?;
                let name = lookup(&strings, r.uvarint()?)?;
                let step = r.uvarint()?;
                events.push(TapeEvent {
                    phase: TapePhase::Pre,
                    namespace,
                    name,
                    value: None,
                    step,
                    time: pending_time.take(),
                });
            }
            TAG_POST => {
                let namespace = lookup(&strings, r.uvarint()?)?;
                let name = lookup(&strings, r.uvarint()?)?;
                let step = r.uvarint()?;
                let flags = r.u8()?;
                let int = if flags & FLAG_INT != 0 {
                    Some(r.ivarint()?)
                } else {
                    None
                };
                let display = lookup(&strings, r.uvarint()?)?;
                events.push(TapeEvent {
                    phase: TapePhase::Post,
                    namespace,
                    name,
                    value: Some(ValueDesc {
                        int,
                        unsorted: flags & FLAG_UNSORTED != 0,
                        display,
                    }),
                    step,
                    time: pending_time.take(),
                });
            }
            TAG_DONE => {
                let step = r.uvarint()?;
                events.push(TapeEvent {
                    phase: TapePhase::Done,
                    namespace: String::new(),
                    name: String::new(),
                    value: None,
                    step,
                    time: pending_time.take(),
                });
            }
            tag => return Err(TapeError::BadTag(tag, at)),
        }
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use monsem_core::Value;
    use monsem_syntax::Annotation;

    fn sample_events() -> Vec<TapeEvent> {
        let a = Annotation::label("fac");
        let b = Annotation::label("acc");
        vec![
            TapeEvent::pre(&a, 0),
            TapeEvent::post(&a, &Value::Int(-42), 1),
            TapeEvent::pre(&b, 2),
            TapeEvent::post(
                &b,
                &Value::list(vec![Value::Int(3), Value::Int(1), Value::Int(2)]),
                3,
            ),
            TapeEvent::post(&a, &Value::Bool(true), 4),
            TapeEvent::done(5),
        ]
    }

    #[test]
    fn tape_roundtrips_exactly() {
        let events = sample_events();
        let bytes = write_tape(&events);
        assert_eq!(read_tape(&bytes).unwrap(), events);
    }

    #[test]
    fn strings_are_interned_once() {
        let events = sample_events();
        let bytes = write_tape(&events);
        // "fac" appears in three events but is stored once.
        let payload = &bytes[6..];
        let occurrences = payload.windows(3).filter(|w| *w == b"fac").count();
        assert_eq!(occurrences, 1);
    }

    #[test]
    fn timed_tapes_roundtrip_as_v2() {
        let a = Annotation::label("req");
        let events = vec![
            TapeEvent::pre(&a, 0).at(5),
            TapeEvent::post(&a, &Value::Int(7), 1).at(5),
            TapeEvent::pre(&a, 2), // unstamped event on a timed tape
            TapeEvent::post(&a, &Value::Int(9), 3).at(130),
            TapeEvent::done(4).at(200),
        ];
        let bytes = write_tape(&events);
        let version = u16::from_le_bytes([bytes[4], bytes[5]]);
        assert_eq!(version, VERSION_TIMED);
        assert_eq!(read_tape(&bytes).unwrap(), events);
    }

    #[test]
    fn untimed_events_produce_a_v1_tape() {
        let bytes = write_tape(&sample_events());
        let version = u16::from_le_bytes([bytes[4], bytes[5]]);
        assert_eq!(version, VERSION);
    }

    #[test]
    fn v1_tapes_reject_time_records() {
        let mut bytes = write_tape(&sample_events());
        let at = bytes.len();
        bytes.push(TAG_TIME);
        bytes.push(0);
        assert_eq!(read_tape(&bytes), Err(TapeError::BadTag(TAG_TIME, at)));
    }

    #[test]
    fn malformed_tapes_are_rejected() {
        assert_eq!(read_tape(b"NOPE\x01\x00"), Err(TapeError::BadMagic));
        let mut bytes = write_tape(&sample_events());
        bytes[4] = 9;
        assert_eq!(read_tape(&bytes), Err(TapeError::BadVersion(9)));
        let mut bytes = write_tape(&sample_events());
        let last_ok = bytes.len();
        bytes.push(0x7f);
        assert_eq!(read_tape(&bytes), Err(TapeError::BadTag(0x7f, last_ok)));
        let bytes = write_tape(&sample_events());
        assert!(matches!(
            read_tape(&bytes[..bytes.len() - 1]),
            Err(TapeError::Wire(_)) | Err(TapeError::BadStringId(_))
        ));
    }

    fn sample_checkpoint(events: u64, step: u64) -> Checkpoint {
        Checkpoint {
            events,
            step,
            spec_digest: digest64(b"never(post(b))"),
            dfa_state: 2,
            dfa_events: events,
            earliest_violation: step.checked_sub(1),
            stream: events.is_multiple_of(2).then(|| StreamCheckpoint {
                spec_digest: digest64(b"stream s = count(post(_))"),
                snapshot_digest: digest64(&[1, 2, 3]),
                snapshot: vec![1, 2, 3],
            }),
        }
    }

    #[test]
    fn checkpointed_tapes_roundtrip_as_v3() {
        let events = sample_events();
        let mut w = TapeWriter::checkpointed(Vec::new(), false);
        let mut want = Vec::new();
        for (i, ev) in events.iter().enumerate() {
            w.record(ev.clone());
            if i % 2 == 1 {
                let c = sample_checkpoint(i as u64 + 1, ev.step);
                w.checkpoint(&c);
                want.push(c);
            }
        }
        let bytes = w.finish().unwrap();
        let version = u16::from_le_bytes([bytes[4], bytes[5]]);
        assert_eq!(version, VERSION_CHECKPOINT);
        // A checkpoint-blind reader sees exactly the events.
        assert_eq!(read_tape(&bytes).unwrap(), events);
        // A checkpoint-aware reader also gets the records, in order.
        let (got_events, got_ckpts) = read_tape_checkpointed(&bytes).unwrap();
        assert_eq!(got_events, events);
        assert_eq!(got_ckpts, want);
    }

    #[test]
    fn checkpointed_timed_tapes_keep_their_timestamps() {
        let a = Annotation::label("req");
        let events = vec![
            TapeEvent::pre(&a, 0).at(5),
            TapeEvent::post(&a, &Value::Int(7), 1).at(9),
        ];
        let mut w = TapeWriter::checkpointed(Vec::new(), true);
        for ev in &events {
            w.record(ev.clone());
        }
        w.checkpoint(&sample_checkpoint(2, 1));
        let bytes = w.finish().unwrap();
        assert_eq!(read_tape(&bytes).unwrap(), events);
    }

    #[test]
    fn v1_and_v2_tapes_reject_checkpoint_records() {
        let mut bytes = write_tape(&sample_events());
        let at = bytes.len();
        bytes.push(TAG_CKPT);
        assert_eq!(read_tape(&bytes), Err(TapeError::BadTag(TAG_CKPT, at)));
        // And a non-checkpointed writer refuses to emit one.
        let mut w = TapeWriter::timed(Vec::new());
        w.checkpoint(&sample_checkpoint(1, 0));
        let bytes = w.finish().unwrap();
        assert_eq!(bytes.len(), 6, "header only");
    }

    #[test]
    fn digest64_separates_specs() {
        assert_ne!(digest64(b"never(post(a))"), digest64(b"never(post(b))"));
        assert_eq!(digest64(b""), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn io_errors_are_sticky_and_surface_at_finish() {
        #[derive(Debug)]
        struct Failing;
        impl Write for Failing {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("disk full"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut w = TapeWriter::new(Failing);
        for ev in sample_events() {
            w.record(ev);
        }
        let err = w.finish().unwrap_err();
        assert_eq!(err.to_string(), "disk full");
    }
}
