//! `monsem-tape` — monitoring as a service.
//!
//! The paper's monitoring semantics threads the monitor through the
//! evaluation itself; this crate lets the monitor leave the process. A
//! monitored run records its *pre-abstraction* event stream (hook phase,
//! annotation symbol, value description, step index — see
//! [`monsem_monitor::tape`]) onto a **tape**, and the tape becomes a
//! first-class artifact:
//!
//! * serialized to a compact, versioned binary [`mod@format`] — a tape on
//!   disk is an offline regression artifact: `monsem check tape.bin
//!   spec.tsp` re-derives the verdict (and the earliest-violation
//!   offset) without re-executing the program;
//! * streamed to a long-lived [`server::MonitorServer`] over the framed
//!   [`proto`]col — many producer sessions, bounded ingest queues for
//!   backpressure, per-session [`Guarded`](monsem_monitor::Guarded) spec
//!   monitors, and sharded workers; event frames can be *batched*
//!   ([`proto::Request::EventBatch`] carries a tape image) and
//!   *pipelined* (no per-frame reply; cumulative
//!   [`proto::Response::Ack`]s instead), so ingest throughput
//!   approaches the offline checker's fold rate;
//! * **compacted** with [`checkpoint`]s: a v3 tape interleaves
//!   `Checkpoint` records pinning the spec DFA state (and a
//!   digest-guarded stream-evaluator snapshot), so `monsem check
//!   --from` seeks instead of replaying from zero;
//! * re-judged under a **hot-swapped** spec: a [`proto::Request::Swap`]
//!   compiles the new spec and splices session state by replaying the
//!   session's bounded suffix window through the new automaton
//!   ([`server::splice_state`]).
//!
//! Because a [`TapeEvent`](monsem_monitor::TapeEvent) carries the
//! concrete observation rather than any spec's abstract letter, one tape
//! can be checked against specs that did not exist when it was recorded
//! — the abstraction (`Alphabet::classify_desc`) happens at check time.

// The crate is safe Rust except for `reactor::sys`, the raw
// epoll/eventfd FFI surface (a handful of audited `extern "C"` calls
// behind safe RAII wrappers). Everything else still refuses `unsafe`.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod format;
pub mod net;
pub mod proto;
#[cfg(target_os = "linux")]
pub(crate) mod reactor;
pub mod server;
pub mod wire;

pub use checkpoint::{
    check_stream_from, check_tape_from, seek_checkpoint, spec_digest, write_tape_checkpointed,
    SeededCheck,
};
pub use format::{
    digest64, read_tape, read_tape_checkpointed, write_tape, Checkpoint, StreamCheckpoint,
    TapeError, TapeWriter, MAGIC, VERSION, VERSION_CHECKPOINT, VERSION_TIMED,
};
pub use net::{
    serve_tcp, serve_tcp_with, serve_unix, serve_unix_with, BatchWriter, Client, IoBackend,
    ServeHandle, SplitStream, DEFAULT_BATCH, DEFAULT_IO_THREADS,
};
pub use proto::{read_frame, write_frame, FrameDecoder, ProtoError, Request, Response, Verdict};
pub use server::{splice_state, MonitorServer, ResponseSink, ServerConfig, DEFAULT_ACK_EVERY};
