//! Socket front ends for the monitor server: TCP and Unix-domain
//! listeners speaking the framed [`crate::proto`] protocol, plus a small
//! blocking [`Client`].
//!
//! Each accepted connection gets a thread that decodes request frames
//! and calls [`MonitorServer::request`]; because the server's shard
//! queues are bounded, a connection whose session floods the server
//! blocks *in its own thread*, exerting TCP/socket backpressure on that
//! producer without stalling other connections.

use crate::proto::{read_frame, write_frame, Request, Response};
use crate::server::MonitorServer;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A handle to a running listener.
#[derive(Debug)]
pub struct ServeHandle {
    addr: Option<SocketAddr>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ServeHandle {
    /// The bound TCP address (e.g. with port 0 the OS-chosen port).
    /// `None` for Unix-socket listeners.
    pub fn addr(&self) -> Option<SocketAddr> {
        self.addr
    }

    /// Stops accepting new connections and joins the accept loop.
    /// Existing connections finish at their own pace.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServeHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

fn serve_connection(server: &MonitorServer, mut stream: impl io::Read + io::Write) {
    loop {
        let frame = match read_frame(&mut stream) {
            Ok(Some(frame)) => frame,
            Ok(None) => return, // clean EOF
            Err(_) => return,
        };
        let resp = match Request::decode(&frame) {
            Ok(req) => server.request(req),
            Err(e) => Response::Err(format!("bad request: {e}")),
        };
        if write_frame(&mut stream, &resp.encode()).is_err() {
            return;
        }
    }
}

const POLL: Duration = Duration::from_millis(25);

fn accept_loop<L, S>(
    listener: L,
    accept: impl Fn(&L) -> io::Result<S>,
    server: Arc<MonitorServer>,
    stop: Arc<AtomicBool>,
) where
    S: io::Read + io::Write + Send + 'static,
{
    while !stop.load(Ordering::SeqCst) {
        match accept(&listener) {
            Ok(stream) => {
                let server = Arc::clone(&server);
                let _ = std::thread::Builder::new()
                    .name("monsem-conn".to_string())
                    .spawn(move || serve_connection(&server, stream));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(_) => return,
        }
    }
}

/// Serves the monitor protocol on a TCP listener bound to `addr`
/// (use port `0` to let the OS pick; read it back from
/// [`ServeHandle::addr`]).
///
/// # Errors
///
/// Propagates bind failures.
pub fn serve_tcp(server: Arc<MonitorServer>, addr: impl ToSocketAddrs) -> io::Result<ServeHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let bound = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let accept_thread = std::thread::Builder::new()
        .name("monsem-accept".to_string())
        .spawn(move || {
            accept_loop(
                listener,
                |l| {
                    l.accept().map(|(s, _)| {
                        let _ = s.set_nonblocking(false);
                        s
                    })
                },
                server,
                stop2,
            )
        })?;
    Ok(ServeHandle {
        addr: Some(bound),
        stop,
        accept_thread: Some(accept_thread),
    })
}

/// Serves the monitor protocol on a Unix-domain socket at `path`
/// (removed first if it already exists).
///
/// # Errors
///
/// Propagates bind failures.
pub fn serve_unix(server: Arc<MonitorServer>, path: impl AsRef<Path>) -> io::Result<ServeHandle> {
    let path = path.as_ref();
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    listener.set_nonblocking(true)?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let accept_thread = std::thread::Builder::new()
        .name("monsem-accept".to_string())
        .spawn(move || {
            accept_loop(
                listener,
                |l| {
                    l.accept().map(|(s, _)| {
                        let _ = s.set_nonblocking(false);
                        s
                    })
                },
                server,
                stop2,
            )
        })?;
    Ok(ServeHandle {
        addr: None,
        stop,
        accept_thread: Some(accept_thread),
    })
}

/// A blocking protocol client over any byte stream.
#[derive(Debug)]
pub struct Client<S> {
    stream: S,
}

impl Client<TcpStream> {
    /// Connects over TCP.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect_tcp(addr: impl ToSocketAddrs) -> io::Result<Client<TcpStream>> {
        Ok(Client {
            stream: TcpStream::connect(addr)?,
        })
    }
}

impl Client<UnixStream> {
    /// Connects over a Unix-domain socket.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect_unix(path: impl AsRef<Path>) -> io::Result<Client<UnixStream>> {
        Ok(Client {
            stream: UnixStream::connect(path)?,
        })
    }
}

impl<S: io::Read + io::Write> Client<S> {
    /// Wraps an already-connected stream.
    pub fn new(stream: S) -> Client<S> {
        Client { stream }
    }

    /// Sends one request and waits for its response.
    ///
    /// # Errors
    ///
    /// I/O failures, or `InvalidData` if the server's reply does not
    /// decode (including an unexpected mid-reply EOF).
    pub fn request(&mut self, req: &Request) -> io::Result<Response> {
        write_frame(&mut self.stream, &req.encode())?;
        let frame = read_frame(&mut self.stream)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed mid-request")
        })?;
        Response::decode(&frame).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Opens a session.
    ///
    /// # Errors
    ///
    /// As for [`Client::request`].
    pub fn open(&mut self, session: u64, spec: &str, enforcing: bool) -> io::Result<Response> {
        self.request(&Request::Open {
            session,
            enforcing,
            spec: spec.to_string(),
        })
    }

    /// Streams events into a session.
    ///
    /// # Errors
    ///
    /// As for [`Client::request`].
    pub fn events(
        &mut self,
        session: u64,
        events: Vec<monsem_monitor::TapeEvent>,
    ) -> io::Result<Response> {
        self.request(&Request::Events { session, events })
    }

    /// Hot-swaps a session's spec.
    ///
    /// # Errors
    ///
    /// As for [`Client::request`].
    pub fn swap(&mut self, session: u64, spec: &str) -> io::Result<Response> {
        self.request(&Request::Swap {
            session,
            spec: spec.to_string(),
        })
    }

    /// Closes a session.
    ///
    /// # Errors
    ///
    /// As for [`Client::request`].
    pub fn close(&mut self, session: u64) -> io::Result<Response> {
        self.request(&Request::Close { session })
    }
}
