//! Socket front ends for the monitor server: TCP and Unix-domain
//! listeners speaking the framed [`crate::proto`] protocol, plus a small
//! blocking [`Client`].
//!
//! Each accepted connection gets a thread that decodes request frames
//! and calls [`MonitorServer::request`]; because the server's shard
//! queues are bounded, a connection whose session floods the server
//! blocks *in its own thread*, exerting TCP/socket backpressure on that
//! producer without stalling other connections.

use crate::proto::{read_frame, write_frame, Request, Response};
use crate::server::MonitorServer;
use std::io;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// How to wake a listener blocked in `accept` so it notices the stop
/// flag: connect to it ourselves. The throwaway connection is accepted,
/// observed after the flag, and dropped.
#[derive(Debug, Clone)]
enum WakeTarget {
    Tcp(SocketAddr),
    Unix(PathBuf),
}

impl WakeTarget {
    fn wake(&self) {
        match self {
            WakeTarget::Tcp(addr) => drop(TcpStream::connect(addr)),
            WakeTarget::Unix(path) => drop(UnixStream::connect(path)),
        }
    }
}

/// A handle to a running listener.
#[derive(Debug)]
pub struct ServeHandle {
    addr: Option<SocketAddr>,
    wake: WakeTarget,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ServeHandle {
    /// The bound TCP address (e.g. with port 0 the OS-chosen port).
    /// `None` for Unix-socket listeners.
    pub fn addr(&self) -> Option<SocketAddr> {
        self.addr
    }

    /// Stops accepting new connections and joins the accept loop.
    /// Existing connections finish at their own pace.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            self.wake.wake();
            let _ = t.join();
        }
    }
}

impl Drop for ServeHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve_connection(server: &MonitorServer, mut stream: impl io::Read + io::Write) {
    loop {
        let frame = match read_frame(&mut stream) {
            Ok(Some(frame)) => frame,
            Ok(None) => return, // clean EOF
            Err(_) => return,
        };
        let resp = match Request::decode(&frame) {
            Ok(req) => server.request(req),
            Err(e) => Response::Err(format!("bad request: {e}")),
        };
        if write_frame(&mut stream, &resp.encode()).is_err() {
            return;
        }
    }
}

// The listener stays in blocking mode: `accept` parks the thread until a
// connection (or the `stop()` wakeup self-connect) arrives, so an idle
// server costs zero wakeups. The stop flag is re-checked after every
// accept, which is what makes the wakeup connection sufficient.
fn accept_loop<L, S>(
    listener: L,
    accept: impl Fn(&L) -> io::Result<S>,
    server: Arc<MonitorServer>,
    stop: Arc<AtomicBool>,
) where
    S: io::Read + io::Write + Send + 'static,
{
    while !stop.load(Ordering::SeqCst) {
        match accept(&listener) {
            Ok(stream) => {
                if stop.load(Ordering::SeqCst) {
                    return; // the wakeup connection itself
                }
                let server = Arc::clone(&server);
                let _ = std::thread::Builder::new()
                    .name("monsem-conn".to_string())
                    .spawn(move || serve_connection(&server, stream));
            }
            // Transient per-connection failures (e.g. the peer aborting
            // mid-handshake) must not kill the listener.
            Err(e) if e.kind() == io::ErrorKind::ConnectionAborted => {}
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// Serves the monitor protocol on a TCP listener bound to `addr`
/// (use port `0` to let the OS pick; read it back from
/// [`ServeHandle::addr`]).
///
/// # Errors
///
/// Propagates bind failures.
pub fn serve_tcp(server: Arc<MonitorServer>, addr: impl ToSocketAddrs) -> io::Result<ServeHandle> {
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    // A wakeup connect must reach the listener even when it is bound to
    // an unspecified address (0.0.0.0 / ::), so target loopback then.
    let wake_addr = SocketAddr::new(
        match bound.ip() {
            IpAddr::V4(ip) if ip.is_unspecified() => IpAddr::V4(Ipv4Addr::LOCALHOST),
            IpAddr::V6(ip) if ip.is_unspecified() => IpAddr::V6(Ipv6Addr::LOCALHOST),
            ip => ip,
        },
        bound.port(),
    );
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let accept_thread = std::thread::Builder::new()
        .name("monsem-accept".to_string())
        .spawn(move || accept_loop(listener, |l| l.accept().map(|(s, _)| s), server, stop2))?;
    Ok(ServeHandle {
        addr: Some(bound),
        wake: WakeTarget::Tcp(wake_addr),
        stop,
        accept_thread: Some(accept_thread),
    })
}

/// Serves the monitor protocol on a Unix-domain socket at `path`
/// (removed first if it already exists).
///
/// # Errors
///
/// Propagates bind failures.
pub fn serve_unix(server: Arc<MonitorServer>, path: impl AsRef<Path>) -> io::Result<ServeHandle> {
    let path = path.as_ref();
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let accept_thread = std::thread::Builder::new()
        .name("monsem-accept".to_string())
        .spawn(move || accept_loop(listener, |l| l.accept().map(|(s, _)| s), server, stop2))?;
    Ok(ServeHandle {
        addr: None,
        wake: WakeTarget::Unix(path.to_path_buf()),
        stop,
        accept_thread: Some(accept_thread),
    })
}

/// A blocking protocol client over any byte stream.
#[derive(Debug)]
pub struct Client<S> {
    stream: S,
}

impl Client<TcpStream> {
    /// Connects over TCP.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect_tcp(addr: impl ToSocketAddrs) -> io::Result<Client<TcpStream>> {
        Ok(Client {
            stream: TcpStream::connect(addr)?,
        })
    }
}

impl Client<UnixStream> {
    /// Connects over a Unix-domain socket.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect_unix(path: impl AsRef<Path>) -> io::Result<Client<UnixStream>> {
        Ok(Client {
            stream: UnixStream::connect(path)?,
        })
    }
}

impl<S: io::Read + io::Write> Client<S> {
    /// Wraps an already-connected stream.
    pub fn new(stream: S) -> Client<S> {
        Client { stream }
    }

    /// Sends one request and waits for its response.
    ///
    /// # Errors
    ///
    /// I/O failures, or `InvalidData` if the server's reply does not
    /// decode (including an unexpected mid-reply EOF).
    pub fn request(&mut self, req: &Request) -> io::Result<Response> {
        write_frame(&mut self.stream, &req.encode())?;
        let frame = read_frame(&mut self.stream)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed mid-request")
        })?;
        Response::decode(&frame).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Opens a session.
    ///
    /// # Errors
    ///
    /// As for [`Client::request`].
    pub fn open(&mut self, session: u64, spec: &str, enforcing: bool) -> io::Result<Response> {
        self.request(&Request::Open {
            session,
            enforcing,
            spec: spec.to_string(),
            stream: None,
        })
    }

    /// Opens a session carrying a stream (SLO) spec next to its safety
    /// spec.
    ///
    /// # Errors
    ///
    /// As for [`Client::request`].
    pub fn open_with_stream(
        &mut self,
        session: u64,
        spec: &str,
        stream: &str,
        enforcing: bool,
    ) -> io::Result<Response> {
        self.request(&Request::Open {
            session,
            enforcing,
            spec: spec.to_string(),
            stream: Some(stream.to_string()),
        })
    }

    /// Streams events into a session.
    ///
    /// # Errors
    ///
    /// As for [`Client::request`].
    pub fn events(
        &mut self,
        session: u64,
        events: Vec<monsem_monitor::TapeEvent>,
    ) -> io::Result<Response> {
        self.request(&Request::Events { session, events })
    }

    /// Hot-swaps a session's spec.
    ///
    /// # Errors
    ///
    /// As for [`Client::request`].
    pub fn swap(&mut self, session: u64, spec: &str) -> io::Result<Response> {
        self.request(&Request::Swap {
            session,
            spec: Some(spec.to_string()),
            stream: None,
        })
    }

    /// Hot-swaps a session's stream spec, keeping its safety spec.
    ///
    /// # Errors
    ///
    /// As for [`Client::request`].
    pub fn swap_stream(&mut self, session: u64, stream: &str) -> io::Result<Response> {
        self.request(&Request::Swap {
            session,
            spec: None,
            stream: Some(stream.to_string()),
        })
    }

    /// Closes a session.
    ///
    /// # Errors
    ///
    /// As for [`Client::request`].
    pub fn close(&mut self, session: u64) -> io::Result<Response> {
        self.request(&Request::Close { session })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerConfig;
    use std::time::{Duration, Instant};

    // The accept loop blocks in `accept` with no polling; these tests pin
    // that `stop()` still returns promptly because of the self-connect
    // wakeup. Without the wakeup they would hang until the harness
    // timeout, not merely run slow.

    #[test]
    fn idle_tcp_listener_stops_promptly() {
        let server = Arc::new(MonitorServer::start(ServerConfig::default()));
        let handle = serve_tcp(Arc::clone(&server), "127.0.0.1:0").expect("bind");
        let started = Instant::now();
        handle.stop();
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "stop() took {:?}",
            started.elapsed()
        );
        server.shutdown();
    }

    #[test]
    fn idle_unix_listener_stops_promptly() {
        let dir = std::env::temp_dir().join(format!("monsem-net-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("stop.sock");
        let server = Arc::new(MonitorServer::start(ServerConfig::default()));
        let handle = serve_unix(Arc::clone(&server), &path).expect("bind unix");
        let started = Instant::now();
        handle.stop();
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "stop() took {:?}",
            started.elapsed()
        );
        server.shutdown();
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn listener_still_serves_before_stop() {
        let server = Arc::new(MonitorServer::start(ServerConfig::default()));
        let handle = serve_tcp(Arc::clone(&server), "127.0.0.1:0").expect("bind");
        let addr = handle.addr().expect("tcp addr");
        let mut client = Client::connect_tcp(addr).expect("connect");
        assert_eq!(
            client.open(1, "never(post(b))", false).expect("open"),
            Response::Ok
        );
        handle.stop();
        server.shutdown();
    }
}
