//! Socket front ends for the monitor server: TCP and Unix-domain
//! listeners speaking the framed [`crate::proto`] protocol, plus a small
//! blocking [`Client`] with a buffering [`BatchWriter`].
//!
//! Two [`IoBackend`]s turn accepted sockets into server traffic:
//!
//! * [`IoBackend::Threaded`] (the portable default) gives each
//!   connection a *reader* thread that decodes request frames plus a
//!   *writer* thread draining a per-connection outbound buffer.
//!   Control requests (`Open`/`Swap`/`Close`) go through the
//!   synchronous [`MonitorServer::request`] path; event frames are
//!   posted fire-and-forget, so a producer can stream `EventBatch`
//!   frames back-to-back while cumulative acks flow out on the writer
//!   side. Because the shard queues are bounded, a connection whose
//!   session floods the server blocks *in its own reader thread*,
//!   exerting TCP/socket backpressure on that producer without
//!   stalling other connections.
//! * [`IoBackend::Reactor`] (Linux) multiplexes every connection over
//!   `epoll` on a fixed pool of reactor threads — see
//!   [`crate::reactor`]. Same protocol, same shard workers, same
//!   verdicts; the thread count stops scaling with the connection
//!   count. On other platforms it falls back to `Threaded`.
//!
//! The default [`serve_tcp`]/[`serve_unix`] entry points pick their
//! backend from the `MONSEM_IO_BACKEND` environment variable
//! (`threaded` | `reactor` | `reactor:N`), which is how CI runs the
//! whole server test suite under both backends; pass an explicit
//! [`IoBackend`] to [`serve_tcp_with`]/[`serve_unix_with`] to pin one.

use crate::format::write_tape;
use crate::proto::{read_frame, write_frame, Request, Response};
#[cfg(target_os = "linux")]
use crate::reactor::{ReactorPool, Sock};
use crate::server::{MonitorServer, ResponseSink};
use monsem_monitor::tape::TapeEvent;
use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Default [`BatchWriter`] flush threshold, in buffered events.
pub const DEFAULT_BATCH: usize = 256;

/// Default reactor thread count for [`IoBackend::Reactor`]. One thread
/// multiplexes thousands of connections comfortably; raise it when
/// frame decode itself becomes the bottleneck.
pub const DEFAULT_IO_THREADS: usize = 1;

/// Outbound reply-queue depth per connection (threaded backend). Acks
/// live outside this bound (they coalesce per session instead of
/// queueing); errors and replies past the bound block the sender — the
/// peer must read.
const OUTBOUND_DEPTH: usize = 1024;

/// How a listener turns accepted sockets into monitor-server traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IoBackend {
    /// Two OS threads per connection (blocking reader + writer). The
    /// portable fallback, and the differential-test oracle the reactor
    /// is checked against.
    #[default]
    Threaded,
    /// A readiness-driven `epoll` reactor (Linux): `io_threads` reactor
    /// threads own every socket, with interest-toggled writes and
    /// read-parking backpressure. Falls back to [`IoBackend::Threaded`]
    /// on other platforms.
    Reactor {
        /// Reactor threads the connections are distributed over.
        io_threads: usize,
    },
}

impl IoBackend {
    /// Reads the backend from the `MONSEM_IO_BACKEND` environment
    /// variable (`threaded` | `reactor` | `reactor:N`); unset or
    /// unparseable means [`IoBackend::Threaded`]. [`serve_tcp`] and
    /// [`serve_unix`] call this, which is how a test suite written
    /// against them runs under either backend without edits.
    pub fn from_env() -> IoBackend {
        std::env::var("MONSEM_IO_BACKEND")
            .ok()
            .and_then(|v| IoBackend::parse(&v))
            .unwrap_or(IoBackend::Threaded)
    }

    /// Parses a backend name: `threaded`, `reactor`, or `reactor:N`
    /// (N > 0 reactor threads).
    pub fn parse(s: &str) -> Option<IoBackend> {
        let s = s.trim();
        if s.eq_ignore_ascii_case("threaded") {
            return Some(IoBackend::Threaded);
        }
        if s.eq_ignore_ascii_case("reactor") {
            return Some(IoBackend::Reactor {
                io_threads: DEFAULT_IO_THREADS,
            });
        }
        s.strip_prefix("reactor:")
            .and_then(|n| n.parse().ok())
            .filter(|&n| n > 0)
            .map(|io_threads| IoBackend::Reactor { io_threads })
    }
}

/// A byte stream whose write half can be split off into an
/// independently-owned handle, so a connection can read requests and
/// write responses from different threads.
pub trait SplitStream: io::Read + io::Write {
    /// The write-half handle type.
    type Writer: io::Write + Send + 'static;

    /// Splits off a write handle to the same underlying stream.
    ///
    /// # Errors
    ///
    /// Propagates the OS duplication failure.
    fn split_writer(&self) -> io::Result<Self::Writer>;
}

impl SplitStream for TcpStream {
    type Writer = TcpStream;

    fn split_writer(&self) -> io::Result<TcpStream> {
        self.try_clone()
    }
}

impl SplitStream for UnixStream {
    type Writer = UnixStream;

    fn split_writer(&self) -> io::Result<UnixStream> {
        self.try_clone()
    }
}

/// How to wake a listener blocked in `accept` so it notices the stop
/// flag: connect to it ourselves. The throwaway connection is accepted,
/// observed after the flag, and dropped.
#[derive(Debug, Clone)]
enum WakeTarget {
    Tcp(SocketAddr),
    Unix(PathBuf),
}

impl WakeTarget {
    fn wake(&self) {
        match self {
            WakeTarget::Tcp(addr) => drop(TcpStream::connect(addr)),
            WakeTarget::Unix(path) => drop(UnixStream::connect(path)),
        }
    }
}

/// A handle to a running listener.
#[derive(Debug)]
pub struct ServeHandle {
    addr: Option<SocketAddr>,
    wake: WakeTarget,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    /// The reactor pool, when this listener runs [`IoBackend::Reactor`].
    #[cfg(target_os = "linux")]
    reactor: Option<Arc<ReactorPool>>,
}

impl ServeHandle {
    /// The bound TCP address (e.g. with port 0 the OS-chosen port).
    /// `None` for Unix-socket listeners.
    pub fn addr(&self) -> Option<SocketAddr> {
        self.addr
    }

    /// Stops accepting new connections and joins the accept loop (and,
    /// on the reactor backend, the reactor threads — closing every
    /// multiplexed connection). Threaded-backend connections finish at
    /// their own pace.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            self.wake.wake();
            let _ = t.join();
        }
        #[cfg(target_os = "linux")]
        if let Some(pool) = self.reactor.take() {
            pool.stop();
        }
    }
}

impl Drop for ServeHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Outbound state for one threaded-backend connection, drained by its
/// writer thread.
///
/// Replies and errors queue FIFO in `queue`, bounded by
/// [`OUTBOUND_DEPTH`]; a sender that hits the bound *blocks* until the
/// writer drains — an error is never dropped because the queue was
/// momentarily full. Cumulative acks are kept separately, coalesced per
/// session: offering a newer `through_step` replaces a stale queued one
/// instead of either dropping the ack or growing the queue. The writer
/// emits pending acks before queued replies, preserving "the shard
/// acked before it replied" order.
struct OutState {
    queue: VecDeque<Response>,
    /// `(session, through_step)`, one slot per session.
    acks: Vec<(u64, u64)>,
    /// Reader saw EOF: drain what is queued, then exit.
    closed: bool,
    /// Writer exited (socket error, or drained after close): sends fail
    /// fast instead of queueing for nobody.
    writer_gone: bool,
}

struct ConnOutbound {
    state: Mutex<OutState>,
    ready: Condvar,
}

impl ConnOutbound {
    fn new() -> ConnOutbound {
        ConnOutbound {
            state: Mutex::new(OutState {
                queue: VecDeque::new(),
                acks: Vec::new(),
                closed: false,
                writer_gone: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// Queues a reply or error, blocking while the queue is at
    /// capacity. Returns `false` once the writer is gone.
    fn send(&self, resp: Response) -> bool {
        let mut st = self.state.lock().expect("outbound lock");
        while st.queue.len() >= OUTBOUND_DEPTH && !st.writer_gone {
            st = self.ready.wait(st).expect("outbound lock");
        }
        if st.writer_gone {
            return false;
        }
        st.queue.push_back(resp);
        self.ready.notify_all();
        true
    }

    /// Coalescing ack offer: replaces this session's queued
    /// `through_step` if one is pending, never blocks, never drops an
    /// accepted ack.
    fn offer_ack(&self, session: u64, through_step: u64) -> bool {
        let mut st = self.state.lock().expect("outbound lock");
        if st.writer_gone {
            return false;
        }
        match st.acks.iter_mut().find(|(s, _)| *s == session) {
            Some(slot) => slot.1 = slot.1.max(through_step),
            None => st.acks.push((session, through_step)),
        }
        self.ready.notify_all();
        true
    }

    /// Reader is done; the writer drains and exits.
    fn close(&self) {
        self.state.lock().expect("outbound lock").closed = true;
        self.ready.notify_all();
    }

    /// Writer-thread body: pop acks first (ack-before-reply order),
    /// then replies; exit once closed-and-drained or on socket error.
    fn drain(&self, writer: &mut impl io::Write) {
        loop {
            let resp = {
                let mut st = self.state.lock().expect("outbound lock");
                loop {
                    if !st.acks.is_empty() {
                        let (session, through_step) = st.acks.remove(0);
                        break Response::Ack {
                            session,
                            through_step,
                        };
                    }
                    if let Some(resp) = st.queue.pop_front() {
                        // A sender may be blocked on the capacity bound.
                        self.ready.notify_all();
                        break resp;
                    }
                    if st.closed {
                        st.writer_gone = true;
                        self.ready.notify_all();
                        return;
                    }
                    st = self.ready.wait(st).expect("outbound lock");
                }
            };
            if write_frame(writer, &resp.encode()).is_err() {
                let mut st = self.state.lock().expect("outbound lock");
                st.writer_gone = true;
                self.ready.notify_all();
                return;
            }
        }
    }
}

/// Shard workers deliver through the connection's outbound buffer:
/// advisory-but-coalesced acks, must-deliver (blocking) errors.
impl ResponseSink for Arc<ConnOutbound> {
    fn ack(&self, session: u64, through_step: u64) -> bool {
        self.offer_ack(session, through_step)
    }

    fn send(&self, resp: Response) -> bool {
        ConnOutbound::send(self, resp)
    }
}

fn serve_connection<S: SplitStream>(server: &MonitorServer, mut stream: S) {
    let Ok(mut writer) = stream.split_writer() else {
        return;
    };
    let out = Arc::new(ConnOutbound::new());
    let wout = Arc::clone(&out);
    let writer_thread = std::thread::Builder::new()
        .name("monsem-conn-writer".to_string())
        .spawn(move || wout.drain(&mut writer));
    let Ok(writer_thread) = writer_thread else {
        return;
    };
    loop {
        let frame = match read_frame(&mut stream) {
            Ok(Some(frame)) => frame,
            Ok(None) => break, // clean EOF
            Err(_) => break,
        };
        match Request::decode(&frame) {
            // Event frames are fire-and-forget: the shard folds them
            // and delivers cumulative acks (coalesced) or errors
            // (blocking — never silently lost) into the outbound
            // buffer. The reader immediately returns to the socket for
            // the next frame.
            Ok(req @ (Request::Events { .. } | Request::EventBatch { .. })) => {
                if !server.post_with(req, Box::new(Arc::clone(&out)))
                    && !out.send(Response::Err("server is shut down".to_string()))
                {
                    break;
                }
            }
            // Control requests stay strictly request/reply. The writer
            // emits pending acks before the queued reply, keeping the
            // outbound frame order consistent with fold order: the
            // shard acked before it replied.
            Ok(req) => {
                let resp = server.request(req);
                if !out.send(resp) {
                    break;
                }
            }
            Err(e) => {
                if !out.send(Response::Err(format!("bad request: {e}"))) {
                    break;
                }
            }
        }
    }
    out.close();
    let _ = writer_thread.join();
}

// The listener stays in blocking mode: `accept` parks the thread until a
// connection (or the `stop()` wakeup self-connect) arrives, so an idle
// server costs zero wakeups. The stop flag is re-checked after every
// accept, which is what makes the wakeup connection sufficient.
// `on_conn` is the backend: spawn a reader/writer pair, or hand the
// socket to a reactor.
fn accept_loop<L, S>(
    listener: L,
    accept: impl Fn(&L) -> io::Result<S>,
    stop: Arc<AtomicBool>,
    on_conn: impl Fn(S),
) where
    S: Send + 'static,
{
    while !stop.load(Ordering::SeqCst) {
        match accept(&listener) {
            Ok(stream) => {
                if stop.load(Ordering::SeqCst) {
                    return; // the wakeup connection itself
                }
                on_conn(stream);
            }
            // Transient per-connection failures (e.g. the peer aborting
            // mid-handshake) must not kill the listener.
            Err(e) if e.kind() == io::ErrorKind::ConnectionAborted => {}
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// The threaded backend's `on_conn`: one reader thread per connection
/// (which itself spawns the writer).
fn spawn_threaded_conn<S: SplitStream + Send + 'static>(server: &Arc<MonitorServer>, stream: S) {
    let server = Arc::clone(server);
    let _ = std::thread::Builder::new()
        .name("monsem-conn".to_string())
        .spawn(move || serve_connection(&server, stream));
}

fn spawn_accept<F: FnOnce() + Send + 'static>(f: F) -> io::Result<JoinHandle<()>> {
    std::thread::Builder::new()
        .name("monsem-accept".to_string())
        .spawn(f)
}

/// Serves the monitor protocol on a TCP listener bound to `addr`
/// (use port `0` to let the OS pick; read it back from
/// [`ServeHandle::addr`]), with the backend chosen by
/// [`IoBackend::from_env`].
///
/// # Errors
///
/// Propagates bind failures.
pub fn serve_tcp(server: Arc<MonitorServer>, addr: impl ToSocketAddrs) -> io::Result<ServeHandle> {
    serve_tcp_with(server, addr, IoBackend::from_env())
}

/// [`serve_tcp`] with an explicit [`IoBackend`].
///
/// # Errors
///
/// Propagates bind failures and (reactor backend) epoll/eventfd setup
/// failures.
pub fn serve_tcp_with(
    server: Arc<MonitorServer>,
    addr: impl ToSocketAddrs,
    backend: IoBackend,
) -> io::Result<ServeHandle> {
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    // A wakeup connect must reach the listener even when it is bound to
    // an unspecified address (0.0.0.0 / ::), so target loopback then.
    let wake_addr = SocketAddr::new(
        match bound.ip() {
            IpAddr::V4(ip) if ip.is_unspecified() => IpAddr::V4(Ipv4Addr::LOCALHOST),
            IpAddr::V6(ip) if ip.is_unspecified() => IpAddr::V6(Ipv6Addr::LOCALHOST),
            ip => ip,
        },
        bound.port(),
    );
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let mut handle = ServeHandle {
        addr: Some(bound),
        wake: WakeTarget::Tcp(wake_addr),
        stop,
        accept_thread: None,
        #[cfg(target_os = "linux")]
        reactor: None,
    };
    #[cfg(target_os = "linux")]
    if let IoBackend::Reactor { io_threads } = backend {
        let pool = Arc::new(ReactorPool::start(&server, io_threads)?);
        let pool2 = Arc::clone(&pool);
        handle.reactor = Some(pool);
        handle.accept_thread = Some(spawn_accept(move || {
            accept_loop(
                listener,
                |l| l.accept().map(|(s, _)| s),
                stop2,
                move |s| pool2.register(Sock::Tcp(s)),
            );
        })?);
        return Ok(handle);
    }
    // Reactor falls back to Threaded off-Linux.
    #[cfg(not(target_os = "linux"))]
    let _ = backend;
    handle.accept_thread = Some(spawn_accept(move || {
        accept_loop(
            listener,
            |l| l.accept().map(|(s, _)| s),
            stop2,
            move |s| spawn_threaded_conn(&server, s),
        );
    })?);
    Ok(handle)
}

/// Serves the monitor protocol on a Unix-domain socket at `path`
/// (removed first if it already exists), with the backend chosen by
/// [`IoBackend::from_env`].
///
/// # Errors
///
/// Propagates bind failures.
pub fn serve_unix(server: Arc<MonitorServer>, path: impl AsRef<Path>) -> io::Result<ServeHandle> {
    serve_unix_with(server, path, IoBackend::from_env())
}

/// [`serve_unix`] with an explicit [`IoBackend`].
///
/// # Errors
///
/// Propagates bind failures and (reactor backend) epoll/eventfd setup
/// failures.
pub fn serve_unix_with(
    server: Arc<MonitorServer>,
    path: impl AsRef<Path>,
    backend: IoBackend,
) -> io::Result<ServeHandle> {
    let path = path.as_ref();
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let mut handle = ServeHandle {
        addr: None,
        wake: WakeTarget::Unix(path.to_path_buf()),
        stop,
        accept_thread: None,
        #[cfg(target_os = "linux")]
        reactor: None,
    };
    #[cfg(target_os = "linux")]
    if let IoBackend::Reactor { io_threads } = backend {
        let pool = Arc::new(ReactorPool::start(&server, io_threads)?);
        let pool2 = Arc::clone(&pool);
        handle.reactor = Some(pool);
        handle.accept_thread = Some(spawn_accept(move || {
            accept_loop(
                listener,
                |l| l.accept().map(|(s, _)| s),
                stop2,
                move |s| pool2.register(Sock::Unix(s)),
            );
        })?);
        return Ok(handle);
    }
    #[cfg(not(target_os = "linux"))]
    let _ = backend;
    handle.accept_thread = Some(spawn_accept(move || {
        accept_loop(
            listener,
            |l| l.accept().map(|(s, _)| s),
            stop2,
            move |s| spawn_threaded_conn(&server, s),
        );
    })?);
    Ok(handle)
}

/// A blocking protocol client over any byte stream.
///
/// Control requests ([`Client::open`], [`Client::swap`],
/// [`Client::close`], …) are strictly request/reply. Event traffic can
/// instead be *streamed*: [`Client::send_batch`] writes an
/// [`Request::EventBatch`] frame and returns without reading, and the
/// cumulative [`Response::Ack`] frames the server interleaves are
/// absorbed (and recorded — see [`Client::last_ack`]) by the next
/// synchronous request. [`Client::batch_writer`] layers size/interval
/// buffering on top.
///
/// Connection faults are **sticky**: once any operation hits an I/O
/// error (including an unexpected EOF mid-reply), every subsequent
/// call — the next [`Client::events`] as much as the final
/// [`Client::close`] — fails immediately with the original failure,
/// instead of the breakage surfacing only when the close barrier
/// finally reads the socket.
#[derive(Debug)]
pub struct Client<S> {
    stream: S,
    /// Highest `through_step` acked per session, from absorbed acks.
    acks: HashMap<u64, u64>,
    /// First I/O failure observed, replayed to every later call.
    fault: Option<(io::ErrorKind, String)>,
}

impl Client<TcpStream> {
    /// Connects over TCP.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect_tcp(addr: impl ToSocketAddrs) -> io::Result<Client<TcpStream>> {
        Ok(Client::new(TcpStream::connect(addr)?))
    }
}

impl Client<UnixStream> {
    /// Connects over a Unix-domain socket.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect_unix(path: impl AsRef<Path>) -> io::Result<Client<UnixStream>> {
        Ok(Client::new(UnixStream::connect(path)?))
    }
}

impl<S: io::Read + io::Write> Client<S> {
    /// Wraps an already-connected stream.
    pub fn new(stream: S) -> Client<S> {
        Client {
            stream,
            acks: HashMap::new(),
            fault: None,
        }
    }

    /// The sticky-fault gate: every operation goes through this first,
    /// so a connection that broke during an earlier fire-and-forget
    /// write fails the *next* call, whatever it is.
    fn check_fault(&self) -> io::Result<()> {
        match &self.fault {
            Some((kind, msg)) => Err(io::Error::new(
                *kind,
                format!("connection failed earlier: {msg}"),
            )),
            None => Ok(()),
        }
    }

    /// Records a fault and returns it; later calls replay it via
    /// [`Client::check_fault`].
    fn fail<T>(&mut self, err: io::Error) -> io::Result<T> {
        self.fault = Some((err.kind(), err.to_string()));
        Err(err)
    }

    /// Sends one request and waits for its response. Ack frames pending
    /// from earlier streamed batches are recorded and skipped — with
    /// one synchronous request in flight at a time, the first non-ack
    /// frame is this request's reply.
    ///
    /// # Errors
    ///
    /// I/O failures, or `InvalidData` if the server's reply does not
    /// decode (including an unexpected mid-reply EOF). Any such
    /// failure is sticky: it also fails every later call.
    pub fn request(&mut self, req: &Request) -> io::Result<Response> {
        self.check_fault()?;
        if let Err(e) = write_frame(&mut self.stream, &req.encode()) {
            return self.fail(e);
        }
        loop {
            let frame = match read_frame(&mut self.stream) {
                Ok(Some(frame)) => frame,
                Ok(None) => {
                    return self.fail(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed mid-request",
                    ))
                }
                Err(e) => return self.fail(e),
            };
            let resp = match Response::decode(&frame) {
                Ok(resp) => resp,
                Err(e) => return self.fail(io::Error::new(io::ErrorKind::InvalidData, e)),
            };
            match resp {
                Response::Ack {
                    session,
                    through_step,
                } => {
                    let acked = self.acks.entry(session).or_insert(through_step);
                    *acked = (*acked).max(through_step);
                }
                resp => return Ok(resp),
            }
        }
    }

    /// Fire-and-forget: frames `events` as a complete tape image
    /// ([`Request::EventBatch`]) and writes it without waiting for any
    /// reply. Violations and errors surface in the interleaved acks /
    /// the next synchronous request (typically [`Client::close`]).
    ///
    /// # Errors
    ///
    /// I/O failures writing the frame (sticky — see [`Client::request`]).
    pub fn send_batch(&mut self, session: u64, events: &[TapeEvent]) -> io::Result<()> {
        self.check_fault()?;
        if let Err(e) = write_frame(
            &mut self.stream,
            &Request::EventBatch {
                session,
                tape: write_tape(events),
            }
            .encode(),
        ) {
            return self.fail(e);
        }
        Ok(())
    }

    /// The highest event step the server has cumulatively acked for
    /// `session`, as observed so far. Acks are only *read* during
    /// synchronous requests, so this is a lower bound that tightens on
    /// every [`Client::request`].
    pub fn last_ack(&self, session: u64) -> Option<u64> {
        self.acks.get(&session).copied()
    }

    /// A buffering writer for one session: events accumulate locally
    /// and ship as [`Request::EventBatch`] frames when `flush_at`
    /// events are buffered (see [`BatchWriter::flush_every`] for an
    /// additional time-based trigger).
    pub fn batch_writer(&mut self, session: u64, flush_at: usize) -> BatchWriter<'_, S> {
        BatchWriter {
            client: self,
            session,
            buf: Vec::with_capacity(flush_at.max(1)),
            flush_at: flush_at.max(1),
            flush_every: None,
            last_flush: Instant::now(),
        }
    }

    /// Opens a session.
    ///
    /// # Errors
    ///
    /// As for [`Client::request`].
    pub fn open(&mut self, session: u64, spec: &str, enforcing: bool) -> io::Result<Response> {
        self.request(&Request::Open {
            session,
            enforcing,
            spec: spec.to_string(),
            stream: None,
        })
    }

    /// Opens a session carrying a stream (SLO) spec next to its safety
    /// spec.
    ///
    /// # Errors
    ///
    /// As for [`Client::request`].
    pub fn open_with_stream(
        &mut self,
        session: u64,
        spec: &str,
        stream: &str,
        enforcing: bool,
    ) -> io::Result<Response> {
        self.request(&Request::Open {
            session,
            enforcing,
            spec: spec.to_string(),
            stream: Some(stream.to_string()),
        })
    }

    /// Streams events into a session, fire-and-forget: the server
    /// replies with cumulative [`Response::Ack`]s instead of a
    /// per-frame verdict (absorbed by the next synchronous
    /// [`Client::request`] — typically the [`Client::close`] barrier,
    /// whose verdict is authoritative). Returns as soon as the frame
    /// is written.
    ///
    /// # Errors
    ///
    /// Propagates socket write errors (sticky — see
    /// [`Client::request`]).
    pub fn events(
        &mut self,
        session: u64,
        events: Vec<monsem_monitor::TapeEvent>,
    ) -> io::Result<()> {
        self.check_fault()?;
        if let Err(e) = write_frame(
            &mut self.stream,
            &Request::Events { session, events }.encode(),
        ) {
            return self.fail(e);
        }
        Ok(())
    }

    /// Hot-swaps a session's spec.
    ///
    /// # Errors
    ///
    /// As for [`Client::request`].
    pub fn swap(&mut self, session: u64, spec: &str) -> io::Result<Response> {
        self.request(&Request::Swap {
            session,
            spec: Some(spec.to_string()),
            stream: None,
        })
    }

    /// Hot-swaps a session's stream spec, keeping its safety spec.
    ///
    /// # Errors
    ///
    /// As for [`Client::request`].
    pub fn swap_stream(&mut self, session: u64, stream: &str) -> io::Result<Response> {
        self.request(&Request::Swap {
            session,
            spec: None,
            stream: Some(stream.to_string()),
        })
    }

    /// Closes a session.
    ///
    /// # Errors
    ///
    /// As for [`Client::request`].
    pub fn close(&mut self, session: u64) -> io::Result<Response> {
        self.request(&Request::Close { session })
    }
}

/// A size- and interval-buffered event writer over a [`Client`], built
/// by [`Client::batch_writer`].
///
/// Events [`BatchWriter::push`]ed here buffer locally until `flush_at`
/// of them accumulate (or [`BatchWriter::flush_every`]'s interval
/// elapses), then ship as one fire-and-forget [`Request::EventBatch`]
/// frame. Dropping the writer flushes best-effort; call
/// [`BatchWriter::flush`] (or issue a synchronous request afterwards)
/// when delivery must be confirmed.
#[derive(Debug)]
pub struct BatchWriter<'a, S: io::Read + io::Write> {
    client: &'a mut Client<S>,
    session: u64,
    buf: Vec<TapeEvent>,
    flush_at: usize,
    flush_every: Option<Duration>,
    last_flush: Instant,
}

impl<S: io::Read + io::Write> BatchWriter<'_, S> {
    /// Additionally flushes whenever `interval` has elapsed since the
    /// last shipped batch, bounding how stale a trickle of events can
    /// get on a mostly-idle session.
    #[must_use]
    pub fn flush_every(mut self, interval: Duration) -> Self {
        self.flush_every = Some(interval);
        self
    }

    /// Buffers one event, shipping the batch if the size or interval
    /// threshold is now crossed.
    ///
    /// # Errors
    ///
    /// I/O failures from the flush, if one was triggered.
    pub fn push(&mut self, ev: TapeEvent) -> io::Result<()> {
        self.buf.push(ev);
        let due = self.buf.len() >= self.flush_at
            || self
                .flush_every
                .is_some_and(|d| self.last_flush.elapsed() >= d);
        if due {
            self.flush()?;
        }
        Ok(())
    }

    /// Ships any buffered events now.
    ///
    /// # Errors
    ///
    /// I/O failures writing the frame (the buffer is preserved so a
    /// retry does not lose events).
    pub fn flush(&mut self) -> io::Result<()> {
        if !self.buf.is_empty() {
            self.client.send_batch(self.session, &self.buf)?;
            self.buf.clear();
        }
        self.last_flush = Instant::now();
        Ok(())
    }

    /// Buffered events not yet shipped.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }
}

impl<S: io::Read + io::Write> Drop for BatchWriter<'_, S> {
    fn drop(&mut self) {
        // Best-effort: an explicit flush() is the reliable path.
        let _ = self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerConfig;
    use std::time::{Duration, Instant};

    // The accept loop blocks in `accept` with no polling; these tests pin
    // that `stop()` still returns promptly because of the self-connect
    // wakeup. Without the wakeup they would hang until the harness
    // timeout, not merely run slow.

    #[test]
    fn idle_tcp_listener_stops_promptly() {
        let server = Arc::new(MonitorServer::start(ServerConfig::default()));
        let handle = serve_tcp(Arc::clone(&server), "127.0.0.1:0").expect("bind");
        let started = Instant::now();
        handle.stop();
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "stop() took {:?}",
            started.elapsed()
        );
        server.shutdown();
    }

    #[test]
    fn idle_unix_listener_stops_promptly() {
        let dir = std::env::temp_dir().join(format!("monsem-net-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("stop.sock");
        let server = Arc::new(MonitorServer::start(ServerConfig::default()));
        let handle = serve_unix(Arc::clone(&server), &path).expect("bind unix");
        let started = Instant::now();
        handle.stop();
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "stop() took {:?}",
            started.elapsed()
        );
        server.shutdown();
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn listener_still_serves_before_stop() {
        let server = Arc::new(MonitorServer::start(ServerConfig::default()));
        let handle = serve_tcp(Arc::clone(&server), "127.0.0.1:0").expect("bind");
        let addr = handle.addr().expect("tcp addr");
        let mut client = Client::connect_tcp(addr).expect("connect");
        assert_eq!(
            client.open(1, "never(post(b))", false).expect("open"),
            Response::Ok
        );
        handle.stop();
        server.shutdown();
    }

    #[test]
    fn batched_pipelined_ingest_round_trips_with_acks() {
        use monsem_core::Value;
        use monsem_syntax::Annotation;

        let config = ServerConfig {
            ack_every: 8,
            ..ServerConfig::default()
        };
        let server = Arc::new(MonitorServer::start(config));
        let handle = serve_tcp(Arc::clone(&server), "127.0.0.1:0").expect("bind");
        let addr = handle.addr().expect("tcp addr");
        let mut client = Client::connect_tcp(addr).expect("connect");
        client
            .open(21, "always(post(p) => value >= 0)", false)
            .expect("open");
        let ann = Annotation::label("p");
        {
            let mut w = client.batch_writer(21, 8);
            for step in 0..40u64 {
                // Step 33 violates; everything else is fine.
                let v = if step == 33 { -1 } else { 1 };
                w.push(TapeEvent::post(&ann, &Value::Int(v), step))
                    .expect("push");
            }
            w.flush().expect("flush");
            assert_eq!(w.pending(), 0);
        }
        // Close is the synchronous barrier: its verdict covers every
        // streamed event, and pending acks are absorbed on the way.
        let v = match client.close(21).expect("close") {
            Response::Verdict(v) => v,
            other => panic!("expected verdict, got {other:?}"),
        };
        assert_eq!(v.ingested, 40);
        assert_eq!(v.earliest_violation, Some(33));
        assert!(v.violation.is_some());
        let acked = client.last_ack(21).expect("saw at least one ack");
        assert!(acked <= 39, "acks never exceed what was sent");
        handle.stop();
        server.shutdown();
    }

    #[test]
    fn io_backend_parses_names_and_thread_counts() {
        assert_eq!(IoBackend::parse("threaded"), Some(IoBackend::Threaded));
        assert_eq!(IoBackend::parse(" Threaded "), Some(IoBackend::Threaded));
        assert_eq!(
            IoBackend::parse("reactor"),
            Some(IoBackend::Reactor {
                io_threads: DEFAULT_IO_THREADS
            })
        );
        assert_eq!(
            IoBackend::parse("reactor:4"),
            Some(IoBackend::Reactor { io_threads: 4 })
        );
        assert_eq!(IoBackend::parse("reactor:0"), None, "zero threads");
        assert_eq!(IoBackend::parse("epoll"), None);
        assert_eq!(IoBackend::parse(""), None);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn reactor_backend_round_trips_the_same_protocol() {
        use monsem_core::Value;
        use monsem_syntax::Annotation;

        let server = Arc::new(MonitorServer::start(ServerConfig {
            ack_every: 8,
            ..ServerConfig::default()
        }));
        let handle = serve_tcp_with(
            Arc::clone(&server),
            "127.0.0.1:0",
            IoBackend::Reactor { io_threads: 2 },
        )
        .expect("bind");
        let addr = handle.addr().expect("tcp addr");
        let mut client = Client::connect_tcp(addr).expect("connect");
        client
            .open(31, "always(post(p) => value >= 0)", false)
            .expect("open");
        let ann = Annotation::label("p");
        for chunk in 0..5u64 {
            let events: Vec<_> = (0..8)
                .map(|i| {
                    let step = chunk * 8 + i;
                    let v = if step == 33 { -1 } else { 1 };
                    TapeEvent::post(&ann, &Value::Int(v), step)
                })
                .collect();
            client.send_batch(31, &events).expect("send");
        }
        let v = match client.close(31).expect("close") {
            Response::Verdict(v) => v,
            other => panic!("expected verdict, got {other:?}"),
        };
        assert_eq!(v.ingested, 40);
        assert_eq!(v.earliest_violation, Some(33));
        assert!(client.last_ack(31).is_some(), "acks flowed out");
        handle.stop();
        server.shutdown();
    }
}
