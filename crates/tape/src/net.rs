//! Socket front ends for the monitor server: TCP and Unix-domain
//! listeners speaking the framed [`crate::proto`] protocol, plus a small
//! blocking [`Client`] with a buffering [`BatchWriter`].
//!
//! Each accepted connection gets a *reader* thread that decodes request
//! frames, plus a *writer* thread that drains an outbound response
//! queue. Control requests (`Open`/`Swap`/`Close`) go through the
//! synchronous [`MonitorServer::request`] path; event frames are
//! [`MonitorServer::post`]ed fire-and-forget, so a producer can stream
//! `EventBatch` frames back-to-back while cumulative acks flow out on
//! the writer side — the socket round-trip leaves the per-event path.
//! Because the server's shard queues are bounded, a connection whose
//! session floods the server blocks *in its own reader thread*,
//! exerting TCP/socket backpressure on that producer without stalling
//! other connections.

use crate::format::write_tape;
use crate::proto::{read_frame, write_frame, Request, Response};
use crate::server::MonitorServer;
use monsem_monitor::tape::TapeEvent;
use std::collections::HashMap;
use std::io;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::sync_channel;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Default [`BatchWriter`] flush threshold, in buffered events.
pub const DEFAULT_BATCH: usize = 256;

/// Outbound frame queue depth per connection. Deep enough that acks for
/// a full shard queue never block the worker; the writer thread drains
/// it at socket speed.
const OUTBOUND_DEPTH: usize = 1024;

/// A byte stream whose write half can be split off into an
/// independently-owned handle, so a connection can read requests and
/// write responses from different threads.
pub trait SplitStream: io::Read + io::Write {
    /// The write-half handle type.
    type Writer: io::Write + Send + 'static;

    /// Splits off a write handle to the same underlying stream.
    ///
    /// # Errors
    ///
    /// Propagates the OS duplication failure.
    fn split_writer(&self) -> io::Result<Self::Writer>;
}

impl SplitStream for TcpStream {
    type Writer = TcpStream;

    fn split_writer(&self) -> io::Result<TcpStream> {
        self.try_clone()
    }
}

impl SplitStream for UnixStream {
    type Writer = UnixStream;

    fn split_writer(&self) -> io::Result<UnixStream> {
        self.try_clone()
    }
}

/// How to wake a listener blocked in `accept` so it notices the stop
/// flag: connect to it ourselves. The throwaway connection is accepted,
/// observed after the flag, and dropped.
#[derive(Debug, Clone)]
enum WakeTarget {
    Tcp(SocketAddr),
    Unix(PathBuf),
}

impl WakeTarget {
    fn wake(&self) {
        match self {
            WakeTarget::Tcp(addr) => drop(TcpStream::connect(addr)),
            WakeTarget::Unix(path) => drop(UnixStream::connect(path)),
        }
    }
}

/// A handle to a running listener.
#[derive(Debug)]
pub struct ServeHandle {
    addr: Option<SocketAddr>,
    wake: WakeTarget,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ServeHandle {
    /// The bound TCP address (e.g. with port 0 the OS-chosen port).
    /// `None` for Unix-socket listeners.
    pub fn addr(&self) -> Option<SocketAddr> {
        self.addr
    }

    /// Stops accepting new connections and joins the accept loop.
    /// Existing connections finish at their own pace.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            self.wake.wake();
            let _ = t.join();
        }
    }
}

impl Drop for ServeHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve_connection<S: SplitStream>(server: &MonitorServer, mut stream: S) {
    let Ok(mut writer) = stream.split_writer() else {
        return;
    };
    let (wtx, wrx) = sync_channel::<Response>(OUTBOUND_DEPTH);
    let writer_thread = std::thread::Builder::new()
        .name("monsem-conn-writer".to_string())
        .spawn(move || {
            while let Ok(resp) = wrx.recv() {
                if write_frame(&mut writer, &resp.encode()).is_err() {
                    return;
                }
            }
        });
    let Ok(writer_thread) = writer_thread else {
        return;
    };
    loop {
        let frame = match read_frame(&mut stream) {
            Ok(Some(frame)) => frame,
            Ok(None) => break, // clean EOF
            Err(_) => break,
        };
        match Request::decode(&frame) {
            // Event frames are fire-and-forget: the shard folds them
            // and try_sends cumulative acks (or errors) into the
            // outbound queue. The reader immediately returns to the
            // socket for the next frame.
            Ok(req @ (Request::Events { .. } | Request::EventBatch { .. })) => {
                if !server.post(req, wtx.clone()) {
                    let _ = wtx.send(Response::Err("server is shut down".to_string()));
                }
            }
            // Control requests stay strictly request/reply. Queueing
            // the reply *behind* any pending acks keeps the outbound
            // frame order consistent with fold order: the shard acked
            // before it replied.
            Ok(req) => {
                let resp = server.request(req);
                if wtx.send(resp).is_err() {
                    break;
                }
            }
            Err(e) => {
                if wtx
                    .send(Response::Err(format!("bad request: {e}")))
                    .is_err()
                {
                    break;
                }
            }
        }
    }
    drop(wtx);
    let _ = writer_thread.join();
}

// The listener stays in blocking mode: `accept` parks the thread until a
// connection (or the `stop()` wakeup self-connect) arrives, so an idle
// server costs zero wakeups. The stop flag is re-checked after every
// accept, which is what makes the wakeup connection sufficient.
fn accept_loop<L, S>(
    listener: L,
    accept: impl Fn(&L) -> io::Result<S>,
    server: Arc<MonitorServer>,
    stop: Arc<AtomicBool>,
) where
    S: SplitStream + Send + 'static,
{
    while !stop.load(Ordering::SeqCst) {
        match accept(&listener) {
            Ok(stream) => {
                if stop.load(Ordering::SeqCst) {
                    return; // the wakeup connection itself
                }
                let server = Arc::clone(&server);
                let _ = std::thread::Builder::new()
                    .name("monsem-conn".to_string())
                    .spawn(move || serve_connection(&server, stream));
            }
            // Transient per-connection failures (e.g. the peer aborting
            // mid-handshake) must not kill the listener.
            Err(e) if e.kind() == io::ErrorKind::ConnectionAborted => {}
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// Serves the monitor protocol on a TCP listener bound to `addr`
/// (use port `0` to let the OS pick; read it back from
/// [`ServeHandle::addr`]).
///
/// # Errors
///
/// Propagates bind failures.
pub fn serve_tcp(server: Arc<MonitorServer>, addr: impl ToSocketAddrs) -> io::Result<ServeHandle> {
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    // A wakeup connect must reach the listener even when it is bound to
    // an unspecified address (0.0.0.0 / ::), so target loopback then.
    let wake_addr = SocketAddr::new(
        match bound.ip() {
            IpAddr::V4(ip) if ip.is_unspecified() => IpAddr::V4(Ipv4Addr::LOCALHOST),
            IpAddr::V6(ip) if ip.is_unspecified() => IpAddr::V6(Ipv6Addr::LOCALHOST),
            ip => ip,
        },
        bound.port(),
    );
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let accept_thread = std::thread::Builder::new()
        .name("monsem-accept".to_string())
        .spawn(move || accept_loop(listener, |l| l.accept().map(|(s, _)| s), server, stop2))?;
    Ok(ServeHandle {
        addr: Some(bound),
        wake: WakeTarget::Tcp(wake_addr),
        stop,
        accept_thread: Some(accept_thread),
    })
}

/// Serves the monitor protocol on a Unix-domain socket at `path`
/// (removed first if it already exists).
///
/// # Errors
///
/// Propagates bind failures.
pub fn serve_unix(server: Arc<MonitorServer>, path: impl AsRef<Path>) -> io::Result<ServeHandle> {
    let path = path.as_ref();
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let accept_thread = std::thread::Builder::new()
        .name("monsem-accept".to_string())
        .spawn(move || accept_loop(listener, |l| l.accept().map(|(s, _)| s), server, stop2))?;
    Ok(ServeHandle {
        addr: None,
        wake: WakeTarget::Unix(path.to_path_buf()),
        stop,
        accept_thread: Some(accept_thread),
    })
}

/// A blocking protocol client over any byte stream.
///
/// Control requests ([`Client::open`], [`Client::swap`],
/// [`Client::close`], …) are strictly request/reply. Event traffic can
/// instead be *streamed*: [`Client::send_batch`] writes an
/// [`Request::EventBatch`] frame and returns without reading, and the
/// cumulative [`Response::Ack`] frames the server interleaves are
/// absorbed (and recorded — see [`Client::last_ack`]) by the next
/// synchronous request. [`Client::batch_writer`] layers size/interval
/// buffering on top.
#[derive(Debug)]
pub struct Client<S> {
    stream: S,
    /// Highest `through_step` acked per session, from absorbed acks.
    acks: HashMap<u64, u64>,
}

impl Client<TcpStream> {
    /// Connects over TCP.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect_tcp(addr: impl ToSocketAddrs) -> io::Result<Client<TcpStream>> {
        Ok(Client::new(TcpStream::connect(addr)?))
    }
}

impl Client<UnixStream> {
    /// Connects over a Unix-domain socket.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect_unix(path: impl AsRef<Path>) -> io::Result<Client<UnixStream>> {
        Ok(Client::new(UnixStream::connect(path)?))
    }
}

impl<S: io::Read + io::Write> Client<S> {
    /// Wraps an already-connected stream.
    pub fn new(stream: S) -> Client<S> {
        Client {
            stream,
            acks: HashMap::new(),
        }
    }

    /// Sends one request and waits for its response. Ack frames pending
    /// from earlier streamed batches are recorded and skipped — with
    /// one synchronous request in flight at a time, the first non-ack
    /// frame is this request's reply.
    ///
    /// # Errors
    ///
    /// I/O failures, or `InvalidData` if the server's reply does not
    /// decode (including an unexpected mid-reply EOF).
    pub fn request(&mut self, req: &Request) -> io::Result<Response> {
        write_frame(&mut self.stream, &req.encode())?;
        loop {
            let frame = read_frame(&mut self.stream)?.ok_or_else(|| {
                io::Error::new(io::ErrorKind::UnexpectedEof, "server closed mid-request")
            })?;
            let resp = Response::decode(&frame)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            match resp {
                Response::Ack {
                    session,
                    through_step,
                } => {
                    let acked = self.acks.entry(session).or_insert(through_step);
                    *acked = (*acked).max(through_step);
                }
                resp => return Ok(resp),
            }
        }
    }

    /// Fire-and-forget: frames `events` as a complete tape image
    /// ([`Request::EventBatch`]) and writes it without waiting for any
    /// reply. Violations and errors surface in the interleaved acks /
    /// the next synchronous request (typically [`Client::close`]).
    ///
    /// # Errors
    ///
    /// I/O failures writing the frame.
    pub fn send_batch(&mut self, session: u64, events: &[TapeEvent]) -> io::Result<()> {
        write_frame(
            &mut self.stream,
            &Request::EventBatch {
                session,
                tape: write_tape(events),
            }
            .encode(),
        )
    }

    /// The highest event step the server has cumulatively acked for
    /// `session`, as observed so far. Acks are only *read* during
    /// synchronous requests, so this is a lower bound that tightens on
    /// every [`Client::request`].
    pub fn last_ack(&self, session: u64) -> Option<u64> {
        self.acks.get(&session).copied()
    }

    /// A buffering writer for one session: events accumulate locally
    /// and ship as [`Request::EventBatch`] frames when `flush_at`
    /// events are buffered (see [`BatchWriter::flush_every`] for an
    /// additional time-based trigger).
    pub fn batch_writer(&mut self, session: u64, flush_at: usize) -> BatchWriter<'_, S> {
        BatchWriter {
            client: self,
            session,
            buf: Vec::with_capacity(flush_at.max(1)),
            flush_at: flush_at.max(1),
            flush_every: None,
            last_flush: Instant::now(),
        }
    }

    /// Opens a session.
    ///
    /// # Errors
    ///
    /// As for [`Client::request`].
    pub fn open(&mut self, session: u64, spec: &str, enforcing: bool) -> io::Result<Response> {
        self.request(&Request::Open {
            session,
            enforcing,
            spec: spec.to_string(),
            stream: None,
        })
    }

    /// Opens a session carrying a stream (SLO) spec next to its safety
    /// spec.
    ///
    /// # Errors
    ///
    /// As for [`Client::request`].
    pub fn open_with_stream(
        &mut self,
        session: u64,
        spec: &str,
        stream: &str,
        enforcing: bool,
    ) -> io::Result<Response> {
        self.request(&Request::Open {
            session,
            enforcing,
            spec: spec.to_string(),
            stream: Some(stream.to_string()),
        })
    }

    /// Streams events into a session, fire-and-forget: the server
    /// replies with cumulative [`Response::Ack`]s instead of a
    /// per-frame verdict (absorbed by the next synchronous
    /// [`Client::request`] — typically the [`Client::close`] barrier,
    /// whose verdict is authoritative). Returns as soon as the frame
    /// is written.
    ///
    /// # Errors
    ///
    /// Propagates socket write errors.
    pub fn events(
        &mut self,
        session: u64,
        events: Vec<monsem_monitor::TapeEvent>,
    ) -> io::Result<()> {
        write_frame(
            &mut self.stream,
            &Request::Events { session, events }.encode(),
        )
    }

    /// Hot-swaps a session's spec.
    ///
    /// # Errors
    ///
    /// As for [`Client::request`].
    pub fn swap(&mut self, session: u64, spec: &str) -> io::Result<Response> {
        self.request(&Request::Swap {
            session,
            spec: Some(spec.to_string()),
            stream: None,
        })
    }

    /// Hot-swaps a session's stream spec, keeping its safety spec.
    ///
    /// # Errors
    ///
    /// As for [`Client::request`].
    pub fn swap_stream(&mut self, session: u64, stream: &str) -> io::Result<Response> {
        self.request(&Request::Swap {
            session,
            spec: None,
            stream: Some(stream.to_string()),
        })
    }

    /// Closes a session.
    ///
    /// # Errors
    ///
    /// As for [`Client::request`].
    pub fn close(&mut self, session: u64) -> io::Result<Response> {
        self.request(&Request::Close { session })
    }
}

/// A size- and interval-buffered event writer over a [`Client`], built
/// by [`Client::batch_writer`].
///
/// Events [`BatchWriter::push`]ed here buffer locally until `flush_at`
/// of them accumulate (or [`BatchWriter::flush_every`]'s interval
/// elapses), then ship as one fire-and-forget [`Request::EventBatch`]
/// frame. Dropping the writer flushes best-effort; call
/// [`BatchWriter::flush`] (or issue a synchronous request afterwards)
/// when delivery must be confirmed.
#[derive(Debug)]
pub struct BatchWriter<'a, S: io::Read + io::Write> {
    client: &'a mut Client<S>,
    session: u64,
    buf: Vec<TapeEvent>,
    flush_at: usize,
    flush_every: Option<Duration>,
    last_flush: Instant,
}

impl<S: io::Read + io::Write> BatchWriter<'_, S> {
    /// Additionally flushes whenever `interval` has elapsed since the
    /// last shipped batch, bounding how stale a trickle of events can
    /// get on a mostly-idle session.
    #[must_use]
    pub fn flush_every(mut self, interval: Duration) -> Self {
        self.flush_every = Some(interval);
        self
    }

    /// Buffers one event, shipping the batch if the size or interval
    /// threshold is now crossed.
    ///
    /// # Errors
    ///
    /// I/O failures from the flush, if one was triggered.
    pub fn push(&mut self, ev: TapeEvent) -> io::Result<()> {
        self.buf.push(ev);
        let due = self.buf.len() >= self.flush_at
            || self
                .flush_every
                .is_some_and(|d| self.last_flush.elapsed() >= d);
        if due {
            self.flush()?;
        }
        Ok(())
    }

    /// Ships any buffered events now.
    ///
    /// # Errors
    ///
    /// I/O failures writing the frame (the buffer is preserved so a
    /// retry does not lose events).
    pub fn flush(&mut self) -> io::Result<()> {
        if !self.buf.is_empty() {
            self.client.send_batch(self.session, &self.buf)?;
            self.buf.clear();
        }
        self.last_flush = Instant::now();
        Ok(())
    }

    /// Buffered events not yet shipped.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }
}

impl<S: io::Read + io::Write> Drop for BatchWriter<'_, S> {
    fn drop(&mut self) {
        // Best-effort: an explicit flush() is the reliable path.
        let _ = self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerConfig;
    use std::time::{Duration, Instant};

    // The accept loop blocks in `accept` with no polling; these tests pin
    // that `stop()` still returns promptly because of the self-connect
    // wakeup. Without the wakeup they would hang until the harness
    // timeout, not merely run slow.

    #[test]
    fn idle_tcp_listener_stops_promptly() {
        let server = Arc::new(MonitorServer::start(ServerConfig::default()));
        let handle = serve_tcp(Arc::clone(&server), "127.0.0.1:0").expect("bind");
        let started = Instant::now();
        handle.stop();
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "stop() took {:?}",
            started.elapsed()
        );
        server.shutdown();
    }

    #[test]
    fn idle_unix_listener_stops_promptly() {
        let dir = std::env::temp_dir().join(format!("monsem-net-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("stop.sock");
        let server = Arc::new(MonitorServer::start(ServerConfig::default()));
        let handle = serve_unix(Arc::clone(&server), &path).expect("bind unix");
        let started = Instant::now();
        handle.stop();
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "stop() took {:?}",
            started.elapsed()
        );
        server.shutdown();
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn listener_still_serves_before_stop() {
        let server = Arc::new(MonitorServer::start(ServerConfig::default()));
        let handle = serve_tcp(Arc::clone(&server), "127.0.0.1:0").expect("bind");
        let addr = handle.addr().expect("tcp addr");
        let mut client = Client::connect_tcp(addr).expect("connect");
        assert_eq!(
            client.open(1, "never(post(b))", false).expect("open"),
            Response::Ok
        );
        handle.stop();
        server.shutdown();
    }

    #[test]
    fn batched_pipelined_ingest_round_trips_with_acks() {
        use monsem_core::Value;
        use monsem_syntax::Annotation;

        let config = ServerConfig {
            ack_every: 8,
            ..ServerConfig::default()
        };
        let server = Arc::new(MonitorServer::start(config));
        let handle = serve_tcp(Arc::clone(&server), "127.0.0.1:0").expect("bind");
        let addr = handle.addr().expect("tcp addr");
        let mut client = Client::connect_tcp(addr).expect("connect");
        client
            .open(21, "always(post(p) => value >= 0)", false)
            .expect("open");
        let ann = Annotation::label("p");
        {
            let mut w = client.batch_writer(21, 8);
            for step in 0..40u64 {
                // Step 33 violates; everything else is fine.
                let v = if step == 33 { -1 } else { 1 };
                w.push(TapeEvent::post(&ann, &Value::Int(v), step))
                    .expect("push");
            }
            w.flush().expect("flush");
            assert_eq!(w.pending(), 0);
        }
        // Close is the synchronous barrier: its verdict covers every
        // streamed event, and pending acks are absorbed on the way.
        let v = match client.close(21).expect("close") {
            Response::Verdict(v) => v,
            other => panic!("expected verdict, got {other:?}"),
        };
        assert_eq!(v.ingested, 40);
        assert_eq!(v.earliest_violation, Some(33));
        assert!(v.violation.is_some());
        let acked = client.last_ack(21).expect("saw at least one ack");
        assert!(acked <= 39, "acks never exceed what was sent");
        handle.stop();
        server.shutdown();
    }
}
