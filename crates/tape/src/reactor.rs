//! A readiness-driven I/O backend for the monitor server.
//!
//! The threaded backend in [`crate::net`] spends two OS threads per
//! connection (a blocking reader plus a writer draining the outbound
//! queue). That is simple and portable, but it caps a server at a few
//! thousand sockets and makes thread count — not monitor throughput —
//! the scaling limit. This module multiplexes every connection over
//! `epoll` instead: `io_threads` reactor threads (usually one) own all
//! sockets, and each connection is a small nonblocking state machine:
//!
//! * **Incremental decode** — bytes arrive in whatever dribbles the
//!   kernel delivers and feed a [`FrameDecoder`]; a frame is acted on
//!   the moment its last byte lands.
//! * **Interest-toggling writes** — responses are serialized into a
//!   bounded per-connection write buffer; `EPOLLOUT` interest is only
//!   registered while unsent bytes exist, so an idle connection costs
//!   zero wakeups and a slow reader backpressures into its own socket
//!   instead of dropping acks or errors.
//! * **Read parking** — when a session's shard queue is full, the
//!   decoded job is *parked* on the connection and `EPOLLIN` interest
//!   is dropped. The kernel socket buffer then fills and the producer
//!   feels real TCP backpressure, all without blocking the reactor
//!   thread (which keeps serving every other connection).
//!
//! Shard workers and the `Session` fold are untouched: the reactor
//! swaps how bytes reach [`MonitorServer::try_submit`], not what the
//! monitor does with them, so verdict semantics carry over from the
//! threaded backend by construction. Control requests ride the
//! [`Reply::Routed`] path — their replies come back through the same
//! injection queue the acks use, woken by an `eventfd`.
//!
//! The `sys` submodule is the only unsafe code in the crate: direct
//! `extern "C"` declarations for `epoll_create1`/`epoll_ctl`/
//! `epoll_wait`/`eventfd` (std already links libc; no new dependency),
//! wrapped in RAII types so every fd is closed exactly once.

use crate::proto::{FrameDecoder, Request, Response};
use crate::server::{Job, MonitorServer, Reply, ResponseSink, SubmitError};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::os::fd::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Raw epoll/eventfd FFI. Kept to the minimum surface the reactor
/// needs; everything public re-wraps these in safe RAII types.
#[allow(unsafe_code)]
mod sys {
    use std::os::raw::{c_int, c_uint, c_void};

    pub const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const EFD_CLOEXEC: c_int = 0o2000000;
    pub const EFD_NONBLOCK: c_int = 0o4000;

    /// Mirrors the kernel's `struct epoll_event`. On x86 the kernel ABI
    /// packs it to 12 bytes (`__attribute__((packed))` in the libc
    /// header); elsewhere it has natural alignment. Getting this wrong
    /// corrupts every second event in the wait buffer, so the layout is
    /// per-arch.
    #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(C, packed))]
    #[cfg_attr(not(any(target_arch = "x86", target_arch = "x86_64")), repr(C))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        pub fn eventfd(initval: c_uint, flags: c_int) -> c_int;
        pub fn close(fd: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    }
}

/// An owned epoll instance; the fd is closed on drop.
#[derive(Debug)]
struct Epoll {
    fd: RawFd,
}

#[allow(unsafe_code)]
impl Epoll {
    fn new() -> io::Result<Epoll> {
        // SAFETY: no pointers; returns a fresh fd or -1.
        let fd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: i32, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        let mut ev = sys::EpollEvent {
            events: interest,
            data: token,
        };
        // SAFETY: `ev` is a valid epoll_event that outlives the call
        // (the kernel copies it; DEL ignores it).
        let rc = unsafe { sys::epoll_ctl(self.fd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    fn add(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_ADD, fd, interest, token)
    }

    fn modify(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_MOD, fd, interest, token)
    }

    fn delete(&self, fd: RawFd) {
        let _ = self.ctl(sys::EPOLL_CTL_DEL, fd, 0, 0);
    }

    /// Waits for readiness, retrying on `EINTR`. `timeout_ms < 0`
    /// blocks indefinitely.
    fn wait(&self, events: &mut [sys::EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        loop {
            // SAFETY: `events` is valid writable storage for
            // `events.len()` entries for the duration of the call.
            let n = unsafe {
                sys::epoll_wait(
                    self.fd,
                    events.as_mut_ptr(),
                    events.len() as i32,
                    timeout_ms,
                )
            };
            if n >= 0 {
                return Ok(n as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

#[allow(unsafe_code)]
impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: we own the fd and close it exactly once.
        unsafe { sys::close(self.fd) };
    }
}

/// An owned `eventfd` used to kick a reactor thread out of
/// `epoll_wait` when work is injected from outside (new connections,
/// worker responses, stop). Nonblocking on both ends; the counter just
/// coalesces pending kicks.
#[derive(Debug)]
struct EventFd {
    fd: RawFd,
}

#[allow(unsafe_code)]
impl EventFd {
    fn new() -> io::Result<EventFd> {
        // SAFETY: no pointers; returns a fresh fd or -1.
        let fd = unsafe { sys::eventfd(0, sys::EFD_CLOEXEC | sys::EFD_NONBLOCK) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(EventFd { fd })
    }

    /// Kicks the owning reactor. A full counter (`EAGAIN`) means a kick
    /// is already pending, which is all we need.
    fn signal(&self) {
        let one: u64 = 1;
        // SAFETY: writes 8 bytes from a valid local.
        unsafe { sys::write(self.fd, (&raw const one).cast(), 8) };
    }

    /// Consumes pending kicks so level-triggered epoll quiets down.
    fn drain(&self) {
        let mut buf: u64 = 0;
        // SAFETY: reads 8 bytes into a valid local.
        unsafe { sys::read(self.fd, (&raw mut buf).cast(), 8) };
    }
}

#[allow(unsafe_code)]
impl Drop for EventFd {
    fn drop(&mut self) {
        // SAFETY: we own the fd and close it exactly once.
        unsafe { sys::close(self.fd) };
    }
}

/// A nonblocking accepted socket, TCP or Unix-domain.
#[derive(Debug)]
pub(crate) enum Sock {
    /// A TCP connection.
    Tcp(TcpStream),
    /// A Unix-domain connection.
    Unix(UnixStream),
}

impl Sock {
    fn fd(&self) -> RawFd {
        match self {
            Sock::Tcp(s) => s.as_raw_fd(),
            Sock::Unix(s) => s.as_raw_fd(),
        }
    }

    fn set_nonblocking(&self) -> io::Result<()> {
        match self {
            Sock::Tcp(s) => s.set_nonblocking(true),
            Sock::Unix(s) => s.set_nonblocking(true),
        }
    }
}

impl Read for Sock {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Sock::Tcp(s) => s.read(buf),
            Sock::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Sock {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Sock::Tcp(s) => s.write(buf),
            Sock::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Sock::Tcp(s) => s.flush(),
            Sock::Unix(s) => s.flush(),
        }
    }
}

/// Token identifying the reactor's own eventfd in the wait set.
const WAKE_TOKEN: u64 = u64::MAX;

/// Read-interest is parked once this many unsent response bytes pile up
/// on one connection; the peer must drain replies before sending more.
const SOFT_WBUF_CAP: usize = 256 * 1024;

/// A connection whose write buffer grows past this is declared dead:
/// its peer stopped reading entirely while replies kept accruing.
const HARD_WBUF_CAP: usize = 4 * 1024 * 1024;

/// Work injected into a reactor thread from outside: the accept loop
/// hands over fresh connections, shard workers hand back acks and
/// responses. Swapped out wholesale under the lock, applied on the
/// reactor thread.
#[derive(Default)]
struct Injected {
    conns: Vec<(u64, Sock)>,
    /// `(token, response, is_control_reply)`.
    responses: Vec<(u64, Response, bool)>,
    /// Cumulative acks coalesced per `(token, session)`: a stale queued
    /// `through_step` is replaced by a newer one, never dropped.
    acks: Vec<(u64, u64, u64)>,
    stop: bool,
}

/// State shared between one reactor thread and everyone injecting work
/// into it.
struct Shared {
    injected: Mutex<Injected>,
    wake: EventFd,
}

/// The per-job sink shard workers deliver through: pushes into the
/// owning reactor's injection queue and kicks its eventfd.
struct ReactorSink {
    shared: Arc<Shared>,
    token: u64,
    /// Whether a delivered response closes out a routed control request
    /// (the connection counts those to know when it may retire).
    control: bool,
}

impl ResponseSink for ReactorSink {
    fn ack(&self, session: u64, through_step: u64) -> bool {
        let mut inj = self.shared.injected.lock().expect("reactor injection lock");
        match inj
            .acks
            .iter_mut()
            .find(|(t, s, _)| *t == self.token && *s == session)
        {
            Some(slot) => slot.2 = slot.2.max(through_step),
            None => inj.acks.push((self.token, session, through_step)),
        }
        drop(inj);
        self.shared.wake.signal();
        true
    }

    fn send(&self, resp: Response) -> bool {
        let mut inj = self.shared.injected.lock().expect("reactor injection lock");
        inj.responses.push((self.token, resp, self.control));
        drop(inj);
        self.shared.wake.signal();
        true
    }
}

/// A job decoded from a connection that found its shard queue full.
struct Parked {
    session: u64,
    job: Job,
    control: bool,
}

/// One connection's nonblocking state machine.
struct Conn {
    sock: Sock,
    decoder: FrameDecoder,
    /// Serialized response frames not yet accepted by the socket;
    /// `wstart` is the sent prefix.
    wbuf: Vec<u8>,
    wstart: usize,
    /// Interest mask currently registered with epoll.
    interest: u32,
    parked: Option<Parked>,
    /// Routed control requests submitted but not yet answered; the
    /// connection cannot retire while one is in flight.
    control_inflight: usize,
    eof: bool,
    dead: bool,
}

impl Conn {
    fn new(sock: Sock) -> Conn {
        Conn {
            sock,
            decoder: FrameDecoder::new(),
            wbuf: Vec::new(),
            wstart: 0,
            interest: 0,
            parked: None,
            control_inflight: 0,
            eof: false,
            dead: false,
        }
    }

    fn unsent(&self) -> usize {
        self.wbuf.len() - self.wstart
    }

    /// Appends one response frame to the write buffer. The hard cap
    /// catches a peer that stopped reading entirely.
    fn queue_response(&mut self, resp: &Response) {
        let payload = resp.encode();
        self.wbuf
            .extend_from_slice(&(payload.len() as u32).to_be_bytes());
        self.wbuf.extend_from_slice(&payload);
        if self.unsent() > HARD_WBUF_CAP {
            self.dead = true;
        }
    }

    /// Writes as much of the buffer as the socket will take.
    fn flush(&mut self) {
        while self.wstart < self.wbuf.len() {
            match self.sock.write(&self.wbuf[self.wstart..]) {
                Ok(0) => {
                    self.dead = true;
                    return;
                }
                Ok(n) => self.wstart += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
        if self.wstart == self.wbuf.len() {
            self.wbuf.clear();
            self.wstart = 0;
        } else if self.wstart > 64 * 1024 {
            self.wbuf.drain(..self.wstart);
            self.wstart = 0;
        }
    }

    /// The interest mask this connection wants right now: `EPOLLIN`
    /// unless parked / read-saturated / at EOF, `EPOLLOUT` only while
    /// unsent bytes exist.
    fn wanted_interest(&self) -> u32 {
        let mut want = sys::EPOLLRDHUP;
        if self.parked.is_none() && !self.eof && self.unsent() < SOFT_WBUF_CAP {
            want |= sys::EPOLLIN;
        }
        if self.unsent() > 0 {
            want |= sys::EPOLLOUT;
        }
        want
    }

    /// A connection retires once the peer is done sending, nothing is
    /// parked or in flight, and every queued response byte is out.
    fn retired(&self) -> bool {
        self.eof && self.parked.is_none() && self.control_inflight == 0 && self.unsent() == 0
    }
}

/// Re-registers `conn`'s interest with epoll if it changed. An `EMFILE`
/// here is unreachable (MOD allocates nothing); any failure means the
/// fd is gone, so the connection dies.
fn sync_interest(epoll: &Epoll, token: u64, conn: &mut Conn) {
    if conn.dead {
        return;
    }
    let want = conn.wanted_interest();
    if want != conn.interest {
        if epoll.modify(conn.sock.fd(), want, token).is_err() {
            conn.dead = true;
            return;
        }
        conn.interest = want;
    }
}

/// Decodes and submits as many complete frames as shard queues will
/// take. Stops at the first full queue (parking the job) so per-session
/// frame order is preserved.
fn process_frames(conn: &mut Conn, server: &MonitorServer, shared: &Arc<Shared>, token: u64) {
    while conn.parked.is_none() && !conn.dead {
        let payload = match conn.decoder.next_frame() {
            Ok(Some(payload)) => payload,
            Ok(None) => break,
            Err(_) => {
                // An oversized length prefix: the stream is garbage
                // from here on. Report once (best-effort flush — the
                // frame is tiny) and hang up.
                conn.queue_response(&Response::Err("frame exceeds maximum size".to_string()));
                conn.flush();
                conn.dead = true;
                break;
            }
        };
        match Request::decode(&payload) {
            Ok(req @ (Request::Events { .. } | Request::EventBatch { .. })) => {
                let session = crate::server::req_session(&req);
                let sink = ReactorSink {
                    shared: Arc::clone(shared),
                    token,
                    control: false,
                };
                submit(
                    conn,
                    server,
                    session,
                    Job::Req(req, Reply::Acked(Box::new(sink))),
                    false,
                );
            }
            Ok(req) => {
                let session = crate::server::req_session(&req);
                let sink = ReactorSink {
                    shared: Arc::clone(shared),
                    token,
                    control: true,
                };
                submit(
                    conn,
                    server,
                    session,
                    Job::Req(req, Reply::Routed(Box::new(sink))),
                    true,
                );
            }
            Err(e) => conn.queue_response(&Response::Err(format!("bad request: {e}"))),
        }
    }
}

/// Offers one job to its shard; parks it on the connection when the
/// queue is full (backpressure) and synthesizes the shutdown error when
/// the server is down.
fn submit(conn: &mut Conn, server: &MonitorServer, session: u64, job: Job, control: bool) {
    match server.try_submit(session, job) {
        Ok(()) => {
            if control {
                conn.control_inflight += 1;
            }
        }
        Err(SubmitError::Full(job)) => {
            conn.parked = Some(Parked {
                session,
                job,
                control,
            });
        }
        Err(SubmitError::Down) => {
            conn.queue_response(&Response::Err("server is shut down".to_string()));
        }
    }
}

/// Pulls bytes off the socket into the frame decoder, processing frames
/// as they complete. Bounded per call so one firehose connection cannot
/// starve the rest of the wait set (level-triggered epoll re-arms).
fn read_ready(
    conn: &mut Conn,
    server: &MonitorServer,
    shared: &Arc<Shared>,
    token: u64,
    scratch: &mut [u8],
) {
    let mut budget = 4;
    while budget > 0 && conn.parked.is_none() && !conn.eof && !conn.dead {
        budget -= 1;
        match conn.sock.read(scratch) {
            Ok(0) => conn.eof = true,
            Ok(n) => {
                conn.decoder.extend(&scratch[..n]);
                process_frames(conn, server, shared, token);
                if n < scratch.len() {
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => conn.dead = true,
        }
    }
    if conn.eof && conn.parked.is_none() {
        // Whatever complete frames arrived before EOF were processed
        // above; a partial trailing frame is an unclean close, dropped
        // exactly as the threaded reader drops it.
        process_frames(conn, server, shared, token);
    }
}

/// One reactor thread: drain injections, retry parked jobs, wait, and
/// advance every ready connection's state machine.
fn reactor_loop(epoll: Epoll, shared: Arc<Shared>, server: Arc<MonitorServer>) {
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut events = vec![sys::EpollEvent { events: 0, data: 0 }; 256];
    let mut scratch = vec![0u8; 64 * 1024];
    loop {
        // 1. Apply injected work. Acks before responses: within one
        // batch this preserves "the shard acked before it replied".
        let injected = {
            let mut inj = shared.injected.lock().expect("reactor injection lock");
            std::mem::take(&mut *inj)
        };
        if injected.stop {
            return; // drops close every socket, the epoll fd stays RAII'd
        }
        for (token, sock) in injected.conns {
            if sock.set_nonblocking().is_err() {
                continue;
            }
            let mut conn = Conn::new(sock);
            let want = conn.wanted_interest();
            if epoll.add(conn.sock.fd(), want, token).is_ok() {
                conn.interest = want;
                conns.insert(token, conn);
            }
        }
        for (token, session, through_step) in injected.acks {
            if let Some(conn) = conns.get_mut(&token) {
                conn.queue_response(&Response::Ack {
                    session,
                    through_step,
                });
            }
        }
        for (token, resp, control) in injected.responses {
            if let Some(conn) = conns.get_mut(&token) {
                if control {
                    conn.control_inflight = conn.control_inflight.saturating_sub(1);
                }
                conn.queue_response(&resp);
            }
        }

        // 2. Retry parked jobs — the shard may have drained. On
        // success the connection resumes decoding where it stopped.
        let parked_tokens: Vec<u64> = conns
            .iter()
            .filter(|(_, c)| c.parked.is_some() && !c.dead)
            .map(|(t, _)| *t)
            .collect();
        for token in parked_tokens {
            let Some(conn) = conns.get_mut(&token) else {
                continue;
            };
            let Parked {
                session,
                job,
                control,
            } = conn.parked.take().expect("parked job present");
            submit(conn, &server, session, job, control);
            if conn.parked.is_none() {
                process_frames(conn, &server, &shared, token);
            }
        }

        // 3. Flush, resync interest, and reap finished connections.
        let mut reap: Vec<u64> = Vec::new();
        for (token, conn) in conns.iter_mut() {
            if conn.unsent() > 0 {
                conn.flush();
            }
            if conn.dead || conn.retired() {
                reap.push(*token);
                continue;
            }
            sync_interest(&epoll, *token, conn);
        }
        for token in reap {
            if let Some(conn) = conns.remove(&token) {
                epoll.delete(conn.sock.fd());
            }
        }

        // 4. Wait. While anything is parked we poll at 1 ms so shard
        // drainage is noticed promptly; otherwise block until the
        // kernel or the eventfd has news.
        let any_parked = conns.values().any(|c| c.parked.is_some());
        let timeout_ms = if any_parked { 1 } else { -1 };
        let n = match epoll.wait(&mut events, timeout_ms) {
            Ok(n) => n,
            Err(_) => return,
        };
        for ev in events.iter().take(n).copied() {
            let token = ev.data;
            let bits = ev.events;
            if token == WAKE_TOKEN {
                shared.wake.drain();
                continue;
            }
            let Some(conn) = conns.get_mut(&token) else {
                continue;
            };
            if bits & sys::EPOLLERR != 0 {
                conn.dead = true;
                continue;
            }
            if bits & (sys::EPOLLIN | sys::EPOLLHUP | sys::EPOLLRDHUP) != 0 {
                read_ready(conn, &server, &shared, token, &mut scratch);
            }
            if bits & sys::EPOLLOUT != 0 {
                conn.flush();
            }
        }
    }
}

/// Monotonic connection tokens, unique across every reactor in the
/// process (tokens are also the keys worker sinks address).
static NEXT_TOKEN: AtomicU64 = AtomicU64::new(0);

/// A handful of reactor threads plus the round-robin dispatch the
/// accept loop uses to hand them fresh connections. `stop` takes
/// `&self` (joins live behind a mutex) so the pool can be shared
/// between the accept loop and the serve handle via `Arc`.
pub(crate) struct ReactorPool {
    shareds: Vec<Arc<Shared>>,
    joins: Mutex<Vec<JoinHandle<()>>>,
    next: AtomicUsize,
}

impl ReactorPool {
    /// Spawns `io_threads` reactor threads serving `server`.
    pub(crate) fn start(server: &Arc<MonitorServer>, io_threads: usize) -> io::Result<ReactorPool> {
        let count = io_threads.max(1);
        let mut shareds = Vec::with_capacity(count);
        let mut joins = Vec::with_capacity(count);
        for i in 0..count {
            let shared = Arc::new(Shared {
                injected: Mutex::new(Injected::default()),
                wake: EventFd::new()?,
            });
            // The epoll instance is created here, not in the spawned
            // thread, so setup failures surface as an error from
            // `start` and the pool's fd footprint is fully paid before
            // `start` returns (fd-hygiene tests snapshot right after).
            let epoll = Epoll::new()?;
            epoll.add(shared.wake.fd, sys::EPOLLIN, WAKE_TOKEN)?;
            let shared2 = Arc::clone(&shared);
            let server = Arc::clone(server);
            joins.push(
                std::thread::Builder::new()
                    .name(format!("monsem-reactor-{i}"))
                    .spawn(move || reactor_loop(epoll, shared2, server))?,
            );
            shareds.push(shared);
        }
        Ok(ReactorPool {
            shareds,
            joins: Mutex::new(joins),
            next: AtomicUsize::new(0),
        })
    }

    /// Hands a fresh connection to the next reactor thread.
    pub(crate) fn register(&self, sock: Sock) {
        if self.shareds.is_empty() {
            return;
        }
        let i = self.next.fetch_add(1, Ordering::Relaxed) % self.shareds.len();
        let token = NEXT_TOKEN.fetch_add(1, Ordering::Relaxed);
        let shared = &self.shareds[i];
        shared
            .injected
            .lock()
            .expect("reactor injection lock")
            .conns
            .push((token, sock));
        shared.wake.signal();
    }

    /// Stops and joins every reactor thread, dropping (closing) their
    /// sockets and epoll fds. Idempotent.
    pub(crate) fn stop(&self) {
        for shared in &self.shareds {
            shared.injected.lock().expect("reactor injection lock").stop = true;
            shared.wake.signal();
        }
        let joins: Vec<_> = self
            .joins
            .lock()
            .expect("reactor join table lock")
            .drain(..)
            .collect();
        for join in joins {
            let _ = join.join();
        }
    }
}

impl Drop for ReactorPool {
    fn drop(&mut self) {
        self.stop();
    }
}

impl std::fmt::Debug for ReactorPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReactorPool")
            .field("io_threads", &self.shareds.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // FFI sanity: the epoll/eventfd wrappers against the live kernel.
    // The integration suites exercise the full reactor; these pin the
    // raw layer (struct layout included — a mis-packed epoll_event
    // would corrupt `data` and fail the token round-trip).

    #[test]
    fn eventfd_signals_wake_epoll_and_round_trip_the_token() {
        let epoll = Epoll::new().expect("epoll_create1");
        let efd = EventFd::new().expect("eventfd");
        epoll.add(efd.fd, sys::EPOLLIN, 0xDEAD_BEEF).expect("add");
        let mut events = [sys::EpollEvent { events: 0, data: 0 }; 4];
        // Nothing pending: a zero-timeout wait returns empty.
        assert_eq!(epoll.wait(&mut events, 0).expect("wait"), 0);
        efd.signal();
        efd.signal(); // coalesces, still one readiness event
        let n = epoll.wait(&mut events, 1000).expect("wait");
        assert_eq!(n, 1);
        let data = events[0].data;
        assert_eq!(data, 0xDEAD_BEEF, "token survives the kernel round trip");
        efd.drain();
        assert_eq!(epoll.wait(&mut events, 0).expect("wait"), 0, "drained");
    }

    #[test]
    fn interest_modification_toggles_readiness() {
        let epoll = Epoll::new().expect("epoll_create1");
        let efd = EventFd::new().expect("eventfd");
        epoll.add(efd.fd, sys::EPOLLIN, 7).expect("add");
        efd.signal();
        let mut events = [sys::EpollEvent { events: 0, data: 0 }; 4];
        assert_eq!(epoll.wait(&mut events, 1000).expect("wait"), 1);
        // Drop read interest: the pending readiness goes quiet.
        epoll.modify(efd.fd, 0, 7).expect("mod");
        assert_eq!(epoll.wait(&mut events, 0).expect("wait"), 0);
        // Restore it: the level-triggered event comes back.
        epoll.modify(efd.fd, sys::EPOLLIN, 7).expect("mod");
        assert_eq!(epoll.wait(&mut events, 1000).expect("wait"), 1);
    }
}
