//! The standard semantics transliterated with *boxed-closure continuations*
//! — the style the paper itself uses (higher-order `Kont = V → Ans`
//! functions), adapted to Rust ownership with `FnOnce` continuations and a
//! trampoline for stack safety.
//!
//! This evaluator exists for two reasons:
//!
//! 1. **Fidelity** — it demonstrates that the defunctionalized
//!    [`machine`](crate::machine) computes the same function as a direct
//!    reading of Figure 2 (the test suite runs both on the same programs);
//! 2. **Ablation** — `monsem-bench` compares closure continuations against
//!    defunctionalized frames (DESIGN.md §5).

use crate::env::{Env, LetrecPlan};
use crate::error::EvalError;
use crate::machine::{constant, EvalOptions, LookupMode};
use crate::resolve::resolve_for;
use crate::value::{Closure, Value};
use monsem_syntax::Expr;
use std::rc::Rc;
use std::sync::Arc;

/// `Ans` — the final answer domain of the transliteration.
type Ans = Result<Value, EvalError>;

/// A trampoline step: either a final answer or more work.
enum Bounce {
    Done(Ans),
    More(Box<dyn FnOnce() -> Bounce>),
}

/// `Kont = V → Ans` (boxed, single-shot).
type Kont = Box<dyn FnOnce(Value) -> Bounce>;

fn done_err(e: EvalError) -> Bounce {
    Bounce::Done(Err(e))
}

/// One clause application of the valuation function. Every recursive call
/// is wrapped in [`Bounce::More`], so Rust stack depth stays constant and
/// the trampoline loop can meter fuel.
fn step(expr: Arc<Expr>, env: Env, k: Kont) -> Bounce {
    match &*expr {
        Expr::Con(c) => k(constant(c)),
        Expr::VarAt(_, addr) => k(env.lookup_addr(addr)),
        Expr::Var(x) => match env.lookup(x) {
            Some(v) => k(v),
            None => done_err(EvalError::UnboundVariable(x.clone())),
        },
        Expr::Lambda(l) => k(Value::Closure(Rc::new(Closure {
            param: l.param.clone(),
            body: l.body.clone(),
            env,
        }))),
        Expr::If(c, t, e) => {
            let (c, t, e) = (c.clone(), t.clone(), e.clone());
            let env2 = env.clone();
            Bounce::More(Box::new(move || {
                step(
                    c,
                    env2,
                    Box::new(move |v| match v {
                        Value::Bool(true) => Bounce::More(Box::new(move || step(t, env, k))),
                        Value::Bool(false) => Bounce::More(Box::new(move || step(e, env, k))),
                        other => done_err(EvalError::NonBooleanCondition(other.to_string())),
                    }),
                )
            }))
        }
        Expr::App(f, a) => {
            // E⟦e₂⟧ ρ {λv₂. E⟦e₁⟧ ρ {λv₁. (v₁|Fun) v₂ κ}}
            let (f, a) = (f.clone(), a.clone());
            let env2 = env.clone();
            Bounce::More(Box::new(move || {
                step(
                    a,
                    env2,
                    Box::new(move |v2| {
                        Bounce::More(Box::new(move || {
                            step(f, env, Box::new(move |v1| apply(v1, v2, k)))
                        }))
                    }),
                )
            }))
        }
        Expr::Let(x, v, b) => {
            let (x, v, b) = (x.clone(), v.clone(), b.clone());
            let env2 = env.clone();
            Bounce::More(Box::new(move || {
                step(
                    v,
                    env2,
                    Box::new(move |value| {
                        let env = env.extend(x, value);
                        Bounce::More(Box::new(move || step(b, env, k)))
                    }),
                )
            }))
        }
        Expr::Letrec(bs, body) => {
            let plan = Rc::new(LetrecPlan::of(bs));
            let env = if plan.values == 0 {
                plan.push_rec(&env)
            } else {
                env
            };
            bind_from(plan, 0, body.clone(), env, k)
        }
        Expr::Ann(_, inner) => {
            let inner = inner.clone();
            Bounce::More(Box::new(move || step(inner, env, k)))
        }
        Expr::Seq(a, b) => {
            let (a, b) = (a.clone(), b.clone());
            let env2 = env.clone();
            Bounce::More(Box::new(move || {
                step(
                    a,
                    env2,
                    Box::new(move |_| Bounce::More(Box::new(move || step(b, env, k)))),
                )
            }))
        }
        Expr::Assign(..) => done_err(EvalError::UnsupportedConstruct("assignment")),
        Expr::While(..) => done_err(EvalError::UnsupportedConstruct("while")),
        Expr::Par(..) => done_err(EvalError::UnsupportedConstruct(
            "par (only the strict machines evaluate it)",
        )),
    }
}

/// Evaluates the `index`-th planned letrec binding, then the rest, then
/// the body (pushing the rec frame after the value bindings).
fn bind_from(plan: Rc<LetrecPlan>, index: usize, body: Arc<Expr>, env: Env, k: Kont) -> Bounce {
    if index == plan.ordered.len() {
        return Bounce::More(Box::new(move || step(body, env, k)));
    }
    let value_expr = plan.ordered[index].value.clone();
    let env2 = env.clone();
    Bounce::More(Box::new(move || {
        step(
            value_expr,
            env2,
            Box::new(move |v| {
                let mut env = plan.bind(&env, index, v);
                if index + 1 == plan.values {
                    env = plan.push_rec(&env);
                }
                bind_from(plan, index + 1, body, env, k)
            }),
        )
    }))
}

/// `(v₁|Fun) v₂ κ`.
fn apply(fun: Value, arg: Value, k: Kont) -> Bounce {
    match fun {
        Value::Closure(c) => {
            let env = c.env.extend(c.param.clone(), arg);
            let body = c.body.clone();
            Bounce::More(Box::new(move || step(body, env, k)))
        }
        Value::Prim(p, collected) => {
            let mut args = collected.as_ref().clone();
            args.push(arg);
            if args.len() == p.arity() {
                match p.apply(&args) {
                    Ok(v) => k(v),
                    Err(e) => done_err(e),
                }
            } else {
                k(Value::Prim(p, Rc::new(args)))
            }
        }
        other => done_err(EvalError::NotAFunction(other.to_string())),
    }
}

/// Evaluates `expr` with boxed-closure continuations.
///
/// # Errors
///
/// Any [`EvalError`] the program provokes.
pub fn eval_cps(expr: &Expr) -> Result<Value, EvalError> {
    eval_cps_with(expr, &Env::empty(), &EvalOptions::default())
}

/// Evaluates `expr` in `env`, metering fuel at the trampoline.
///
/// # Errors
///
/// Any [`EvalError`] the program provokes, including
/// [`EvalError::FuelExhausted`].
pub fn eval_cps_with(expr: &Expr, env: &Env, options: &EvalOptions) -> Result<Value, EvalError> {
    // κ_init = {λv. φ v} with φ the identity here; answer algebras are
    // applied by callers (see `answer`).
    let program = match options.lookup {
        LookupMode::ByAddress => Arc::new(resolve_for(expr, env)),
        LookupMode::BySymbol | LookupMode::ByString => Arc::new(expr.clone()),
    };
    let mut bounce = step(program, env.clone(), Box::new(|v| Bounce::Done(Ok(v))));
    let mut fuel = options.fuel;
    loop {
        match bounce {
            Bounce::Done(ans) => return ans,
            Bounce::More(f) => {
                if fuel == 0 {
                    return Err(EvalError::FuelExhausted);
                }
                fuel -= 1;
                bounce = f();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::eval;
    use monsem_syntax::parse_expr;

    const PROGRAMS: &[&str] = &[
        "letrec fac = lambda x. if x = 0 then 1 else x * (fac (x - 1)) in fac 10",
        "letrec fib = lambda n. if n < 2 then n else (fib (n-1)) + (fib (n-2)) in fib 12",
        "let twice = lambda f. lambda x. f (f x) in twice (lambda n. n * 2) 5",
        "letrec sum = lambda l. if null? l then 0 else (hd l) + (sum (tl l)) in sum [1,2,3]",
        "letrec even = lambda n. if n = 0 then true else odd (n - 1) \
         and odd = lambda n. if n = 0 then false else even (n - 1) in even 9",
        "letrec a = 2 in letrec b = a * 3 in a + b",
        "{root}:(letrec f = lambda x. {l}:(x + 1) in f 41)",
        "1 + true",
        "missing (1 / 0)",
        "hd []",
    ];

    #[test]
    fn agrees_with_the_machine_on_values_and_errors() {
        for src in PROGRAMS {
            let e = parse_expr(src).unwrap();
            assert_eq!(eval_cps(&e), eval(&e), "program: {src}");
        }
    }

    #[test]
    fn deep_recursion_is_stack_safe() {
        let e = parse_expr(
            "letrec count = lambda n. if n = 0 then 0 else count (n - 1) in count 100000",
        )
        .unwrap();
        assert_eq!(eval_cps(&e), Ok(Value::Int(0)));
    }

    #[test]
    fn fuel_is_metered_at_the_trampoline() {
        let e = parse_expr("letrec loop = lambda x. loop x in loop 0").unwrap();
        assert_eq!(
            eval_cps_with(&e, &Env::empty(), &EvalOptions::with_fuel(5_000)),
            Err(EvalError::FuelExhausted)
        );
    }
}
