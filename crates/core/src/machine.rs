//! The standard continuation semantics of `L_λ` as a defunctionalized
//! machine (Figure 2).
//!
//! Every clause of the paper's valuation functional `G_λ` becomes a machine
//! transition; every continuation becomes a [`Frame`] on an explicit stack.
//! The correspondence, clause by clause:
//!
//! | Figure 2 | here |
//! |---|---|
//! | `⟦k⟧ : κ (K⟦k⟧)` | `Eval(Con) → Continue(value)` |
//! | `⟦x⟧ : κ (ρ x)` | `Eval(Var) → Continue(ρ x)` |
//! | `⟦lambda x.e⟧ : κ (… in Fun)` | `Eval(Lambda) → Continue(closure)` |
//! | `⟦if⟧ : E⟦e₁⟧ ρ {λv. v|Bool → …}` | push [`Frame::Branch`], eval `e₁` |
//! | `⟦e₁ e₂⟧ : E⟦e₂⟧ ρ {λv₂. E⟦e₁⟧ ρ {λv₁. (v₁|Fun) v₂ κ}}` | push [`Frame::Arg`], eval `e₂` **first** (the paper's order) |
//! | `⟦letrec⟧ : E⟦e₂⟧ ρ' κ` | rec frame in [`Env`], then eval the body |
//!
//! Annotations are skipped (`Eval(Ann(_, e)) → Eval(e)`): this machine *is*
//! the oblivious functional `G_obl` of Definition 7.1, which the soundness
//! property tests exercise against the monitored machine.

use crate::env::{Env, LetrecPlan};
use crate::error::EvalError;
use crate::resolve::resolve_for;
use crate::value::{Closure, Value};
use monsem_syntax::{Con, Expr, Ident};
use std::rc::Rc;
use std::sync::Arc;

/// How variable occurrences are dispatched to the environment.
///
/// The default, [`LookupMode::ByAddress`], statically resolves the program
/// (`crate::resolve`) before the first transition and follows lexical
/// addresses at `Expr::VarAt` occurrences — zero comparisons on the hot
/// path. The other two modes exist for the `ablation_environments`
/// benchmark and for differential testing of the resolver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LookupMode {
    /// Resolve once, then follow `(depth, slot)` addresses
    /// ([`Env::lookup_addr`]); unresolved occurrences fall back to
    /// interned-symbol lookup.
    #[default]
    ByAddress,
    /// No resolution pass; every occurrence walks the chain comparing
    /// interned symbols ([`Env::lookup`]).
    BySymbol,
    /// No resolution pass; every occurrence compares full strings and
    /// primitives are found by linear scan ([`Env::lookup_str`]) — the
    /// pre-interning baseline, benchmarks only.
    ByString,
}

/// Evaluation options.
#[derive(Debug, Clone)]
pub struct EvalOptions {
    /// Maximum number of machine transitions before
    /// [`EvalError::FuelExhausted`]. The default is effectively unlimited.
    pub fuel: u64,
    /// Variable lookup discipline; defaults to [`LookupMode::ByAddress`].
    pub lookup: LookupMode,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            fuel: u64::MAX,
            lookup: LookupMode::default(),
        }
    }
}

impl EvalOptions {
    /// Options with a step budget (used by property tests over generated
    /// programs, where nontermination must be cut off deterministically).
    pub fn with_fuel(fuel: u64) -> Self {
        EvalOptions {
            fuel,
            ..EvalOptions::default()
        }
    }

    /// Options with an explicit lookup discipline.
    pub fn with_lookup(lookup: LookupMode) -> Self {
        EvalOptions {
            lookup,
            ..EvalOptions::default()
        }
    }
}

/// Defunctionalized continuations. A stack of frames is one continuation
/// `κ`; the empty stack is the initial continuation `κ_init`.
#[derive(Debug, Clone)]
pub enum Frame {
    /// Waiting for the argument value of `e₁ e₂`; then evaluate `e₁`.
    Arg {
        /// The function expression `e₁`.
        func: Arc<Expr>,
        /// The environment of the application.
        env: Env,
    },
    /// Waiting for the function value; then apply it to the saved argument.
    Apply {
        /// The already-evaluated argument `v₂`.
        arg: Value,
    },
    /// Waiting for the condition of an `if`.
    Branch {
        /// Then-branch.
        then: Arc<Expr>,
        /// Else-branch.
        els: Arc<Expr>,
        /// Environment of the conditional.
        env: Env,
    },
    /// Waiting for the bound value of a `let`.
    Bind {
        /// The let-bound name.
        name: Ident,
        /// The body to evaluate next.
        body: Arc<Expr>,
        /// Environment of the `let`.
        env: Env,
    },
    /// Waiting for the value of the `index`-th binding of a `letrec`
    /// (per the [`LetrecPlan`] order: values, rec frame, annotated
    /// lambdas).
    LetrecBind {
        /// The group's evaluation plan.
        plan: Rc<LetrecPlan>,
        /// Which planned binding is being evaluated.
        index: usize,
        /// The `letrec` body.
        body: Arc<Expr>,
        /// Environment in which the current binding is evaluated.
        env: Env,
    },
    /// Discard the value of `e₁` in `e₁ ; e₂` and evaluate `e₂`.
    Discard {
        /// The second expression.
        second: Arc<Expr>,
        /// Environment of the sequence.
        env: Env,
    },
    /// Collecting the element values of a `par(e₁, …, eₙ)` left-to-right.
    /// The sequential machine gives `par` its reference semantics — the
    /// parallel machine must agree with this ordering bit-for-bit.
    Par {
        /// All element expressions.
        items: Vec<Arc<Expr>>,
        /// Values of the elements evaluated so far.
        done: Vec<Value>,
        /// Environment of the `par`.
        env: Env,
    },
}

/// Machine states: evaluating an expression, or returning a value to the
/// topmost frame.
#[derive(Debug, Clone)]
enum State {
    Eval(Arc<Expr>, Env),
    Continue(Value),
}

/// Statistics from a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Machine transitions taken.
    pub steps: u64,
    /// High-water mark of the continuation stack.
    pub max_stack: usize,
}

/// Applies a function value to an argument, as `(v₁|Fun) v₂ κ` does.
pub(crate) fn apply_value(fun: Value, arg: Value) -> Result<StateAfterApply, EvalError> {
    match fun {
        Value::Closure(c) => Ok(StateAfterApply::Enter(
            c.body.clone(),
            c.env.extend(c.param.clone(), arg),
        )),
        Value::Prim(p, collected) => {
            let mut args = collected.as_ref().clone();
            args.push(arg);
            if args.len() == p.arity() {
                if p == crate::prims::Prim::ParMap {
                    let xs = args.pop().expect("arity checked");
                    let f = args.pop().expect("arity checked");
                    let (expr, env) = par_map_enter(f, xs)?;
                    return Ok(StateAfterApply::Enter(expr, env));
                }
                Ok(StateAfterApply::Value(p.apply(&args)?))
            } else {
                Ok(StateAfterApply::Value(Value::Prim(p, Rc::new(args))))
            }
        }
        other => Err(EvalError::NotAFunction(other.to_string())),
    }
}

/// Result of applying a function value: either enter a body or return a
/// value immediately (primitives).
pub(crate) enum StateAfterApply {
    Enter(Arc<Expr>, Env),
    Value(Value),
}

/// Rewrites a saturated `par_map f xs` into entering `par(f x₁, …, f xₙ)`
/// in a synthetic environment binding `f` and each list element under
/// names no source program can shadow (they are not lexable). Shared by
/// the sequential and monitored strict machines, so `par_map` inherits all
/// of `par`'s machinery — including fork-join sharding under the parallel
/// machine.
pub fn par_map_enter(f: Value, xs: Value) -> Result<(Arc<Expr>, Env), EvalError> {
    let items = xs.iter_list().ok_or_else(|| EvalError::TypeError {
        expected: "a proper list",
        found: xs.to_string(),
        operation: "par_map",
    })?;
    let fun_name = Ident::new("·par_map·f");
    let mut env = Env::empty().extend(fun_name.clone(), f);
    let mut elems = Vec::with_capacity(items.len());
    for (i, item) in items.into_iter().enumerate() {
        let x = Ident::new(format!("·par_map·x{i}"));
        env = env.extend(x.clone(), item.clone());
        elems.push(Arc::new(Expr::App(
            Arc::new(Expr::Var(fun_name.clone())),
            Arc::new(Expr::Var(x)),
        )));
    }
    Ok((Arc::new(Expr::Par(elems)), env))
}

/// Evaluates `expr` in the initial (primitive-only) environment.
///
/// # Errors
///
/// Any [`EvalError`] the program provokes.
///
/// ```
/// use monsem_core::{machine::eval, value::Value};
/// use monsem_syntax::parse_expr;
/// let e = parse_expr("(lambda x. x * x) 7")?;
/// assert_eq!(eval(&e)?, Value::Int(49));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn eval(expr: &Expr) -> Result<Value, EvalError> {
    eval_with(expr, &Env::empty(), &EvalOptions::default())
}

/// Evaluates `expr` in `env` with the given options.
///
/// # Errors
///
/// Any [`EvalError`] the program provokes, including
/// [`EvalError::FuelExhausted`] when the step budget runs out.
pub fn eval_with(expr: &Expr, env: &Env, options: &EvalOptions) -> Result<Value, EvalError> {
    run(expr, env, options).0
}

/// Evaluates `expr` and applies an answer algebra's `φ` as the initial
/// continuation would: `κ_init = {λv. φ v}` (§3.1).
///
/// # Errors
///
/// Any [`EvalError`] the program provokes, or the algebra's rejection of
/// the final value.
///
/// ```
/// use monsem_core::answer::StringAnswer;
/// use monsem_core::machine::eval_with_algebra;
/// use monsem_syntax::parse_expr;
/// let e = parse_expr("6 * 7")?;
/// assert_eq!(eval_with_algebra(&e, &StringAnswer)?, "The result is: 42");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn eval_with_algebra<Alg: crate::answer::AnswerAlgebra>(
    expr: &Expr,
    algebra: &Alg,
) -> Result<Alg::Ans, EvalError> {
    let value = eval(expr)?;
    algebra.phi(value)
}

/// Like [`eval_with`] but also reports [`EvalStats`].
pub fn eval_stats(
    expr: &Expr,
    env: &Env,
    options: &EvalOptions,
) -> (Result<Value, EvalError>, EvalStats) {
    run(expr, env, options)
}

fn run(expr: &Expr, env: &Env, options: &EvalOptions) -> (Result<Value, EvalError>, EvalStats) {
    let mut stats = EvalStats::default();
    let result = drive(expr, env, options, &mut stats);
    (result, stats)
}

fn drive(
    expr: &Expr,
    env: &Env,
    options: &EvalOptions,
    stats: &mut EvalStats,
) -> Result<Value, EvalError> {
    let mut stack: Vec<Frame> = Vec::new();
    // Under the default mode the program is lexically addressed once, up
    // front; the loop below then never compares a name for any occurrence
    // the resolver reached.
    let program = match options.lookup {
        LookupMode::ByAddress => Arc::new(resolve_for(expr, env)),
        LookupMode::BySymbol | LookupMode::ByString => Arc::new(expr.clone()),
    };
    let by_string = options.lookup == LookupMode::ByString;
    let mut state = State::Eval(program, env.clone());
    let mut fuel = options.fuel;

    loop {
        if fuel == 0 {
            return Err(EvalError::FuelExhausted);
        }
        fuel -= 1;
        stats.steps += 1;
        stats.max_stack = stats.max_stack.max(stack.len());

        state = match state {
            State::Eval(expr, env) => match &*expr {
                Expr::Con(c) => State::Continue(constant(c)),
                Expr::VarAt(_, addr) => State::Continue(env.lookup_addr(addr)),
                Expr::Var(x) => {
                    let v = if by_string {
                        env.lookup_str(x)
                    } else {
                        env.lookup(x)
                    };
                    match v {
                        Some(v) => State::Continue(v),
                        None => return Err(EvalError::UnboundVariable(x.clone())),
                    }
                }
                Expr::Lambda(l) => State::Continue(Value::Closure(Rc::new(Closure {
                    param: l.param.clone(),
                    body: l.body.clone(),
                    env: env.clone(),
                }))),
                Expr::If(c, t, e) => {
                    stack.push(Frame::Branch {
                        then: t.clone(),
                        els: e.clone(),
                        env: env.clone(),
                    });
                    State::Eval(c.clone(), env)
                }
                Expr::App(f, a) => {
                    // Paper order: evaluate the argument first.
                    stack.push(Frame::Arg {
                        func: f.clone(),
                        env: env.clone(),
                    });
                    State::Eval(a.clone(), env)
                }
                Expr::Let(x, v, b) => {
                    stack.push(Frame::Bind {
                        name: x.clone(),
                        body: b.clone(),
                        env: env.clone(),
                    });
                    State::Eval(v.clone(), env)
                }
                Expr::Letrec(bs, body) => {
                    let plan = Rc::new(LetrecPlan::of(bs));
                    let env = if plan.values == 0 {
                        plan.push_rec(&env)
                    } else {
                        env
                    };
                    if plan.ordered.is_empty() {
                        State::Eval(body.clone(), env)
                    } else {
                        let first = plan.ordered[0].value.clone();
                        stack.push(Frame::LetrecBind {
                            plan,
                            index: 0,
                            body: body.clone(),
                            env: env.clone(),
                        });
                        State::Eval(first, env)
                    }
                }
                // The oblivious functional G_obl (Definition 7.1): the
                // standard semantics disregards monitor annotations.
                Expr::Ann(_, inner) => State::Eval(inner.clone(), env),
                Expr::Seq(a, b) => {
                    stack.push(Frame::Discard {
                        second: b.clone(),
                        env: env.clone(),
                    });
                    State::Eval(a.clone(), env)
                }
                Expr::Assign(..) => return Err(EvalError::UnsupportedConstruct("assignment")),
                Expr::While(..) => return Err(EvalError::UnsupportedConstruct("while")),
                Expr::Par(items) => match items.split_first() {
                    None => State::Continue(Value::Nil),
                    Some((first, _)) => {
                        stack.push(Frame::Par {
                            items: items.clone(),
                            done: Vec::new(),
                            env: env.clone(),
                        });
                        State::Eval(first.clone(), env)
                    }
                },
            },
            State::Continue(value) => match stack.pop() {
                None => return Ok(value),
                Some(Frame::Arg { func, env }) => {
                    stack.push(Frame::Apply { arg: value });
                    State::Eval(func, env)
                }
                Some(Frame::Apply { arg }) => match apply_value(value, arg)? {
                    StateAfterApply::Enter(body, env) => State::Eval(body, env),
                    StateAfterApply::Value(v) => State::Continue(v),
                },
                Some(Frame::Branch { then, els, env }) => match value {
                    Value::Bool(true) => State::Eval(then, env),
                    Value::Bool(false) => State::Eval(els, env),
                    other => return Err(EvalError::NonBooleanCondition(other.to_string())),
                },
                Some(Frame::Bind { name, body, env }) => State::Eval(body, env.extend(name, value)),
                Some(Frame::LetrecBind {
                    plan,
                    index,
                    body,
                    env,
                }) => {
                    let mut env = plan.bind(&env, index, value);
                    if index + 1 == plan.values {
                        env = plan.push_rec(&env);
                    }
                    if index + 1 < plan.ordered.len() {
                        let next = plan.ordered[index + 1].value.clone();
                        stack.push(Frame::LetrecBind {
                            plan,
                            index: index + 1,
                            body,
                            env: env.clone(),
                        });
                        State::Eval(next, env)
                    } else {
                        State::Eval(body, env)
                    }
                }
                Some(Frame::Discard { second, env }) => State::Eval(second, env),
                Some(Frame::Par {
                    items,
                    mut done,
                    env,
                }) => {
                    done.push(value);
                    if done.len() < items.len() {
                        let next = items[done.len()].clone();
                        let elem_env = env.clone();
                        stack.push(Frame::Par { items, done, env });
                        State::Eval(next, elem_env)
                    } else {
                        State::Continue(Value::list(done))
                    }
                }
            },
        };
    }
}

/// `K : Con → V` — the meaning of constants (Figure 2).
pub fn constant(c: &Con) -> Value {
    match c {
        Con::Int(n) => Value::Int(*n),
        Con::Bool(b) => Value::Bool(*b),
        Con::Str(s) => Value::Str(s.clone()),
        Con::Nil => Value::Nil,
        Con::Unit => Value::Unit,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monsem_syntax::parse_expr;

    fn run_src(src: &str) -> Result<Value, EvalError> {
        eval(&parse_expr(src).expect("parses"))
    }

    #[test]
    fn factorial_of_five_is_120() {
        assert_eq!(
            run_src("letrec fac = lambda x. if x = 0 then 1 else x * (fac (x - 1)) in fac 5"),
            Ok(Value::Int(120))
        );
    }

    #[test]
    fn paper_profiler_program_evaluates_to_120_with_annotations() {
        assert_eq!(
            run_src(
                "letrec fac = lambda x. if (x = 0) then {A}:1 else {B}:(x * (fac (x - 1))) \
                 in fac 5"
            ),
            Ok(Value::Int(120))
        );
    }

    #[test]
    fn higher_order_functions() {
        assert_eq!(
            run_src("let twice = lambda f. lambda x. f (f x) in twice (lambda n. n + 3) 10"),
            Ok(Value::Int(16))
        );
    }

    #[test]
    fn application_evaluates_argument_first() {
        // The argument's division by zero fires even though the function
        // expression is unbound — matching the paper's order E⟦e₂⟧ first.
        assert_eq!(run_src("missing (1 / 0)"), Err(EvalError::DivisionByZero));
    }

    #[test]
    fn mutual_recursion_via_and() {
        assert_eq!(
            run_src(
                "letrec even = lambda n. if n = 0 then true else odd (n - 1) \
                 and odd = lambda n. if n = 0 then false else even (n - 1) in even 10"
            ),
            Ok(Value::Bool(true))
        );
    }

    #[test]
    fn letrec_with_non_lambda_rhs_behaves_sequentially() {
        assert_eq!(
            run_src("letrec a = 1 + 1 in letrec b = a * 10 in b"),
            Ok(Value::Int(20))
        );
    }

    #[test]
    fn letrec_mixing_values_and_functions() {
        assert_eq!(
            run_src("letrec base = 10 and add = lambda x. x + base in add 5"),
            // `base` is bound before `add` is *called* (all bindings are
            // evaluated before the body), so the call sees base = 10 via
            // the plain frame stacked above the rec frame.
            Ok(Value::Int(15))
        );
    }

    #[test]
    fn annotations_are_invisible_to_the_standard_semantics() {
        let plain = run_src("letrec f = lambda x. x * 2 in f 21");
        let annotated = run_src("letrec f = lambda x. {lbl}:(x * 2) in {root}:(f 21)");
        assert_eq!(plain, annotated);
        assert_eq!(plain, Ok(Value::Int(42)));
    }

    #[test]
    fn deep_recursion_does_not_overflow_the_rust_stack() {
        assert_eq!(
            run_src("letrec count = lambda n. if n = 0 then 0 else count (n - 1) in count 200000"),
            Ok(Value::Int(0))
        );
    }

    #[test]
    fn fuel_exhaustion_is_reported() {
        let e = parse_expr("letrec loop = lambda x. loop x in loop 0").unwrap();
        assert_eq!(
            eval_with(&e, &Env::empty(), &EvalOptions::with_fuel(10_000)),
            Err(EvalError::FuelExhausted)
        );
    }

    #[test]
    fn runtime_errors_surface() {
        assert_eq!(
            run_src("1 + true"),
            Err(EvalError::TypeError {
                expected: "an integer",
                found: "true".into(),
                operation: "+",
            })
        );
        assert_eq!(
            run_src("nonexistent"),
            Err(EvalError::UnboundVariable(Ident::new("nonexistent")))
        );
        assert_eq!(
            run_src("1 2"),
            Err(EvalError::NotAFunction("1".to_string()))
        );
        assert_eq!(
            run_src("if 3 then 1 else 2"),
            Err(EvalError::NonBooleanCondition("3".into()))
        );
    }

    #[test]
    fn imperative_constructs_are_rejected_by_the_pure_machine() {
        assert_eq!(
            run_src("x := 1"),
            Err(EvalError::UnsupportedConstruct("assignment"))
        );
        assert_eq!(
            run_src("while true do 1 end"),
            Err(EvalError::UnsupportedConstruct("while"))
        );
    }

    #[test]
    fn seq_discards_the_first_value() {
        assert_eq!(run_src("1; 2"), Ok(Value::Int(2)));
    }

    #[test]
    fn list_programs() {
        assert_eq!(
            run_src(
                "letrec sum = lambda l. if null? l then 0 else (hd l) + (sum (tl l)) \
                 in sum [1, 2, 3, 4]"
            ),
            Ok(Value::Int(10))
        );
        assert_eq!(run_src("length (1 : 2 : [])"), Ok(Value::Int(2)));
    }

    #[test]
    fn curried_primitives_are_first_class() {
        assert_eq!(run_src("let inc = (+) 1 in inc 41"), Ok(Value::Int(42)));
        assert_eq!(
            run_src(
                "letrec map = lambda f. lambda l. \
                   if null? l then [] else (f (hd l)) : (map f (tl l)) \
                 in map ((+) 10) [1, 2]"
            ),
            Ok(Value::list([Value::Int(11), Value::Int(12)]))
        );
    }

    #[test]
    fn stats_count_steps_and_stack() {
        let e = parse_expr("1 + 2").unwrap();
        let (r, stats) = eval_stats(&e, &Env::empty(), &EvalOptions::default());
        assert_eq!(r, Ok(Value::Int(3)));
        assert!(stats.steps >= 5, "steps = {}", stats.steps);
        assert!(stats.max_stack >= 1);
    }

    #[test]
    fn shadowing_respects_lexical_scope() {
        assert_eq!(
            run_src("let x = 1 in (lambda x. x + 1) 10 + x"),
            Ok(Value::Int(12))
        );
    }

    #[test]
    fn closures_capture_their_environment() {
        assert_eq!(
            run_src(
                "let make = lambda n. lambda x. x + n in \
                 let add3 = make 3 in let add5 = make 5 in add3 1 + add5 1"
            ),
            Ok(Value::Int(10))
        );
    }

    #[test]
    fn par_yields_the_list_of_element_values() {
        assert_eq!(
            run_src("par(1 + 2, 4 * 5, 0 - 1)"),
            Ok(Value::list([Value::Int(3), Value::Int(20), Value::Int(-1)]))
        );
        assert_eq!(run_src("par()"), Ok(Value::Nil));
        assert_eq!(run_src("hd par(7, 8)"), Ok(Value::Int(7)));
    }

    #[test]
    fn par_evaluates_left_to_right() {
        // Each element closes over the same outer binding; ordering is
        // observable through error precedence: the leftmost failing
        // element decides the error.
        let err = run_src("par(1, 1 / 0, undefined_var)").unwrap_err();
        assert!(matches!(err, EvalError::DivisionByZero), "{err:?}");
    }

    #[test]
    fn par_map_applies_the_function_to_each_element() {
        assert_eq!(
            run_src("par_map (lambda x. x * x) [1, 2, 3, 4]"),
            Ok(Value::list([
                Value::Int(1),
                Value::Int(4),
                Value::Int(9),
                Value::Int(16)
            ]))
        );
        assert_eq!(run_src("par_map (lambda x. x) []"), Ok(Value::Nil));
    }

    #[test]
    fn par_map_requires_a_proper_list() {
        assert!(matches!(
            run_src("par_map (lambda x. x) 3"),
            Err(EvalError::TypeError { .. })
        ));
    }
}
