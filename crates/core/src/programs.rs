//! The paper's example programs and the benchmark workloads, as ready-made
//! sources. Every program here parses; the constructors panic otherwise
//! (they are test/bench fixtures, not user input).

use monsem_syntax::{parse_expr, Expr};

fn parse(src: &str) -> Expr {
    parse_expr(src).unwrap_or_else(|e| panic!("fixture program failed to parse: {e}\n{src}"))
}

/// `fac n` — plain factorial.
pub fn fac(n: i64) -> Expr {
    parse(&format!(
        "letrec fac = lambda x. if x = 0 then 1 else x * (fac (x - 1)) in fac {n}"
    ))
}

/// The §5 profiler example: each conditional branch labelled `{{A}}`/`{{B}}`.
/// Monitoring `fac 5` yields σ = ⟨1, 5⟩.
pub fn fac_ab(n: i64) -> Expr {
    parse(&format!(
        "letrec fac = lambda x. if (x = 0) then {{A}}:1 else {{B}}:(x * (fac (x - 1))) in fac {n}"
    ))
}

/// The §8 profiler/tracer program without annotations: `fac` via `mul`.
pub fn fac_mul_plain(n: i64) -> Expr {
    parse(&format!(
        "letrec mul = lambda x. lambda y. x*y in \
         letrec fac = lambda x. if (x=0) then 1 else mul x (fac (x-1)) in fac {n}"
    ))
}

/// The §8 profiler program: function bodies labelled with their names.
/// Monitoring `fac 3` yields `[fac ↦ 4, mul ↦ 3]`.
pub fn fac_mul_profiled(n: i64) -> Expr {
    parse(&format!(
        "letrec mul = lambda x. lambda y. {{mul}}:(x*y) in \
         letrec fac = lambda x. {{fac}}:if (x=0) then 1 else mul x (fac (x-1)) in fac {n}"
    ))
}

/// The §8 tracer program: function bodies annotated with headers.
pub fn fac_mul_traced(n: i64) -> Expr {
    parse(&format!(
        "letrec mul = lambda x. lambda y. {{mul(x, y)}}:(x*y) in \
         letrec fac = lambda x. {{fac(x)}}:if (x=0) then 1 else mul x (fac (x-1)) in fac {n}"
    ))
}

/// The §8 demon program: `inclist` reverses while incrementing, so `l1`
/// and `l3` hold unsorted lists. The demon reports σ = {l1, l3}.
pub fn inclist_demon() -> Expr {
    parse(
        "letrec inclist = lambda l. lambda acc. \
            if (l=[]) then acc else inclist (tl l) (((hd l)+1):acc) in \
         letrec l1 = {l1}:(inclist [1,10,100] []) in \
         letrec l2 = {l2}:(inclist l1 []) in \
         letrec l3 = {l3}:(inclist l2 []) in l3",
    )
}

/// The §8 collecting-monitor program. Monitoring `fac 3` yields
/// `[test ↦ {true,false}, n ↦ {1,2,3}]`.
pub fn collecting_fac(n: i64) -> Expr {
    parse(&format!(
        "letrec fac = lambda n. if {{test}}:(n=0) then 1 else {{n}}:n * (fac (n-1)) in fac {n}"
    ))
}

/// `fib n` — naive Fibonacci, the classic interpreter benchmark.
pub fn fib(n: i64) -> Expr {
    parse(&format!(
        "letrec fib = lambda n. if n < 2 then n else (fib (n-1)) + (fib (n-2)) in fib {n}"
    ))
}

/// `ack m n` — Ackermann, for deep recursion stress.
pub fn ack(m: i64, n: i64) -> Expr {
    parse(&format!(
        "letrec ack = lambda m. lambda n. \
            if m = 0 then n + 1 \
            else if n = 0 then ack (m - 1) 1 \
            else ack (m - 1) (ack m (n - 1)) \
         in ack {m} {n}"
    ))
}

/// `sum [1..n]` via a list build + fold — exercises list primitives.
pub fn sum_to(n: i64) -> Expr {
    parse(&format!(
        "letrec build = lambda i. if i = 0 then [] else i : (build (i - 1)) in \
         letrec sum = lambda l. if null? l then 0 else (hd l) + (sum (tl l)) in \
         sum (build {n})"
    ))
}

/// Insertion sort of the reversed list `[n, n-1, …, 1]` — the demon
/// workload at scale.
pub fn insertion_sort(n: i64) -> Expr {
    parse(&format!(
        "letrec insert = lambda x. lambda l. \
            if null? l then [x] \
            else if x <= (hd l) then x : l \
            else (hd l) : (insert x (tl l)) in \
         letrec sort = lambda l. \
            if null? l then [] else insert (hd l) (sort (tl l)) in \
         letrec build = lambda i. if i = 0 then [] else i : (build (i - 1)) in \
         sort (build {n})"
    ))
}

/// `pow base exp` — the canonical partial-evaluation example: specializing
/// on a static `exp` unrolls the recursion entirely.
pub fn pow(base: i64, exp: i64) -> Expr {
    parse(&format!(
        "letrec pow = lambda b. lambda e. if e = 0 then 1 else b * (pow b (e - 1)) \
         in pow {base} {exp}"
    ))
}

/// The `pow` program with a free dynamic `base` variable, for
/// specialization with respect to partial input (§9.1, level 3).
pub fn pow_open() -> Expr {
    parse(
        "letrec pow = lambda b. lambda e. if e = 0 then 1 else b * (pow b (e - 1)) \
         in lambda base. pow base exp",
    )
}

/// `tak x y z` — the Takeuchi function, a classic call-heavy benchmark.
pub fn tak(x: i64, y: i64, z: i64) -> Expr {
    parse(&format!(
        "letrec tak = lambda x. lambda y. lambda z.             if y < x             then tak (tak (x - 1) y z) (tak (y - 1) z x) (tak (z - 1) x y)             else z          in tak {x} {y} {z}"
    ))
}

/// Merge sort over the reversed list `[n, …, 1]` — heavier list workload
/// than insertion sort, with three mutually used helpers.
pub fn merge_sort(n: i64) -> Expr {
    parse(&format!(
        "letrec take = lambda k. lambda l.             if k = 0 then [] else if null? l then []             else (hd l) : (take (k - 1) (tl l)) in          letrec drop = lambda k. lambda l.             if k = 0 then l else if null? l then []             else drop (k - 1) (tl l) in          letrec merge = lambda a. lambda b.             if null? a then b else if null? b then a             else if (hd a) <= (hd b)                  then (hd a) : (merge (tl a) b)                  else (hd b) : (merge a (tl b)) in          letrec sort = lambda l.             if null? l then [] else if null? (tl l) then l             else merge (sort (take ((length l) / 2) l))                        (sort (drop ((length l) / 2) l)) in          letrec build = lambda i. if i = 0 then [] else i : (build (i - 1)) in          sort (build {n})"
    ))
}

/// The primes below `n` by trial division — arithmetic-heavy.
pub fn primes_below(n: i64) -> Expr {
    parse(&format!(
        "letrec divides = lambda d. lambda m. (mod m d) = 0 in          letrec has_factor = lambda d. lambda m.             if d * d > m then false             else if divides d m then true             else has_factor (d + 1) m in          letrec prime? = lambda m. if m < 2 then false else not (has_factor 2 m) in          letrec upto = lambda i.             if i >= {n} then []             else if prime? i then i : (upto (i + 1)) else upto (i + 1)          in upto 2"
    ))
}

/// `n`-queens (counts solutions) — the heaviest stress fixture: deep
/// recursion, higher-order-free but list- and branch-intensive.
pub fn nqueens(n: i64) -> Expr {
    parse(&format!(
        "letrec safe = lambda col. lambda dist. lambda placed.             if null? placed then true             else if (hd placed) = col then false             else if (hd placed) = col + dist then false             else if (hd placed) = col - dist then false             else safe col (dist + 1) (tl placed) in          letrec count = lambda row. lambda placed. lambda col.             if col > {n} then 0             else (if safe col 1 placed                   then (if row = {n} then 1 else count (row + 1) (col : placed) 1)                   else 0)                  + (count row placed (col + 1))          in count 1 [] 1"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::eval;
    use crate::value::Value;

    #[test]
    fn fixtures_evaluate_to_expected_values() {
        assert_eq!(eval(&fac(5)), Ok(Value::Int(120)));
        assert_eq!(eval(&fac_ab(5)), Ok(Value::Int(120)));
        assert_eq!(eval(&fac_mul_plain(3)), Ok(Value::Int(6)));
        assert_eq!(eval(&fac_mul_profiled(3)), Ok(Value::Int(6)));
        assert_eq!(eval(&fac_mul_traced(3)), Ok(Value::Int(6)));
        assert_eq!(eval(&collecting_fac(3)), Ok(Value::Int(6)));
        assert_eq!(eval(&fib(10)), Ok(Value::Int(55)));
        assert_eq!(eval(&ack(2, 3)), Ok(Value::Int(9)));
        assert_eq!(eval(&sum_to(10)), Ok(Value::Int(55)));
        assert_eq!(eval(&pow(2, 10)), Ok(Value::Int(1024)));
    }

    #[test]
    fn demon_program_computes_the_thrice_incremented_list() {
        // inclist reverses and increments: [1,10,100] → [101,11,2] → [3,12,102] → [103,13,4]
        assert_eq!(
            eval(&inclist_demon()),
            Ok(Value::list([
                Value::Int(103),
                Value::Int(13),
                Value::Int(4)
            ]))
        );
    }

    #[test]
    fn heavier_workloads_compute_known_values() {
        assert_eq!(eval(&tak(8, 4, 2)), Ok(Value::Int(3)));
        assert_eq!(
            eval(&merge_sort(6)),
            Ok(Value::list((1..=6).map(Value::Int)))
        );
        assert_eq!(
            eval(&primes_below(30)),
            Ok(Value::list(
                [2, 3, 5, 7, 11, 13, 17, 19, 23, 29].map(Value::Int)
            ))
        );
        // Known n-queens counts: 1, 0, 0, 2, 10, 4, 40, 92…
        assert_eq!(eval(&nqueens(4)), Ok(Value::Int(2)));
        assert_eq!(eval(&nqueens(5)), Ok(Value::Int(10)));
        assert_eq!(eval(&nqueens(6)), Ok(Value::Int(4)));
    }

    #[test]
    fn insertion_sort_sorts() {
        assert_eq!(
            eval(&insertion_sort(4)),
            Ok(Value::list([
                Value::Int(1),
                Value::Int(2),
                Value::Int(3),
                Value::Int(4)
            ]))
        );
    }
}
